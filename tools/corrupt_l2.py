#!/usr/bin/env python3
"""Controlled level-2 corruption for salvage-mode drills.

Damages one run stream of a level-2 store the way real failures do —
a crash-truncated tail or a bit flip that breaks the line's CRC frame —
so CI and operators can exercise ``repro condition --salvage`` against a
store that is corrupt in a known, assertable way.  Run it on a *copy* of
the store: the damage is deliberate and permanent.

Usage::

    python tools/corrupt_l2.py STORE --node NODE --run RUN \
        [--stream events.jsonl] (--truncate-bytes K | --flip-byte)

``--truncate-bytes K`` cuts the last K bytes off the stream file
(simulating a torn final write); ``--flip-byte`` changes one character
inside the last record's JSON body while leaving its CRC suffix alone
(simulating silent media corruption -> crc_mismatch).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("store", type=Path, help="level-2 store root (a copy!)")
    parser.add_argument("--node", required=True, help="node id owning the stream")
    parser.add_argument("--run", type=int, required=True, help="run id")
    parser.add_argument("--stream", default="events.jsonl",
                        choices=("events.jsonl", "packets.jsonl"))
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--truncate-bytes", type=int, metavar="K",
                      help="cut the last K bytes off the stream file")
    mode.add_argument("--flip-byte", action="store_true",
                      help="corrupt one character of the last record's JSON "
                           "body (keeps the CRC suffix -> crc_mismatch)")
    return parser


def truncate(path: Path, nbytes: int) -> None:
    size = path.stat().st_size
    if nbytes <= 0 or nbytes >= size:
        raise SystemExit(f"--truncate-bytes must be in (0, {size})")
    with open(path, "r+b") as fh:
        fh.truncate(size - nbytes)
    print(f"truncated {nbytes} byte(s) off {path} ({size} -> {size - nbytes})")


def flip_byte(path: Path) -> None:
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise SystemExit(f"{path} is empty; nothing to corrupt")
    last = lines[-1]
    if "\t" not in last:
        raise SystemExit(f"last line of {path} is not CRC-framed")
    body, suffix = last.rsplit("\t", 1)
    # Flip a character in the middle of the JSON body; swapping a digit
    # keeps the text valid JSON so only the CRC check can catch it.
    pos = len(body) // 2
    for offset in range(len(body)):
        i = (pos + offset) % len(body)
        if body[i].isdigit():
            flipped = body[:i] + str((int(body[i]) + 1) % 10) + body[i + 1:]
            break
    else:
        i = pos
        flipped = body[:i] + ("x" if body[i] != "x" else "y") + body[i + 1:]
    lines[-1] = f"{flipped}\t{suffix}"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    print(f"flipped one byte in the last record of {path}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    path = args.store / "nodes" / args.node / "runs" / str(args.run) / args.stream
    if not path.exists():
        raise SystemExit(f"no such stream: {path}")
    if args.truncate_bytes is not None:
        truncate(path, args.truncate_bytes)
    else:
        flip_byte(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
