"""Minimal stand-in for the PyPA ``wheel`` package.

Offline environments that ship setuptools < 70.1 but not ``wheel`` cannot
perform PEP 660 editable installs (``pip install -e .``): setuptools'
``dist_info`` and ``editable_wheel`` commands delegate tag computation,
egg-info conversion and wheel-archive writing to the ``wheel``
distribution.  This shim implements exactly the surface those two
commands use, for pure-Python projects:

* :class:`wheel.bdist_wheel.bdist_wheel` with ``get_tag`` (always
  ``py3-none-any``), ``write_wheelfile`` and ``egg2dist``;
* :class:`wheel.wheelfile.WheelFile` — a ``ZipFile`` that records SHA-256
  hashes and writes a PEP 376 RECORD on close.

Install with ``python tools/wheel_shim/install.py`` (see README).  If the
real ``wheel`` package is available, use that instead — this shim refuses
to build non-editable binary distributions.
"""

__version__ = "0.0.1+excovery.shim"
