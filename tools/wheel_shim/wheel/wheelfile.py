"""A ZipFile subclass producing valid wheel archives (RECORD included)."""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile

__all__ = ["WheelFile"]


def _urlsafe_b64_nopad(digest: bytes) -> str:
    return base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")


class WheelFile(zipfile.ZipFile):
    """Write-mode wheel archive with automatic RECORD generation.

    The archive name must follow PEP 427:
    ``{distribution}-{version}(-{build})?-{tag}.whl``.
    """

    def __init__(self, file, mode="r", compression=zipfile.ZIP_DEFLATED):
        base = os.path.basename(str(file))
        if base.endswith(".whl"):
            base = base[:-4]
        parts = base.split("-")
        if len(parts) < 2:
            raise ValueError(f"not a wheel archive name: {file!r}")
        super().__init__(file, mode, compression=compression, allowZip64=True)
        self.dist_info_path = f"{parts[0]}-{parts[1]}.dist-info"
        self.record_path = f"{self.dist_info_path}/RECORD"
        self._records: list[tuple[str, str, int]] = []
        self._mode = mode

    # ------------------------------------------------------------------
    def _track(self, arcname: str, data: bytes) -> None:
        if arcname == self.record_path:
            return
        digest = hashlib.sha256(data).digest()
        self._records.append(
            (arcname, f"sha256={_urlsafe_b64_nopad(digest)}", len(data))
        )

    def writestr(self, zinfo_or_arcname, data, *args, **kwargs):  # noqa: D102
        if isinstance(data, str):
            data = data.encode("utf-8")
        arcname = (
            zinfo_or_arcname.filename
            if isinstance(zinfo_or_arcname, zipfile.ZipInfo)
            else str(zinfo_or_arcname)
        )
        self._track(arcname, data)
        super().writestr(zinfo_or_arcname, data, *args, **kwargs)

    def write(self, filename, arcname=None, *args, **kwargs):  # noqa: D102
        arcname = str(arcname) if arcname is not None else os.path.basename(filename)
        with open(filename, "rb") as fh:
            data = fh.read()
        self._track(arcname, data)
        super().writestr(zipfile.ZipInfo(arcname), data)

    def write_files(self, base_dir):
        """Add every file under *base_dir*, arcnames relative to it."""
        entries = []
        for root, _dirs, files in os.walk(base_dir):
            for name in files:
                path = os.path.join(root, name)
                arcname = os.path.relpath(path, base_dir).replace(os.sep, "/")
                entries.append((arcname, path))
        for arcname, path in sorted(entries):
            if arcname != self.record_path:
                self.write(path, arcname)

    def close(self):  # noqa: D102
        if not hasattr(self, "_records"):
            return  # __init__ rejected the archive name; nothing was opened
        if self._mode == "w" and self._records:
            lines = [
                f"{name},{digest},{size}" for name, digest, size in self._records
            ]
            lines.append(f"{self.record_path},,")
            super().writestr(self.record_path, "\n".join(lines) + "\n")
            self._records = []
        super().close()
