"""The ``bdist_wheel`` command surface setuptools' PEP 660 path needs."""

from __future__ import annotations

import os
import shutil

from setuptools import Command

__all__ = ["bdist_wheel"]

_WHEEL_TEMPLATE = """\
Wheel-Version: 1.0
Generator: wheel-shim ({version})
Root-Is-Purelib: {purelib}
Tag: {tag}
"""

#: Mirrors ``__init__.__version__``; duplicated so this module works when
#: loaded standalone from the tools tree (no package import available).
_SHIM_VERSION = "0.0.1+excovery.shim"

#: egg-info files that have no dist-info counterpart.
_DROP_FILES = {
    "SOURCES.txt",
    "requires.txt",
    "not-zip-safe",
    "zip-safe",
    "dependency_links.txt",
}


def _requires_to_metadata(requires_txt: str) -> list[str]:
    """Convert an egg-info ``requires.txt`` into core-metadata lines.

    Plain requirements map to ``Requires-Dist``; ``[extra]`` sections map
    to ``Provides-Extra`` plus environment-marked requirements;
    ``[:marker]`` sections attach the marker directly.
    """
    lines: list[str] = []
    extra = None
    marker = None
    for raw in requires_txt.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1]
            if ":" in section:
                extra_part, marker = section.split(":", 1)
                extra = extra_part or None
            else:
                extra, marker = section, None
            if extra:
                lines.append(f"Provides-Extra: {extra}")
            continue
        req = line
        conditions = []
        if marker:
            conditions.append(f"({marker})")
        if extra:
            conditions.append(f'extra == "{extra}"')
        if conditions:
            req = f"{req} ; {' and '.join(conditions)}"
        lines.append(f"Requires-Dist: {req}")
    return lines


class bdist_wheel(Command):
    """Just enough ``bdist_wheel`` for editable installs of pure projects."""

    description = "minimal bdist_wheel (editable-install shim)"
    user_options = [
        ("dist-dir=", "d", "directory to put final built distributions in"),
        ("plat-name=", "p", "platform name (ignored; always pure)"),
        ("keep-temp", "k", "keep the build tree (ignored)"),
    ]
    boolean_options = ["keep-temp"]

    def initialize_options(self):
        self.dist_dir = None
        self.plat_name = None
        self.keep_temp = False

    def finalize_options(self):
        if self.dist_dir is None:
            self.dist_dir = "dist"

    # ------------------------------------------------------------------
    def get_tag(self):
        if self.distribution.has_ext_modules():
            raise RuntimeError(
                "the wheel shim only supports pure-Python projects; install "
                "the real 'wheel' package to build extension wheels"
            )
        return ("py3", "none", "any")

    def run(self):  # pragma: no cover - guarded entry
        raise RuntimeError(
            "the wheel shim cannot build full binary distributions; it only "
            "backs 'pip install -e .' — install the real 'wheel' package "
            "for 'pip wheel' / 'python -m build'"
        )

    # ------------------------------------------------------------------
    def write_wheelfile(self, wheelfile_base, generator=None):
        # The shim must stay self-contained: when installed it *is* the
        # ``wheel`` package, but it is also loaded straight from the tools
        # tree (tests, vendored checkouts) where no ``wheel`` module is
        # importable at all.
        try:
            from wheel import __version__ as version
        except ImportError:
            version = _SHIM_VERSION

        content = _WHEEL_TEMPLATE.format(
            version=version,
            purelib="true",
            tag="-".join(self.get_tag()),
        )
        path = os.path.join(wheelfile_base, "WHEEL")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)

    def egg2dist(self, egginfo_path, distinfo_path):
        """Convert an ``.egg-info`` directory into a ``.dist-info``."""
        if os.path.exists(distinfo_path):
            shutil.rmtree(distinfo_path)
        shutil.copytree(egginfo_path, distinfo_path)

        pkg_info = os.path.join(distinfo_path, "PKG-INFO")
        metadata = os.path.join(distinfo_path, "METADATA")
        requires = os.path.join(distinfo_path, "requires.txt")

        with open(pkg_info, "r", encoding="utf-8") as fh:
            meta_text = fh.read().rstrip("\n")
        extra_lines: list[str] = []
        if os.path.exists(requires):
            with open(requires, "r", encoding="utf-8") as fh:
                extra_lines = _requires_to_metadata(fh.read())
        if extra_lines:
            head, _sep, body = meta_text.partition("\n\n")
            meta_text = head + "\n" + "\n".join(extra_lines)
            if body:
                meta_text += "\n\n" + body
        with open(metadata, "w", encoding="utf-8") as fh:
            fh.write(meta_text + "\n")
        os.remove(pkg_info)

        for name in _DROP_FILES:
            path = os.path.join(distinfo_path, name)
            if os.path.exists(path):
                os.remove(path)
        self.write_wheelfile(distinfo_path)
