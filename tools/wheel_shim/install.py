#!/usr/bin/env python3
"""Install the wheel shim into the active environment's site-packages.

Only needed on offline machines that have setuptools but not ``wheel``
(symptom: ``pip install -e .`` fails with ``error: invalid command
'bdist_wheel'``).  The shim registers the ``bdist_wheel`` distutils
command via entry-point metadata, which is what setuptools' PEP 660
editable-install path looks up.

The installer is a no-op if a real ``wheel`` distribution is present.
"""

from __future__ import annotations

import importlib.metadata
import os
import shutil
import site
import sys

HERE = os.path.dirname(os.path.abspath(__file__))

DIST_INFO_NAME = "wheel-0.0.1+excovery.shim".replace("+", ".").replace(".shim", "")

METADATA = """\
Metadata-Version: 2.1
Name: wheel
Version: 0.0.1
Summary: Minimal bdist_wheel shim for offline editable installs
"""

ENTRY_POINTS = """\
[distutils.commands]
bdist_wheel = wheel.bdist_wheel:bdist_wheel
"""


def main() -> int:
    try:
        version = importlib.metadata.version("wheel")
        print(f"a 'wheel' distribution is already installed ({version}); nothing to do")
        return 0
    except importlib.metadata.PackageNotFoundError:
        pass

    target = site.getsitepackages()[0]
    pkg_src = os.path.join(HERE, "wheel")
    pkg_dst = os.path.join(target, "wheel")
    if os.path.exists(pkg_dst):
        shutil.rmtree(pkg_dst)
    shutil.copytree(pkg_src, pkg_dst)

    dist_info = os.path.join(target, "wheel-0.0.1.dist-info")
    os.makedirs(dist_info, exist_ok=True)
    with open(os.path.join(dist_info, "METADATA"), "w", encoding="utf-8") as fh:
        fh.write(METADATA)
    with open(os.path.join(dist_info, "entry_points.txt"), "w", encoding="utf-8") as fh:
        fh.write(ENTRY_POINTS)
    with open(os.path.join(dist_info, "RECORD"), "w", encoding="utf-8") as fh:
        fh.write("")  # installed by hand; pip uninstall not supported
    with open(os.path.join(dist_info, "INSTALLER"), "w", encoding="utf-8") as fh:
        fh.write("wheel-shim-installer\n")

    print(f"wheel shim installed into {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
