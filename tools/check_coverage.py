#!/usr/bin/env python
"""Gate CI on coverage: a hard floor for the fabric, a ratchet repo-wide.

Reads a ``coverage json`` report (coverage.py's machine format) and
enforces two rules:

* ``src/repro/fabric/`` line coverage must be at least ``--fabric-min``
  (default 85%) — the distributed-campaign layer is the code whose
  failure modes are hardest to see in review, so its tests carry a
  contractual floor.
* the registry discovery family (``src/repro/sd/registry.py``,
  ``broker.py``, ``gossip.py``) must be at least ``--registry-min``
  (default 85%) — same rationale: convergence and expiry bugs hide in
  the branches tests skip.
* repo-wide line coverage must not regress more than
  ``--max-regression`` points (default 2.0) below the committed
  baseline (``coverage-baseline.json``).  A ``null`` baseline total
  skips the ratchet — that's the bootstrap state before the first CI
  run records a measurement; refresh with ``--update``.

Exit 0 when both hold, 1 otherwise; always prints the measured numbers
so the CI log documents the trend.
"""

import argparse
import json
import sys
from pathlib import Path

FABRIC_PREFIX = ("src/repro/fabric/", "src\\repro\\fabric\\")
REGISTRY_PREFIX = (
    "src/repro/sd/registry.py",
    "src/repro/sd/broker.py",
    "src/repro/sd/gossip.py",
    "src\\repro\\sd\\registry.py",
    "src\\repro\\sd\\broker.py",
    "src\\repro\\sd\\gossip.py",
)


def tree_percent(report, prefixes):
    covered = statements = 0
    for path, entry in report.get("files", {}).items():
        normalized = path.replace("\\", "/")
        if not any(normalized.startswith(p.replace("\\", "/")) for p in prefixes):
            continue
        summary = entry["summary"]
        covered += summary["covered_lines"]
        statements += summary["num_statements"]
    if statements == 0:
        return None
    return 100.0 * covered / statements


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, nargs="?", default=Path("coverage.json"),
                        help="coverage.py JSON report (coverage json -o ...)")
    parser.add_argument("--baseline", type=Path, default=Path("coverage-baseline.json"))
    parser.add_argument("--fabric-min", type=float, default=85.0)
    parser.add_argument("--registry-min", type=float, default=85.0)
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument("--update", action="store_true",
                        help="write the measured totals back to the baseline file")
    args = parser.parse_args()

    report = json.loads(args.report.read_text(encoding="utf-8"))
    total = report["totals"]["percent_covered"]
    fabric = tree_percent(report, FABRIC_PREFIX)
    print(f"repo-wide line coverage:  {total:.2f}%")
    if fabric is None:
        print("src/repro/fabric/ not present in the report", file=sys.stderr)
        return 1
    print(f"src/repro/fabric/ coverage: {fabric:.2f}%")
    registry = tree_percent(report, REGISTRY_PREFIX)
    if registry is None:
        print("registry family (sd/registry|broker|gossip) not present in the report",
              file=sys.stderr)
        return 1
    print(f"sd registry-family coverage: {registry:.2f}%")

    failures = []
    if fabric < args.fabric_min:
        failures.append(
            f"fabric coverage {fabric:.2f}% is below the {args.fabric_min:.0f}% floor"
        )
    if registry < args.registry_min:
        failures.append(
            f"registry-family coverage {registry:.2f}% is below the "
            f"{args.registry_min:.0f}% floor"
        )

    baseline_total = None
    if args.baseline.exists():
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
        baseline_total = baseline.get("total_percent")
    if baseline_total is None:
        print("baseline total is null -- regression ratchet skipped (bootstrap)")
    else:
        floor = baseline_total - args.max_regression
        print(f"baseline {baseline_total:.2f}% (ratchet floor {floor:.2f}%)")
        if total < floor:
            failures.append(
                f"repo-wide coverage {total:.2f}% regressed more than "
                f"{args.max_regression:.1f} points below the {baseline_total:.2f}% baseline"
            )

    if args.update:
        args.baseline.write_text(
            json.dumps(
                {
                    "total_percent": round(total, 2),
                    "fabric_percent": round(fabric, 2),
                    "registry_percent": round(registry, 2),
                    "note": "refreshed by tools/check_coverage.py --update",
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"baseline updated: {args.baseline}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
