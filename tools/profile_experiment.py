#!/usr/bin/env python3
"""Profile a representative experiment execution.

"No optimization without measuring" — this script runs a mid-sized
two-party experiment under cProfile and prints the hot spots, so
performance work on the kernel/medium/agents starts from data rather
than guesses.

Run:  python tools/profile_experiment.py [replications]
"""

from __future__ import annotations

import cProfile
import pstats
import sys
import tempfile


def workload(replications: int) -> None:
    from repro import run_experiment, store_level3
    from repro.sd.processlib import build_two_party_description

    desc = build_two_party_description(
        name="profile", seed=1, replications=replications, env_count=4,
        traffic=True, pairs_levels=(4,), bw_levels=(100,),
        special_params={"run_spacing": 0.05},
    )
    workdir = tempfile.mkdtemp(prefix="excovery-profile-")
    result = run_experiment(desc, store_root=f"{workdir}/l2")
    store_level3(result.store, f"{workdir}/profile.db")


def main() -> int:
    replications = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    profiler = cProfile.Profile()
    profiler.enable()
    workload(replications)
    profiler.disable()

    stats = pstats.Stats(profiler)
    print(f"\n=== top 25 by cumulative time ({replications} replications) ===")
    stats.sort_stats("cumulative").print_stats(25)
    print("\n=== top 25 by internal time ===")
    stats.sort_stats("tottime").print_stats(25)
    return 0


if __name__ == "__main__":
    sys.exit(main())
