#!/usr/bin/env python3
"""Validate Prometheus text exposition (format 0.0.4) read from a file
or stdin.

Checks the subset of the format ``repro metrics --format prometheus``
emits:

* ``# HELP <name> <text>`` / ``# TYPE <name> <counter|gauge|histogram>``
  comment lines, TYPE before the first sample of its metric;
* sample lines ``name{label="value",...} number`` with valid metric and
  label identifiers and properly escaped label values;
* histogram series completeness: every ``<name>_bucket`` family carries a
  ``+Inf`` bucket, cumulative (non-decreasing) bucket counts per label
  set, and matching ``_sum`` / ``_count`` samples.

Exit status 0 when the input parses, 1 with one message per problem
otherwise.  Used by the CI observability job and the metrics unit tests;
no third-party dependencies.
"""

from __future__ import annotations

import math
import re
import sys
from typing import Dict, List, Tuple

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
# Label values: anything with ", \ and newline backslash-escaped.
_LABEL_VALUE_RE = re.compile(r'"(?:[^"\\\n]|\\["\\n])*"')
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _parse_labels(raw: str, lineno: int, errors: List[str]) -> Tuple[str, ...]:
    """Validate one ``k="v",...`` block; returns the sorted label pairs."""
    pairs: List[str] = []
    rest = raw
    while rest:
        m = _LABEL_NAME_RE.match(rest)
        if m is None or not rest[m.end():].startswith("="):
            errors.append(f"line {lineno}: malformed label name in {{{raw}}}")
            return tuple(pairs)
        name = m.group(0)
        rest = rest[m.end() + 1:]
        v = _LABEL_VALUE_RE.match(rest)
        if v is None:
            errors.append(
                f"line {lineno}: malformed value for label {name!r} "
                f"(unescaped quote/backslash?)"
            )
            return tuple(pairs)
        pairs.append(f"{name}={v.group(0)}")
        rest = rest[v.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            errors.append(f"line {lineno}: junk after label {name!r}: {rest!r}")
            return tuple(pairs)
    return tuple(sorted(pairs))


def _strip_le(pairs: Tuple[str, ...]) -> Tuple[Tuple[str, ...], str]:
    le = ""
    kept = []
    for pair in pairs:
        if pair.startswith("le="):
            le = pair[4:-1]
        else:
            kept.append(pair)
    return tuple(kept), le


def check_prometheus_text(text: str) -> List[str]:
    """Return a list of problems; empty means the exposition is valid."""
    errors: List[str] = []
    types: Dict[str, str] = {}
    seen_samples: Dict[Tuple[str, Tuple[str, ...]], int] = {}
    # histogram name -> label-set -> list of (le, value)
    buckets: Dict[str, Dict[Tuple[str, ...], List[Tuple[str, float]]]] = {}
    sums: Dict[str, Dict[Tuple[str, ...], float]] = {}
    counts: Dict[str, Dict[Tuple[str, ...], float]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # arbitrary comments are legal
            name = parts[2]
            if _NAME_RE.fullmatch(name) is None:
                errors.append(f"line {lineno}: invalid metric name {name!r}")
                continue
            if parts[1] == "TYPE":
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in _VALID_TYPES:
                    errors.append(
                        f"line {lineno}: invalid TYPE {kind!r} for {name}"
                    )
                if name in types:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                if any(key[0] == name for key in seen_samples):
                    errors.append(
                        f"line {lineno}: TYPE for {name} after its samples"
                    )
                types[name] = kind
            continue

        m = _SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        pairs = (
            _parse_labels(m.group("labels"), lineno, errors)
            if m.group("labels")
            else ()
        )
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(
                f"line {lineno}: non-numeric value {m.group('value')!r}"
            )
            continue
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
        key = (name, pairs)
        if key in seen_samples:
            errors.append(
                f"line {lineno}: duplicate sample {name}{{{','.join(pairs)}}} "
                f"(first at line {seen_samples[key]})"
            )
        seen_samples[key] = lineno
        if types.get(base) == "histogram":
            if name.endswith("_bucket"):
                others, le = _strip_le(pairs)
                buckets.setdefault(base, {}).setdefault(others, []).append(
                    (le, value)
                )
            elif name.endswith("_sum"):
                sums.setdefault(base, {})[pairs] = value
            elif name.endswith("_count"):
                counts.setdefault(base, {})[pairs] = value

    for base, by_labels in buckets.items():
        for labels, series in by_labels.items():
            les = [le for le, _ in series]
            if "+Inf" not in les:
                errors.append(f"histogram {base}{list(labels)}: no +Inf bucket")
                continue
            values = [v for _, v in series]
            if any(b > a for b, a in zip(values, values[1:])):
                errors.append(
                    f"histogram {base}{list(labels)}: bucket counts decrease"
                )
            inf_value = dict(series)["+Inf"]
            total = counts.get(base, {}).get(labels)
            if total is None:
                errors.append(f"histogram {base}{list(labels)}: missing _count")
            elif not math.isclose(total, inf_value):
                errors.append(
                    f"histogram {base}{list(labels)}: _count {total} != "
                    f"+Inf bucket {inf_value}"
                )
            if labels not in sums.get(base, {}):
                errors.append(f"histogram {base}{list(labels)}: missing _sum")

    return errors


def main(argv: List[str]) -> int:
    if len(argv) > 1:
        text = open(argv[1], "r", encoding="utf-8").read()
    else:
        text = sys.stdin.read()
    problems = check_prometheus_text(text)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        sample_count = sum(
            1
            for line in text.splitlines()
            if line.strip() and not line.startswith("#")
        )
        print(f"ok: {sample_count} samples")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
