#!/usr/bin/env python
"""Fleet chaos drill: the CI-facing version of the fabric failover test.

Orchestrates real processes over localhost — exactly what
``tests/integration/test_fleet_fabric.py`` does with in-process threads,
but with the OS in the loop:

1. run the reference campaign locally (``repro campaign --jobs 2``),
2. serve the same plan over a 3-worker fabric (``repro fabric serve`` +
   3x ``repro fabric worker``),
3. SIGKILL one worker mid-batch, then SIGKILL the coordinator itself and
   restart it with ``--resume``,
4. assert the merged fleet database's digest is byte-identical to the
   local run's, and that the journal actually recorded the failover
   (two coordinator sessions, the dead worker's lease expired).

Prints ``DIGEST-MATCH`` and ``FAILOVER-OK`` markers for the CI job to
grep; exits non-zero on any divergence.  Stdlib only.
"""

import argparse
import json
import os
import shutil
import socket
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))


def repro_env():
    env = os.environ.copy()
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


def repro(*args, **kwargs):
    kwargs.setdefault("env", repro_env())
    kwargs.setdefault("cwd", str(ROOT))
    return subprocess.run(
        [sys.executable, "-m", "repro", *map(str, args)],
        check=True,
        capture_output=True,
        text=True,
        **kwargs,
    )


def spawn(args, log_path, **kwargs):
    kwargs.setdefault("env", repro_env())
    kwargs.setdefault("cwd", str(ROOT))
    log = open(log_path, "w", encoding="utf-8")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *map(str, args)],
        stdout=log,
        stderr=subprocess.STDOUT,
        **kwargs,
    )


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def digest(db_path):
    return repro("inspect", db_path, "--digest").stdout.strip()


def fleet_status(address):
    from repro.core.errors import RpcError, RpcTimeout
    from repro.fabric import FleetChannel

    try:
        with FleetChannel(address, call_timeout=5.0, reconnect_budget=2.0) as channel:
            return json.loads(channel.call("status"))
    except (RpcError, RpcTimeout, OSError, json.JSONDecodeError):
        return None


def holds_pending_lease(ledger_path, worker_id):
    """True while *worker_id* has an active lease with unacked runs."""
    if not ledger_path.exists():
        return False
    pending, owner = {}, {}
    for line in ledger_path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        rec = json.loads(line)
        lease_id = rec["lease_id"]
        if rec["op"] == "grant":
            pending[lease_id] = set(rec["run_ids"])
            owner[lease_id] = rec["worker_id"]
        elif rec["op"] == "ack":
            pending.get(lease_id, set()).discard(rec["run_id"])
        elif rec["op"] == "close":
            pending.pop(lease_id, None)
    return any(
        owner.get(lease_id) == worker_id and runs for lease_id, runs in pending.items()
    )


def write_description(path, replications, seed):
    from repro.core.xmlio import description_to_xml
    from repro.sd.processlib import build_two_party_description

    desc = build_two_party_description(
        name="fleet-drill", seed=seed, replications=replications, env_count=1
    )
    path.write_text(description_to_xml(desc), encoding="utf-8")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--replications", type=int, default=12)
    parser.add_argument("--seed", type=int, default=31)
    parser.add_argument("--workdir", type=Path, default=Path("fleet-drill"))
    parser.add_argument("--lease-ttl", type=float, default=3.0)
    parser.add_argument("--batch-size", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=420.0,
                        help="overall drill deadline in seconds")
    args = parser.parse_args()

    work = args.workdir
    if work.exists():
        shutil.rmtree(work)
    work.mkdir(parents=True)
    xml = work / "exp.xml"
    write_description(xml, args.replications, args.seed)

    print(f"[drill] local reference campaign ({args.replications} runs)")
    repro(
        "campaign", xml, "--jobs", "2", "--pool", "thread",
        "--dir", work / "local.campaign", "--db", work / "local.db", "--quiet",
    )
    ref = digest(work / "local.db")
    print(f"[drill] local digest:  {ref}")

    port = free_port()
    address = f"127.0.0.1:{port}"
    serve_args = [
        "fabric", "serve", xml, "--bind", address,
        "--dir", work / "fleet.campaign", "--db", work / "fleet.db",
        "--batch-size", args.batch_size, "--lease-ttl", args.lease_ttl,
        "--linger", "5",
    ]
    deadline = time.monotonic() + args.timeout
    procs = []
    try:
        print(f"[drill] coordinator on {address}, 3 workers")
        coordinator = spawn(serve_args, work / "coordinator-1.log")
        procs.append(coordinator)
        workers = {}
        for i in range(3):
            workers[f"w{i}"] = spawn(
                [
                    "fabric", "worker", address, "--id", f"w{i}",
                    "--workdir", work / f"w{i}", "--poll", "0.2",
                    "--reconnect-budget", "120", "--quiet",
                ],
                work / f"worker-w{i}.log",
            )
        procs.extend(workers.values())

        # Kill w0 while the lease ledger shows it mid-batch, so its open
        # lease is left behind for TTL expiry to reclaim.
        ledger = work / "fleet.campaign" / "leases.jsonl"
        while not holds_pending_lease(ledger, "w0"):
            if time.monotonic() > deadline:
                raise RuntimeError("drill timed out waiting for w0 to hold a batch")
            time.sleep(0.02)
        print("[drill] SIGKILL worker w0 mid-batch")
        workers["w0"].kill()
        workers["w0"].wait()

        # Then kill the coordinator itself once at least one run has
        # committed (so the resume actually has prior work to honor).
        while True:
            if time.monotonic() > deadline:
                raise RuntimeError("drill timed out waiting for first completed run")
            status = fleet_status(address)
            if status and status["scheduler"]["done"] >= 1:
                if status["finished"]:
                    raise RuntimeError(
                        "campaign finished before the drill could inject faults; "
                        "raise --replications"
                    )
                break
            time.sleep(0.05)
        done = status["scheduler"]["done"]
        print(f"[drill] SIGKILL coordinator after {done} completed run(s)")
        coordinator.kill()
        coordinator.wait()

        print("[drill] restarting coordinator with --resume on the same port")
        coordinator = spawn(
            serve_args + ["--resume"], work / "coordinator-2.log"
        )
        procs.append(coordinator)
        rc = coordinator.wait(timeout=max(10.0, deadline - time.monotonic()))
        if rc != 0:
            sys.stdout.write((work / "coordinator-2.log").read_text())
            raise RuntimeError(f"resumed coordinator exited with {rc}")
        for worker_id in ("w1", "w2"):
            try:
                workers[worker_id].wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                workers[worker_id].terminate()
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()

    flt = digest(work / "fleet.db")
    print(f"[drill] fleet digest:  {flt}")

    from repro.campaign.journal import CampaignJournal

    journal = CampaignJournal(work / "fleet.campaign")
    sessions = journal.session_count()
    expiries = [e for e in journal.entries() if e["type"] == "lease_expired"]
    completed = len(journal.completed())
    print(
        f"[drill] journal: sessions={sessions} lease_expired={len(expiries)} "
        f"completed_runs={completed}"
    )
    failures = []
    if flt != ref:
        failures.append("merged fleet digest diverged from the local campaign")
    if sessions < 2:
        failures.append("coordinator restart did not journal a second session")
    if not any(e["worker_id"] == "w0" for e in expiries):
        failures.append("the killed worker's lease never expired")
    if completed != args.replications:
        failures.append(f"journal has {completed} completed runs, "
                        f"expected {args.replications}")
    if failures:
        for failure in failures:
            print(f"[drill] FAIL: {failure}")
        print("DIGEST-MISMATCH" if flt != ref else "FAILOVER-BROKEN")
        return 1
    print("FAILOVER-OK")
    print("DIGEST-MATCH")
    return 0


if __name__ == "__main__":
    sys.exit(main())
