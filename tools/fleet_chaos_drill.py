#!/usr/bin/env python
"""Fleet chaos drill: the CI-facing version of the fabric failover tests.

Orchestrates real processes over localhost — exactly what
``tests/integration/test_fleet_fabric.py`` and ``test_fleet_failover.py``
do with in-process threads, but with the OS in the loop.  Three
scenarios (``--scenario``):

``kill-worker`` (default)
    SIGKILL one worker mid-batch, then SIGKILL the coordinator itself
    and restart it with ``--resume``; assert the merged digest is
    byte-identical to the local reference and the journal recorded the
    failover (two sessions, the dead worker's lease expired).
``kill-leader-with-standby``
    SIGKILL the leader mid-batch with a hot standby watching the
    election ledger; assert the standby claims the next epoch within
    the leadership-lease TTL, workers re-resolve through their seed
    lists, and the digest matches with exactly-once commits.
``partition-heal``
    SIGSTOP the leader (a partition: the process is alive but silent)
    until a standby takes over, then SIGCONT it; assert the healed
    stale leader is fenced out (exits 3, deposed), and the digest
    matches with exactly-once commits.

Prints ``DIGEST-MATCH`` and ``FAILOVER-OK`` markers for the CI job to
grep; exits non-zero on any divergence.  Stdlib only.
"""

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

ELECTION_TTL = 3.0


def repro_env():
    env = os.environ.copy()
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return env


def repro(*args, **kwargs):
    kwargs.setdefault("env", repro_env())
    kwargs.setdefault("cwd", str(ROOT))
    return subprocess.run(
        [sys.executable, "-m", "repro", *map(str, args)],
        check=True,
        capture_output=True,
        text=True,
        **kwargs,
    )


def spawn(args, log_path, **kwargs):
    kwargs.setdefault("env", repro_env())
    kwargs.setdefault("cwd", str(ROOT))
    log = open(log_path, "w", encoding="utf-8")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *map(str, args)],
        stdout=log,
        stderr=subprocess.STDOUT,
        **kwargs,
    )


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def digest(db_path):
    return repro("inspect", db_path, "--digest").stdout.strip()


def fleet_status(address):
    from repro.core.errors import RpcError, RpcTimeout
    from repro.fabric import FleetChannel

    try:
        with FleetChannel(address, call_timeout=5.0, reconnect_budget=2.0) as channel:
            return json.loads(channel.call("status"))
    except (RpcError, RpcTimeout, OSError, json.JSONDecodeError):
        return None


def holds_pending_lease(ledger_path, worker_id):
    """True while *worker_id* has an active lease with unacked runs."""
    if not ledger_path.exists():
        return False
    pending, owner = {}, {}
    for line in ledger_path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        rec = json.loads(line)
        if rec["op"] == "epoch":
            continue
        lease_id = rec["lease_id"]
        if rec["op"] == "grant":
            pending[lease_id] = set(rec["run_ids"])
            owner[lease_id] = rec["worker_id"]
        elif rec["op"] == "ack":
            pending.get(lease_id, set()).discard(rec["run_id"])
        elif rec["op"] == "close":
            pending.pop(lease_id, None)
    return any(
        owner.get(lease_id) == worker_id and runs for lease_id, runs in pending.items()
    )


def write_description(path, replications, seed):
    from repro.core.xmlio import description_to_xml
    from repro.sd.processlib import build_two_party_description

    desc = build_two_party_description(
        name="fleet-drill", seed=seed, replications=replications, env_count=1
    )
    path.write_text(description_to_xml(desc), encoding="utf-8")


def journal_checks(work, replications, failures):
    """Shared exactly-once assertions on the fleet campaign journal."""
    from repro.campaign.journal import CampaignJournal

    journal = CampaignJournal(work / "fleet.campaign")
    completions = [e for e in journal.entries() if e["type"] == "run_complete"]
    run_ids = [e["run_id"] for e in completions]
    print(
        f"[drill] journal: sessions={journal.session_count()} "
        f"run_complete={len(completions)} finished={journal.finished()}"
    )
    if len(run_ids) != len(set(run_ids)):
        failures.append("a run has more than one run_complete entry "
                        "(double commit)")
    if len(set(run_ids)) != replications:
        failures.append(f"journal completed {len(set(run_ids))} distinct runs, "
                        f"expected {replications}")
    if not journal.finished():
        failures.append("journal never recorded campaign_complete")
    return journal, completions


def wait_first_commit(address, deadline):
    """Block until the coordinator at *address* settled ≥1 run."""
    while True:
        if time.monotonic() > deadline:
            raise RuntimeError("drill timed out waiting for first completed run")
        status = fleet_status(address)
        if status and status["scheduler"]["done"] >= 1:
            if status["finished"]:
                raise RuntimeError(
                    "campaign finished before the drill could inject faults; "
                    "raise --replications"
                )
            return status
        time.sleep(0.05)


def wait_takeover(work, killed_at, budget, failures):
    """Wait for a claim at epoch 2; enforce the lease-TTL takeover bound."""
    from repro.fabric.election import ElectionLedger

    ledger = ElectionLedger(work / "fleet.campaign", ttl=ELECTION_TTL)
    deadline = killed_at + budget
    while time.monotonic() < deadline:
        record = ledger.leader()
        if record is not None and record.epoch >= 2:
            took = time.monotonic() - killed_at
            print(f"[drill] takeover: {record.leader_id} claimed epoch "
                  f"{record.epoch} after {took:.1f}s")
            if took > ELECTION_TTL + 3.0:
                failures.append(
                    f"takeover took {took:.1f}s, beyond the {ELECTION_TTL:g}s "
                    "leadership-lease TTL (+3s promotion slack)"
                )
            return record
        time.sleep(0.05)
    failures.append("no standby claimed the lapsed leadership lease")
    return None


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def scenario_kill_worker(args, work, xml, ref, procs, deadline):
    port = free_port()
    address = f"127.0.0.1:{port}"
    serve_args = [
        "fabric", "serve", xml, "--bind", address,
        "--dir", work / "fleet.campaign", "--db", work / "fleet.db",
        "--batch-size", args.batch_size, "--lease-ttl", args.lease_ttl,
        "--linger", "5",
    ]
    print(f"[drill] coordinator on {address}, 3 workers")
    coordinator = spawn(serve_args, work / "coordinator-1.log")
    procs.append(coordinator)
    workers = {}
    for i in range(3):
        workers[f"w{i}"] = spawn(
            [
                "fabric", "worker", address, "--id", f"w{i}",
                "--workdir", work / f"w{i}", "--poll", "0.2",
                "--reconnect-budget", "120", "--quiet",
            ],
            work / f"worker-w{i}.log",
        )
    procs.extend(workers.values())

    # Kill w0 while the lease ledger shows it mid-batch, so its open
    # lease is left behind for TTL expiry to reclaim.
    ledger = work / "fleet.campaign" / "leases.jsonl"
    while not holds_pending_lease(ledger, "w0"):
        if time.monotonic() > deadline:
            raise RuntimeError("drill timed out waiting for w0 to hold a batch")
        time.sleep(0.02)
    print("[drill] SIGKILL worker w0 mid-batch")
    workers["w0"].kill()
    workers["w0"].wait()

    status = wait_first_commit(address, deadline)
    done = status["scheduler"]["done"]
    print(f"[drill] SIGKILL coordinator after {done} completed run(s)")
    coordinator.kill()
    coordinator.wait()

    print("[drill] restarting coordinator with --resume on the same port")
    coordinator = spawn(serve_args + ["--resume"], work / "coordinator-2.log")
    procs.append(coordinator)
    rc = coordinator.wait(timeout=max(10.0, deadline - time.monotonic()))
    if rc != 0:
        sys.stdout.write((work / "coordinator-2.log").read_text())
        raise RuntimeError(f"resumed coordinator exited with {rc}")
    for worker_id in ("w1", "w2"):
        try:
            workers[worker_id].wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            workers[worker_id].terminate()

    failures = []
    journal, _ = journal_checks(work, args.replications, failures)
    if journal.session_count() < 2:
        failures.append("coordinator restart did not journal a second session")
    expiries = [e for e in journal.entries() if e["type"] == "lease_expired"]
    if not any(e["worker_id"] == "w0" for e in expiries):
        failures.append("the killed worker's lease never expired")
    return failures


def _spawn_fleet_with_standby(args, work, xml, procs, deadline):
    """Leader + hot standby + 2 seed-listed workers; returns the procs."""
    leader_port, standby_port = free_port(), free_port()
    leader_addr = f"127.0.0.1:{leader_port}"
    standby_addr = f"127.0.0.1:{standby_port}"
    seeds = f"{leader_addr},{standby_addr}"
    common = [
        "--dir", work / "fleet.campaign", "--db", work / "fleet.db",
        "--batch-size", args.batch_size, "--lease-ttl", args.lease_ttl,
        "--election-ttl", ELECTION_TTL, "--linger", "5",
    ]
    print(f"[drill] leader on {leader_addr}, standby on {standby_addr}")
    leader = spawn(
        ["fabric", "serve", xml, "--bind", leader_addr,
         "--leader-id", "leader-1", *common],
        work / "leader.log",
    )
    procs.append(leader)
    # The standby spawns only once the leader serves: a standby watching
    # an unclaimed ledger would bootstrap leadership itself.
    while fleet_status(leader_addr) is None:
        if time.monotonic() > deadline:
            raise RuntimeError("drill timed out waiting for the leader to serve")
        time.sleep(0.1)
    standby = spawn(
        ["fabric", "serve", xml, "--bind", standby_addr, "--standby",
         "--leader-id", "standby-1", *common],
        work / "standby.log",
    )
    procs.append(standby)
    workers = []
    for i in range(2):
        worker = spawn(
            [
                "fabric", "worker", seeds, "--id", f"w{i}",
                "--workdir", work / f"w{i}", "--poll", "0.2",
                "--call-timeout", "5", "--reconnect-budget", "20", "--quiet",
            ],
            work / f"worker-w{i}.log",
        )
        workers.append(worker)
    procs.extend(workers)
    return leader, standby, workers, leader_addr


def _settle_standby_fleet(standby, workers, deadline):
    rc = standby.wait(timeout=max(10.0, deadline - time.monotonic()))
    if rc != 0:
        raise RuntimeError(f"promoted standby exited with {rc}")
    for worker in workers:
        try:
            worker.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            worker.terminate()


def scenario_kill_leader(args, work, xml, ref, procs, deadline):
    leader, standby, workers, leader_addr = _spawn_fleet_with_standby(
        args, work, xml, procs, deadline,
    )
    wait_first_commit(leader_addr, deadline)
    ledger = work / "fleet.campaign" / "leases.jsonl"
    while not (holds_pending_lease(ledger, "w0") or holds_pending_lease(ledger, "w1")):
        if time.monotonic() > deadline:
            raise RuntimeError("drill timed out waiting for a mid-batch lease")
        time.sleep(0.02)
    print("[drill] SIGKILL leader mid-batch (standby watching)")
    leader.kill()
    leader.wait()
    killed_at = time.monotonic()

    failures = []
    record = wait_takeover(work, killed_at, ELECTION_TTL + 10.0, failures)
    if record is not None and record.leader_id != "standby-1":
        failures.append(f"unexpected epoch-2 leader {record.leader_id!r}")
    _settle_standby_fleet(standby, workers, deadline)
    _, completions = journal_checks(work, args.replications, failures)
    if 2 not in {e.get("epoch") for e in completions}:
        failures.append("no run was committed under the successor's epoch")
    return failures


def scenario_partition_heal(args, work, xml, ref, procs, deadline):
    leader, standby, workers, leader_addr = _spawn_fleet_with_standby(
        args, work, xml, procs, deadline,
    )
    wait_first_commit(leader_addr, deadline)
    print("[drill] SIGSTOP leader (partition: alive but silent)")
    os.kill(leader.pid, signal.SIGSTOP)
    stopped_at = time.monotonic()

    failures = []
    record = wait_takeover(work, stopped_at, ELECTION_TTL + 10.0, failures)
    if record is not None and record.leader_id != "standby-1":
        failures.append(f"unexpected epoch-2 leader {record.leader_id!r}")
    print("[drill] SIGCONT leader (partition heals; stale leader wakes)")
    os.kill(leader.pid, signal.SIGCONT)
    try:
        leader_rc = leader.wait(timeout=60.0)
    except subprocess.TimeoutExpired:
        leader.terminate()
        failures.append("healed stale leader did not exit on deposition")
        leader_rc = None
    if leader_rc is not None and leader_rc != 3:
        failures.append(
            f"healed stale leader exited {leader_rc}, expected 3 (deposed)"
        )
    _settle_standby_fleet(standby, workers, deadline)
    journal_checks(work, args.replications, failures)
    leader_log = (work / "leader.log").read_text(encoding="utf-8")
    if "stopped leading" not in leader_log:
        failures.append("stale leader never reported its deposition")
    return failures


SCENARIOS = {
    "kill-worker": scenario_kill_worker,
    "kill-leader-with-standby": scenario_kill_leader,
    "partition-heal": scenario_partition_heal,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                        default="kill-worker")
    parser.add_argument("--replications", type=int, default=12)
    parser.add_argument("--seed", type=int, default=31)
    parser.add_argument("--workdir", type=Path, default=Path("fleet-drill"))
    parser.add_argument("--lease-ttl", type=float, default=3.0)
    parser.add_argument("--batch-size", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=420.0,
                        help="overall drill deadline in seconds")
    args = parser.parse_args()

    work = args.workdir
    if work.exists():
        shutil.rmtree(work)
    work.mkdir(parents=True)
    xml = work / "exp.xml"
    write_description(xml, args.replications, args.seed)

    print(f"[drill] scenario: {args.scenario}")
    print(f"[drill] local reference campaign ({args.replications} runs)")
    repro(
        "campaign", xml, "--jobs", "2", "--pool", "thread",
        "--dir", work / "local.campaign", "--db", work / "local.db", "--quiet",
    )
    ref = digest(work / "local.db")
    print(f"[drill] local digest:  {ref}")

    deadline = time.monotonic() + args.timeout
    procs = []
    try:
        failures = SCENARIOS[args.scenario](args, work, xml, ref, procs, deadline)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()

    flt = digest(work / "fleet.db")
    print(f"[drill] fleet digest:  {flt}")
    if flt != ref:
        failures.append("merged fleet digest diverged from the local campaign")

    if failures:
        for failure in failures:
            print(f"[drill] FAIL: {failure}")
        print("DIGEST-MISMATCH" if flt != ref else "FAILOVER-BROKEN")
        return 1
    print("FAILOVER-OK")
    print("DIGEST-MATCH")
    return 0


if __name__ == "__main__":
    sys.exit(main())
