#!/usr/bin/env python3
"""Crash recovery and the level-4 repository.

Demonstrates two framework features around the experiment *series*:

1. **Recovery** (Sec. VII): an execution is aborted after a few runs
   (simulating a master crash), then resumed from the journal; the run
   series completes without re-executing finished runs.
2. **Level-4 repository** (Sec. IV-F — the paper's unrealized fourth
   storage level): two experiments with different seeds are imported into
   one repository and compared.

Run:  python examples/resume_and_repository.py
"""

import tempfile
from pathlib import Path

from repro import ExperiMaster, Level2Store, store_level3
from repro.core.errors import ExecutionError
from repro.platforms.simulated import SimulatedPlatform
from repro.sd.processlib import build_two_party_description
from repro.storage.level4 import ExperimentRepository


def execute(desc, root, resume=False, abort_after=None):
    platform = SimulatedPlatform(desc)
    master = ExperiMaster(
        platform, desc, Level2Store(root),
        resume=resume, abort_after_runs=abort_after,
    )
    return master.execute()


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="excovery-resume-"))

    # ------------------------------------------------------------------
    # 1. Abort and resume.
    # ------------------------------------------------------------------
    desc = build_two_party_description(
        name="recovery-demo", seed=99, replications=5, env_count=2,
    )
    print(f"experiment: {desc.factors.total_runs()} runs planned")
    try:
        execute(desc, workdir / "series", abort_after=2)
    except ExecutionError as exc:
        print(f"crash simulated: {exc}")

    result = execute(desc, workdir / "series", resume=True)
    print(f"resumed: skipped runs {result.skipped_runs}, "
          f"executed runs {result.executed_runs}")
    assert result.skipped_runs == [0, 1]
    assert result.executed_runs == [2, 3, 4]
    db_a = store_level3(result.store, workdir / "exp-seed99.db")

    # ------------------------------------------------------------------
    # 2. A second experiment, then the level-4 repository.
    # ------------------------------------------------------------------
    desc_b = build_two_party_description(
        name="recovery-demo-seed7", seed=7, replications=5, env_count=2,
    )
    result_b = execute(desc_b, workdir / "series-b")
    db_b = store_level3(result_b.store, workdir / "exp-seed7.db")

    with ExperimentRepository(workdir / "repository.db") as repo:
        id_a = repo.import_experiment(db_a)
        id_b = repo.import_experiment(db_b)
        print(f"\nrepository: {workdir / 'repository.db'}")
        for exp in repo.experiments():
            print(f"  #{exp['ExpID']}: {exp['Name']} "
                  f"({len(repo.run_ids(exp['ExpID']))} runs)")
        counts = repo.compare_event_counts("sd_service_add")
        print(f"cross-experiment comparison, sd_service_add events: {counts}")
        # Per-experiment discovery times straight from the repository.
        for exp_id, name in ((id_a, desc.name), (id_b, desc_b.name)):
            adds = repo.events(exp_id, event_type="sd_service_add")
            searches = repo.events(exp_id, event_type="sd_start_search")
            start = {e["run_id"]: e["common_time"] for e in searches}
            t_rs = sorted(
                e["common_time"] - start[e["run_id"]]
                for e in adds if e["run_id"] in start
            )
            print(f"  {name}: median t_R = {t_rs[len(t_rs) // 2]:.3f} s "
                  f"over {len(t_rs)} discoveries")


if __name__ == "__main__":
    main()
