#!/usr/bin/env python3
"""The paper's case study: SD responsiveness under generated network load.

Reproduces the Sec. V/VI experiment with the Fig. 5 factorial design —
``fact_pairs`` traffic pairs x ``fact_bw`` kbit/s per pair — on the
emulated wireless mesh, then reports responsiveness per treatment the way
the companion studies ([25], [26]) tabulate it.

The paper runs 1000 replications per treatment on the DES testbed; this
example scales to 10 per treatment so it finishes in seconds.  Pass a
number to override:  python examples/sd_responsiveness_study.py 50
"""

import sys
import tempfile
from pathlib import Path

from repro import run_experiment, store_level3
from repro.analysis.responsiveness import responsiveness_by_treatment
from repro.platforms.simulated import PlatformConfig
from repro.sd.processlib import build_two_party_description
from repro.storage.level3 import ExperimentDatabase


def main(replications: int = 10) -> None:
    workdir = Path(tempfile.mkdtemp(prefix="excovery-responsiveness-"))

    description = build_two_party_description(
        name="responsiveness-study",
        seed=42,
        replications=replications,
        env_count=6,
        deadline=10.0,
        traffic=True,                   # the Fig. 7 environment process
        pairs_levels=(2, 6),            # scaled-down Fig. 5 levels
        bw_levels=(10, 100, 150, 200),
        # Let the generated load establish before the SU starts searching
        # (the Fig. 11 preparation-phase settle delay) — otherwise the
        # sub-100ms discovery races ahead of the first CBR packets.
        settle_after_publish=2.0,
        special_params={"run_spacing": 0.1, "max_run_duration": 30.0},
    )
    total = description.factors.total_runs()
    print(f"{total} runs ({description.factors.treatment_count()} treatments "
          f"x {replications} replications) ...")

    config = PlatformConfig(
        topology="mesh",
        mesh_radius=0.5,
        base_loss=0.05,
    )
    result = run_experiment(description, store_root=workdir / "l2", config=config)
    print(f"executed {len(result.executed_runs)} runs "
          f"({len(result.timed_out_runs)} hit the run backstop)")

    db_path = store_level3(result.store, workdir / "study.db")
    with ExperimentDatabase(db_path) as db:
        rows = responsiveness_by_treatment(db, deadlines=(0.2, 1.0, 5.0))

    header = f"{'pairs':>5} {'bw':>5} {'runs':>5} {'median t_R':>11} " \
             f"{'R(0.2s)':>8} {'R(1s)':>8} {'R(5s)':>8}"
    print()
    print(header)
    print("-" * len(header))
    for row in rows:
        t = row["treatment"]
        s = row["summary"]
        median = f"{s['t_r_median']:.3f}s" if s["t_r_median"] is not None else "-"
        print(
            f"{t.get('fact_pairs', '-'):>5} {t.get('fact_bw', '-'):>5} "
            f"{row['runs']:>5} {median:>11} "
            f"{row['R(0.2s)']['p']:>8.2f} {row['R(1s)']['p']:>8.2f} "
            f"{row['R(5s)']['p']:>8.2f}"
        )
    print()
    print("expected shape: responsiveness decreases (and median t_R grows)")
    print("as pairs x bandwidth load the shared medium.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10)
