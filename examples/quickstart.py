#!/usr/bin/env python3
"""Quickstart: describe, execute, store and analyze one SD experiment.

This walks the full ExCovery workflow of Fig. 3 in ~60 lines of user code:

1. build the abstract experiment description (the Figs. 9/10 two-party
   service discovery scenario, 3 replications),
2. execute it on the emulated wireless-mesh testbed,
3. condition the measurements and store the level-3 SQLite package
   (Table I schema),
4. query the database: discovery times, responsiveness, and the Fig. 11
   timeline of the first run.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import run_experiment, store_level3
from repro.analysis.responsiveness import run_outcomes
from repro.analysis.timeline import build_run_timeline
from repro.sd.metrics import responsiveness, summarize_runs
from repro.sd.processlib import build_two_party_description
from repro.storage.level3 import ExperimentDatabase
from repro.viz.describe import describe_description, describe_result
from repro.viz.timeline_art import render_timeline


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="excovery-quickstart-"))

    # 1. The abstract experiment description (storage level 1).
    description = build_two_party_description(
        name="quickstart",
        seed=2014,
        replications=3,
        env_count=3,
        deadline=30.0,
    )
    print(describe_description(description))
    print()

    # 2. Execute on the emulated testbed (platform + master in one call).
    result = run_experiment(description, store_root=workdir / "level2")
    print(describe_result(result.summary()))
    print(f"level-2 store: {result.store.root}")
    print()

    # 3. Condition + store level 3 (the Table I database).
    db_path = store_level3(result.store, workdir / "quickstart.db")
    print(f"level-3 database: {db_path}")
    print()

    # 4. Analyze.
    with ExperimentDatabase(db_path) as db:
        outcomes = run_outcomes(db)
        print("discovery outcomes per run:")
        for o in outcomes:
            status = f"t_R = {o.t_r:.3f} s" if o.t_r is not None else "MISSED"
            print(f"  run {o.run_id}: {o.su_node} -> {sorted(o.required)}: {status}")
        print()
        print("summary:", summarize_runs(outcomes))
        for deadline in (0.1, 0.5, 2.0):
            print(f"responsiveness R({deadline}s) = "
                  f"{responsiveness(outcomes, deadline):.2f}")
        print()
        print(render_timeline(build_run_timeline(db.events(run_id=0), 0)))


if __name__ == "__main__":
    main()
