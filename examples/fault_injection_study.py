#!/usr/bin/env python3
"""Fault injection study: message loss vs discovery time, and a
two-party vs three-party architecture comparison under faults.

Demonstrates the Sec. IV-D manipulation machinery:

* a node manipulation process injecting ``msg_loss`` on the SU with the
  common temporal parameters (duration / rate / randomseed),
* a sweep over loss probabilities showing the mDNS retry schedule
  stepping the median discovery time up,
* the same sweep against the SLP directory architecture, whose
  acknowledged unicast transactions degrade more gracefully.

Run:  python examples/fault_injection_study.py
"""

import tempfile
from pathlib import Path

from repro import run_experiment, store_level3
from repro.analysis.responsiveness import run_outcomes
from repro.core.description import ManipulationProcess
from repro.core.processes import DomainAction
from repro.platforms.simulated import PlatformConfig
from repro.sd.processlib import (
    build_three_party_description,
    build_two_party_description,
)
from repro.storage.level3 import ExperimentDatabase

LOSS_LEVELS = (0.0, 0.2, 0.4, 0.6)
REPLICATIONS = 8


def run_sweep(architecture: str, workdir: Path):
    """Run the loss sweep for one architecture; returns result rows."""
    rows = []
    for loss in LOSS_LEVELS:
        if architecture == "two-party":
            desc = build_two_party_description(
                name=f"loss-{architecture}-{loss}",
                seed=7,
                replications=REPLICATIONS,
                env_count=0,        # point-to-point: loss is not masked
                deadline=20.0,      # by flooded duplicate copies
            )
            config = PlatformConfig(sd_config={"announce_count": 0})
        else:
            desc = build_three_party_description(
                name=f"loss-{architecture}-{loss}",
                seed=7,
                replications=REPLICATIONS,
                env_count=0,
                deadline=20.0,
            )
            config = PlatformConfig(protocol="slp")
        if loss > 0:
            desc.manipulations.append(
                ManipulationProcess(
                    actor_id="actor1",  # the SU's interface suffers
                    actions=[
                        DomainAction(
                            name="msg_loss_start",
                            params={"probability": loss, "direction": "both"},
                        )
                    ],
                )
            )
        tag = f"{architecture}-{loss}"
        result = run_experiment(desc, store_root=workdir / tag, config=config)
        db_path = store_level3(result.store, workdir / f"{tag}.db")
        with ExperimentDatabase(db_path) as db:
            outcomes = run_outcomes(db)
        times = sorted(o.t_r for o in outcomes if o.t_r is not None)
        rows.append({
            "loss": loss,
            "complete": len(times),
            "runs": len(outcomes),
            "median": times[len(times) // 2] if times else None,
            "worst": times[-1] if times else None,
        })
    return rows


def print_table(architecture: str, rows) -> None:
    print(f"\n{architecture} (SU-side message loss, both directions)")
    header = f"{'loss':>5} {'found':>9} {'median t_R':>11} {'worst t_R':>10}"
    print(header)
    print("-" * len(header))
    for row in rows:
        median = f"{row['median']:.3f}s" if row["median"] is not None else "-"
        worst = f"{row['worst']:.3f}s" if row["worst"] is not None else "-"
        print(f"{row['loss']:>5.1f} {row['complete']:>4}/{row['runs']:<4} "
              f"{median:>11} {worst:>10}")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="excovery-faults-"))
    for architecture in ("two-party", "three-party"):
        rows = run_sweep(architecture, workdir)
        print_table(architecture, rows)
    print("\nexpected shape: two-party medians climb the 1s/2s/4s query")
    print("retry ladder as loss grows; the directory architecture's")
    print("0.5s-timeout acknowledged unicast degrades in smaller steps.")


if __name__ == "__main__":
    main()
