#!/usr/bin/env python3
"""Parallel campaign: execute one experiment's runs across a worker pool.

The serial workflow (see ``quickstart.py``) executes a treatment plan run
by run inside one simulation kernel; campaign execution instead hands
every run of the plan to a worker pool, each run inside its own isolated
platform.  Because per-run seeds are fixed at plan-generation time and
results are merged by run id, the merged level-3 database is
*byte-identical* no matter how many workers execute it — this script
proves that by running the same plan with 1 and with 4 workers and
comparing content digests.

It also demonstrates crash recovery: a third campaign is aborted midway
(simulated crash), then resumed from its write-ahead journal; only the
unfinished runs re-execute and the database still comes out identical.

Run:  python examples/campaign_parallel.py

The same workflow from the command line:

    repro campaign experiment.xml --jobs 4 --dir my.campaign --db my.db
    repro campaign experiment.xml --jobs 4 --dir my.campaign --resume
"""

import tempfile
from pathlib import Path

from repro.campaign import CampaignEngine, database_digest, run_campaign
from repro.core.errors import CampaignError
from repro.sd.processlib import build_two_party_description


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="excovery-campaign-"))

    # A 3-factor plan with 12 runs — enough to keep 4 workers busy.
    description = build_two_party_description(
        name="campaign-demo",
        seed=2014,
        replications=3,
        env_count=2,
        traffic=True,
        pairs_levels=[1, 2],
        bw_levels=[10, 25],
    )

    # 1. Serial baseline: one worker.
    serial = run_campaign(
        description,
        workdir / "serial",
        db_path=workdir / "serial.db",
        jobs=1,
        progress=print,
    )
    print(f"serial: {serial.summary()}\n")

    # 2. The same plan on 4 workers.
    parallel = run_campaign(
        description,
        workdir / "parallel",
        db_path=workdir / "parallel.db",
        jobs=4,
        progress=print,
    )
    print(f"parallel: {parallel.summary()}\n")

    d1 = database_digest(workdir / "serial.db")
    d4 = database_digest(workdir / "parallel.db")
    print(f"1-worker digest: {d1[:16]}…")
    print(f"4-worker digest: {d4[:16]}…")
    print(f"identical: {d1 == d4}\n")

    # 3. Crash midway, then resume from the journal.
    try:
        run_campaign(
            description, workdir / "crashed", jobs=4, abort_after_runs=5
        )
    except CampaignError as exc:
        print(f"simulated crash: {exc}")
    resumed = CampaignEngine(
        description, workdir / "crashed", jobs=4, resume=True
    ).execute(db_path=workdir / "resumed.db")
    print(
        f"resumed: {len(resumed.skipped_runs)} runs recovered from the "
        f"journal, {len(resumed.executed_runs)} re-executed"
    )
    print(f"resumed digest identical: "
          f"{database_digest(workdir / 'resumed.db') == d1}")


if __name__ == "__main__":
    main()
