#!/usr/bin/env python3
"""Experiment design study: custom treatment plans and convergence.

Sec. II grounds ExCovery in design-of-experiments methodology; Sec. IV-C1
lets a description override the default OFAT expansion with a *custom
factor level variation plan*.  This example:

1. builds the same discovery-under-load factor structure three ways —
   default OFAT, completely randomized, and blocked by bandwidth — and
   prints the resulting run sequences side by side,
2. executes the completely randomized design,
3. applies the replication-convergence analysis (Sec. II-A3): how many
   replications the responsiveness estimate actually needed.

Run:  python examples/experiment_design_study.py
"""

import tempfile
from pathlib import Path

from repro import ExperiMaster, Level2Store, store_level3
from repro.analysis.convergence import (
    replications_to_converge,
    running_responsiveness,
)
from repro.analysis.responsiveness import run_outcomes
from repro.core.designs import (
    completely_randomized_design,
    randomized_complete_block_design,
)
from repro.core.plan import generate_plan
from repro.platforms.simulated import SimulatedPlatform
from repro.sd.processlib import build_two_party_description
from repro.storage.level3 import ExperimentDatabase

REPLICATIONS = 4


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="excovery-design-"))
    desc = build_two_party_description(
        name="design-study", seed=33, replications=1, env_count=4,
        traffic=True, pairs_levels=(2, 4), bw_levels=(10, 100),
    )
    fl = desc.factors

    # ------------------------------------------------------------------
    # 1. Three treatment plans over the same factors.
    # ------------------------------------------------------------------
    def sequence(plan):
        return [
            f"({r.treatment['fact_pairs']},{r.treatment['fact_bw']})"
            for r in plan
        ]

    ofat = generate_plan(fl, desc.seed)
    crd = generate_plan(
        fl, desc.seed,
        custom_treatments=completely_randomized_design(
            fl, seed=desc.seed, replications=REPLICATIONS
        ),
    )
    rcbd = generate_plan(
        fl, desc.seed,
        custom_treatments=randomized_complete_block_design(
            fl, "fact_bw", seed=desc.seed
        ),
    )
    print("treatment sequences (pairs, bw):")
    print(f"  OFAT (default):        {' '.join(sequence(ofat))}")
    print(f"  completely randomized: {' '.join(sequence(crd)[:12])} ...")
    print(f"  blocked by fact_bw:    {' '.join(sequence(rcbd))}")
    print()

    # ------------------------------------------------------------------
    # 2. Execute the randomized design.
    # ------------------------------------------------------------------
    # Two nodes, announcements off, 50% loss on the SU: discovery hinges
    # on lossy query/response exchanges against a 3 s deadline, so the
    # responsiveness estimate has real variance to converge over.
    desc_crd = build_two_party_description(
        name="design-study-crd", seed=33, replications=1, env_count=0,
        pairs_levels=(2, 4), bw_levels=(10, 100), traffic=False,
        deadline=3.0,
        special_params={"run_spacing": 0.1},
    )
    # Re-attach the swept factors (traffic=False drops them) so the
    # custom design has something to vary; they are inert without the
    # traffic process but keep the plan structure of part 1.
    from repro.core.description import ManipulationProcess
    from repro.core.factors import Factor, Level, Usage
    from repro.core.processes import DomainAction

    for fid, levels in (("fact_pairs", (2, 4)), ("fact_bw", (10, 100))):
        if fid not in desc_crd.factors:
            desc_crd.factors.add(
                Factor(id=fid, type="int", usage=Usage.CONSTANT,
                       levels=[Level(v) for v in levels])
            )
    desc_crd.manipulations.append(
        ManipulationProcess(
            actor_id="actor1",
            actions=[DomainAction(
                name="msg_loss_start",
                params={"probability": 0.5, "direction": "both"},
            )],
        )
    )
    custom = completely_randomized_design(
        desc_crd.factors, seed=33, replications=REPLICATIONS
    )
    from repro.platforms.simulated import PlatformConfig

    platform = SimulatedPlatform(
        desc_crd, PlatformConfig(sd_config={"announce_count": 0})
    )
    master = ExperiMaster(
        platform, desc_crd, Level2Store(workdir / "l2"),
        custom_treatments=custom,
    )
    result = master.execute()
    print(f"executed {len(result.executed_runs)} runs in completely "
          f"randomized order")

    db_path = store_level3(result.store, workdir / "design.db")
    with ExperimentDatabase(db_path) as db:
        outcomes = run_outcomes(db)

    # ------------------------------------------------------------------
    # 3. Convergence of the responsiveness estimate.
    # ------------------------------------------------------------------
    deadline = 3.0  # the SU's own search deadline
    series = running_responsiveness(outcomes, deadline)
    settle = replications_to_converge(outcomes, deadline, tolerance=0.1)
    print()
    print(f"running responsiveness estimate, R({deadline:g}s):")
    for point in series:
        bar = "#" * int(point["p"] * 30)
        print(f"  n={point['n']:>2}  p={point['p']:.2f} "
              f"[{point['ci_low']:.2f}, {point['ci_high']:.2f}] {bar}")
    print(f"\nestimate stays within ±0.1 of its final value from n={settle}")


if __name__ == "__main__":
    main()
