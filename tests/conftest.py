"""Shared fixtures for the ExCovery reproduction test suite."""

from __future__ import annotations

import pytest

from repro.net.medium import WirelessMedium
from repro.net.node import NetNode
from repro.net.topology import grid_topology, line_topology
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rngs():
    return RngRegistry(1234)


@pytest.fixture
def grid_net(sim, rngs):
    """A 3x3 lossless grid with nine attached nodes, keyed n0..n8."""
    topo = grid_topology(3, 3, base_loss=0.0)
    medium = WirelessMedium(sim, topo, rngs.stream("medium"))
    nodes = {}
    for i, name in enumerate(topo.node_names):
        node = NetNode(sim, name, f"10.0.0.{i + 1}")
        medium.attach(node)
        nodes[name] = node
    return sim, topo, medium, nodes


@pytest.fixture
def pair_net(sim, rngs):
    """Two directly connected lossless nodes a, b."""
    topo = line_topology(2, base_loss=0.0, prefix="h")
    medium = WirelessMedium(sim, topo, rngs.stream("medium"))
    a = NetNode(sim, "h0", "10.1.0.1")
    b = NetNode(sim, "h1", "10.1.0.2")
    medium.attach(a)
    medium.attach(b)
    return sim, medium, a, b


def drive(sim, until=10.0):
    """Run a simulation for the given horizon (helper, not fixture)."""
    sim.run(until=until)
    return sim.now
