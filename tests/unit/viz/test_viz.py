"""Unit tests for the ASCII timeline renderer and describers."""

from repro.analysis.timeline import build_run_timeline
from repro.core.plan import generate_plan
from repro.core.xmlio import description_from_xml
from repro.paper import full_paper_experiment_xml
from repro.viz.describe import describe_action, describe_description, describe_plan, describe_result
from repro.viz.timeline_art import MARKS, render_timeline


def _events():
    mk = lambda name, t, node="su": {  # noqa: E731
        "name": name, "node": node, "common_time": t, "params": [], "run_id": 0,
    }
    return [
        mk("run_init", 0.0, "master"),
        mk("sd_start_search", 1.0),
        mk("sd_service_add", 1.5),
        mk("done", 1.6),
        mk("run_exit", 2.0, "master"),
    ]


def test_render_contains_lanes_and_t_r():
    art = render_timeline(build_run_timeline(_events(), 0))
    assert "run 0" in art
    assert "t_R = 0.500 s" in art
    assert "master" in art and "su" in art
    assert "legend:" in art
    assert "durations:" in art


def test_render_marks_present():
    art = render_timeline(build_run_timeline(_events(), 0), legend=False)
    lane_su = next(line for line in art.splitlines() if line.startswith("su"))
    assert MARKS["sd_start_search"] in lane_su
    assert MARKS["sd_service_add"] in lane_su
    assert "legend" not in art


def test_render_unknown_event_uses_default_mark():
    events = _events() + [{
        "name": "weird_event", "node": "su", "common_time": 1.7,
        "params": [], "run_id": 0,
    }]
    art = render_timeline(build_run_timeline(events, 0))
    assert "*" in art


def test_render_empty_run():
    art = render_timeline(build_run_timeline([], 3))
    assert "no events" in art


def test_render_node_filter():
    art = render_timeline(
        build_run_timeline(_events(), 0), include_nodes=["su"]
    )
    assert "master |" not in art.replace("master  |", "master |")


def test_colliding_marks_slide_right():
    events = [
        {"name": "a1", "node": "n", "common_time": 1.0, "params": [], "run_id": 0},
        {"name": "a2", "node": "n", "common_time": 1.0, "params": [], "run_id": 0},
        {"name": "a3", "node": "n", "common_time": 5.0, "params": [], "run_id": 0},
    ]
    art = render_timeline(build_run_timeline(events, 0), width=40)
    lane = next(line for line in art.splitlines() if line.startswith("n "))
    assert lane.count("*") == 3  # none silently dropped


def test_describe_description_mentions_everything():
    desc = description_from_xml(full_paper_experiment_xml(replications=2))
    text = describe_description(desc)
    assert "fact_bw" in text
    assert "actor0" in text and "actor1" in text
    assert "t9-105" in text
    assert "6 treatments x 2 replications" in text
    assert "env_traffic_start" in text


def test_describe_plan_table():
    desc = description_from_xml(full_paper_experiment_xml(replications=2))
    plan = generate_plan(desc.factors, desc.seed)
    text = describe_plan(plan, max_rows=3)
    assert "12 runs" in text
    assert "more runs" in text
    assert "<map>" in text  # actor map rendered compactly


def test_describe_action_forms():
    from repro.core.processes import (
        DomainAction, EventFlag, FactorRef, NodeSelector, WaitForEvent,
        WaitForTime, WaitMarker,
    )

    assert describe_action(WaitForTime(seconds=2)) == "wait_for_time(2)"
    assert describe_action(WaitMarker()) == "wait_marker()"
    assert "event_flag('x')" == describe_action(EventFlag(value="x"))
    text = describe_action(WaitForEvent(
        event="e", from_nodes=NodeSelector(actor="a0"), timeout=3,
        param_values=("v",),
    ))
    assert "'e'" in text and "from=a0[all]" in text and "timeout=3" in text
    assert describe_action(DomainAction(name="f", params={"k": FactorRef("g")}))


def test_describe_result():
    text = describe_result({
        "experiment": "x", "total_runs": 10, "executed": 8, "skipped": 2,
        "timed_out": 1, "duration": 12.5,
    })
    assert "8/10" in text and "2 resumed-skipped" in text
