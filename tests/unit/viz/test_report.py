"""Unit tests for the markdown experiment report."""

import pytest

from repro import run_experiment, store_level3
from repro.cli import main
from repro.sd.processlib import build_two_party_description
from repro.storage.level3 import ExperimentDatabase
from repro.viz.report import experiment_report


@pytest.fixture(scope="module")
def db_path(tmp_path_factory):
    root = tmp_path_factory.mktemp("report")
    desc = build_two_party_description(
        name="report-test", seed=77, replications=2, env_count=2,
    )
    result = run_experiment(desc, store_root=root / "l2")
    return store_level3(result.store, root / "report.db")


def test_report_sections_present(db_path):
    with ExperimentDatabase(db_path) as db:
        text = experiment_report(db)
    assert "# Experiment report: report-test" in text
    assert "## Informative parameters" in text
    assert "`sd_architecture` = two-party" in text
    assert "## Discovery results" in text
    assert "complete: 2/2" in text
    assert "## Clock synchronization quality" in text
    assert "measured node offsets" in text
    assert "## Packet-level statistics" in text
    assert "## Timeline of run 0" in text
    assert "t_R" in text


def test_report_responsiveness_table(db_path):
    with ExperimentDatabase(db_path) as db:
        text = experiment_report(db, deadlines=(1.0,))
    assert "R(1s)" in text
    assert "| 1.00 |" in text  # everything discovered within a second


def test_report_without_timeline(db_path):
    with ExperimentDatabase(db_path) as db:
        text = experiment_report(db, timeline_run=None)
    assert "## Timeline" not in text


def test_report_cli_stdout(db_path, capsys):
    assert main(["report", str(db_path)]) == 0
    out = capsys.readouterr().out
    assert "# Experiment report: report-test" in out


def test_report_cli_to_file(db_path, tmp_path, capsys):
    out_file = tmp_path / "report.md"
    assert main(["report", str(db_path), "--out", str(out_file)]) == 0
    assert "report written" in capsys.readouterr().out
    assert "## Discovery results" in out_file.read_text()
