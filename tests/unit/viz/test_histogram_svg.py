"""Unit tests for histograms and the SVG timeline renderer."""

import xml.etree.ElementTree as ET


from repro.analysis.timeline import build_run_timeline
from repro.sd.metrics import RunDiscovery
from repro.viz.histogram import histogram, t_r_histogram
from repro.viz.timeline_svg import FILLED_EVENTS, render_timeline_svg


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_histogram_bins_and_counts():
    values = [0.1] * 5 + [0.9] * 3
    art = histogram(values, bins=4, width=20)
    lines = art.splitlines()
    assert len(lines) == 4
    assert lines[0].endswith(" 5")
    assert lines[-1].endswith(" 3")
    assert "####################" in lines[0]  # peak bar at full width


def test_histogram_empty_and_degenerate():
    assert histogram([]) == "(no samples)"
    art = histogram([2.0, 2.0, 2.0], width=10)
    assert "##########" in art and art.endswith("3")


def test_histogram_clipping():
    art = histogram([0.5, 0.6, 99.0], bins=2, lo=0.0, hi=1.0)
    assert "outside" in art


def test_t_r_histogram_includes_misses():
    def outcome(t_r):
        return RunDiscovery(
            run_id=0, su_node="su", search_started=0.0,
            found_at={"sm": t_r} if t_r is not None else {}, required={"sm"},
        )

    art = t_r_histogram([outcome(0.1), outcome(0.2), outcome(None)])
    assert "missed" in art and art.rstrip().endswith("1")


# ----------------------------------------------------------------------
# SVG timeline
# ----------------------------------------------------------------------
def _events():
    mk = lambda name, t, node="su", params=(): {  # noqa: E731
        "name": name, "node": node, "common_time": t,
        "params": list(params), "run_id": 0,
    }
    return [
        mk("run_init", 0.0, "master"),
        mk("sd_start_search", 1.0),
        mk("sd_service_add", 1.5, params=("svc", "sm")),
        mk("done", 1.6),
        mk("run_exit", 2.0, "master"),
    ]


def test_svg_is_wellformed_xml():
    svg = render_timeline_svg(build_run_timeline(_events(), 0))
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")


def test_svg_contains_lanes_events_and_phases():
    svg = render_timeline_svg(build_run_timeline(_events(), 0))
    assert ">master<" in svg and ">su<" in svg
    assert svg.count("<circle") == len(_events())
    for phase in ("preparation", "execution", "cleanup"):
        assert phase in svg
    assert "t_R = 0.500 s" in svg


def test_svg_fill_distinguishes_event_kinds():
    svg = render_timeline_svg(build_run_timeline(_events(), 0))
    assert "sd_service_add" in FILLED_EVENTS
    # At least one filled and one hollow circle.
    assert 'fill="#1f2937"' in svg
    assert 'fill="white" stroke="#1f2937"' in svg


def test_svg_node_filter_and_title():
    svg = render_timeline_svg(
        build_run_timeline(_events(), 0),
        include_nodes=["su"], title="custom title",
    )
    assert "custom title" in svg
    assert ">master<" not in svg


def test_svg_tooltips_carry_relative_times():
    svg = render_timeline_svg(build_run_timeline(_events(), 0))
    assert "sd_service_add @ 1.500s" in svg


def test_svg_cli_roundtrip(tmp_path):
    from repro import run_experiment, store_level3
    from repro.cli import main
    from repro.sd.processlib import build_two_party_description

    desc = build_two_party_description(replications=1, seed=91, env_count=0)
    result = run_experiment(desc, store_root=tmp_path / "l2")
    db = store_level3(result.store, tmp_path / "x.db")
    out = tmp_path / "run0.svg"
    assert main(["timeline", str(db), "--run", "0", "--svg", str(out)]) == 0
    root = ET.fromstring(out.read_text())
    assert root.tag.endswith("svg")
