"""Unit tests for the node-side fault controller."""

import pytest

from repro.faults.controller import FaultController


@pytest.fixture
def controlled(pair_net, rngs):
    sim, medium, a, b = pair_net
    events = []

    def emit(name, params=()):
        events.append((name, tuple(params)))

    ctrl = FaultController(
        sim, a, rngs, emit, resolve_addr=lambda nid: {"peerB": b.address}.get(nid, nid)
    )
    ctrl.set_run(0)
    return sim, ctrl, a, b, events


def test_start_installs_filter_and_emits(controlled):
    sim, ctrl, a, _b, events = controlled
    fid = ctrl.start("msg_loss", {"probability": 0.5})
    assert fid == 1
    assert len(a.interface.filters) == 1
    assert events[0][0] == "fault_msg_loss_started"


def test_stop_by_kind_and_by_id(controlled):
    sim, ctrl, a, _b, events = controlled
    fid = ctrl.start("msg_delay", {"delay": 0.1})
    assert ctrl.stop("msg_delay")
    assert a.interface.filters == []
    assert events[-1][0] == "fault_msg_delay_stopped"

    fid = ctrl.start("msg_delay", {"delay": 0.1})
    assert ctrl.stop(fid)
    assert a.interface.filters == []


def test_stop_unknown_returns_false(controlled):
    _sim, ctrl, _a, _b, _events = controlled
    assert not ctrl.stop("msg_loss")
    assert not ctrl.stop(99)


def test_bounded_fault_auto_stops(controlled):
    sim, ctrl, a, _b, events = controlled
    ctrl.start("iface_fault", {"direction": "both", "duration": 2.0})
    assert len(a.interface.filters) == 1
    sim.run(until=3.0)
    assert a.interface.filters == []
    assert events[-1][0] == "fault_iface_fault_stopped"


def test_rate_window_encoded_in_start_event(controlled):
    sim, ctrl, _a, _b, events = controlled
    ctrl.start("msg_loss", {"probability": 1.0, "duration": 10.0, "rate": 0.4,
                            "randomseed": 3})
    name, params = events[0]
    _kind, active_from, active_until = params
    assert active_until - active_from == pytest.approx(4.0)
    assert 0.0 <= active_from and active_until <= 10.0 + 1e-9


def test_path_fault_resolves_peer_node_id(controlled):
    sim, ctrl, a, b, _events = controlled
    ctrl.start("path_loss", {"peer": "peerB", "probability": 1.0})
    flt = a.interface.filters[0]
    assert flt.peer_addr == b.address


def test_path_fault_requires_peer(controlled):
    _sim, ctrl, _a, _b, _events = controlled
    with pytest.raises(ValueError):
        ctrl.start("path_loss", {"probability": 1.0})


def test_unknown_kind_rejected(controlled):
    _sim, ctrl, _a, _b, _events = controlled
    with pytest.raises(ValueError):
        ctrl.start("gravity_failure", {})


def test_stop_all_silent(controlled):
    _sim, ctrl, a, _b, events = controlled
    ctrl.start("msg_loss", {"probability": 0.1})
    ctrl.start("msg_delay", {"delay": 0.1})
    n_events = len(events)
    assert ctrl.stop_all() == []  # every revert succeeded
    assert a.interface.filters == []
    assert len(events) == n_events  # no stop events during cleanup
    assert ctrl.active_faults() == []


def test_stop_all_reverts_in_reverse_start_order(controlled):
    _sim, ctrl, a, _b, _events = controlled
    ctrl.start("msg_loss", {"probability": 0.1})
    ctrl.start("msg_delay", {"delay": 0.1})
    removed = []
    original = a.interface.remove_filter

    def tracking_remove(rule_id):
        removed.append(rule_id)
        return original(rule_id)

    a.interface.remove_filter = tracking_remove
    assert ctrl.stop_all() == []
    # Filters came off newest-first (nesting discipline of stacked faults).
    assert removed == sorted(removed, reverse=True)


def test_stop_all_collects_errors_and_keeps_sweeping(controlled):
    _sim, ctrl, a, _b, _events = controlled
    ctrl.start("msg_loss", {"probability": 0.1})
    ctrl.start("msg_delay", {"delay": 0.1})
    original = a.interface.remove_filter
    calls = []

    def failing_remove(rule_id):
        calls.append(rule_id)
        if len(calls) == 1:
            raise RuntimeError("interface wedged")
        return original(rule_id)

    a.interface.remove_filter = failing_remove
    errors = ctrl.stop_all()
    assert len(errors) == 1 and "interface wedged" in errors[0]
    assert len(calls) == 2  # the failure did not abort the sweep
    assert ctrl.active_faults() == []  # bookkeeping cleared either way


def test_fault_rng_deterministic_per_run(pair_net, rngs):
    sim, medium, a, b = pair_net
    ctrl = FaultController(sim, a, rngs, lambda *a, **k: None)

    def draw_sequence(run_id):
        ctrl.set_run(run_id)
        rng = ctrl._fault_rng("msg_loss")
        return [rng.random() for _ in range(5)]

    assert draw_sequence(1) == draw_sequence(1)
    assert draw_sequence(1) != draw_sequence(2)


def test_active_faults_listing(controlled):
    _sim, ctrl, _a, _b, _events = controlled
    ctrl.start("msg_loss", {"probability": 0.5})
    active = ctrl.active_faults()
    assert len(active) == 1 and active[0].kind == "msg_loss"
