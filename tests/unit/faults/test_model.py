"""Unit tests for fault timing (duration / rate / randomseed windows)."""

import pytest

from repro.faults.model import FaultTiming, FaultWindow


def test_unbounded_default():
    t = FaultTiming()
    assert t.unbounded
    w = t.window(5.0)
    assert w.active_from == 5.0 and w.active_until is None
    assert w.is_active(5.0) and w.is_active(1e9)
    assert not w.is_active(4.9)


def test_full_rate_window_spans_duration():
    w = FaultTiming(duration=10.0, rate=1.0).window(100.0)
    assert w.active_from == 100.0
    assert w.active_until == 110.0
    assert w.length == 10.0


def test_partial_rate_window_inside_duration():
    t = FaultTiming(duration=10.0, rate=0.3, randomseed=5)
    w = t.window(50.0)
    assert w.length == pytest.approx(3.0)
    assert 50.0 <= w.active_from
    assert w.active_until <= 60.0 + 1e-9


def test_window_deterministic_in_seed():
    t = FaultTiming(duration=10.0, rate=0.5, randomseed=7)
    assert t.window(0.0) == t.window(0.0)
    other = FaultTiming(duration=10.0, rate=0.5, randomseed=8)
    assert t.window(0.0) != other.window(0.0)


def test_window_placement_varies_with_seed():
    placements = {
        FaultTiming(duration=100.0, rate=0.1, randomseed=s).window(0.0).active_from
        for s in range(20)
    }
    assert len(placements) > 10  # actually uniform-ish, not constant


def test_invalid_parameters():
    with pytest.raises(ValueError):
        FaultTiming(duration=-1.0)
    with pytest.raises(ValueError):
        FaultTiming(rate=0.0)
    with pytest.raises(ValueError):
        FaultTiming(rate=1.5)


def test_from_params_consumes_common_keys():
    params = {"duration": "10", "rate": "0.5", "randomseed": "3", "probability": 0.2}
    t = FaultTiming.from_params(params)
    assert t.duration == 10.0 and t.rate == 0.5 and t.randomseed == 3
    assert params == {"probability": 0.2}  # specific params remain


def test_from_params_defaults():
    t = FaultTiming.from_params({})
    assert t.unbounded and t.rate == 1.0 and t.randomseed is None


def test_window_is_active_boundaries():
    w = FaultWindow(active_from=1.0, active_until=2.0)
    assert not w.is_active(0.999)
    assert w.is_active(1.0)
    assert w.is_active(1.999)
    assert not w.is_active(2.0)  # half-open interval


def test_window_record():
    w = FaultWindow(active_from=1.0, active_until=None)
    assert w.as_record() == {"active_from": 1.0, "active_until": None}
    assert w.length is None
