"""Unit tests for the message-reordering fault."""

import random

import pytest

from repro.faults.injectors import MessageReorderFilter
from repro.net.interface import Direction
from repro.net.packet import Packet


def _pkt(flow="experiment"):
    return Packet(src_addr="a", dst_addr="b", src_port=1, dst_port=2,
                  payload=None, flow=flow)


def test_reorder_delays_fraction():
    flt = MessageReorderFilter(0.5, 0.1, random.Random(3))
    delays = [flt.decide(_pkt(), Direction.RX, 0.0).extra_delay for _ in range(400)]
    held = sum(1 for d in delays if d == 0.1)
    passed = sum(1 for d in delays if d == 0.0)
    assert held + passed == 400
    assert 140 <= held <= 260  # ~50%


def test_reorder_validation():
    with pytest.raises(ValueError):
        MessageReorderFilter(1.5, 0.1, random.Random(1))
    with pytest.raises(ValueError):
        MessageReorderFilter(0.5, 0.0, random.Random(1))


def test_reorder_respects_flow():
    flt = MessageReorderFilter(1.0, 0.1, random.Random(1))
    assert flt.decide(_pkt("generated-load"), Direction.RX, 0.0).extra_delay == 0.0
    assert flt.decide(_pkt("experiment"), Direction.RX, 0.0).extra_delay == 0.1


def test_reorder_actually_reorders_arrivals(pair_net, rngs):
    """Back-to-back sends with 100% held vs unheld packets interleave."""
    sim, _medium, a, b = pair_net

    class Alternating:
        """Deterministic: hold every other packet."""

        def __init__(self):
            self.i = 0

        def random(self):
            self.i += 1
            return 0.0 if self.i % 2 else 1.0

    flt = MessageReorderFilter(0.5, 0.2, Alternating())
    b.interface.add_filter(flt)
    got = []
    b.bind(9, lambda pl, pkt, n: got.append(pl))
    for seq in range(4):
        a.send_datagram(seq, b.address, 9)
    sim.run(until=2.0)
    assert sorted(got) == [0, 1, 2, 3]
    assert got != sorted(got), "delivery order must differ from send order"


def test_reorder_via_controller_and_registry(pair_net, rngs):
    from repro.core.actions import default_registry
    from repro.faults.controller import FaultController

    sim, _medium, a, _b = pair_net
    assert "msg_reorder_start" in default_registry()
    events = []
    ctrl = FaultController(sim, a, rngs, lambda name, params=(): events.append(name))
    ctrl.set_run(0)
    fid = ctrl.start("msg_reorder", {"probability": 0.3, "delay": 0.05})
    assert events == ["fault_msg_reorder_started"]
    assert a.interface.filters[0].label == "msg_reorder"
    assert ctrl.stop(fid)
