"""Unit tests for fault leases: the store, and the controller's use of it."""

import json

import pytest

from repro.faults.controller import FaultController
from repro.faults.leases import FaultLeaseStore, iter_lease_files, make_lease


# ----------------------------------------------------------------------
# make_lease
# ----------------------------------------------------------------------
def test_make_lease_ttl_and_id():
    lease = make_lease(
        node="n1", run_id=3, kind="msg_loss", fault_id=7,
        acquired_at=10.0, duration=5.0, ttl_margin=30.0,
        params={"probability": 0.5},
    )
    assert lease["lease_id"] == "n1/3/7"
    assert lease["expires_at"] == pytest.approx(45.0)  # 10 + 5 + 30
    assert lease["params"] == {"probability": 0.5}


def test_make_lease_unbounded_fault_has_no_expiry_without_margin():
    lease = make_lease(
        node="n1", run_id=None, kind="msg_delay", fault_id=1,
        acquired_at=2.0, duration=None,
    )
    assert lease["lease_id"] == "n1/-/1"
    assert lease["expires_at"] is None
    # A run-deadline margin alone still yields an advisory TTL.
    bounded = make_lease(
        node="n1", run_id=None, kind="msg_delay", fault_id=2,
        acquired_at=2.0, duration=None, ttl_margin=60.0,
    )
    assert bounded["expires_at"] == pytest.approx(62.0)


# ----------------------------------------------------------------------
# FaultLeaseStore
# ----------------------------------------------------------------------
def _lease(node="n1", fault_id=1, **kw):
    kw.setdefault("run_id", 0)
    kw.setdefault("kind", "msg_loss")
    kw.setdefault("acquired_at", 1.0)
    kw.setdefault("duration", 10.0)
    return make_lease(node=node, fault_id=fault_id, **kw)


def test_acquire_release_roundtrip(tmp_path):
    store = FaultLeaseStore(tmp_path / "leases")
    a, b = _lease(fault_id=1), _lease(fault_id=2)
    store.acquire(a)
    store.acquire(b)
    assert [ls["lease_id"] for ls in store.active("n1")] == [a["lease_id"], b["lease_id"]]
    store.release("n1", a["lease_id"], released_at=5.0)
    assert [ls["lease_id"] for ls in store.active("n1")] == [b["lease_id"]]
    assert store.nodes() == ["n1"]
    assert store.active("ghost") == []


def test_reconcile_pops_and_compacts(tmp_path):
    store = FaultLeaseStore(tmp_path / "leases")
    store.acquire(_lease(fault_id=1))
    store.acquire(_lease(fault_id=2))
    store.release("n1", "n1/0/1", released_at=3.0)
    leaked = store.reconcile("n1")
    assert [ls["lease_id"] for ls in leaked] == ["n1/0/2"]
    # The file was compacted: no actives left, and a second sweep is a
    # no-op (idempotence is what makes the sweep crash-safe).
    assert store.active("n1") == []
    assert store.reconcile("n1") == []
    assert (tmp_path / "leases" / "n1.jsonl").read_text(encoding="utf-8") == ""


def test_truncated_tail_is_tolerated(tmp_path):
    store = FaultLeaseStore(tmp_path / "leases")
    store.acquire(_lease(fault_id=1))
    path = tmp_path / "leases" / "n1.jsonl"
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"op": "acquire", "lease": {"lease_id": "n1/0/2", "trunc')
    # The torn append never installed its filter (lease-first ordering),
    # so dropping the unparseable line is safe.
    assert [ls["lease_id"] for ls in store.active("n1")] == ["n1/0/1"]
    assert [ls["lease_id"] for ls in store.reconcile("n1")] == ["n1/0/1"]


def test_iter_lease_files_both_layouts(tmp_path):
    serial = tmp_path / "serial"
    FaultLeaseStore(serial / "leases").acquire(_lease(node="a1"))
    campaign = tmp_path / "campaign"
    FaultLeaseStore(campaign / "leases" / "run_000002").acquire(_lease(node="b2"))
    assert [(p.name, n) for p, n in iter_lease_files(serial)] == [("a1.jsonl", "a1")]
    assert [n for _p, n in iter_lease_files(campaign)] == ["b2"]
    assert list(iter_lease_files(tmp_path / "nowhere")) == []


# ----------------------------------------------------------------------
# Controller integration
# ----------------------------------------------------------------------
@pytest.fixture
def leased(pair_net, rngs, tmp_path):
    sim, _medium, a, _b = pair_net
    ctrl = FaultController(sim, a, rngs, lambda *args, **kw: None)
    ctrl.set_run(0)
    store = FaultLeaseStore(tmp_path / "leases")
    assert ctrl.attach_lease_store(store, ttl_margin=60.0) == []
    return sim, ctrl, a, store


def test_start_acquires_and_stop_releases(leased):
    _sim, ctrl, a, store = leased
    fid = ctrl.start("msg_loss", {"probability": 0.5})
    active = store.active(a.name)
    assert len(active) == 1
    assert active[0]["kind"] == "msg_loss"
    assert active[0]["run_id"] == 0
    assert active[0]["expires_at"] is not None  # margin-only TTL
    ctrl.stop(fid)
    assert store.active(a.name) == []


def test_auto_stop_releases_lease(leased):
    sim, ctrl, a, store = leased
    ctrl.start("msg_loss", {"probability": 0.5, "duration": 2.0})
    assert len(store.active(a.name)) == 1
    sim.run(until=3.0)
    assert store.active(a.name) == []


def test_stop_all_releases_leases(leased):
    _sim, ctrl, a, store = leased
    ctrl.start("msg_loss", {"probability": 0.5})
    ctrl.start("msg_delay", {"delay": 0.1})
    assert len(store.active(a.name)) == 2
    assert ctrl.stop_all() == []
    assert store.active(a.name) == []


def test_failed_revert_keeps_lease_for_next_sweep(leased):
    _sim, ctrl, a, store = leased
    ctrl.start("msg_loss", {"probability": 0.5})

    def wedged(_rule_id):
        raise RuntimeError("interface wedged")

    original = a.interface.remove_filter
    a.interface.remove_filter = wedged
    errors = ctrl.stop_all()
    assert len(errors) == 1
    # The revert failed, so the lease must stay visible on disk ...
    assert len(store.active(a.name)) == 1
    # ... until a later sweep retries (the interface recovered here).
    a.interface.remove_filter = original
    leaked = ctrl.reconcile_leases()
    assert [ls["kind"] for ls in leaked] == ["msg_loss"]
    assert leaked[0]["reconciled_at"] is not None
    assert store.active(a.name) == []


def test_reconcile_removes_still_installed_filter(leased):
    """Watchdog-abort shape: the process survives, the filter is live."""
    _sim, ctrl, a, store = leased
    ctrl.start("msg_loss", {"probability": 0.5})
    assert len(a.interface.filters) == 1
    leaked = ctrl.reconcile_leases()
    assert len(leaked) == 1
    assert a.interface.filters == []
    assert ctrl.active_faults() == []
    assert store.active(a.name) == []


def test_lease_written_before_filter_installs(leased):
    """Crash between acquire and install leaves a lease without a filter
    (the sweep's no-op case) — never a filter without a lease."""
    _sim, ctrl, a, store = leased

    def exploding(_flt):
        raise RuntimeError("crash during install")

    a.interface.add_filter = exploding
    with pytest.raises(RuntimeError):
        ctrl.start("msg_loss", {"probability": 0.5})
    assert len(store.active(a.name)) == 1
    assert ctrl.active_faults() == []
    # The sweep converges back to zero without touching any filter.
    assert len(ctrl.reconcile_leases()) == 1
    assert store.active(a.name) == []


def test_attach_sweeps_previous_crash(pair_net, rngs, tmp_path):
    """A fresh controller (post-crash process) sweeps on attach."""
    sim, _medium, a, _b = pair_net
    store = FaultLeaseStore(tmp_path / "leases")
    store.acquire(
        make_lease(node=a.name, run_id=4, kind="iface_fault", fault_id=9,
                   acquired_at=0.5, duration=600.0)
    )
    ctrl = FaultController(sim, a, rngs, lambda *args, **kw: None)
    leaked = ctrl.attach_lease_store(store)
    assert [ls["lease_id"] for ls in leaked] == [f"{a.name}/4/9"]
    assert store.active(a.name) == []


def test_controller_without_store_is_unchanged(pair_net, rngs):
    sim, _medium, a, _b = pair_net
    ctrl = FaultController(sim, a, rngs, lambda *args, **kw: None)
    ctrl.set_run(0)
    assert ctrl.reconcile_leases() == []
    fid = ctrl.start("msg_loss", {"probability": 0.5})
    assert ctrl.stop(fid)


def test_lease_file_is_valid_jsonl(leased):
    _sim, ctrl, a, store = leased
    ctrl.start("msg_loss", {"probability": 0.5})
    ctrl.stop_all()
    lines = (store.root / f"{a.name}.jsonl").read_text(encoding="utf-8").splitlines()
    ops = [json.loads(line)["op"] for line in lines]
    assert ops == ["acquire", "release"]
