"""Unit tests for environment manipulations (pair selection, controller)."""

import pytest

from repro.core.nodemanager import NodeManager
from repro.core.rpc import ControlChannel
from repro.faults.manipulations import (
    EnvContext,
    EnvironmentController,
    select_traffic_pairs,
)


# ----------------------------------------------------------------------
# Pair selection
# ----------------------------------------------------------------------
POOL = [f"e{i}" for i in range(8)]


def test_pairs_deterministic():
    a = select_traffic_pairs(POOL, 4, seed=1, switch_amount=0, switch_seed=0)
    b = select_traffic_pairs(POOL, 4, seed=1, switch_amount=0, switch_seed=0)
    assert a == b


def test_pairs_distinct():
    pairs = select_traffic_pairs(POOL, 6, seed=2, switch_amount=0, switch_seed=0)
    assert len({tuple(sorted(p)) for p in pairs}) == 6


def test_switch_replaces_exactly_n_pairs():
    base = select_traffic_pairs(POOL, 4, seed=1, switch_amount=0, switch_seed=0)
    switched = select_traffic_pairs(POOL, 4, seed=1, switch_amount=1, switch_seed=9)
    diffs = sum(1 for a, b in zip(base, switched) if a != b)
    assert diffs == 1


def test_switch_seed_controls_replacement():
    s1 = select_traffic_pairs(POOL, 4, seed=1, switch_amount=1, switch_seed=5)
    s2 = select_traffic_pairs(POOL, 4, seed=1, switch_amount=1, switch_seed=5)
    s3 = select_traffic_pairs(POOL, 4, seed=1, switch_amount=1, switch_seed=6)
    assert s1 == s2
    assert s1 != s3  # overwhelmingly likely with 28 possible pairs


def test_switch_amount_capped_at_count():
    pairs = select_traffic_pairs(POOL, 2, seed=1, switch_amount=10, switch_seed=3)
    assert len(pairs) == 2
    assert len({tuple(sorted(p)) for p in pairs}) == 2


def test_overdraw_rejected():
    with pytest.raises(ValueError):
        select_traffic_pairs(["a", "b"], 2, seed=1, switch_amount=0, switch_seed=0)


# ----------------------------------------------------------------------
# Environment controller (against real NodeManagers)
# ----------------------------------------------------------------------
@pytest.fixture
def env_setup(grid_net, rngs):
    sim, topo, medium, nodes = grid_net
    channel = ControlChannel(sim, latency=0.0)
    channel.set_master_handler(lambda rec: None)
    managers = {
        name: NodeManager(sim, node, channel, rngs)
        for name, node in nodes.items()
    }
    for nm in managers.values():
        nm.run_init(0)
    events = []
    ctrl = EnvironmentController(
        sim, channel, emit=lambda name, params=(): events.append((name, params))
    )
    ctx = EnvContext(
        run_id=0,
        replication=0,
        acting_nodes=["n0", "n8"],
        env_nodes=[n for n in nodes if n not in ("n0", "n8")],
        addr_of=lambda nid: nodes[nid].address,
    )
    return sim, ctrl, ctx, managers, events


def _drive(sim, gen):
    p = sim.process(gen)
    sim.run(until_event=p)


def test_candidates_by_choice(env_setup):
    _sim, _ctrl, ctx, _managers, _events = env_setup
    assert ctx.candidates(1) == ["n0", "n8"]
    assert "n0" not in ctx.candidates(0)
    assert len(ctx.candidates(2)) == 9
    with pytest.raises(ValueError):
        ctx.candidates(7)


def test_traffic_start_and_stop(env_setup):
    sim, ctrl, ctx, managers, events = env_setup
    _drive(sim, ctrl.execute("env_traffic_start", {"bw": 100, "random_pairs": 2,
                                                   "choice": 0, "random_seed": 1}, ctx))
    assert events[0][0] == "env_traffic_started"
    assert len(ctrl.last_pairs) == 2
    sim.run(until=sim.now + 1.0)
    total = sum(
        len(nm.node.capture.filter(flow="generated-load"))
        for nm in managers.values()
    )
    assert total > 0
    _drive(sim, ctrl.execute("env_traffic_stop", {}, ctx))
    assert events[-1][0] == "env_traffic_stopped"
    assert all(nm._flows == [] for nm in managers.values())


def test_traffic_pair_clamp_recorded(env_setup):
    sim, ctrl, ctx, _managers, events = env_setup
    _drive(sim, ctrl.execute(
        "env_traffic_start",
        {"bw": 10, "random_pairs": 999, "choice": 1, "random_seed": 1}, ctx,
    ))
    _name, params = events[0]
    rate, actual, requested, _pairs = params
    assert requested == 999 and actual == 1  # C(2,2)=1 for two acting nodes


def test_drop_all_roundtrip(env_setup):
    sim, ctrl, ctx, managers, events = env_setup
    _drive(sim, ctrl.execute("env_drop_all_start", {}, ctx))
    assert all(len(nm.node.interface.filters) == 1 for nm in managers.values())
    _drive(sim, ctrl.execute("env_drop_all_stop", {}, ctx))
    assert all(nm.node.interface.filters == [] for nm in managers.values())
    assert [e[0] for e in events] == ["env_drop_all_started", "env_drop_all_stopped"]


def test_generic_fans_out_to_acting_nodes(env_setup):
    sim, ctrl, ctx, managers, events = env_setup
    _drive(sim, ctrl.execute("generic", {"command": "sync"}, ctx))
    for name in ("n0", "n8"):
        evs = managers[name].collect_run(0)["events"]
        assert any(e["name"] == "generic_executed" for e in evs)
    assert events[-1][0] == "env_generic_executed"


def test_cleanup_stops_leftovers(env_setup):
    sim, ctrl, ctx, managers, _events = env_setup
    _drive(sim, ctrl.execute("env_traffic_start", {"bw": 10, "random_pairs": 1,
                                                   "choice": 0, "random_seed": 1}, ctx))
    _drive(sim, ctrl.execute("env_drop_all_start", {}, ctx))
    _drive(sim, ctrl.cleanup())
    assert all(nm._flows == [] for nm in managers.values())
    assert all(nm.node.interface.filters == [] for nm in managers.values())


def test_cleanup_is_idempotent(env_setup):
    sim, ctrl, ctx, _managers, events = env_setup
    _drive(sim, ctrl.execute("env_traffic_start", {"bw": 10, "random_pairs": 1,
                                                   "choice": 0, "random_seed": 1}, ctx))
    _drive(sim, ctrl.cleanup())
    assert ctrl.last_cleanup_errors == []
    n_events = len(events)
    # A second sweep (e.g. a reconciliation racing run-exit) finds the
    # pending lists already detached: no RPCs, no duplicate stop events.
    _drive(sim, ctrl.cleanup())
    assert len(events) == n_events
    assert ctrl.last_cleanup_errors == []


def test_cleanup_collects_errors_and_keeps_sweeping(env_setup):
    sim, ctrl, ctx, managers, _events = env_setup
    _drive(sim, ctrl.execute("env_traffic_start", {"bw": 10, "random_pairs": 2,
                                                   "choice": 2, "random_seed": 1}, ctx))
    _drive(sim, ctrl.execute("env_drop_all_start", {}, ctx))
    victim = ctrl._traffic_nodes[0]
    original = ctrl.channel.call

    def failing_call(node_id, method, *args, **kwargs):
        if node_id == victim and method == "traffic_stop":
            raise RuntimeError("node unreachable")
        return original(node_id, method, *args, **kwargs)

    ctrl.channel.call = failing_call
    _drive(sim, ctrl.cleanup())
    assert len(ctrl.last_cleanup_errors) == 1
    assert victim in ctrl.last_cleanup_errors[0]
    # The failure did not abort the sweep: every other node's traffic and
    # all drop-all filters were still stopped.
    assert all(nm._flows == [] for name, nm in managers.items() if name != victim)
    assert all(nm.node.interface.filters == [] for nm in managers.values())
    # And the controller converged: nothing left pending.
    assert ctrl._traffic_nodes == [] and ctrl._drop_all_nodes == []


def test_unknown_action_rejected(env_setup):
    _sim, ctrl, ctx, _managers, _events = env_setup
    with pytest.raises(ValueError):
        next(ctrl.execute("env_earthquake", {}, ctx))
