"""Unit tests for the communication fault injectors."""

import random

import pytest

from repro.faults.injectors import (
    DropExperimentFilter,
    InterfaceFaultFilter,
    MessageDelayFilter,
    MessageLossFilter,
    PathDelayFilter,
    PathLossFilter,
    resolve_direction,
)
from repro.faults.model import FaultWindow
from repro.net.interface import Direction
from repro.net.packet import Packet


def _pkt(flow="experiment", src="10.0.0.1", dst="10.0.0.2"):
    return Packet(
        src_addr=src, dst_addr=dst, src_port=1, dst_port=2, payload=None, flow=flow
    )


def test_resolve_direction_values():
    assert resolve_direction("rx") is Direction.RX
    assert resolve_direction("receive") is Direction.RX
    assert resolve_direction("tx") is Direction.TX
    assert resolve_direction("transmit") is Direction.TX
    assert resolve_direction("both") is Direction.BOTH
    assert resolve_direction("") is Direction.BOTH


def test_resolve_direction_random():
    rng = random.Random(1)
    picks = {resolve_direction("random", rng) for _ in range(20)}
    assert picks == {Direction.RX, Direction.TX}
    with pytest.raises(ValueError):
        resolve_direction("random")
    with pytest.raises(ValueError):
        resolve_direction("sideways", rng)


def test_interface_fault_drops_all_flows():
    flt = InterfaceFaultFilter(Direction.BOTH)
    assert flt.decide(_pkt(flow="experiment"), Direction.RX, 0.0).dropped
    assert flt.decide(_pkt(flow="generated-load"), Direction.TX, 0.0).dropped
    assert flt.hits == 2


def test_message_loss_respects_flow_label():
    flt = MessageLossFilter(1.0, random.Random(1))
    assert flt.decide(_pkt(flow="experiment"), Direction.RX, 0.0).dropped
    assert not flt.decide(_pkt(flow="generated-load"), Direction.RX, 0.0).dropped


def test_message_loss_probability_statistics():
    flt = MessageLossFilter(0.3, random.Random(42))
    dropped = sum(
        flt.decide(_pkt(), Direction.RX, 0.0).dropped for _ in range(2000)
    )
    assert 520 <= dropped <= 680  # 0.3 ± ~0.04


def test_message_loss_bounds_checked():
    with pytest.raises(ValueError):
        MessageLossFilter(1.5, random.Random(1))


def test_message_delay_constant():
    flt = MessageDelayFilter(0.25)
    verdict = flt.decide(_pkt(), Direction.TX, 0.0)
    assert not verdict.dropped and verdict.extra_delay == 0.25
    with pytest.raises(ValueError):
        MessageDelayFilter(-0.1)


def test_window_gates_activation():
    window = FaultWindow(active_from=10.0, active_until=20.0)
    flt = MessageDelayFilter(0.5, window=window)
    assert flt.decide(_pkt(), Direction.RX, 5.0).extra_delay == 0.0
    assert flt.decide(_pkt(), Direction.RX, 15.0).extra_delay == 0.5
    assert flt.decide(_pkt(), Direction.RX, 25.0).extra_delay == 0.0


def test_path_loss_matches_peer_either_end():
    flt = PathLossFilter("10.0.0.9", 1.0, random.Random(1))
    assert flt.decide(_pkt(dst="10.0.0.9"), Direction.TX, 0.0).dropped
    assert flt.decide(_pkt(src="10.0.0.9", dst="10.0.0.1"), Direction.RX, 0.0).dropped
    assert not flt.decide(_pkt(dst="10.0.0.2"), Direction.TX, 0.0).dropped


def test_path_delay_matches_peer_only():
    flt = PathDelayFilter("10.0.0.9", 0.1)
    assert flt.decide(_pkt(dst="10.0.0.9"), Direction.TX, 0.0).extra_delay == 0.1
    assert flt.decide(_pkt(dst="10.0.0.2"), Direction.TX, 0.0).extra_delay == 0.0


def test_drop_experiment_filter():
    flt = DropExperimentFilter()
    assert flt.decide(_pkt(flow="experiment"), Direction.TX, 0.0).dropped
    assert not flt.decide(_pkt(flow="generated-load"), Direction.RX, 0.0).dropped


def test_direction_scoped_filters():
    flt = MessageLossFilter(1.0, random.Random(1), direction=Direction.RX)
    assert flt.matches_direction(Direction.RX)
    assert not flt.matches_direction(Direction.TX)
