"""Unit tests for the node stack: sockets, forwarding, flooding."""

import pytest

from repro.net.node import NetNode, PortInUse
from repro.net.packet import BROADCAST_ADDR, MULTICAST_SD_GROUP


def test_bind_conflict(pair_net):
    _sim, _medium, a, _b = pair_net
    a.bind(10, lambda *args: None)
    with pytest.raises(PortInUse):
        a.bind(10, lambda *args: None)
    a.unbind(10)
    a.bind(10, lambda *args: None)  # rebindable after unbind


def test_unbound_port_counts_no_handler(pair_net):
    sim, _medium, a, b = pair_net
    a.send_datagram("x", b.address, 777)
    sim.run(until=1.0)
    assert b.counters["no_handler"] == 1
    assert b.counters["delivered"] == 0


def test_multihop_unicast_forwarding(grid_net):
    sim, topo, medium, nodes = grid_net
    got = []
    nodes["n8"].bind(10, lambda pl, pkt, n: got.append(pkt))
    nodes["n0"].send_datagram("far", nodes["n8"].address, 10, ttl=16)
    sim.run(until=2.0)
    assert len(got) == 1
    # TTL decremented once per intermediate forward (4-hop path → 3 forwards).
    assert got[0].ttl == 16 - 3
    forwards = sum(n.counters["forwarded"] for n in nodes.values())
    assert forwards == 3


def test_ttl_expiry_kills_packet(grid_net):
    sim, topo, medium, nodes = grid_net
    got = []
    nodes["n8"].bind(10, lambda pl, pkt, n: got.append(pl))
    nodes["n0"].send_datagram("x", nodes["n8"].address, 10, ttl=2)
    sim.run(until=2.0)
    assert got == []
    assert any(n.counters["ttl_expired"] for n in nodes.values())


def test_forwarding_disabled_node_drops(grid_net):
    sim, topo, medium, nodes = grid_net
    for n in nodes.values():
        n.forwarding = False
    got = []
    nodes["n8"].bind(10, lambda pl, pkt, n: got.append(pl))
    nodes["n0"].send_datagram("x", nodes["n8"].address, 10)
    sim.run(until=2.0)
    assert got == []


def test_multicast_requires_group_membership(grid_net):
    sim, topo, medium, nodes = grid_net
    got = []
    nodes["n4"].bind(20, lambda pl, pkt, n: got.append("n4"))
    nodes["n7"].join_group(MULTICAST_SD_GROUP)
    nodes["n7"].bind(20, lambda pl, pkt, n: got.append("n7"))
    nodes["n0"].send_datagram("q", MULTICAST_SD_GROUP, 20)
    sim.run(until=2.0)
    assert got == ["n7"]  # n4 not joined


def test_multicast_floods_whole_mesh(grid_net):
    sim, topo, medium, nodes = grid_net
    got = []
    for name in ("n2", "n6", "n8"):
        nodes[name].join_group(MULTICAST_SD_GROUP)
        nodes[name].bind(20, lambda pl, pkt, n, name=name: got.append(name))
    nodes["n0"].send_datagram("q", MULTICAST_SD_GROUP, 20)
    sim.run(until=2.0)
    assert sorted(got) == ["n2", "n6", "n8"]


def test_multicast_duplicate_suppression(grid_net):
    sim, topo, medium, nodes = grid_net
    got = []
    nodes["n4"].join_group(MULTICAST_SD_GROUP)
    nodes["n4"].bind(20, lambda pl, pkt, n: got.append(pl))
    nodes["n0"].send_datagram("q", MULTICAST_SD_GROUP, 20)
    sim.run(until=2.0)
    # The centre node hears the flood from several neighbours but delivers
    # exactly once.
    assert got == ["q"]


def test_multicast_ttl_limits_flood(grid_net):
    sim, topo, medium, nodes = grid_net
    got = []
    nodes["n8"].join_group(MULTICAST_SD_GROUP)
    nodes["n8"].bind(20, lambda pl, pkt, n: got.append(pl))
    # n8 is 4 hops from n0; ttl=2 cannot reach it.
    nodes["n0"].send_datagram("q", MULTICAST_SD_GROUP, 20, ttl=2)
    sim.run(until=2.0)
    assert got == []


def test_flood_disabled_confines_to_one_hop(grid_net):
    sim, topo, medium, nodes = grid_net
    for n in nodes.values():
        n.flood_multicast = False
    got = []
    for name in ("n1", "n8"):
        nodes[name].join_group(MULTICAST_SD_GROUP)
        nodes[name].bind(20, lambda pl, pkt, n, name=name: got.append(name))
    nodes["n0"].send_datagram("q", MULTICAST_SD_GROUP, 20)
    sim.run(until=2.0)
    assert got == ["n1"]  # direct neighbour only


def test_broadcast_is_link_local(grid_net):
    sim, topo, medium, nodes = grid_net
    got = []
    for name in ("n1", "n3", "n8"):
        nodes[name].bind(30, lambda pl, pkt, n, name=name: got.append(name))
    nodes["n0"].send_datagram("b", BROADCAST_ADDR, 30)
    sim.run(until=2.0)
    assert sorted(got) == ["n1", "n3"]  # neighbours of n0 only


def test_originator_does_not_receive_own_multicast(pair_net):
    sim, _medium, a, b = pair_net
    got = []
    a.join_group(MULTICAST_SD_GROUP)
    a.bind(20, lambda pl, pkt, n: got.append("a"))
    b.join_group(MULTICAST_SD_GROUP)
    b.bind(20, lambda pl, pkt, n: got.append("b"))
    a.send_datagram("q", MULTICAST_SD_GROUP, 20)
    sim.run(until=2.0)
    assert got == ["b"]


def test_reset_data_plane_clears_state(pair_net):
    sim, _medium, a, b = pair_net
    b.bind(10, lambda pl, pkt, n: None)
    a.send_datagram("x", b.address, 10)
    sim.run(until=1.0)
    assert b.counters["delivered"] == 1
    assert len(b.capture) == 1
    b.reset_data_plane()
    assert b.counters["delivered"] == 0
    assert len(b.capture) == 0


def test_seen_cache_bounded(sim, rngs):
    node = NetNode(sim, "x", "10.0.0.1", seen_cache_size=4)
    for uid in range(10):
        node._mark_seen(uid)
    assert len(node._seen) == 4
    assert 9 in node._seen and 0 not in node._seen
