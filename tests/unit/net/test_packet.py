"""Unit tests for the packet model."""

from repro.net.packet import (
    BROADCAST_ADDR,
    MULTICAST_SD_GROUP,
    Packet,
    is_broadcast,
    is_multicast,
)


def _pkt(**kw):
    defaults = dict(
        src_addr="10.0.0.1", dst_addr="10.0.0.2", src_port=1, dst_port=2,
        payload={"x": 1},
    )
    defaults.update(kw)
    return Packet(**defaults)


def test_uids_are_unique_and_increasing():
    a, b = _pkt(), _pkt()
    assert a.uid < b.uid


def test_copy_keeps_uid_but_not_options_identity():
    p = _pkt()
    p.options["k"] = 1
    c = p.copy()
    assert c.uid == p.uid
    c.options["k"] = 2
    assert p.options["k"] == 1


def test_copy_with_overrides():
    p = _pkt()
    c = p.copy(dst_addr="10.0.0.9")
    assert c.dst_addr == "10.0.0.9" and c.src_addr == p.src_addr


def test_forwarded_decrements_ttl():
    p = _pkt(ttl=3)
    f = p.forwarded()
    assert f.ttl == 2 and p.ttl == 3
    assert f.uid == p.uid


def test_expired():
    assert _pkt(ttl=0).expired
    assert not _pkt(ttl=1).expired


def test_multicast_and_broadcast_predicates():
    assert is_multicast(MULTICAST_SD_GROUP)
    assert not is_multicast("10.0.0.1")
    assert is_broadcast(BROADCAST_ADDR)
    assert not is_broadcast(MULTICAST_SD_GROUP)


def test_endpoint_pair_is_unordered():
    a = _pkt(src_addr="10.0.0.1", dst_addr="10.0.0.2")
    b = _pkt(src_addr="10.0.0.2", dst_addr="10.0.0.1")
    assert a.endpoint_pair() == b.endpoint_pair()


def test_describe_is_flat_and_complete():
    p = _pkt(flow="generated-load")
    d = p.describe()
    assert d["src"] == "10.0.0.1" and d["dst"] == "10.0.0.2"
    assert d["flow"] == "generated-load"
    assert d["uid"] == p.uid
    assert d["payload"] == {"x": 1}
    # options copied, not aliased
    d["options"]["new"] = 1
    assert "new" not in p.options
