"""Unit tests for the shared wireless medium."""

import random

import pytest

from repro.net.medium import CongestionModel, WirelessMedium
from repro.net.node import NetNode
from repro.net.packet import MULTICAST_SD_GROUP
from repro.net.topology import from_edges, line_topology


def _build(sim, base_loss=0.0, mac_retries=3, congestion=None, n=2, seed=1):
    topo = line_topology(n, base_loss=base_loss, prefix="m")
    medium = WirelessMedium(
        sim, topo, random.Random(seed), congestion=congestion, mac_retries=mac_retries
    )
    nodes = []
    for i in range(n):
        node = NetNode(sim, f"m{i}", f"10.2.0.{i + 1}")
        medium.attach(node)
        nodes.append(node)
    return medium, nodes


def test_attach_requires_topology_membership(sim):
    medium, _ = _build(sim)
    stranger = NetNode(sim, "ghost", "10.2.0.99")
    with pytest.raises(KeyError):
        medium.attach(stranger)


def test_double_attach_rejected(sim):
    medium, nodes = _build(sim)
    with pytest.raises(ValueError):
        medium.attach(nodes[0])


def test_lossless_unicast_delivery(sim):
    medium, (a, b) = _build(sim)
    got = []
    b.bind(5, lambda pl, pkt, n: got.append((pl, sim.now)))
    a.send_datagram("hello", b.address, 5)
    sim.run(until=1.0)
    assert len(got) == 1
    assert got[0][1] > 0  # link delay applied


def test_unknown_destination_dropped(sim):
    medium, (a, _b) = _build(sim)
    a.send_datagram("x", "10.99.99.99", 5)
    sim.run(until=1.0)
    assert medium.stats.losses == 1


def test_total_loss_drops_unicast(sim):
    medium, (a, b) = _build(sim, base_loss=1.0)
    got = []
    b.bind(5, lambda pl, pkt, n: got.append(pl))
    a.send_datagram("x", b.address, 5)
    sim.run(until=1.0)
    assert got == []
    assert medium.stats.losses == 1


def test_mac_retries_rescue_unicast(sim):
    # 60% per-attempt loss with 3 retries → 1 - 0.6^4 ≈ 87% delivery.
    medium, (a, b) = _build(sim, base_loss=0.6, mac_retries=3, seed=7)
    got = []
    b.bind(5, lambda pl, pkt, n: got.append(pl))
    for _ in range(200):
        a.send_datagram("x", b.address, 5)
    sim.run(until=10.0)
    assert 150 < len(got) < 198
    assert medium.stats.mac_retries > 0


def test_multicast_has_no_mac_retries(sim):
    medium, (a, b) = _build(sim, base_loss=0.6, mac_retries=3, seed=7)
    b.join_group(MULTICAST_SD_GROUP)
    got = []
    b.bind(5, lambda pl, pkt, n: got.append(pl))
    for _ in range(200):
        a.send_datagram("x", MULTICAST_SD_GROUP, 5)
    sim.run(until=10.0)
    # Without retries delivery is ~(1-0.6) = 40%.
    assert 40 < len(got) < 130


def test_retry_adds_backoff_delay(sim):
    cong = CongestionModel(jitter=0.0, queue_delay_at_capacity=0.0)
    topo = from_edges([("m0", "m1")], base_loss=0.0, base_delay=0.001)
    medium = WirelessMedium(sim, topo, random.Random(1), congestion=cong, retry_backoff=0.01)
    a = NetNode(sim, "m0", "10.2.0.1")
    b = NetNode(sim, "m1", "10.2.0.2")
    medium.attach(a)
    medium.attach(b)

    # Force exactly one failed attempt by rigging the RNG sequence.  The
    # medium draws jitter via random() too (call 1), so the loss attempts
    # see calls 2 (fail) and 3 (success).
    class Rigged:
        def __init__(self):
            self.calls = 0

        def random(self):
            self.calls += 1
            return 0.0 if self.calls <= 2 else 1.0

    medium.rng = Rigged()
    topo.graph.edges["m0", "m1"]["base_loss"] = 0.5
    got = []
    b.bind(5, lambda pl, pkt, n: got.append(sim.now))
    a.send_datagram("x", b.address, 5)
    sim.run(until=1.0)
    assert got and got[0] == pytest.approx(0.001 + 0.01)


def test_utilization_rises_with_traffic(sim):
    medium, (a, b) = _build(sim)
    assert medium.utilization() == 0.0
    for _ in range(50):
        a.send_datagram("x", b.address, 5, size=5000)
    assert medium.utilization() > 0.5


def test_utilization_window_expires(sim):
    medium, (a, b) = _build(sim)
    a.send_datagram("x", b.address, 5, size=50000)
    assert medium.utilization() > 0.0
    sim.call_later(2.0, lambda: None)
    sim.run()
    assert medium.utilization() == 0.0


def test_congestion_increases_loss(sim):
    # Saturate, then check the congestion model's effective loss.
    cong = CongestionModel(capacity_bps=100_000, loss_coeff=0.8)
    assert cong.extra_loss(1.0) == pytest.approx(0.8)
    assert cong.extra_loss(0.5) == pytest.approx(0.2)
    assert cong.queue_delay(1.0) == pytest.approx(cong.queue_delay_at_capacity)


def test_detach_stops_delivery(sim):
    medium, (a, b) = _build(sim)
    got = []
    b.bind(5, lambda pl, pkt, n: got.append(pl))
    medium.detach(b)
    a.send_datagram("x", b.address, 5)
    sim.run(until=1.0)
    assert got == []


def test_node_by_address(sim):
    medium, (a, b) = _build(sim)
    assert medium.node_by_address(b.address) is b
    assert medium.node_by_address("nope") is None


def test_duplicate_address_rejected(sim):
    medium, (a, b, _c) = _build(sim, n=3)
    medium.detach(_c)
    dupe = NetNode(sim, "m2", a.address)  # valid name, stolen address
    with pytest.raises(ValueError, match="address"):
        medium.attach(dupe)


def test_detach_returns_membership(sim, caplog):
    medium, (a, b) = _build(sim)
    assert medium.detach(b) is True
    assert medium.node_by_address(b.address) is None
    # A second detach is a caller bug: surfaced via return + warning.
    with caplog.at_level("WARNING", logger="repro.net.medium"):
        assert medium.detach(b) is False
    assert any("detach of unattached" in r.message for r in caplog.records)


def test_rewire_mid_sim_changes_packet_route(sim):
    # Satellite: route tables and the medium's per-sender destination
    # rows must follow a topology rewire mid-simulation.  Start with the
    # line a-b-c (a→c relays through b), then splice a direct a-c link
    # while the simulation is running and send again.
    topo = from_edges([("a", "b"), ("b", "c")], base_loss=0.0, base_delay=0.001)
    medium = WirelessMedium(sim, topo, random.Random(3))
    a = NetNode(sim, "a", "10.3.0.1")
    b = NetNode(sim, "b", "10.3.0.2")
    c = NetNode(sim, "c", "10.3.0.3")
    for node in (a, b, c):
        medium.attach(node)
    got = []
    c.bind(9, lambda pl, pkt, n: got.append((pl, pkt.ttl, sim.now)))

    def rewire():
        topo.graph.add_edge("a", "c", base_loss=0.0, base_delay=0.001)
        topo.invalidate_cache()

    a.send_datagram("via-b", c.address, 9)  # takes the 2-hop path
    sim.call_later(0.5, rewire)
    sim.call_later(1.0, a.send_datagram, "direct", c.address, 9)
    sim.run(until=2.0)

    assert [pl for pl, _, _ in got] == ["via-b", "direct"]
    assert b.counters["forwarded"] == 1  # only the pre-rewire packet relayed
    (_, ttl_before, _), (_, ttl_after, _) = got
    assert ttl_after == ttl_before + 1  # one hop fewer burned post-rewire


def test_reattach_after_detach(sim):
    medium, (a, b) = _build(sim)
    medium.detach(b)
    medium.attach(b)
    got = []
    b.bind(5, lambda pl, pkt, n: got.append(pl))
    a.send_datagram("x", b.address, 5)
    sim.run(until=1.0)
    assert got == ["x"]
