"""Unit tests for skewed local clocks."""

import random

import pytest

from repro.net.clock import LocalClock, random_clock


def test_perfect_clock_tracks_sim(sim):
    clock = LocalClock(sim)
    sim.call_later(5.0, lambda: None)
    sim.run()
    assert clock.time() == 5.0


def test_offset_shifts_reading(sim):
    clock = LocalClock(sim, offset=2.5)
    assert clock.time() == 2.5


def test_drift_scales_elapsed_time(sim):
    clock = LocalClock(sim, offset=0.0, drift=0.01)
    sim.call_later(100.0, lambda: None)
    sim.run()
    assert clock.time() == pytest.approx(101.0)


def test_to_local_from_local_roundtrip(sim):
    clock = LocalClock(sim, offset=-1.25, drift=5e-5)
    for t in (0.0, 1.0, 123.456):
        assert clock.from_local(clock.to_local(t)) == pytest.approx(t)


def test_step_models_ntp_jump(sim):
    clock = LocalClock(sim, offset=0.0)
    clock.step(0.75)
    assert clock.time() == 0.75


def test_invalid_drift_rejected(sim):
    with pytest.raises(ValueError):
        LocalClock(sim, drift=-1.0)


def test_random_clock_within_bounds(sim):
    rng = random.Random(1)
    for _ in range(50):
        clock = random_clock(sim, rng, max_offset=0.5, max_drift=1e-4)
        assert -0.5 <= clock.offset <= 0.5
        assert -1e-4 <= clock.drift <= 1e-4


def test_random_clock_deterministic(sim):
    a = random_clock(sim, random.Random(9))
    b = random_clock(sim, random.Random(9))
    assert (a.offset, a.drift) == (b.offset, b.drift)
