"""Unit tests for packet capture and the 16-bit tagger."""

import pytest

from repro.net.capture import PacketCapture
from repro.net.interface import Direction
from repro.net.node import NetNode
from repro.net.tagger import (
    TAG_MODULUS,
    TAG_NODE_OPTION,
    TAG_OPTION,
    PacketTagger,
    unwrap_tags,
)
from repro.net.packet import Packet


def _pkt(**kw):
    d = dict(src_addr="s", dst_addr="d", src_port=1, dst_port=2, payload=None)
    d.update(kw)
    return Packet(**d)


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------
def test_capture_records_both_directions(pair_net):
    sim, _medium, a, b = pair_net
    b.bind(10, lambda pl, pkt, n: None)
    a.send_datagram("x", b.address, 10)
    sim.run(until=1.0)
    assert [r["direction"] for r in a.capture.records] == ["tx"]
    assert [r["direction"] for r in b.capture.records] == ["rx"]


def test_capture_uses_local_clock(sim):
    from repro.net.clock import LocalClock

    node = NetNode(sim, "x", "10.0.0.1", clock=LocalClock(sim, offset=100.0))
    node.capture.record(_pkt(), Direction.RX)
    assert node.capture.records[0]["local_time"] == pytest.approx(100.0)


def test_capture_disable(sim):
    node = NetNode(sim, "x", "10.0.0.1")
    node.capture.enabled = False
    node.capture.record(_pkt(), Direction.RX)
    assert len(node.capture) == 0


def test_capture_ring_bound(sim):
    node = NetNode(sim, "x", "10.0.0.1")
    cap = PacketCapture(node, max_records=2)
    for _ in range(5):
        cap.record(_pkt(), Direction.RX)
    assert len(cap) == 2 and cap.dropped_records == 3


def test_capture_drain_clears(sim):
    node = NetNode(sim, "x", "10.0.0.1")
    node.capture.record(_pkt(), Direction.TX)
    drained = node.capture.drain()
    assert len(drained) == 1 and len(node.capture) == 0


def test_capture_filter_query(sim):
    node = NetNode(sim, "x", "10.0.0.1")
    node.capture.record(_pkt(dst_port=5, flow="a"), Direction.TX)
    node.capture.record(_pkt(dst_port=5, flow="b"), Direction.RX)
    node.capture.record(_pkt(dst_port=6, flow="a"), Direction.RX)
    assert len(node.capture.filter(direction=Direction.RX)) == 2
    assert len(node.capture.filter(flow="a")) == 2
    assert len(node.capture.filter(dst_port=5, flow="a")) == 1


def test_capture_seq_monotonic(sim):
    node = NetNode(sim, "x", "10.0.0.1")
    for _ in range(3):
        node.capture.record(_pkt(), Direction.RX)
    seqs = [r["seq"] for r in node.capture.records]
    assert seqs == sorted(seqs) and len(set(seqs)) == 3


# ----------------------------------------------------------------------
# Tagger
# ----------------------------------------------------------------------
def test_tagger_increments_and_labels():
    tagger = PacketTagger("nodeA")
    p1, p2 = _pkt(), _pkt()
    assert tagger.tag(p1) and tagger.tag(p2)
    assert p1.options[TAG_OPTION] == 0
    assert p2.options[TAG_OPTION] == 1
    assert p1.options[TAG_NODE_OPTION] == "nodeA"
    assert tagger.tagged_count == 2


def test_tagger_wraps_at_16_bits():
    tagger = PacketTagger("n", start=TAG_MODULUS - 1)
    p1, p2 = _pkt(), _pkt()
    tagger.tag(p1)
    tagger.tag(p2)
    assert p1.options[TAG_OPTION] == TAG_MODULUS - 1
    assert p2.options[TAG_OPTION] == 0


def test_tagger_selector():
    tagger = PacketTagger("n", selector=lambda p: p.flow == "experiment")
    exp = _pkt(flow="experiment")
    load = _pkt(flow="generated-load")
    assert tagger.tag(exp)
    assert not tagger.tag(load)
    assert TAG_OPTION not in load.options


def test_tagger_disable_and_reset():
    tagger = PacketTagger("n")
    tagger.enabled = False
    assert not tagger.tag(_pkt())
    tagger.enabled = True
    tagger.tag(_pkt())
    tagger.reset()
    assert tagger.next_tag == 0 and tagger.tagged_count == 0


def test_unwrap_monotonic_sequence():
    assert unwrap_tags([1, 2, 3]) == [1, 2, 3]


def test_unwrap_across_wraparound():
    raw = [TAG_MODULUS - 2, TAG_MODULUS - 1, 0, 1]
    assert unwrap_tags(raw) == [
        TAG_MODULUS - 2, TAG_MODULUS - 1, TAG_MODULUS, TAG_MODULUS + 1
    ]


def test_unwrap_tolerates_small_reordering():
    out = unwrap_tags([10, 12, 11, 13])
    assert out == [10, 12, 11, 13]


def test_unwrap_rejects_out_of_range():
    with pytest.raises(ValueError):
        unwrap_tags([TAG_MODULUS])


def test_node_tags_only_originated_packets(grid_net):
    sim, topo, medium, nodes = grid_net
    nodes["n8"].bind(10, lambda pl, pkt, n: None)
    nodes["n0"].send_datagram("x", nodes["n8"].address, 10)
    sim.run(until=2.0)
    # Forwarding nodes must not have consumed their own tag sequence.
    assert nodes["n0"].tagger.tagged_count == 1
    assert all(
        nodes[name].tagger.tagged_count == 0 for name in nodes if name != "n0"
    )
