"""Unit tests for CBR traffic generation."""

import random

import pytest

from repro.net.traffic import (
    TRAFFIC_FLOW_LABEL,
    TRAFFIC_PORT,
    TrafficFlow,
    TrafficGenerator,
    choose_pairs,
)


def test_flow_rate_matches_nominal(pair_net):
    sim, medium, a, b = pair_net
    flow = TrafficFlow(
        sim, a, b, rate_kbps=100.0, rng=random.Random(1), packet_size=500
    )
    flow.start()
    sim.run(until=10.0)
    flow.stop()
    # 100 kbit/s at 500 B/packet = 25 pkt/s -> ~250 packets in 10 s.
    assert 200 <= flow.sent_packets <= 300


def test_flow_packets_carry_load_label(pair_net):
    sim, medium, a, b = pair_net
    flow = TrafficFlow(sim, a, b, rate_kbps=50.0, rng=random.Random(1))
    flow.start()
    sim.run(until=1.0)
    flow.stop()
    tx = a.capture.filter(flow=TRAFFIC_FLOW_LABEL)
    assert tx and all(r["dport"] == TRAFFIC_PORT for r in tx)
    # Load packets must not consume the experiment tagger sequence.
    assert a.tagger.tagged_count == 0


def test_flow_stop_halts_sending(pair_net):
    sim, medium, a, b = pair_net
    flow = TrafficFlow(sim, a, b, rate_kbps=100.0, rng=random.Random(1))
    flow.start()
    sim.run(until=1.0)
    flow.stop()
    sent = flow.sent_packets
    sim.run(until=3.0)
    assert flow.sent_packets == sent
    assert not flow.running


def test_flow_double_start_is_idempotent(pair_net):
    sim, medium, a, b = pair_net
    flow = TrafficFlow(sim, a, b, rate_kbps=100.0, rng=random.Random(1))
    flow.start()
    proc = flow._process
    flow.start()
    assert flow._process is proc


def test_invalid_rate_rejected(pair_net):
    sim, medium, a, b = pair_net
    with pytest.raises(ValueError):
        TrafficFlow(sim, a, b, rate_kbps=0.0, rng=random.Random(1))


def test_generator_bidirectional_flows(grid_net):
    sim, topo, medium, nodes = grid_net
    gen = TrafficGenerator(sim)
    pairs = [(nodes["n0"], nodes["n8"]), (nodes["n2"], nodes["n6"])]
    gen.configure(pairs, rate_kbps=50.0, rng=random.Random(2))
    assert gen.stats()["flows"] == 4  # two per pair, one per direction
    gen.start()
    assert gen.running
    sim.run(until=2.0)
    gen.stop()
    assert not gen.running
    assert gen.stats()["sent_packets"] > 0
    assert gen.active_pairs == [("n0", "n8"), ("n2", "n6")]


def test_generator_reconfigure_stops_old_flows(grid_net):
    sim, topo, medium, nodes = grid_net
    gen = TrafficGenerator(sim)
    gen.configure([(nodes["n0"], nodes["n1"])], 50.0, random.Random(1))
    gen.start()
    sim.run(until=1.0)
    gen.configure([(nodes["n2"], nodes["n3"])], 50.0, random.Random(1))
    assert not gen.running  # reconfigure stops, caller restarts


def test_choose_pairs_distinct_and_deterministic(grid_net):
    _sim, _topo, _medium, nodes = grid_net
    pool = list(nodes.values())
    a = choose_pairs(pool, 5, random.Random(3))
    b = choose_pairs(pool, 5, random.Random(3))
    keys = [tuple(sorted((x.name, y.name))) for x, y in a]
    assert len(set(keys)) == 5
    assert [(x.name, y.name) for x, y in a] == [(x.name, y.name) for x, y in b]


def test_choose_pairs_capacity_check(grid_net):
    _sim, _topo, _medium, nodes = grid_net
    pool = [nodes["n0"], nodes["n1"], nodes["n2"]]
    with pytest.raises(ValueError):
        choose_pairs(pool, 4, random.Random(1))  # max C(3,2)=3
