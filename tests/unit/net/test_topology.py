"""Unit tests for mesh topology builders and queries."""

import pytest

from repro.net.topology import (
    Topology,
    from_edges,
    full_mesh_topology,
    grid_topology,
    line_topology,
    random_geometric_topology,
    star_topology,
)


def test_grid_shape():
    topo = grid_topology(3, 4)
    assert len(topo.node_names) == 12
    # interior node has 4 neighbours, corner has 2
    degrees = sorted(len(topo.neighbors(n)) for n in topo.node_names)
    assert degrees[0] == 2 and degrees[-1] == 4


def test_line_hops():
    topo = line_topology(5)
    assert topo.hop_count("n0", "n4") == 4
    assert topo.hop_count("n2", "n2") == 0


def test_star_center():
    topo = star_topology(6)
    assert len(topo.neighbors("n0")) == 6
    assert topo.hop_count("n1", "n2") == 2


def test_full_mesh_single_hop():
    topo = full_mesh_topology(5)
    matrix = topo.hop_count_matrix()
    assert set(matrix.values()) == {1}


def test_shortest_path_endpoints():
    topo = grid_topology(3, 3)
    path = topo.shortest_path("n0", "n8")
    assert path[0] == "n0" and path[-1] == "n8"
    assert len(path) == 5  # 4 hops in a 3x3 grid corner-to-corner


def test_next_hop_progresses():
    topo = grid_topology(3, 3)
    hop = topo.next_hop("n0", "n8")
    assert hop in topo.neighbors("n0")
    assert topo.next_hop("n0", "n0") is None


def test_unreachable_pair():
    topo = from_edges([("a", "b"), ("c", "d")])
    assert topo.hop_count("a", "c") is None
    assert topo.next_hop("a", "c") is None
    with pytest.raises(KeyError):
        topo.shortest_path("a", "c")


def test_edge_attr_defaults():
    topo = grid_topology(2, 2, base_loss=0.07, base_delay=0.003)
    attrs = topo.edge_attrs("n0", "n1")
    assert attrs["base_loss"] == 0.07
    assert attrs["base_delay"] == 0.003


def test_geometric_deterministic_and_connected():
    a = random_geometric_topology(12, radius=0.4, seed=5)
    b = random_geometric_topology(12, radius=0.4, seed=5)
    assert sorted(a.graph.edges) == sorted(b.graph.edges)
    import networkx as nx

    assert nx.is_connected(a.graph)


def test_geometric_fringe_links_are_worse():
    topo = random_geometric_topology(20, radius=0.4, seed=3, base_loss=0.02)
    losses = [attrs["base_loss"] for _a, _b, attrs in topo.graph.edges(data=True)]
    assert min(losses) >= 0.02
    assert max(losses) > min(losses)  # distance-dependent quality


def test_hop_count_matrix_subset():
    topo = grid_topology(3, 3)
    matrix = topo.hop_count_matrix(["n0", "n8"])
    assert matrix == {("n0", "n8"): 4, ("n8", "n0"): 4}


def test_cache_invalidation():
    topo = line_topology(3)
    assert topo.hop_count("n0", "n2") == 2
    topo.graph.add_edge("n0", "n2", base_loss=0.0, base_delay=0.001)
    topo.invalidate_cache()
    assert topo.hop_count("n0", "n2") == 1


def test_empty_topology_rejected():
    import networkx as nx

    with pytest.raises(ValueError):
        Topology(nx.Graph())


# ----------------------------------------------------------------------
# Route-row implementations
# ----------------------------------------------------------------------
def _row_shapes():
    return {
        "line": line_topology(7),
        "grid": grid_topology(4, 5),
        "star": star_topology(6),
        "full": full_mesh_topology(5),
        "geo": random_geometric_topology(60, 0.25, seed=11),
        "split": from_edges([("a", "b"), ("c", "d")]),  # disconnected
    }


def test_route_row_backends_agree():
    # The pure-python BFS is the oracle; the numpy frontier sweep and the
    # scipy C BFS must reproduce its next-hop and distance rows exactly
    # (not just equivalently) so routing is backend-independent.
    for label, topo in _row_shapes().items():
        ids = topo.intern_ids()
        backends = {"python": topo._route_row_python}
        if hasattr(topo, "_route_row_numpy"):
            try:
                topo._route_row_numpy(0)
            except (TypeError, AttributeError):  # numpy unavailable
                pass
            else:
                backends["numpy"] = topo._route_row_numpy
        try:
            topo._route_row_scipy(0)
        except (TypeError, AttributeError):  # scipy unavailable
            pass
        else:
            backends["scipy"] = topo._route_row_scipy
        oracle = {src_id: topo._route_row_python(src_id) for src_id in ids.values()}
        for name, impl in backends.items():
            for src_id, expect in oracle.items():
                assert impl(src_id) == expect, f"{name} diverged at {label}/{src_id}"


def test_route_row_dispatcher_matches_oracle():
    topo = random_geometric_topology(40, 0.3, seed=5)
    ids = topo.intern_ids()
    for src_id in ids.values():
        row, dist = topo._route_row_python(src_id)
        assert topo._route_row(src_id) == row
        assert topo._dist_rows[src_id] == dist


def test_next_hop_progresses_toward_destination():
    # next_hop must strictly reduce the remaining hop count on every
    # shape, which is exactly what the medium's per-hop forwarding needs.
    for topo in _row_shapes().values():
        for src in topo.node_names:
            for dst in topo.node_names:
                if src == dst:
                    continue
                hops = topo.hop_count(src, dst)
                hop = topo.next_hop(src, dst)
                if hops is None:
                    assert hop is None
                else:
                    assert topo.hop_count(hop, dst) == hops - 1


def test_edge_params_cached_and_defaulted():
    topo = from_edges([("a", "b")], base_loss=0.25, base_delay=0.004)
    assert topo.edge_params("a", "b") == (0.25, 0.004)
    # Same tuple from the per-pair cache, both orientations.
    assert topo.edge_params("b", "a") == (0.25, 0.004)


def test_invalidate_cache_clears_route_rows():
    topo = line_topology(4)
    ids = topo.intern_ids()
    topo._route_row(ids["n0"])
    assert topo._route_rows
    version = topo.version
    topo.invalidate_cache()
    assert not topo._route_rows and not topo._dist_rows
    assert topo.version == version + 1
