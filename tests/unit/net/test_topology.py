"""Unit tests for mesh topology builders and queries."""

import pytest

from repro.net.topology import (
    Topology,
    from_edges,
    full_mesh_topology,
    grid_topology,
    line_topology,
    random_geometric_topology,
    star_topology,
)


def test_grid_shape():
    topo = grid_topology(3, 4)
    assert len(topo.node_names) == 12
    # interior node has 4 neighbours, corner has 2
    degrees = sorted(len(topo.neighbors(n)) for n in topo.node_names)
    assert degrees[0] == 2 and degrees[-1] == 4


def test_line_hops():
    topo = line_topology(5)
    assert topo.hop_count("n0", "n4") == 4
    assert topo.hop_count("n2", "n2") == 0


def test_star_center():
    topo = star_topology(6)
    assert len(topo.neighbors("n0")) == 6
    assert topo.hop_count("n1", "n2") == 2


def test_full_mesh_single_hop():
    topo = full_mesh_topology(5)
    matrix = topo.hop_count_matrix()
    assert set(matrix.values()) == {1}


def test_shortest_path_endpoints():
    topo = grid_topology(3, 3)
    path = topo.shortest_path("n0", "n8")
    assert path[0] == "n0" and path[-1] == "n8"
    assert len(path) == 5  # 4 hops in a 3x3 grid corner-to-corner


def test_next_hop_progresses():
    topo = grid_topology(3, 3)
    hop = topo.next_hop("n0", "n8")
    assert hop in topo.neighbors("n0")
    assert topo.next_hop("n0", "n0") is None


def test_unreachable_pair():
    topo = from_edges([("a", "b"), ("c", "d")])
    assert topo.hop_count("a", "c") is None
    assert topo.next_hop("a", "c") is None
    with pytest.raises(KeyError):
        topo.shortest_path("a", "c")


def test_edge_attr_defaults():
    topo = grid_topology(2, 2, base_loss=0.07, base_delay=0.003)
    attrs = topo.edge_attrs("n0", "n1")
    assert attrs["base_loss"] == 0.07
    assert attrs["base_delay"] == 0.003


def test_geometric_deterministic_and_connected():
    a = random_geometric_topology(12, radius=0.4, seed=5)
    b = random_geometric_topology(12, radius=0.4, seed=5)
    assert sorted(a.graph.edges) == sorted(b.graph.edges)
    import networkx as nx

    assert nx.is_connected(a.graph)


def test_geometric_fringe_links_are_worse():
    topo = random_geometric_topology(20, radius=0.4, seed=3, base_loss=0.02)
    losses = [attrs["base_loss"] for _a, _b, attrs in topo.graph.edges(data=True)]
    assert min(losses) >= 0.02
    assert max(losses) > min(losses)  # distance-dependent quality


def test_hop_count_matrix_subset():
    topo = grid_topology(3, 3)
    matrix = topo.hop_count_matrix(["n0", "n8"])
    assert matrix == {("n0", "n8"): 4, ("n8", "n0"): 4}


def test_cache_invalidation():
    topo = line_topology(3)
    assert topo.hop_count("n0", "n2") == 2
    topo.graph.add_edge("n0", "n2", base_loss=0.0, base_delay=0.001)
    topo.invalidate_cache()
    assert topo.hop_count("n0", "n2") == 1


def test_empty_topology_rejected():
    import networkx as nx

    with pytest.raises(ValueError):
        Topology(nx.Graph())
