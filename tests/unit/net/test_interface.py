"""Unit tests for interfaces and packet-filter chains."""

import pytest

from repro.net.interface import (
    DROP,
    PASS,
    Direction,
    FilterVerdict,
    PacketFilter,
)


class _Always(PacketFilter):
    def __init__(self, verdict, direction=Direction.BOTH):
        super().__init__(direction=direction, label="always")
        self.verdict = verdict
        self.seen = 0

    def decide(self, packet, direction, now):
        self.seen += 1
        return self.verdict


def _send(a, b, payload="x"):
    return a.send_datagram(payload, b.address, 1000)


def test_direction_covers():
    assert Direction.BOTH.covers(Direction.RX)
    assert Direction.BOTH.covers(Direction.TX)
    assert Direction.RX.covers(Direction.RX)
    assert not Direction.RX.covers(Direction.TX)


def test_tx_down_blocks_sending(pair_net):
    sim, medium, a, b = pair_net
    got = []
    b.bind(1000, lambda pl, pkt, n: got.append(pl))
    a.interface.set_up(Direction.TX, up=False)
    _send(a, b)
    sim.run(until=1.0)
    assert got == []
    assert a.interface.counters["tx_dropped"] == 1


def test_rx_down_blocks_delivery(pair_net):
    sim, medium, a, b = pair_net
    got = []
    b.bind(1000, lambda pl, pkt, n: got.append(pl))
    b.interface.set_up(Direction.RX, up=False)
    _send(a, b)
    sim.run(until=1.0)
    assert got == []
    assert b.interface.counters["rx_dropped"] == 1
    assert len(b.capture) == 0  # a dead NIC captures nothing


def test_reactivation_restores_traffic(pair_net):
    sim, medium, a, b = pair_net
    got = []
    b.bind(1000, lambda pl, pkt, n: got.append(pl))
    b.interface.set_up(Direction.BOTH, up=False)
    _send(a, b)
    sim.run(until=1.0)
    b.interface.set_up(Direction.BOTH, up=True)
    _send(a, b, "second")
    sim.run(until=2.0)
    assert got == ["second"]


def test_tx_filter_drop(pair_net):
    sim, medium, a, b = pair_net
    got = []
    b.bind(1000, lambda pl, pkt, n: got.append(pl))
    flt = _Always(DROP, Direction.TX)
    a.interface.add_filter(flt)
    _send(a, b)
    sim.run(until=1.0)
    assert got == [] and flt.seen == 1
    assert a.interface.counters["tx_dropped"] == 1


def test_rx_filter_delay(pair_net):
    sim, medium, a, b = pair_net
    got = []
    b.bind(1000, lambda pl, pkt, n: got.append((pl, sim.now)))
    b.interface.add_filter(_Always(FilterVerdict(extra_delay=0.5), Direction.RX))
    _send(a, b)
    sim.run(until=2.0)
    assert len(got) == 1
    assert got[0][1] >= 0.5


def test_filter_direction_scoping(pair_net):
    sim, medium, a, b = pair_net
    got = []
    b.bind(1000, lambda pl, pkt, n: got.append(pl))
    # An RX-only drop rule on the *sender* must not affect its TX path.
    a.interface.add_filter(_Always(DROP, Direction.RX))
    _send(a, b)
    sim.run(until=1.0)
    assert got == ["x"]


def test_filter_replacement_modifies_content(pair_net):
    sim, medium, a, b = pair_net
    got = []
    b.bind(1000, lambda pl, pkt, n: got.append(pl))

    class Corruptor(PacketFilter):
        def decide(self, packet, direction, now):
            return FilterVerdict(replacement=packet.copy(payload="corrupted"))

    b.interface.add_filter(Corruptor(Direction.RX))
    _send(a, b, "original")
    sim.run(until=1.0)
    assert got == ["corrupted"]


def test_remove_filter_by_id(pair_net):
    sim, medium, a, b = pair_net
    got = []
    b.bind(1000, lambda pl, pkt, n: got.append(pl))
    rule_id = a.interface.add_filter(_Always(DROP, Direction.TX))
    assert a.interface.remove_filter(rule_id)
    assert not a.interface.remove_filter(rule_id)  # already gone
    _send(a, b)
    sim.run(until=1.0)
    assert got == ["x"]


def test_clear_filters_returns_count(pair_net):
    _sim, _medium, a, _b = pair_net
    a.interface.add_filter(_Always(PASS))
    a.interface.add_filter(_Always(PASS))
    assert a.interface.clear_filters() == 2
    assert a.interface.filters == []


def test_chain_order_first_drop_wins(pair_net):
    sim, medium, a, b = pair_net
    dropper = _Always(DROP, Direction.TX)
    later = _Always(PASS, Direction.TX)
    a.interface.add_filter(dropper)
    a.interface.add_filter(later)
    _send(a, b)
    sim.run(until=1.0)
    assert dropper.seen == 1 and later.seen == 0


def test_counters_track_bytes(pair_net):
    sim, medium, a, b = pair_net
    b.bind(1000, lambda pl, pkt, n: None)
    a.send_datagram("x", b.address, 1000, size=300)
    sim.run(until=1.0)
    assert a.interface.counters["tx_bytes"] == 300
    assert b.interface.counters["rx_bytes"] == 300


def test_transmit_unattached_interface_raises(sim):
    from repro.net.node import NetNode

    node = NetNode(sim, "solo", "10.9.9.9")
    with pytest.raises(RuntimeError):
        node.send_datagram("x", "10.0.0.1", 1)
