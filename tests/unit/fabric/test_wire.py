"""Unit tests for the framed socket transport and shipping codec."""

import socket
import threading

import pytest

from repro.core.errors import RpcError, RpcFault, RpcTimeout
from repro.core.rpc import RpcServer
from repro.fabric.shipping import decode_payload, encode_payload
from repro.fabric.wire import FleetChannel, FleetServer, parse_address


def _server(methods):
    rpc = RpcServer("test")
    for name, fn in methods.items():
        rpc.register_function(fn, name)
    return FleetServer("127.0.0.1", 0, rpc)


def test_parse_address():
    assert parse_address("127.0.0.1:8080") == ("127.0.0.1", 8080)
    with pytest.raises(RpcError):
        parse_address("no-port")
    with pytest.raises(RpcError):
        parse_address(":123")


def test_roundtrip_and_remote_fault():
    def boom():
        raise ValueError("kaput")

    with _server({"echo": lambda x: x, "boom": boom}) as server:
        address = "%s:%d" % server.address
        with FleetChannel(address) as channel:
            assert channel.call("echo", "hello") == "hello"
            assert channel.call("echo", 41) == 41
            with pytest.raises(RpcFault):
                channel.call("boom")
            # The connection survives a fault and keeps serving.
            assert channel.call("echo", "still-up") == "still-up"


def test_concurrent_clients_are_isolated():
    with _server({"echo": lambda x: x}) as server:
        address = "%s:%d" % server.address
        results = {}

        def hammer(tag):
            with FleetChannel(address) as channel:
                results[tag] = [channel.call("echo", f"{tag}-{i}") for i in range(20)]

        threads = [threading.Thread(target=hammer, args=(t,)) for t in ("a", "b", "c")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for tag, replies in results.items():
            assert replies == [f"{tag}-{i}" for i in range(20)]


def test_timeout_raises_after_retry_budget():
    lock = threading.Lock()
    lock.acquire()

    def wedge():
        with lock:  # blocks until the test releases it
            return True

    with _server({"wedge": wedge}) as server:
        address = "%s:%d" % server.address
        slept = []
        channel = FleetChannel(address, call_timeout=0.2, sleep=slept.append)
        with pytest.raises(RpcTimeout):
            channel.call("wedge")
        # The final attempt raises instead of sleeping again.
        assert len(slept) == channel.retry.max_attempts - 1
        lock.release()
        channel.close()


def test_reconnect_budget_rides_out_a_restart():
    # Nothing listens on this port yet: the first call keeps retrying
    # connection refusals until the server appears (coordinator restart).
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    address = f"127.0.0.1:{port}"

    server = _server({"echo": lambda x: x})._server  # not started
    server.server_close()

    started = threading.Event()

    def come_up_late():
        started.wait()
        with FleetServer("127.0.0.1", port, _late_rpc()) as late:
            done.wait(5.0)

    def _late_rpc():
        rpc = RpcServer("late")
        rpc.register_function(lambda x: x, "echo")
        return rpc

    done = threading.Event()
    thread = threading.Thread(target=come_up_late, daemon=True)
    thread.start()

    channel = FleetChannel(address, call_timeout=1.0, reconnect_budget=10.0)
    started.set()
    try:
        assert channel.call("echo", "survived") == "survived"
    finally:
        done.set()
        channel.close()
        thread.join(timeout=5.0)


def test_unreachable_past_budget_raises_rpc_error():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    channel = FleetChannel(
        f"127.0.0.1:{port}",
        call_timeout=0.2,
        reconnect_budget=0.3,
        sleep=lambda s: None,
    )
    with pytest.raises(RpcError):
        channel.call("echo", 1)


def test_payload_codec_roundtrips_bytes_and_floats():
    from repro.fabric.shipping import _decode_value

    payload = {
        "tables": {"Events": [[1, "e", 0.25, b"\x00\xff"], [2, None, 1e-9, b""]]},
        "duration": 1.5,
        "big": 1 << 40,  # would overflow plain XML-RPC i4 marshalling
    }
    decoded = decode_payload(encode_payload(payload))
    assert decoded["duration"] == 1.5 and decoded["big"] == 1 << 40
    # BLOB cells travel tagged; the ingest side untags them bit-exactly.
    rows = [[_decode_value(c) for c in row] for row in decoded["tables"]["Events"]]
    assert rows == payload["tables"]["Events"]


def test_payload_codec_rejects_unshippable_values():
    with pytest.raises(TypeError):
        encode_payload({"bad": object()})


# ----------------------------------------------------------------------
# Decorrelated-jitter reconnect backoff
# ----------------------------------------------------------------------
def test_backoff_every_delay_within_bounds():
    from repro.fabric.wire import ReconnectBackoff

    backoff = ReconnectBackoff(base=0.05, cap=2.0, seed=7)
    delays = [backoff.next() for _ in range(500)]
    assert all(0.05 <= d <= 2.0 for d in delays)
    # The jitter actually spreads (not a constant schedule) and reaches
    # the cap region under sustained failure.
    assert len({round(d, 6) for d in delays}) > 100
    assert max(delays) > 1.0


def test_backoff_seeded_determinism_and_decorrelation():
    from repro.fabric.wire import ReconnectBackoff

    a_gen, b_gen, c_gen = (
        ReconnectBackoff(seed=42),
        ReconnectBackoff(seed=42),
        ReconnectBackoff(seed=43),
    )
    a = [a_gen.next() for _ in range(50)]
    b = [b_gen.next() for _ in range(50)]
    c = [c_gen.next() for _ in range(50)]
    assert a == b  # same seed, same schedule — reproducible chaos drills
    assert a != c  # different workers de-phase


def test_backoff_reset_returns_to_base():
    from repro.fabric.wire import ReconnectBackoff

    backoff = ReconnectBackoff(base=0.1, cap=5.0, seed=1)
    for _ in range(20):
        backoff.next()
    backoff.reset()
    # First post-reset delay is drawn from [base, 3*base].
    assert 0.1 <= backoff.next() <= 0.3


def test_backoff_rejects_bad_bounds():
    from repro.fabric.wire import ReconnectBackoff

    with pytest.raises(RpcError):
        ReconnectBackoff(base=0.0)
    with pytest.raises(RpcError):
        ReconnectBackoff(base=1.0, cap=0.5)


# ----------------------------------------------------------------------
# Partition gate
# ----------------------------------------------------------------------
def test_partition_gate_directional_and_wildcards():
    from repro.fabric.wire import PartitionGate

    gate = PartitionGate()
    gate.partition("w1", "10.0.0.1:9")
    assert gate.blocked("w1", "10.0.0.1:9")
    assert not gate.blocked("w2", "10.0.0.1:9")  # asymmetric: only w1 cut
    assert not gate.blocked("w1", "10.0.0.2:9")
    gate.partition("*", "10.0.0.9:9")
    assert gate.blocked("anyone", "10.0.0.9:9")
    gate.heal(dst="10.0.0.9:9")
    assert not gate.blocked("anyone", "10.0.0.9:9")
    assert gate.blocked("w1", "10.0.0.1:9")  # unrelated rule survives
    gate.heal()
    assert not gate.blocked("w1", "10.0.0.1:9")


def test_partition_gate_blocks_channel_and_heals(tmp_path):
    from repro.fabric.wire import (
        PartitionGate,
        clear_partition_gate,
        install_partition_gate,
    )

    with _server({"echo": lambda x: x}) as server:
        address = "%s:%d" % server.address
        gate = install_partition_gate(PartitionGate())
        try:
            gate.partition("w1", address)
            cut = FleetChannel(
                address, label="w1", call_timeout=1.0,
                reconnect_budget=0.2, sleep=lambda s: None,
            )
            with pytest.raises(RpcError):
                cut.call("echo", 1)
            # Another worker's traffic flows: the cut is per-source.
            with FleetChannel(address, label="w2") as open_channel:
                assert open_channel.call("echo", 2) == 2
            gate.heal(src="w1")
            assert cut.call("echo", 3) == 3
            cut.close()
        finally:
            clear_partition_gate()
