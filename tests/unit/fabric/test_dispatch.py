"""Unit tests for the lease dispatcher: grants, dedup, reclaim, restore."""

import pytest

from repro.campaign.journal import CampaignJournal
from repro.campaign.scheduler import CampaignScheduler
from repro.core.factors import Factor, FactorList, Level, ReplicationFactor, Usage
from repro.core.heartbeat import ALIVE, DEAD, HeartbeatConfig, QUARANTINED
from repro.core.plan import generate_plan
from repro.fabric.dispatch import LeaseDispatcher
from repro.fabric.leases import LeaseStore
from repro.fabric.registry import WorkerRegistry


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _plan(replications=6):
    factors = FactorList(
        [Factor(id="f", type="int", usage=Usage.CONSTANT, levels=[Level(1)])],
        ReplicationFactor(id="rep", count=replications),
    )
    return generate_plan(factors, 42)


def _dispatcher(tmp_path, clock, replications=6, ttl=30.0, max_attempts=2):
    plan = _plan(replications)
    journal = CampaignJournal(tmp_path)
    journal.record_start("fp", 42, len(plan), plan.fingerprint())
    scheduler = CampaignScheduler(plan, jobs=1, max_parallel=0, max_attempts=max_attempts)
    heartbeat = HeartbeatConfig(interval=1.0, suspect_after=2, dead_after=4, quarantine_after=2)
    dispatcher = LeaseDispatcher(
        scheduler,
        LeaseStore(tmp_path, ttl=ttl, clock=clock),
        WorkerRegistry(heartbeat, clock=clock),
        journal,
        batch_size=2,
        clock=clock,
    )
    return dispatcher


def test_grant_auto_registers_and_respects_batch_size(tmp_path):
    clock = FakeClock()
    dispatcher = _dispatcher(tmp_path, clock)
    lease, batch = dispatcher.grant("w1", want=10)
    assert dispatcher.registry.known("w1")
    assert [t.run_id for t in batch] == [0, 1]  # capped at batch_size
    assert lease.run_ids == (0, 1)
    assert dispatcher.journal.registered_workers() == ["w1"]


def test_draining_and_dead_workers_get_nothing(tmp_path):
    clock = FakeClock()
    dispatcher = _dispatcher(tmp_path, clock)
    dispatcher.register("w1")
    dispatcher.drain_worker("w1")
    assert dispatcher.grant("w1", 2) == (None, [])
    dispatcher.registry.undrain("w1")
    clock.advance(10.0)  # > dead_after consecutive misses
    dispatcher.sweep()
    assert dispatcher.registry.state("w1") == DEAD
    assert dispatcher.grant("w2", 2)[0] is not None  # others still served
    assert dispatcher.registry.state("w2") == ALIVE


def test_duplicate_ack_never_commits_twice(tmp_path):
    clock = FakeClock()
    dispatcher = _dispatcher(tmp_path, clock)
    lease, _ = dispatcher.grant("w1", 1)
    commits = []
    assert (
        dispatcher.ack_completed("w1", lease.lease_id, 0, lambda: commits.append(0))
        == "committed"
    )
    assert (
        dispatcher.ack_completed("w1", lease.lease_id, 0, lambda: commits.append(0))
        == "duplicate"
    )
    assert commits == [0]
    assert dispatcher.scheduler.done == {0}


def test_expired_lease_requeues_pending_runs_exactly_once(tmp_path):
    clock = FakeClock()
    dispatcher = _dispatcher(tmp_path, clock, ttl=10.0)
    lease, _ = dispatcher.grant("w1", 2)
    dispatcher.ack_completed("w1", lease.lease_id, 0, lambda: None)
    clock.advance(11.0)
    swept = dispatcher.sweep()
    assert swept["expired"] == [lease.lease_id]
    # Run 1 is back in the queue, no attempt charged; a second sweep is a no-op.
    assert dispatcher.scheduler.pending == 5
    assert dispatcher.sweep()["expired"] == []
    lease2, batch2 = dispatcher.grant("w2", 1)
    assert batch2[0].run_id == 1  # retry-wave promotion: re-leased first
    assert batch2[0].attempts == 1  # expiry did not charge the budget


def test_late_ack_of_expired_lease_wins_over_release(tmp_path):
    clock = FakeClock()
    dispatcher = _dispatcher(tmp_path, clock, ttl=10.0)
    lease, _ = dispatcher.grant("w1", 1)
    clock.advance(11.0)
    dispatcher.sweep()  # run 0 released back to the queue
    committed = []
    status = dispatcher.ack_completed("w1", lease.lease_id, 0, lambda: committed.append(0))
    assert status == "committed"  # first ack wins, even after expiry
    assert committed == [0]
    # The stale queue entry must never dispatch again.
    lease2, batch2 = dispatcher.grant("w2", 2)
    assert 0 not in [t.run_id for t in batch2]
    for ticket in batch2:
        dispatcher.ack_completed("w2", lease2.lease_id, ticket.run_id, lambda: None)


def test_late_failure_after_release_charges_nothing(tmp_path):
    clock = FakeClock()
    dispatcher = _dispatcher(tmp_path, clock, ttl=10.0)
    lease, _ = dispatcher.grant("w1", 1)
    clock.advance(11.0)
    dispatcher.sweep()
    assert dispatcher.ack_failed("w1", lease.lease_id, 0, "boom") == "duplicate"
    assert dispatcher.scheduler.failed == {}
    assert dispatcher.scheduler.pending == 6


def test_failed_ack_requeues_until_budget_exhausted(tmp_path):
    clock = FakeClock()
    dispatcher = _dispatcher(tmp_path, clock, max_attempts=2)
    lease, _ = dispatcher.grant("w1", 1)
    assert dispatcher.ack_failed("w1", lease.lease_id, 0, "boom") == "requeued"
    lease2, batch2 = dispatcher.grant("w1", 1)
    assert batch2[0].run_id == 0 and batch2[0].attempts == 2
    assert dispatcher.ack_failed("w1", lease2.lease_id, 0, "boom") == "failed"
    assert 0 in dispatcher.scheduler.failed


def test_quarantined_worker_batch_re_leased_exactly_once(tmp_path):
    clock = FakeClock()
    dispatcher = _dispatcher(tmp_path, clock)
    lease, _ = dispatcher.grant("w1", 2)
    requeued = dispatcher.quarantine_worker("w1", "flaky host")
    assert sorted(requeued) == [0, 1]
    assert dispatcher.leases.get(lease.lease_id).closed == "revoked"
    # Second quarantine (or a racing expiry sweep) reclaims nothing more.
    assert dispatcher.quarantine_worker("w1", "again") == []
    clock.advance(1000.0)
    assert dispatcher.sweep()["expired"] == []
    assert dispatcher.registry.state("w1") == QUARANTINED
    assert dispatcher.grant("w1", 1) == (None, [])
    # The batch is leasable by someone else, once.
    _, batch = dispatcher.grant("w2", 2)
    assert [t.run_id for t in batch] == [0, 1]
    assert dispatcher.scheduler.pending == 4


def test_liveness_flapping_quarantines_and_revokes(tmp_path):
    clock = FakeClock()
    dispatcher = _dispatcher(tmp_path, clock, ttl=1000.0)
    lease, _ = dispatcher.grant("w1", 2)
    # Die, resurrect, die again: quarantine_after=2 makes it terminal.
    clock.advance(5.0)
    dispatcher.sweep()
    dispatcher.beat("w1")
    clock.advance(5.0)
    swept = dispatcher.sweep()
    assert swept["quarantined"] == ["w1"]
    assert dispatcher.registry.state("w1") == QUARANTINED
    assert dispatcher.leases.get(lease.lease_id).closed == "revoked"
    assert dispatcher.scheduler.pending == 6
    assert dispatcher.journal.quarantined_workers() == ["w1"]


def test_restore_reclaims_pending_runs_and_grace_renews(tmp_path):
    clock = FakeClock()
    dispatcher = _dispatcher(tmp_path, clock, ttl=10.0)
    lease, _ = dispatcher.grant("w1", 2)
    dispatcher.ack_completed("w1", lease.lease_id, 0, lambda: None)

    # Coordinator restart: fresh scheduler (run 0 staged), fresh dispatcher.
    clock.advance(9.0)
    plan = _plan(6)
    scheduler = CampaignScheduler(plan, completed=[0], jobs=1, max_parallel=0)
    restored = LeaseDispatcher(
        scheduler,
        LeaseStore(tmp_path, ttl=10.0, clock=clock),
        WorkerRegistry(HeartbeatConfig(), clock=clock),
        dispatcher.journal,
        batch_size=2,
        clock=clock,
    )
    assert restored.restore() == 1
    # Run 1 is claimed by the restored lease: not leasable to others ...
    _, batch = restored.grant("w2", 2)
    assert 1 not in [t.run_id for t in batch]
    # ... the grace renewal pushed the expiry a fresh TTL out ...
    assert restored.sweep()["expired"] == []
    # ... and the original worker's ack still lands as the first ack.
    assert restored.ack_completed("w1", lease.lease_id, 1, lambda: None) == "committed"


def test_replayed_ack_of_staged_run_deduplicates(tmp_path):
    """A worker replaying its unacked buffer across a coordinator restart
    may re-send a run whose commit landed (and was staged) just before
    the crash: the new session must answer ``duplicate`` — not commit
    again, and not corrupt the scheduler's pending accounting."""
    clock = FakeClock()
    plan = _plan(4)
    journal = CampaignJournal(tmp_path)
    journal.record_start("fp", 42, len(plan), plan.fingerprint())
    # Session 1 granted L000001 for runs (0, 1) and committed run 0.
    old = LeaseStore(tmp_path, ttl=30.0, clock=clock)
    old_lease = old.grant("w1", [0, 1])
    # Session 2: run 0 arrives staged (journal replay), not via `done`.
    scheduler = CampaignScheduler(plan, completed=[0], jobs=1, max_parallel=0)
    heartbeat = HeartbeatConfig(
        interval=1.0, suspect_after=2, dead_after=4, quarantine_after=2,
    )
    dispatcher = LeaseDispatcher(
        scheduler,
        LeaseStore(tmp_path, ttl=30.0, clock=clock),
        WorkerRegistry(heartbeat, clock=clock),
        journal,
        batch_size=2,
        clock=clock,
    )
    dispatcher.restore()
    pending_before = scheduler.pending
    commits = []
    status = dispatcher.ack_completed(
        "w1", old_lease.lease_id, 0, lambda: commits.append(0),
    )
    assert status == "duplicate"
    assert commits == []
    assert scheduler.pending == pending_before
    assert dispatcher.ack_failed("w1", old_lease.lease_id, 0, "late") == "duplicate"
    # Run 1 is still honorably in flight under the restored lease.
    assert 1 in scheduler.in_flight
    assert (
        dispatcher.ack_completed("w1", old_lease.lease_id, 1, lambda: commits.append(1))
        == "committed"
    )
    assert commits == [1]
