"""Unit tests for the fsynced lease ledger (fabric exactly-once core)."""

import pytest

from repro.core.errors import CampaignError
from repro.fabric.leases import LeaseStore


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def store(tmp_path, clock):
    return LeaseStore(tmp_path, ttl=30.0, clock=clock)


def test_grant_assigns_sequential_ids_and_expiry(store, clock):
    a = store.grant("w1", [0, 1])
    b = store.grant("w2", [2])
    assert (a.lease_id, b.lease_id) == ("L000001", "L000002")
    assert a.expires_at == clock.now + 30.0
    assert a.pending == [0, 1]
    assert store.leased_runs() == {0, 1, 2}


def test_empty_grant_and_bad_ttl_are_refused(tmp_path, store):
    with pytest.raises(CampaignError):
        store.grant("w1", [])
    with pytest.raises(CampaignError):
        LeaseStore(tmp_path, ttl=0)


def test_ttl_expiry_and_renewal_race(store, clock):
    lease = store.grant("w1", [0, 1])
    clock.advance(29.0)
    assert store.expired() == []
    # A renewal just before the deadline pushes the expiry a full TTL out.
    assert store.renew(lease.lease_id) is not None
    clock.advance(29.0)
    assert store.expired() == []
    # Silence past the renewed deadline expires it.
    clock.advance(2.0)
    assert [exp.lease_id for exp in store.expired()] == [lease.lease_id]


def test_renewing_a_closed_lease_fails_softly(store):
    lease = store.grant("w1", [0])
    store.close(lease.lease_id, "expired")
    assert store.renew(lease.lease_id) is None
    assert store.renew("L999999") is None


def test_ack_dedup_and_auto_close(store):
    lease = store.grant("w1", [0, 1])
    store.ack(lease.lease_id, 0)
    store.ack(lease.lease_id, 0)  # duplicate ack: no double bookkeeping
    assert lease.acked == {0}
    assert lease.active
    store.ack(lease.lease_id, 1)
    assert lease.closed == "complete"
    assert store.leased_runs() == set()


def test_close_is_idempotent_first_reason_wins(store):
    lease = store.grant("w1", [0])
    store.close(lease.lease_id, "expired")
    store.close(lease.lease_id, "revoked")
    assert lease.closed == "expired"


def test_restore_replays_ledger_byte_identically(tmp_path, clock):
    store = LeaseStore(tmp_path, ttl=10.0, clock=clock)
    done = store.grant("w1", [0, 1])
    store.ack(done.lease_id, 0)
    store.ack(done.lease_id, 1)
    open_lease = store.grant("w2", [2, 3])
    store.ack(open_lease.lease_id, 2)
    store.renew(open_lease.lease_id)

    restored = LeaseStore(tmp_path, ttl=10.0, clock=clock)
    assert restored.restore() == 1
    lease = restored.get(open_lease.lease_id)
    assert lease.worker_id == "w2"
    assert lease.pending == [3]
    assert lease.renewals == 1
    assert restored.get(done.lease_id).closed == "complete"
    # The sequence counter continues: no lease id reuse after restart.
    assert restored.grant("w3", [4]).lease_id == "L000003"


def test_restore_of_missing_ledger_is_empty(tmp_path):
    assert LeaseStore(tmp_path).restore() == 0
