"""Unit tests for the epoch-fenced leadership lease (DESIGN.md §16)."""

import json
import threading

import pytest

from repro.core.errors import CampaignError
from repro.fabric.election import ElectionLedger, LeadershipLost


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def ledger(tmp_path, clock):
    return ElectionLedger(tmp_path, ttl=10.0, clock=clock)


def test_fresh_directory_is_claimable(ledger):
    assert ledger.current() is None
    assert ledger.leader() is None
    assert ledger.epoch() == 0
    assert ledger.campaign("c1", "127.0.0.1:9001") == 1
    record = ledger.current()
    assert record.leader_id == "c1"
    assert record.endpoint == "127.0.0.1:9001"
    assert record.live(ledger.clock())


def test_live_lease_refuses_a_polite_claim(ledger):
    assert ledger.campaign("c1", "a:1") == 1
    assert ledger.campaign("c2", "b:2") is None  # polite: lease is live
    assert ledger.epoch() == 1


def test_force_takeover_bumps_epoch_over_live_lease(ledger):
    assert ledger.campaign("c1", "a:1") == 1
    assert ledger.campaign("c2", "b:2", force=True) == 2
    record = ledger.current()
    assert (record.epoch, record.leader_id) == (2, "c2")
    # The deposed leader's renew and release are refused.
    assert not ledger.renew(1)
    assert not ledger.release(1, "handoff")


def test_lapsed_lease_is_claimable_and_epoch_grows(ledger, clock):
    assert ledger.campaign("c1", "a:1") == 1
    clock.advance(10.1)  # past the TTL without a renewal
    assert ledger.leader() is None
    assert ledger.campaign("c2", "b:2") == 2


def test_renew_extends_expiry(ledger, clock):
    ledger.campaign("c1", "a:1")
    clock.advance(8.0)
    assert ledger.renew(1)
    clock.advance(8.0)  # 16s after claim, but renewed at 8s → still live
    assert ledger.leader() is not None
    assert ledger.current().renewals == 1


def test_release_makes_lease_immediately_claimable(ledger):
    ledger.campaign("c1", "a:1")
    assert ledger.release(1, "handoff")
    assert ledger.leader() is None
    assert not ledger.release(1, "handoff")  # idempotent refusal
    assert ledger.campaign("c2", "b:2") == 2  # no TTL wait


def test_fenced_runs_callable_only_at_current_epoch(ledger):
    ledger.campaign("c1", "a:1")
    ran = []
    ledger.fenced(1, lambda: ran.append(1))
    assert ran == [1]
    ledger.campaign("c2", "b:2", force=True)
    with pytest.raises(LeadershipLost):
        ledger.fenced(1, lambda: ran.append(2))
    assert ran == [1]  # the stale leader's write never happened


def test_fenced_refuses_after_release(ledger):
    ledger.campaign("c1", "a:1")
    ledger.release(1, "complete")
    with pytest.raises(LeadershipLost):
        ledger.fenced(1, lambda: None)


def test_stale_writer_records_are_fenced_at_replay(ledger, tmp_path):
    """Appends from a deposed leader (same epoch, written after a rival's
    claim) do not corrupt the replayed view — highest claim wins."""
    ledger.campaign("c1", "a:1")
    ledger.campaign("c2", "b:2", force=True)
    # Simulate the deposed c1 appending a renew for its old epoch by hand
    # (it could only do this by bypassing the flock — a torn write).
    with open(ledger.path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"op": "renew", "epoch": 1, "expires_at": 9e9}) + "\n")
    record = ledger.current()
    assert (record.epoch, record.leader_id) == (2, "c2")


def test_concurrent_claims_yield_exactly_one_winner(tmp_path, clock):
    winners = []

    def claim(name):
        lg = ElectionLedger(tmp_path, ttl=10.0, clock=clock)
        epoch = lg.campaign(name, f"{name}:1")
        if epoch is not None:
            winners.append((name, epoch))

    threads = [
        threading.Thread(target=claim, args=(f"c{i}",)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(winners) == 1
    assert winners[0][1] == 1


def test_standby_roster_and_summary(ledger, clock):
    ledger.campaign("c1", "a:1")
    ledger.beacon("s1", "b:2")
    ledger.beacon("s2", "c:3")
    summary = ledger.summary()
    assert summary["epoch"] == 1
    assert summary["leader_id"] == "c1"
    assert summary["leader_endpoint"] == "a:1"
    assert summary["leader_live"] is True
    assert [s["standby_id"] for s in summary["standbys"]] == ["s1", "s2"]
    # A stale beacon ages out of the roster; a retired one disappears.
    clock.advance(31.0)  # > 3 * ttl
    ledger.beacon("s2", "c:3")
    assert [s["standby_id"] for s in ledger.standby_roster()] == ["s2"]
    ledger.retire_beacon("s2")
    assert ledger.standby_roster() == []


def test_summary_reports_lapsed_leader_not_live(ledger, clock):
    ledger.campaign("c1", "a:1")
    clock.advance(10.1)
    summary = ledger.summary()
    assert summary["leader_live"] is False
    assert summary["epoch"] == 1
    assert summary["expires_in"] < 0


def test_bad_ttl_rejected(tmp_path):
    with pytest.raises(CampaignError):
        ElectionLedger(tmp_path, ttl=0.0)
