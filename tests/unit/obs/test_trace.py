"""Unit tests for the span tracer."""

import pytest

from repro.obs.trace import TRACE_ENV_VAR, Span, Tracer, tracing_default_enabled


class StepClock:
    def __init__(self):
        self.now = 10.0

    def __call__(self):
        self.now += 1.0
        return self.now


def _tracer():
    return Tracer(enabled=True, clock=StepClock())


def test_span_records_interval_and_attrs():
    tracer = _tracer()
    with tracer.span("experiment_init", nodes=3):
        pass
    (rec,) = tracer.drain(None)
    assert rec["name"] == "experiment_init"
    assert rec["status"] == "ok"
    assert rec["end"] > rec["start"]
    assert rec["attrs"] == {"nodes": 3}
    assert rec["node"] == "master"


def test_nesting_sets_parent_ids():
    tracer = _tracer()
    with tracer.span("run") as outer:
        with tracer.span("preparation") as inner:
            pass
    recs = tracer.drain(None)
    by_name = {r["name"]: r for r in recs}
    assert by_name["run"]["parent_id"] is None
    assert by_name["preparation"]["parent_id"] == outer.span_id
    assert inner.span_id != outer.span_id


def test_current_run_attribution_and_drain_partition():
    tracer = _tracer()
    with tracer.span("experiment_init"):
        pass
    tracer.current_run = 7
    with tracer.span("execution"):
        pass
    tracer.current_run = None
    run_recs = tracer.drain(7)
    assert [r["name"] for r in run_recs] == ["execution"]
    assert run_recs[0]["run_id"] == 7
    exp_recs = tracer.drain(None)
    assert [r["name"] for r in exp_recs] == ["experiment_init"]
    assert tracer.pending() == 0


def test_drain_orders_by_start_time():
    tracer = _tracer()
    # End order is inner-first; drain order must be start order.
    outer = tracer.start_span("run")
    inner = tracer.start_span("preparation")
    inner.end()
    outer.end()
    recs = tracer.drain(None)
    assert [r["name"] for r in recs] == ["run", "preparation"]


def test_exception_marks_error_and_propagates():
    tracer = _tracer()
    with pytest.raises(ValueError):
        with tracer.span("execution"):
            raise ValueError("boom")
    (rec,) = tracer.drain(None)
    assert rec["status"] == "error"
    assert rec["attrs"]["error"] == "ValueError: boom"


def test_record_error_carries_traceback():
    tracer = _tracer()
    try:
        raise RuntimeError("swallowed")
    except RuntimeError as exc:
        tracer.record_error("fault_revert", exc, site="stop_all")
    (rec,) = tracer.drain(None)
    assert rec["status"] == "error"
    assert rec["start"] == rec["end"]
    assert rec["attrs"]["site"] == "stop_all"
    assert "RuntimeError: swallowed" in rec["attrs"]["traceback"]
    assert "raise RuntimeError" in rec["attrs"]["traceback"]


def test_manual_end_with_status_and_double_end():
    tracer = _tracer()
    span = tracer.start_span("preparation", run_id=3)
    span.end(status="error", error="phase_deadline")
    span.end()  # second end must be a no-op
    recs = tracer.drain(3)
    assert len(recs) == 1
    assert recs[0]["status"] == "error"


def test_disabled_tracer_is_inert():
    tracer = Tracer(enabled=False)
    with tracer.span("run", replication=1) as span:
        span.set(more=2)
    tracer.record("fault_window", 0.0, 1.0, kind="drop")
    try:
        raise RuntimeError("x")
    except RuntimeError as exc:
        tracer.record_error("boundary", exc)
    assert tracer.drain(None) == []
    assert tracer.drain_all() == []
    assert isinstance(span, Span)


def test_env_var_disables_default(monkeypatch):
    monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
    assert tracing_default_enabled()
    for value in ("0", "false", "OFF", "no"):
        monkeypatch.setenv(TRACE_ENV_VAR, value)
        assert not tracing_default_enabled()
        assert not Tracer().enabled
    monkeypatch.setenv(TRACE_ENV_VAR, "1")
    assert Tracer().enabled


def test_record_external_interval():
    tracer = _tracer()
    tracer.record("fault_window", 5.0, 9.0, run_id=2, kind="drop", hits=4)
    (rec,) = tracer.drain(2)
    assert rec["start"] == 5.0 and rec["end"] == 9.0
    assert rec["attrs"]["kind"] == "drop"
