"""Unit tests for offline span analysis."""

import pytest

from repro.obs.analyze import (
    build_span_tree,
    critical_path,
    format_critical_path,
    format_tree,
    phase_durations,
    phase_statistics,
    quantile,
)


def _rec(span_id, name, start, end, parent=None, **attrs):
    rec = {
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "run_id": 0,
        "node": "master",
        "start": start,
        "end": end,
        "status": "ok",
    }
    if attrs:
        rec["attrs"] = attrs
    return rec


def _run_records():
    return [
        _rec(1, "run", 0.0, 10.0),
        _rec(2, "preparation", 0.0, 2.0, parent=1),
        _rec(3, "execution", 2.0, 9.0, parent=1),
        _rec(4, "rpc", 2.5, 3.0, parent=3),
        _rec(5, "cleanup", 9.0, 10.0, parent=1),
    ]


def test_build_span_tree_nests_and_orders():
    roots = build_span_tree(_run_records())
    assert len(roots) == 1
    names = [c["record"]["name"] for c in roots[0]["children"]]
    assert names == ["preparation", "execution", "cleanup"]
    execution = roots[0]["children"][1]
    assert execution["children"][0]["record"]["name"] == "rpc"


def test_orphan_parent_becomes_root():
    records = [_rec(7, "rpc", 1.0, 2.0, parent=99)]
    roots = build_span_tree(records)
    assert len(roots) == 1 and roots[0]["record"]["name"] == "rpc"


def test_critical_path_descends_longest_child():
    path = critical_path(_run_records())
    assert [step["record"]["name"] for step in path] == ["run", "execution", "rpc"]
    assert path[0]["seconds"] == pytest.approx(10.0)
    assert path[0]["self_seconds"] == pytest.approx(3.0)  # 10 - execution's 7
    assert path[1]["self_seconds"] == pytest.approx(6.5)  # 7 - rpc's 0.5


def test_quantile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert quantile(values, 0.50) == 2.0
    assert quantile(values, 0.95) == 4.0
    assert quantile([], 0.5) == 0.0
    assert quantile([7.0], 0.95) == 7.0


def test_phase_statistics_canonical_order_first():
    stats = phase_statistics(
        {"cleanup": [1.0], "custom": [5.0], "preparation": [2.0, 4.0]},
    )
    assert list(stats) == ["preparation", "cleanup", "custom"]
    assert stats["preparation"]["count"] == 2
    assert stats["preparation"]["p50"] == 2.0
    assert stats["preparation"]["max"] == 4.0


def test_phase_durations_sums_phase_spans_only():
    durations = phase_durations(_run_records())
    assert durations == {
        "preparation": pytest.approx(2.0),
        "execution": pytest.approx(7.0),
        "cleanup": pytest.approx(1.0),
    }


def test_format_tree_and_critical_path_render():
    tree_lines = format_tree(_run_records())
    assert tree_lines[0].startswith("run")
    assert any(line.startswith("  preparation") for line in tree_lines)
    cp_lines = format_critical_path(_run_records())
    assert "total 10000.000 ms" in cp_lines[0]
    assert cp_lines[-1].lstrip().startswith("rpc")


def test_format_hides_tracebacks_but_shows_status():
    records = [
        _rec(1, "fault_revert", 1.0, 1.0),
    ]
    records[0]["status"] = "error"
    records[0]["attrs"] = {"error": "RuntimeError: x", "traceback": "Traceback..."}
    (line,) = format_tree(records)
    assert "[error]" in line
    assert "Traceback" not in line
