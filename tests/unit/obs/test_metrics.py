"""Unit tests for the metrics registry and its exports."""

import json
import sys
from pathlib import Path

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    render_prometheus,
    set_registry,
)

sys.path.insert(0, str(Path(__file__).resolve().parents[3] / "tools"))
from check_prom import check_prometheus_text  # noqa: E402


def test_counter_inc_and_labels():
    reg = MetricsRegistry()
    c = reg.counter("repro_rpc_retries_total", "retries", labels=("method",))
    c.inc(method="run_init")
    c.inc(2, method="run_init")
    c.inc(method="run_exit")
    assert c.value(method="run_init") == 3
    assert c.value(method="run_exit") == 1
    assert c.value(method="never") == 0
    with pytest.raises(ValueError):
        c.inc(-1, method="run_init")
    with pytest.raises(ValueError):
        c.inc(node="x")  # undeclared label name


def test_declaration_is_idempotent_but_typed():
    reg = MetricsRegistry()
    a = reg.counter("repro_x_total", "x")
    b = reg.counter("repro_x_total", "different help ignored")
    assert a is b
    with pytest.raises(ValueError):
        reg.gauge("repro_x_total", "x")


def test_gauge_set_add():
    reg = MetricsRegistry()
    g = reg.gauge("repro_busy_seconds", "busy", labels=("worker",))
    g.set(1.5, worker="w0")
    g.add(0.5, worker="w0")
    assert g.value(worker="w0") == 2.0


def test_histogram_buckets_and_count():
    reg = MetricsRegistry()
    h = reg.histogram("repro_dur_seconds", "dur", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 0.5, 5.0):
        h.observe(v)
    assert h.count() == 4
    snap = reg.snapshot()
    cell = snap["repro_dur_seconds"]["values"][json.dumps([])]
    assert cell["counts"] == [1, 2, 1]
    assert cell["sum"] == pytest.approx(6.05)


def test_snapshot_roundtrips_through_json():
    reg = MetricsRegistry()
    reg.counter("repro_a_total", "a", labels=("k",)).inc(k="v")
    reg.histogram("repro_b_seconds", "b").observe(0.01)
    snap = reg.snapshot()
    assert json.loads(json.dumps(snap)) == snap


def test_merge_adds_counters_and_histograms_takes_gauges():
    a = MetricsRegistry()
    a.counter("repro_n_total", "n").inc(3)
    a.gauge("repro_g", "g").set(1.0)
    a.histogram("repro_h_seconds", "h", buckets=(1.0,)).observe(0.5)
    b = MetricsRegistry()
    b.counter("repro_n_total", "n").inc(4)
    b.gauge("repro_g", "g").set(9.0)
    b.histogram("repro_h_seconds", "h", buckets=(1.0,)).observe(2.0)
    a.merge(b.snapshot())
    assert a.counter("repro_n_total").value() == 7
    assert a.gauge("repro_g").value() == 9.0
    assert a.histogram("repro_h_seconds").count() == 2


def test_diff_snapshots_is_the_per_run_delta():
    reg = MetricsRegistry()
    c = reg.counter("repro_n_total", "n")
    h = reg.histogram("repro_h_seconds", "h", buckets=(1.0,))
    c.inc(5)
    h.observe(0.5)
    before = reg.snapshot()
    c.inc(2)
    h.observe(2.0)
    delta = diff_snapshots(reg.snapshot(), before)
    key = json.dumps([])
    assert delta["repro_n_total"]["values"][key] == 2
    assert delta["repro_h_seconds"]["values"][key]["counts"] == [0, 1]
    # Folding the delta into a fresh registry reproduces only the new work.
    other = MetricsRegistry()
    other.merge(delta)
    assert other.counter("repro_n_total").value() == 2


def test_diff_snapshots_drops_unchanged_metrics():
    reg = MetricsRegistry()
    reg.counter("repro_n_total", "n").inc()
    before = reg.snapshot()
    assert diff_snapshots(reg.snapshot(), before) == {}


def test_render_prometheus_is_valid_exposition():
    reg = MetricsRegistry()
    reg.counter("repro_rpc_retries_total", "RPC retries", labels=("method",)).inc(
        method='weird"method\\name',
    )
    reg.gauge("repro_busy_seconds", "busy", labels=("worker",)).set(1.25, worker="w0")
    h = reg.histogram("repro_dur_seconds", "durations", buckets=DEFAULT_BUCKETS)
    for v in (0.002, 0.3, 500.0):
        h.observe(v)
    text = reg.to_prometheus()
    assert check_prometheus_text(text) == []
    assert "# TYPE repro_dur_seconds histogram" in text
    assert 'le="+Inf"' in text
    assert 'worker="w0"' in text


def test_render_prometheus_escapes_labels():
    reg = MetricsRegistry()
    reg.counter("repro_x_total", "x", labels=("k",)).inc(k='a"b\\c\nd')
    text = render_prometheus(reg.snapshot())
    assert '\\"' in text and "\\\\" in text and "\\n" in text
    assert check_prometheus_text(text) == []


def test_global_registry_swap():
    original = get_registry()
    try:
        mine = MetricsRegistry()
        set_registry(mine)
        assert get_registry() is mine
    finally:
        set_registry(original)
    assert get_registry() is original
