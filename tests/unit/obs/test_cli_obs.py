"""CLI and storage round trips for the observability layer."""

import json
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.xmlio import description_to_xml
from repro.obs.trace import TRACE_ENV_VAR
from repro.sd.processlib import build_two_party_description
from repro.storage.level2 import Level2Store
from repro.storage.level3 import ExperimentDatabase, store_level3

sys.path.insert(0, str(Path(__file__).resolve().parents[3] / "tools"))
from check_prom import check_prometheus_text  # noqa: E402


@pytest.fixture
def desc_xml(tmp_path):
    path = tmp_path / "exp.xml"
    desc = build_two_party_description(
        name="obs-cli",
        seed=9,
        replications=2,
        env_count=1,
    )
    path.write_text(description_to_xml(desc), encoding="utf-8")
    return path


@pytest.fixture
def executed(desc_xml, tmp_path, monkeypatch):
    monkeypatch.setenv(TRACE_ENV_VAR, "1")
    store = tmp_path / "l2"
    db = tmp_path / "exp.db"
    assert main(["run", str(desc_xml), "--store", str(store), "--db", str(db), "--quiet"]) == 0
    return store, db


# ----------------------------------------------------------------------
# Level-2 / level-3 round trip
# ----------------------------------------------------------------------
def test_traces_survive_into_the_database(executed):
    store_root, db = executed
    store = Level2Store(store_root)
    assert store.read_run_traces("master", 0)
    with ExperimentDatabase(db) as dbh:
        records = dbh.run_traces(run_id=0)
        names = {rec["name"] for rec in records}
        assert {"preparation", "execution", "cleanup"} <= names
        run_span = next(rec for rec in records if rec["name"] == "run")
        assert run_span["attrs"]["replication"] == 0
        # Experiment-scope spans (no run id) are kept too.
        exp_names = {rec["name"] for rec in dbh.run_traces() if rec["run_id"] is None}
        assert "experiment_init" in exp_names


def test_level2_metrics_roundtrip(tmp_path):
    store = Level2Store(tmp_path / "l2")
    assert store.read_metrics() == {}
    snap = {"repro_x_total": {"kind": "counter", "help": "", "labels": [], "values": {"[]": 3.0}}}
    store.write_metrics(snap)
    assert store.read_metrics() == snap


# ----------------------------------------------------------------------
# repro trace
# ----------------------------------------------------------------------
def test_trace_tree_and_critical_path(executed, capsys):
    _, db = executed
    assert main(["trace", str(db), "--run", "0"]) == 0
    out = capsys.readouterr().out
    assert "span tree" in out and "run" in out
    assert "preparation" in out and "cleanup" in out
    assert main(["trace", str(db), "--run", "0", "--critical-path"]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out and "total" in out and "self" in out


def test_trace_summary_across_runs(executed, capsys):
    _, db = executed
    assert main(["trace", str(db)]) == 0
    out = capsys.readouterr().out
    assert "runs with spans: 2" in out
    for phase in ("preparation", "execution", "cleanup"):
        assert phase in out
    assert "p50=" in out and "p95=" in out
    assert "critical path" in out


def test_trace_reports_absence(desc_xml, tmp_path, monkeypatch, capsys):
    monkeypatch.setenv(TRACE_ENV_VAR, "0")
    store = tmp_path / "l2"
    db = tmp_path / "exp.db"
    assert main(["run", str(desc_xml), "--store", str(store), "--db", str(db), "--quiet"]) == 0
    assert main(["trace", str(db)]) == 1
    assert "no trace spans" in capsys.readouterr().err
    assert main(["trace", str(db), "--run", "0"]) == 1
    assert "no trace spans" in capsys.readouterr().err


# ----------------------------------------------------------------------
# repro metrics
# ----------------------------------------------------------------------
def test_metrics_prometheus_from_run_store(executed, capsys):
    store_root, _ = executed
    assert main(["metrics", str(store_root)]) == 0
    text = capsys.readouterr().out
    assert check_prometheus_text(text) == []
    assert "repro_rpc_calls_total" in text


def test_metrics_json_output(executed, capsys):
    store_root, _ = executed
    assert main(["metrics", str(store_root / "metrics.json"), "--format", "json"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["repro_rpc_calls_total"]["kind"] == "counter"


def test_metrics_missing_snapshot(tmp_path, capsys):
    assert main(["metrics", str(tmp_path)]) == 1
    assert "no metrics snapshot" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Error spans from swallowed boundaries reconstruct the traceback
# ----------------------------------------------------------------------
def test_store_level3_keeps_error_span_tracebacks(executed, tmp_path):
    from repro.obs.trace import Tracer

    store_root, _ = executed
    store = Level2Store(store_root)
    tracer = Tracer(enabled=True)
    tracer.current_run = 0
    try:
        raise RuntimeError("revert failed")
    except RuntimeError as exc:
        tracer.record_error("fault_revert", exc, site="stop_all")
    # Appending to an executed store mimics a late swallowed error: the
    # run writer's trace stream is append-safe.
    with store.run_writer(0) as writer:
        writer.add_traces("master", tracer.drain(0))
    db = store_level3(store, tmp_path / "err.db")
    with ExperimentDatabase(db) as dbh:
        records = dbh.run_traces(run_id=0)
    (rec,) = [r for r in records if r["name"] == "fault_revert"]
    assert rec["status"] == "error"
    assert rec["attrs"]["site"] == "stop_all"
    assert "RuntimeError: revert failed" in rec["attrs"]["traceback"]
    assert "raise RuntimeError" in rec["attrs"]["traceback"]
