"""Warehouse identity: content digests and factor fingerprints."""

from repro.repo.fingerprint import (
    content_fingerprint,
    factor_fingerprint_from_plan,
    fingerprint_package,
)


def _plan(levels, order=None, replications=1):
    runs = []
    rid = 0
    for rep in range(replications):
        for level in (order or levels):
            runs.append({"run_id": rid, "treatment": {"f": level},
                         "replication": rep, "treatment_index": 0,
                         "seed": rid})
            rid += 1
    return runs


def test_content_digest_stable_and_discriminating(make_level3):
    db_a = make_level3("alpha")
    db_b = make_level3("alpha2", name="alpha")  # identical content
    db_c = make_level3("gamma", t0=99.0, name="alpha")  # shifted times
    assert content_fingerprint(db_a) == content_fingerprint(db_b)
    assert content_fingerprint(db_a) != content_fingerprint(db_c)


def test_factor_fingerprint_ignores_order_and_replication():
    base = factor_fingerprint_from_plan(_plan([1, 2, 3]))
    assert factor_fingerprint_from_plan(_plan([1, 2, 3], order=[3, 1, 2])) == base
    assert factor_fingerprint_from_plan(_plan([1, 2, 3], replications=4)) == base


def test_factor_fingerprint_changes_on_new_level_or_factor():
    base = factor_fingerprint_from_plan(_plan([1, 2]))
    assert factor_fingerprint_from_plan(_plan([1, 2, 3])) != base
    widened = _plan([1, 2])
    for entry in widened:
        entry["treatment"]["g"] = "x"
    assert factor_fingerprint_from_plan(widened) != base


def test_factor_fingerprint_skips_dict_levels_and_empty_plan():
    plan = _plan([1])
    plan[0]["treatment"]["composite"] = {"nested": True}
    without = _plan([1])
    assert factor_fingerprint_from_plan(plan) == factor_fingerprint_from_plan(without)
    # No plan at all still yields a routable partition key.
    assert factor_fingerprint_from_plan([])


def test_fingerprint_package_fields(make_level3):
    db = make_level3("alpha")
    key = fingerprint_package(db)
    assert key.name == "alpha"
    assert key.comment == "c"
    assert key.content_digest == content_fingerprint(db)
    assert key.partition == ("alpha", key.factor_fingerprint)
