"""Shared fixtures: synthetic level-3 packages for warehouse tests."""

import pytest

from repro.storage.level2 import Level2Store
from repro.storage.level3 import store_level3

DESC_XML = """<experiment name="NAME" seed="1" comment="c">
  <platform>
    <actornode id="h1" address="10.0.0.1" abstract="A" />
    <envnode id="h2" address="10.0.0.2" />
  </platform>
</experiment>"""


def build_level3(root, tag, n_runs=2, t0=1.0, factor_levels=(0, 1),
                 extra_events=(), name=None):
    """A small but complete level-3 package: plan, timesync, SD events
    per run (publish/search/add), one fault event, one packet."""
    store = Level2Store(root / f"l2-{tag}")
    store.write_description(DESC_XML.replace("NAME", name or tag))
    plan = [
        {"run_id": r, "treatment": {"f": factor_levels[r % len(factor_levels)]},
         "replication": r // len(factor_levels), "treatment_index": r % len(factor_levels),
         "seed": 100 + r}
        for r in range(n_runs)
    ]
    store.write_plan(plan)
    for r in range(n_runs):
        base = t0 + 10.0 * r
        store.write_timesync(r, {"h1": {"offset": 0.0, "rtt": 0.001,
                                        "error_bound": 0.0005, "probes": 5}})
        store.write_run_info(r, {"run_id": r, "start_time": base,
                                 "treatment": plan[r]["treatment"]})
        events = [
            {"name": "sd_start_publish", "node": "h2", "local_time": base,
             "params": [], "run_id": r},
            {"name": "sd_start_search", "node": "h1", "local_time": base + 0.1,
             "params": [], "run_id": r},
            {"name": "sd_service_add", "node": "h1",
             "local_time": base + 0.4 + 0.05 * (r % len(factor_levels)),
             "params": ["svc", "h2"], "run_id": r},
            {"name": "fault_pl_run", "node": "h2", "local_time": base + 0.2,
             "params": [], "run_id": r},
        ]
        events.extend(
            {"name": name, "node": "h1", "local_time": base + 0.3,
             "params": [], "run_id": r}
            for name in extra_events
        )
        packets = [
            {"node": "h1", "local_time": base + 0.05, "uid": r,
             "src": "10.0.0.1", "dst": "10.0.0.2", "direction": "tx",
             "payload": "'x'"},
        ]
        store.write_run_data("h1", r, events, packets)
    return store_level3(store, root / f"{tag}.db")


@pytest.fixture
def make_level3(tmp_path):
    def _make(tag, **kwargs):
        return build_level3(tmp_path, tag, **kwargs)

    return _make
