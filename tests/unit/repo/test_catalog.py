"""Catalogue: partition routing, experiment lifecycle, status filters."""

import pytest

from repro.core.errors import StorageError
from repro.repo.catalog import Catalog
from repro.repo.fingerprint import ExperimentKey


def _key(name="exp", fp="f" * 16, digest="d1"):
    return ExperimentKey(name=name, comment="", ee_version="v",
                         exp_xml="<x/>", factor_fingerprint=fp,
                         content_digest=digest)


@pytest.fixture
def catalog(tmp_path):
    cat = Catalog(tmp_path / "wh")
    yield cat
    cat.close()


def test_partition_routing_is_stable(catalog):
    pid1, path1 = catalog.get_or_create_partition("exp", "aa" * 8)
    pid2, path2 = catalog.get_or_create_partition("exp", "aa" * 8)
    assert (pid1, path1) == (pid2, path2)
    pid3, path3 = catalog.get_or_create_partition("exp", "bb" * 8)
    assert pid3 != pid1 and path3 != path1
    pid4, _ = catalog.get_or_create_partition("other", "aa" * 8)
    assert pid4 not in (pid1, pid3)
    assert len(catalog.partitions()) == 3


def test_shard_paths_live_under_shards_dir(catalog):
    pid, path = catalog.get_or_create_partition("weird name/<>", "cc" * 8)
    assert path.parent.name == "shards"
    assert path == catalog.shard_path(pid)
    with pytest.raises(StorageError):
        catalog.shard_path(999)


def test_pending_rows_are_invisible_to_queries(catalog):
    pid, _ = catalog.get_or_create_partition("exp", "aa" * 8)
    exp_id = catalog.insert_pending(pid, _key(), "src.db",
                                    catalog.next_ingest_seq())
    catalog.conn.commit()
    assert catalog.experiments() == []
    assert catalog.find_by_digest("d1") is None
    with pytest.raises(StorageError):
        catalog.experiment_id_by_name("exp")
    assert [r["ExpID"] for r in catalog.pending()] == [exp_id]

    catalog.mark_done(exp_id)
    catalog.conn.commit()
    assert [r["ExpID"] for r in catalog.experiments()] == [exp_id]
    assert catalog.find_by_digest("d1")["ExpID"] == exp_id
    assert catalog.experiment_id_by_name("exp") == exp_id
    assert catalog.pending() == []


def test_find_by_digest_returns_oldest(catalog):
    pid, _ = catalog.get_or_create_partition("exp", "aa" * 8)
    first = catalog.insert_pending(pid, _key(), "a.db", 1)
    second = catalog.insert_pending(pid, _key(), "b.db", 2)
    catalog.mark_done(first)
    catalog.mark_done(second)
    catalog.conn.commit()
    assert catalog.find_by_digest("d1")["ExpID"] == first
    # Newest wins for name resolution (latest ingest is the baseline).
    assert catalog.experiment_id_by_name("exp") == second


def test_ingest_seq_monotonic(catalog):
    pid, _ = catalog.get_or_create_partition("exp", "aa" * 8)
    assert catalog.next_ingest_seq() == 1
    catalog.insert_pending(pid, _key(), "a.db", 7)
    catalog.conn.commit()
    assert catalog.next_ingest_seq() == 8


def test_purge_removes_catalogue_and_view_rows(catalog):
    pid, _ = catalog.get_or_create_partition("exp", "aa" * 8)
    exp_id = catalog.insert_pending(pid, _key(), "a.db", 1)
    catalog.conn.execute(
        "INSERT INTO MvExperimentStats (ExpID, Runs, Events, Packets, Nodes) "
        "VALUES (?, 1, 1, 1, 1)", (exp_id,))
    catalog.conn.execute(
        "INSERT INTO MvEventCounts (ExpID, EventType, N) VALUES (?, 'e', 1)",
        (exp_id,))
    catalog.purge_experiment(exp_id)
    catalog.conn.commit()
    with pytest.raises(StorageError):
        catalog.experiment(exp_id)
    for table in ("MvExperimentStats", "MvEventCounts"):
        count = catalog.conn.execute(
            f"SELECT COUNT(*) FROM {table} WHERE ExpID = ?", (exp_id,)
        ).fetchone()[0]
        assert count == 0


def test_catalogue_persists_across_reopen(tmp_path):
    cat = Catalog(tmp_path / "wh")
    pid, _ = cat.get_or_create_partition("exp", "aa" * 8)
    exp_id = cat.insert_pending(pid, _key(), "a.db", 1)
    cat.mark_done(exp_id)
    cat.conn.commit()
    cat.close()
    again = Catalog(tmp_path / "wh")
    assert [r["ExpID"] for r in again.experiments()] == [exp_id]
    assert again.get_or_create_partition("exp", "aa" * 8)[0] == pid
    again.close()
