"""The cache-aside aggregate cache: hits, misses, invalidation."""

from repro.repo.cache import AggregateCache


def test_hit_after_miss():
    cache = AggregateCache()
    calls = []
    compute = lambda: calls.append(1) or "value"  # noqa: E731
    assert cache.get_or_compute("k", compute) == "value"
    assert cache.get_or_compute("k", compute) == "value"
    assert len(calls) == 1
    assert cache.hits == 1 and cache.misses == 1


def test_invalidate_orphans_all_entries():
    cache = AggregateCache()
    cache.get_or_compute("k", lambda: 1)
    cache.invalidate()
    recomputed = cache.get_or_compute("k", lambda: 2)
    assert recomputed == 2
    assert cache.misses == 2


def test_distinct_keys_do_not_collide():
    cache = AggregateCache()
    assert cache.get_or_compute(("a", 1), lambda: "x") == "x"
    assert cache.get_or_compute(("a", 2), lambda: "y") == "y"
    assert cache.hits == 0


def test_capacity_bound_clears_rather_than_grows():
    cache = AggregateCache(max_entries=4)
    for i in range(10):
        cache.get_or_compute(i, lambda i=i: i)
    assert len(cache._entries) <= 4
    # Still correct after the clear.
    assert cache.get_or_compute(9, lambda: "recomputed") in (9, "recomputed")
