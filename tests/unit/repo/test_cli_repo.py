"""CLI surface of the L4 warehouse (`repro repo`) and the legacy alias."""

import sqlite3

from repro.cli import main


def test_repo_ingest_and_list(make_level3, tmp_path, capsys):
    root = tmp_path / "wh"
    db_a = make_level3("alpha")
    db_b = make_level3("beta", t0=40.0)
    assert main(["repo", "ingest", str(root), str(db_a), str(db_b)]) == 0
    out = capsys.readouterr().out
    assert out.count("ingested ") == 2
    assert "warehouse holds 2 experiment(s)" in out

    # Re-ingest is a no-op without --force.
    assert main(["repo", "ingest", str(root), str(db_a)]) == 0
    assert "duplicate of experiment" in capsys.readouterr().out
    assert main(["repo", "ingest", str(root), str(db_a), "--force"]) == 0
    assert "warehouse holds 3 experiment(s)" in capsys.readouterr().out

    assert main(["repo", "list", str(root)]) == 0
    out = capsys.readouterr().out
    assert "alpha" in out and "beta" in out
    assert "3 experiment(s), 2 partition(s)" in out  # forced copy listed too


def test_repo_ingest_sync_path(make_level3, tmp_path, capsys):
    root = tmp_path / "wh"
    db = make_level3("alpha")
    assert main(["repo", "ingest", str(root), str(db), "--sync"]) == 0
    assert "warehouse holds 1 experiment(s)" in capsys.readouterr().out


def test_repo_query_kinds(make_level3, tmp_path, capsys):
    root = tmp_path / "wh"
    db = make_level3("alpha", n_runs=4)
    assert main(["repo", "ingest", str(root), str(db)]) == 0
    capsys.readouterr()

    assert main(["repo", "query", str(root), "event-counts",
                 "--experiment", "alpha"]) == 0
    assert "sd_service_add" in capsys.readouterr().out

    assert main(["repo", "query", str(root), "faults"]) == 0
    assert "pl" in capsys.readouterr().out

    assert main(["repo", "query", str(root), "responsiveness",
                 "--experiment", "alpha"]) == 0
    assert "t_R median=" in capsys.readouterr().out

    assert main(["repo", "query", str(root), "trend",
                 "--event-type", "sd_service_add"]) == 0
    assert "alpha" in capsys.readouterr().out


def test_repo_diff(make_level3, tmp_path, capsys):
    root = tmp_path / "wh"
    db_a = make_level3("alpha")
    db_b = make_level3("beta", n_runs=4, t0=40.0)
    assert main(["repo", "ingest", str(root), str(db_a), str(db_b)]) == 0
    capsys.readouterr()
    assert main(["repo", "diff", str(root), "alpha", "beta"]) == 0
    out = capsys.readouterr().out
    assert "stats.Runs: 2 -> 4" in out


def test_repo_regression_check_pass_and_drift(make_level3, tmp_path, capsys):
    root = tmp_path / "wh"
    db = make_level3("alpha")
    assert main(["repo", "ingest", str(root), str(db)]) == 0
    capsys.readouterr()

    assert main(["repo", "regression-check", str(root), str(db)]) == 0
    assert "[ok]" in capsys.readouterr().out

    perturbed = tmp_path / "perturbed.db"
    import shutil
    shutil.copy(db, perturbed)
    with sqlite3.connect(perturbed) as conn:
        conn.execute("UPDATE Events SET CommonTime = CommonTime + 3.0 "
                     "WHERE EventType = 'sd_service_add'")
        conn.commit()
    assert main(["repo", "regression-check", str(root), str(perturbed),
                 "--baseline", "alpha"]) == 1
    captured = capsys.readouterr()
    assert "[DRIFT]" in captured.out
    assert "FAILED" in captured.err


def test_import_alias_is_deprecated_but_compatible(
    make_level3, tmp_path, capsys
):
    repo = tmp_path / "legacy.db"
    db = make_level3("alpha")
    assert main(["import", str(repo), str(db)]) == 0
    captured = capsys.readouterr()
    assert "repository now holds 1 experiment(s)" in captured.out
    assert "deprecated" in captured.err
    # The alias inherits import_experiment's dedup: importing the same
    # package twice resolves to the same experiment.
    assert main(["import", str(repo), str(db)]) == 0
    out = capsys.readouterr().out
    assert "imported" in out and "as experiment #1" in out
    assert "repository now holds 1 experiment(s)" in out
