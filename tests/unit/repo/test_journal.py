"""The fsynced ingest journal: tickets, batching, crash tolerance."""

import json

from repro.repo.journal import IngestJournal
from repro.repo.fingerprint import ExperimentKey


def _key(digest="d1"):
    return ExperimentKey(name="n", comment="", ee_version="v", exp_xml="<x/>",
                         factor_fingerprint="fp", content_digest=digest)


def test_tickets_monotonic_across_reopen(tmp_path):
    journal = IngestJournal(tmp_path)
    t0, t1 = journal.next_ticket(), journal.next_ticket()
    journal.append_many([journal.begin_record(t0, "a.db", _key()),
                         journal.begin_record(t1, "b.db", _key("d2"))])
    reopened = IngestJournal(tmp_path)
    assert reopened.next_ticket() > t1


def test_append_many_batches_records_in_order(tmp_path):
    journal = IngestJournal(tmp_path)
    tickets = [journal.next_ticket() for _ in range(3)]
    journal.append_many(
        journal.begin_record(t, f"{t}.db", _key(f"d{t}")) for t in tickets
    )
    entries = journal.entries()
    assert [e["ticket"] for e in entries] == tickets
    assert all(e["type"] == "ingest_begin" for e in entries)


def test_incomplete_tracks_open_tickets(tmp_path):
    journal = IngestJournal(tmp_path)
    t0, t1, t2, t3 = (journal.next_ticket() for _ in range(4))
    journal.append_many([
        journal.begin_record(t0, "a.db", _key("da")),
        journal.begin_record(t1, "b.db", _key("db")),
        journal.begin_record(t2, "c.db", _key("dc")),
        journal.begin_record(t3, "d.db", _key("dd")),
        journal.done_record(t0, 1),
        journal.skip_record(t1, 1),
        journal.abandon_record(t2, "source missing"),
    ])
    open_tickets = [rec["ticket"] for rec in journal.incomplete()]
    assert open_tickets == [t3]


def test_torn_final_line_is_ignored(tmp_path):
    journal = IngestJournal(tmp_path)
    t0 = journal.next_ticket()
    journal.append_many([journal.begin_record(t0, "a.db", _key())])
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"type": "ingest_do')  # the crash wrote half a record
    reopened = IngestJournal(tmp_path)
    assert len(reopened.entries()) == 1
    assert [r["ticket"] for r in reopened.incomplete()] == [t0]


def test_empty_journal(tmp_path):
    journal = IngestJournal(tmp_path)
    assert journal.entries() == []
    assert journal.incomplete() == []
    assert journal.next_ticket() == 0
    journal.append_many([])  # no-op, creates nothing
    assert not journal.path.exists()


def test_records_are_plain_json(tmp_path):
    journal = IngestJournal(tmp_path)
    t = journal.next_ticket()
    journal.append_many([journal.begin_record(t, "x.db", _key("dx"))])
    line = journal.path.read_text(encoding="utf-8").strip()
    record = json.loads(line)
    assert record["digest"] == "dx"
    assert record["source"] == "x.db"
