"""The warehouse façade: ingest, dedup, read models, recovery, queue."""

import sqlite3

import pytest

from repro.core.errors import StorageError
from repro.repo import (
    IngestJournal,
    Warehouse,
    WriteBehindIngester,
    fingerprint_package,
)
from repro.storage.level3 import ExperimentDatabase


@pytest.fixture
def warehouse(tmp_path):
    wh = Warehouse(tmp_path / "wh")
    yield wh
    wh.close()


# ----------------------------------------------------------------------
# Ingest + dedup
# ----------------------------------------------------------------------
def test_ingest_dedup_and_force(warehouse, make_level3):
    db = make_level3("alpha")
    first = warehouse.ingest(db)
    assert not first.duplicate

    again = warehouse.ingest(db)
    assert again.duplicate and again.exp_id == first.exp_id

    forced = warehouse.ingest(db, force=True)
    assert not forced.duplicate and forced.exp_id != first.exp_id
    assert len(warehouse.experiments()) == 2


def test_batch_ingest_dedups_within_batch(warehouse, make_level3, tmp_path):
    db = make_level3("alpha")
    import shutil
    copy = tmp_path / "copy.db"
    shutil.copy(db, copy)
    results = warehouse.ingest_many([db, copy])
    assert not results[0].duplicate
    assert results[1].duplicate and results[1].exp_id == results[0].exp_id


def test_same_factor_space_shares_partition(warehouse, make_level3):
    db_a = make_level3("alpha")
    db_b = make_level3("alpha-more", name="alpha", t0=50.0)
    db_c = make_level3("alpha-wide", name="alpha", factor_levels=(0, 1, 2),
                       n_runs=3)
    ra, rb, rc = (warehouse.ingest(d) for d in (db_a, db_b, db_c))
    assert ra.partition_id == rb.partition_id
    assert rc.partition_id != ra.partition_id


# ----------------------------------------------------------------------
# Read models
# ----------------------------------------------------------------------
def test_materialized_models_refresh_on_ingest(warehouse, make_level3):
    db = make_level3("alpha", n_runs=4)
    exp_id = warehouse.ingest(db).exp_id

    stats = warehouse.stats(exp_id)
    assert stats["Runs"] == 4 and stats["Packets"] == 4

    counts = {r["event_type"]: r["n"]
              for r in warehouse.event_counts(exp_id=exp_id)}
    assert counts["sd_service_add"] == 4
    assert counts["fault_pl_run"] == 4

    faults = warehouse.fault_breakdown(exp_id=exp_id)
    assert [(f["kind"], f["phase"], f["n"]) for f in faults] == [("pl", "run", 4)]

    surface = warehouse.responsiveness_surface(exp_id=exp_id)
    assert len(surface) == 2  # two factor levels
    assert all(row["runs"] == 2 and row["complete"] == 2 for row in surface)


def test_responsiveness_model_matches_canonical_analysis(
    warehouse, make_level3
):
    from repro.analysis.responsiveness import responsiveness_by_treatment

    db = make_level3("alpha", n_runs=6, factor_levels=(0, 1, 2))
    exp_id = warehouse.ingest(db).exp_id
    with ExperimentDatabase(db) as level3:
        canonical = responsiveness_by_treatment(level3, deadlines=[1.0])
    surface = warehouse.responsiveness_surface(exp_id=exp_id)
    assert len(surface) == len(canonical)
    for canon, row in zip(canonical, surface):
        assert row["runs"] == canon["summary"]["runs"]
        assert row["complete"] == canon["summary"]["complete"]
        assert row["t_r_median"] == canon["summary"]["t_r_median"]
        assert row["t_r_mean"] == canon["summary"]["t_r_mean"]


def test_trend_orders_by_ingest_sequence(warehouse, make_level3):
    first = make_level3("alpha")
    second = make_level3("beta", t0=30.0)
    warehouse.ingest(first)
    warehouse.ingest(second)
    trend = warehouse.trend("sd_service_add")
    assert [row["name"] for row in trend] == ["alpha", "beta"]
    assert trend[0]["ingest_seq"] < trend[1]["ingest_seq"]


def test_cache_invalidated_by_ingest(warehouse, make_level3):
    warehouse.ingest(make_level3("alpha"))
    warehouse.trend("sd_service_add")
    warehouse.trend("sd_service_add")
    assert warehouse.cache.hits >= 1
    generation = warehouse.cache.generation
    warehouse.ingest(make_level3("beta", t0=30.0))
    assert warehouse.cache.generation > generation
    assert len(warehouse.trend("sd_service_add")) == 2  # recomputed


def test_shard_view_matches_level3_reader(warehouse, make_level3):
    db = make_level3("alpha", n_runs=3)
    exp_id = warehouse.ingest(db).exp_id
    view = warehouse.view(exp_id)
    with ExperimentDatabase(db) as level3:
        assert view.events() == level3.events()
        assert view.packets() == level3.packets()
        assert view.run_ids() == level3.run_ids()
        assert view.node_ids() == level3.node_ids()
        assert view.plan() == level3.plan()


def test_resolve_by_id_and_name(warehouse, make_level3):
    exp_id = warehouse.ingest(make_level3("alpha")).exp_id
    assert warehouse.resolve(exp_id) == exp_id
    assert warehouse.resolve(str(exp_id)) == exp_id
    assert warehouse.resolve("alpha") == exp_id
    with pytest.raises(StorageError):
        warehouse.resolve("ghost")
    with pytest.raises(StorageError):
        warehouse.resolve(999)


# ----------------------------------------------------------------------
# Diff + regression check
# ----------------------------------------------------------------------
def test_diff_identical_and_divergent(warehouse, make_level3):
    db_a = make_level3("alpha")
    db_b = make_level3("alpha-twin", name="alpha")  # same content
    db_c = make_level3("beta", n_runs=4, extra_events=("custom",))
    a = warehouse.ingest(db_a).exp_id
    b = warehouse.ingest(db_b, force=True).exp_id
    c = warehouse.ingest(db_c).exp_id

    twin = warehouse.diff(a, b)
    assert twin["identical"]

    divergent = warehouse.diff(a, c)
    assert not divergent["identical"]
    assert divergent["stats"]["Runs"] == (2, 4)
    assert "custom" in divergent["event_counts"]


def test_regression_check_passes_on_identical_package(
    warehouse, make_level3
):
    db = make_level3("alpha")
    warehouse.ingest(db)
    verdict = warehouse.regression_check(db)
    assert verdict["ok"] and verdict["digest_match"]


def test_regression_check_flags_perturbed_digest(
    warehouse, make_level3, tmp_path
):
    db = make_level3("alpha")
    warehouse.ingest(db)
    import shutil
    perturbed = tmp_path / "perturbed.db"
    shutil.copy(db, perturbed)
    with sqlite3.connect(perturbed) as conn:
        conn.execute(
            "UPDATE Events SET CommonTime = CommonTime + 5.0 "
            "WHERE EventType = 'sd_service_add'"
        )
        conn.commit()
    verdict = warehouse.regression_check(perturbed, baseline="alpha")
    assert not verdict["ok"] and not verdict["digest_match"]
    drifted = [c for c in verdict["checks"]
               if c["check"].startswith("responsiveness") and not c["ok"]]
    assert drifted


def test_regression_check_tolerance_and_strict(
    warehouse, make_level3, tmp_path
):
    db = make_level3("alpha")
    warehouse.ingest(db)
    import shutil
    shifted = tmp_path / "shifted.db"
    shutil.copy(db, shifted)
    with sqlite3.connect(shifted) as conn:
        # Shift whole runs: digest changes, responsiveness intervals don't.
        conn.execute("UPDATE Events SET CommonTime = CommonTime + 100.0")
        conn.execute("UPDATE Packets SET CommonTime = CommonTime + 100.0")
        conn.commit()
    tolerant = warehouse.regression_check(shifted, baseline="alpha",
                                          tolerance=1e-9)
    assert tolerant["ok"] and not tolerant["digest_match"]
    strict = warehouse.regression_check(shifted, baseline="alpha",
                                        tolerance=1e-9, strict=True)
    assert not strict["ok"]


def test_regression_check_digest_only_drift_needs_explicit_tolerance(
    warehouse, make_level3, tmp_path
):
    """Content perturbed outside every aggregate still fails by default:
    digest drift passes only when --tol opts into aggregate-equivalence."""
    db = make_level3("alpha")
    warehouse.ingest(db)
    import shutil
    perturbed = tmp_path / "sneaky.db"
    shutil.copy(db, perturbed)
    with sqlite3.connect(perturbed) as conn:
        conn.execute(
            "UPDATE Events SET Parameter = '[\"tampered\"]' "
            "WHERE EventType NOT LIKE 'sd_%' AND rowid = "
            "(SELECT MIN(rowid) FROM Events WHERE EventType NOT LIKE 'sd_%')"
        )
        conn.commit()
    verdict = warehouse.regression_check(perturbed, baseline="alpha")
    assert not verdict["ok"] and not verdict["digest_match"]
    aggregates = [c for c in verdict["checks"] if c["check"] != "table1_digest"]
    assert aggregates and all(c["ok"] for c in aggregates)
    tolerant = warehouse.regression_check(
        perturbed, baseline="alpha", tolerance=1e-9
    )
    assert tolerant["ok"] and not tolerant["digest_match"]


def test_regression_check_flags_missing_runs(warehouse, make_level3, tmp_path):
    db = make_level3("alpha", n_runs=4)
    warehouse.ingest(db)
    import shutil
    truncated = tmp_path / "truncated.db"
    shutil.copy(db, truncated)
    with sqlite3.connect(truncated) as conn:
        for table in ("Events", "Packets", "RunInfos"):
            conn.execute(f"DELETE FROM {table} WHERE RunID >= 2")
        conn.commit()
    verdict = warehouse.regression_check(truncated, baseline="alpha")
    assert not verdict["ok"]
    by_name = {c["check"]: c for c in verdict["checks"]}
    assert not by_name["run_count"]["ok"]


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------
def test_recovery_reingests_journaled_but_uncatalogued(tmp_path, make_level3):
    db = make_level3("alpha")
    root = tmp_path / "wh"
    Warehouse(root).close()

    journal = IngestJournal(root)
    ticket = journal.next_ticket()
    journal.append_many([journal.begin_record(ticket, db,
                                              fingerprint_package(db))])
    with Warehouse(root) as warehouse:
        assert len(warehouse.last_recovery["reingested"]) == 1
        assert len(warehouse.experiments()) == 1
        assert warehouse.journal.incomplete() == []
    # Idempotent: a second recovery changes nothing.
    with Warehouse(root) as warehouse:
        assert all(not v for v in warehouse.last_recovery.values())
        assert len(warehouse.experiments()) == 1


def test_recovery_completes_pending_with_partial_shard(tmp_path, make_level3):
    db = make_level3("alpha")
    root = tmp_path / "wh"
    warehouse = Warehouse(root)
    key = fingerprint_package(db)
    pid, _ = warehouse.catalog.get_or_create_partition(
        key.name, key.factor_fingerprint)
    exp_id = warehouse.catalog.insert_pending(
        pid, key, db, warehouse.catalog.next_ingest_seq())
    warehouse.catalog.conn.commit()
    shard = warehouse._shard(pid)
    shard.execute(
        "INSERT INTO Events (ExpID, RunID, NodeID, CommonTime, EventType, "
        "Parameter) VALUES (?, 0, 'h1', 0.0, 'partial_garbage', '[]')",
        (exp_id,))
    shard.commit()
    warehouse.close()

    with Warehouse(root) as recovered:
        assert recovered.last_recovery["completed"] == [exp_id]
        events = recovered.view(exp_id).events()
        assert all(e["name"] != "partial_garbage" for e in events)
        with ExperimentDatabase(db) as level3:
            assert events == level3.events()


def test_recovery_purges_pending_with_missing_source(tmp_path, make_level3):
    db = make_level3("alpha")
    root = tmp_path / "wh"
    warehouse = Warehouse(root)
    key = fingerprint_package(db)
    pid, _ = warehouse.catalog.get_or_create_partition(
        key.name, key.factor_fingerprint)
    warehouse.catalog.insert_pending(
        pid, key, tmp_path / "vanished.db", warehouse.catalog.next_ingest_seq())
    warehouse.catalog.conn.commit()
    warehouse.close()

    with Warehouse(root) as recovered:
        assert len(recovered.last_recovery["purged"]) == 1
        assert recovered.experiments() == []


def test_recovery_confirms_completed_but_unclosed_ticket(
    tmp_path, make_level3
):
    db = make_level3("alpha")
    root = tmp_path / "wh"
    with Warehouse(root) as warehouse:
        exp_id = warehouse.ingest(db).exp_id
    # Simulate a crash after catalogue commit but before the journal's
    # done record: append a dangling begin for the same content.
    journal = IngestJournal(root)
    ticket = journal.next_ticket()
    journal.append_many([journal.begin_record(ticket, db,
                                              fingerprint_package(db))])
    with Warehouse(root) as recovered:
        assert recovered.last_recovery["confirmed"] == [exp_id]
        assert len(recovered.experiments()) == 1
        assert recovered.journal.incomplete() == []


# ----------------------------------------------------------------------
# Write-behind queue
# ----------------------------------------------------------------------
def test_queue_returns_results_in_submission_order(warehouse, make_level3):
    dbs = [make_level3(f"exp-{i}", t0=1.0 + 20.0 * i) for i in range(5)]
    with WriteBehindIngester(warehouse, batch_size=3) as queue:
        for db in dbs:
            queue.submit(db)
        results = queue.flush()
    assert [r.source for r in results] == [str(db) for db in dbs]
    assert len({r.exp_id for r in results}) == 5
    assert len(warehouse.experiments()) == 5


def test_queue_dedups_against_catalogue(warehouse, make_level3):
    db = make_level3("alpha")
    warehouse.ingest(db)
    with WriteBehindIngester(warehouse) as queue:
        queue.submit(db)
        results = queue.flush()
    assert results[0].duplicate


def test_queue_isolates_corrupt_package(warehouse, make_level3, tmp_path):
    good = make_level3("alpha")
    bad = tmp_path / "corrupt.db"
    bad.write_bytes(b"this is not a database")
    queue = WriteBehindIngester(warehouse, batch_size=4)
    queue.submit(good)
    queue.submit(bad)
    with pytest.raises(StorageError, match="ingest queue failures"):
        queue.close()
    assert len(warehouse.experiments()) == 1  # the good one landed


def test_queue_rejects_submissions_after_close(warehouse, make_level3):
    queue = WriteBehindIngester(warehouse)
    queue.submit(make_level3("alpha"))
    queue.close()
    with pytest.raises(StorageError):
        queue.submit(make_level3("beta", t0=30.0))
