"""Unit tests for hierarchical deterministic RNG streams."""

import pytest

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_deterministic():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)


def test_derive_seed_sensitive_to_every_component():
    base = derive_seed(1, "a", 2)
    assert derive_seed(2, "a", 2) != base
    assert derive_seed(1, "b", 2) != base
    assert derive_seed(1, "a", 3) != base
    assert derive_seed(1, "a") != base


def test_derive_seed_component_types():
    # Every supported type participates without collisions among kinds.
    seeds = {
        derive_seed(1, "x"),
        derive_seed(1, b"x"),
        derive_seed(1, 120),  # ord('x') — must differ from "x" and b"x"
        derive_seed(1, 1.5),
        derive_seed(1, True),
        derive_seed(1, None),
    }
    assert len(seeds) == 6


def test_derive_seed_rejects_unsupported_types():
    with pytest.raises(TypeError):
        derive_seed(1, object())


def test_derive_seed_known_value_stability():
    # Pin one value: if the derivation scheme ever changes, stored
    # experiments stop being reproducible — this must be a loud failure.
    assert derive_seed(42, "run", 0) == derive_seed(42, "run", 0)
    assert derive_seed(42) == int.from_bytes(
        __import__("hashlib").sha256(b"i:42").digest()[:16], "big"
    )


def test_stream_caching_continues_sequence():
    reg = RngRegistry(7)
    first = reg.stream("s").random()
    second = reg.stream("s").random()
    assert first != second  # same generator advancing, not reseeded


def test_fresh_restarts_sequence():
    reg = RngRegistry(7)
    assert reg.fresh("s").random() == reg.fresh("s").random()


def test_streams_are_independent():
    reg = RngRegistry(7)
    a = [reg.fresh("a").random() for _ in range(3)]
    b = [reg.fresh("b").random() for _ in range(3)]
    assert a != b


def test_interleaving_does_not_perturb_streams():
    reg1 = RngRegistry(7)
    sole = [reg1.stream("x").random() for _ in range(5)]

    reg2 = RngRegistry(7)
    mixed = []
    for i in range(5):
        reg2.stream("noise").random()  # a concurrent consumer
        mixed.append(reg2.stream("x").random())
    assert sole == mixed


def test_child_registry_namespacing():
    reg = RngRegistry(7)
    child = reg.child("component")
    assert child.root_seed == derive_seed(7, "component")
    assert child.fresh("s").random() != reg.fresh("s").random()


def test_registries_with_same_seed_agree():
    a, b = RngRegistry(99), RngRegistry(99)
    assert a.fresh("k", 1).getrandbits(64) == b.fresh("k", 1).getrandbits(64)
