"""Unit tests for the bucketed event wheel."""

import pytest

from repro.sim.wheel import MAX_BUCKET_WIDTH, MIN_BUCKET_WIDTH, EventWheel


def _entry(at, seq):
    return (at, seq, lambda: None, ())


def _drain(wheel):
    out = []
    while True:
        entry = wheel.pop()
        if entry is None:
            return out
        out.append((entry[0], entry[1]))


def test_constructor_validation():
    with pytest.raises(ValueError):
        EventWheel(bucket_count=0)
    with pytest.raises(ValueError):
        EventWheel(bucket_width=MIN_BUCKET_WIDTH / 10)
    with pytest.raises(ValueError):
        EventWheel(bucket_width=MAX_BUCKET_WIDTH * 10)


def test_pops_in_time_order():
    wheel = EventWheel()
    times = [0.5, 0.003, 0.25, 0.0, 0.9991]
    for seq, at in enumerate(times):
        wheel.push(_entry(at, seq))
    assert [t for t, _ in _drain(wheel)] == sorted(times)
    assert len(wheel) == 0


def test_sequence_breaks_time_ties():
    wheel = EventWheel()
    for seq in (3, 1, 2, 0):
        wheel.push(_entry(0.25, seq))
    assert _drain(wheel) == [(0.25, 0), (0.25, 1), (0.25, 2), (0.25, 3)]


def test_overflow_entries_come_back_in_order():
    # Horizon with defaults is 1024 * 0.001 = 1.024 s; everything later
    # lands in the overflow heap and re-enters through rotation.
    wheel = EventWheel()
    times = [5.0, 0.5, 120.0, 1.5, 0.001, 77.25]
    for seq, at in enumerate(times):
        wheel.push(_entry(at, seq))
    assert [t for t, _ in _drain(wheel)] == sorted(times)
    assert wheel.rotations >= 1


def test_same_instant_push_during_drain_is_seen():
    # A callback scheduling another callback at the *same* instant must
    # run before anything later — the clamped cursor-bucket insert.
    wheel = EventWheel()
    wheel.push(_entry(0.5, 0))
    wheel.push(_entry(0.6, 1))
    first = wheel.pop()
    assert first[0] == 0.5
    wheel.push(_entry(0.5, 2))  # behind the cursor's left edge
    assert _drain(wheel) == [(0.5, 2), (0.6, 1)]


def test_push_after_window_drained_before_reanchor():
    # Drain the whole near window, then push before the next peek; the
    # entry must go to overflow (cursor == bucket_count) and still pop.
    wheel = EventWheel(bucket_count=4, bucket_width=0.001)
    wheel.push(_entry(0.0035, 0))
    assert wheel.pop()[0] == 0.0035
    wheel._cursor = wheel._bucket_count  # simulate fully-scanned window
    wheel.push(_entry(0.0035, 1))
    assert _drain(wheel) == [(0.0035, 1)]


def test_retune_widens_sparse_window():
    wheel = EventWheel(bucket_count=64, bucket_width=0.001)
    # One event per window → drained << count/4 → width doubles at rotate.
    width0 = wheel.bucket_width
    for seq in range(4):
        wheel.push(_entry(seq * 10.0 + 0.01, seq))
    _drain(wheel)
    assert wheel.bucket_width > width0
    assert wheel.resizes >= 1


def test_retune_narrows_dense_window():
    wheel = EventWheel(bucket_count=4, bucket_width=0.001)
    # >> 4*count events inside one window → width halves at rotate.
    for seq in range(64):
        wheel.push(_entry(0.0001 * (seq % 30), seq))
    wheel.push(_entry(1.0, 64))  # forces a rotation after the burst
    _drain(wheel)
    assert wheel.bucket_width < 0.001


def test_retune_respects_width_bounds():
    wheel = EventWheel(bucket_count=1, bucket_width=MAX_BUCKET_WIDTH)
    wheel.push(_entry(MAX_BUCKET_WIDTH * 3, 0))  # sparse → wants to double
    _drain(wheel)
    assert wheel.bucket_width <= MAX_BUCKET_WIDTH


def test_peek_does_not_remove():
    wheel = EventWheel()
    wheel.push(_entry(0.1, 0))
    assert wheel.peek()[0] == 0.1
    assert wheel.peek()[0] == 0.1
    assert len(wheel) == 1


def test_pop_ready_after_peek():
    wheel = EventWheel()
    wheel.push(_entry(0.1, 0))
    wheel.push(_entry(0.2, 1))
    head = wheel.peek()
    wheel.pop_ready()
    assert head[0] == 0.1
    assert wheel.peek()[0] == 0.2


def test_pop_until_respects_limit():
    wheel = EventWheel()
    wheel.push(_entry(0.1, 0))
    wheel.push(_entry(0.5, 1))
    assert wheel.pop_until(0.3)[0] == 0.1
    assert wheel.pop_until(0.3) is None  # head beyond limit stays queued
    assert len(wheel) == 1
    assert wheel.pop_until(None)[0] == 0.5
    assert wheel.pop_until(None) is None  # empty


def test_pop_until_rotates_through_overflow():
    wheel = EventWheel(bucket_count=4, bucket_width=0.001)
    wheel.push(_entry(50.0, 0))
    assert wheel.pop_until(100.0)[0] == 50.0


def test_clear_resets():
    wheel = EventWheel()
    for seq, at in enumerate([0.1, 5.0, 99.0]):
        wheel.push(_entry(at, seq))
    wheel.clear()
    assert len(wheel) == 0
    assert wheel.pop() is None


def test_empty_wheel_pops_none():
    wheel = EventWheel()
    assert wheel.peek() is None
    assert wheel.pop() is None
    assert wheel.pop_until(None) is None
