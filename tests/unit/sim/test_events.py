"""Unit tests for the waitable event primitives."""

import pytest

from repro.sim.events import EventAlreadyTriggered, ensure_waitable


def test_trigger_sets_state_and_value(sim):
    ev = sim.event("e")
    assert not ev.triggered and ev.value is None
    ev.trigger(41)
    assert ev.triggered and ev.value == 41


def test_double_trigger_rejected(sim):
    ev = sim.event()
    ev.trigger()
    with pytest.raises(EventAlreadyTriggered):
        ev.trigger()


def test_succeed_alias(sim):
    ev = sim.event()
    ev.succeed("x")
    assert ev.value == "x"


def test_callbacks_run_asynchronously(sim):
    ev = sim.event()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    ev.trigger("v")
    assert seen == []  # not re-entrant
    sim.run()
    assert seen == ["v"]


def test_callback_after_trigger_still_fires(sim):
    ev = sim.event()
    ev.trigger("v")
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["v"]


def test_discard_callback(sim):
    ev = sim.event()
    seen = []
    cb = lambda e: seen.append(1)  # noqa: E731
    ev.add_callback(cb)
    ev.discard_callback(cb)
    ev.trigger()
    sim.run()
    assert seen == []


def test_timeout_delivers_delay_as_value(sim):
    results = []

    def proc():
        value = yield sim.timeout(2.5)
        results.append((sim.now, value))

    sim.process(proc())
    sim.run()
    assert results == [(2.5, 2.5)]


def test_timeout_custom_value(sim):
    results = []

    def proc():
        value = yield sim.timeout(1.0, value="custom")
        results.append(value)

    sim.process(proc())
    sim.run()
    assert results == ["custom"]


def test_negative_timeout_rejected(sim):
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_any_of_first_wins(sim):
    results = []

    def proc():
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(5.0, value="slow")
        fired, value = yield sim.any_of(slow, fast)
        results.append((fired is fast, value, sim.now))

    sim.process(proc())
    sim.run()
    assert results == [(True, "fast", 1.0)]


def test_any_of_with_pretriggered_child(sim):
    ev = sim.event()
    ev.trigger("early")
    results = []

    def proc():
        fired, value = yield sim.any_of(ev, sim.timeout(10.0))
        results.append((fired is ev, value))

    sim.process(proc())
    sim.run(until=1.0)
    assert results == [(True, "early")]


def test_all_of_collects_values_in_order(sim):
    results = []

    def proc():
        a = sim.timeout(3.0, value="a")
        b = sim.timeout(1.0, value="b")
        values = yield sim.all_of(a, b)
        results.append((values, sim.now))

    sim.process(proc())
    sim.run()
    assert results == [(["a", "b"], 3.0)]


def test_all_of_with_already_triggered(sim):
    ev = sim.event()
    ev.trigger("pre")
    results = []

    def proc():
        values = yield sim.all_of(ev, sim.timeout(1.0, value="t"))
        results.append(values)

    sim.process(proc())
    sim.run()
    assert results == [["pre", 1.0 if False else "t"]] or results == [["pre", "t"]]


def test_condition_requires_children(sim):
    with pytest.raises(ValueError):
        sim.any_of()
    with pytest.raises(ValueError):
        sim.all_of()


def test_ensure_waitable_rejects_non_events(sim):
    with pytest.raises(TypeError):
        ensure_waitable(42)
    assert ensure_waitable(sim.event()) is not None


def test_uid_is_creation_ordered(sim):
    a, b = sim.event(), sim.event()
    assert a.uid < b.uid
