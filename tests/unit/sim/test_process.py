"""Unit tests for generator-backed processes."""

import pytest

from repro.sim.kernel import SimulationError
from repro.sim.process import Interrupt


def test_process_runs_and_returns(sim):
    def worker():
        yield sim.timeout(1.0)
        return "result"

    proc = sim.process(worker())
    sim.run()
    assert not proc.alive
    assert proc.triggered and proc.value == "result"


def test_join_by_yielding_process(sim):
    results = []

    def worker():
        yield sim.timeout(2.0)
        return 99

    def joiner(p):
        value = yield p
        results.append((value, sim.now))

    p = sim.process(worker())
    sim.process(joiner(p))
    sim.run()
    assert results == [(99, 2.0)]


def test_process_starts_asynchronously(sim):
    seen = []

    def worker():
        seen.append(sim.now)
        yield sim.timeout(0)

    sim.process(worker())
    assert seen == []  # not started synchronously at spawn
    sim.run()
    assert seen == [0.0]


def test_interrupt_delivers_cause(sim):
    causes = []

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as exc:
            causes.append((exc.cause, sim.now))

    proc = sim.process(sleeper())
    sim.call_later(3.0, lambda: proc.interrupt("stop-now"))
    sim.run()
    assert causes == [("stop-now", 3.0)]


def test_uncaught_interrupt_is_clean_termination(sim):
    def sleeper():
        yield sim.timeout(100)

    proc = sim.process(sleeper())
    sim.call_later(1.0, lambda: proc.interrupt())
    sim.run()  # must not raise
    assert not proc.alive
    assert proc.error is None


def test_interrupt_dead_process_is_noop(sim):
    def quick():
        yield sim.timeout(0.1)

    proc = sim.process(quick())
    sim.run()
    proc.interrupt("late")
    sim.run()
    assert proc.error is None


def test_interrupted_process_can_continue(sim):
    log = []

    def resilient():
        try:
            yield sim.timeout(100)
        except Interrupt:
            log.append("interrupted")
        yield sim.timeout(1.0)
        log.append(sim.now)

    proc = sim.process(resilient())
    sim.call_later(2.0, lambda: proc.interrupt())
    sim.run()
    assert log == ["interrupted", 3.0]


def test_crash_reports_error(sim):
    def bad():
        yield sim.timeout(1.0)
        raise ValueError("broken")

    proc = sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()
    assert isinstance(proc.error, ValueError)
    assert not proc.alive


def test_yielding_garbage_crashes_process(sim):
    def bad():
        yield "not a waitable"

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_subgenerator_delegation(sim):
    def inner():
        yield sim.timeout(1.0)
        return "inner-value"

    def outer():
        value = yield from inner()
        yield sim.timeout(1.0)
        return f"outer({value})"

    proc = sim.process(outer())
    sim.run()
    assert proc.value == "outer(inner-value)"
    assert sim.now == 2.0


def test_two_processes_interleave(sim):
    log = []

    def ticker(name, period):
        for _ in range(3):
            yield sim.timeout(period)
            log.append((name, sim.now))

    sim.process(ticker("a", 1.0))
    sim.process(ticker("b", 1.5))
    sim.run()
    # At t=3.0 both fire; b's timeout was *scheduled* earlier (at t=1.5
    # vs t=2.0), so the kernel's schedule-order tie-break runs b first.
    assert log == [
        ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0), ("a", 3.0), ("b", 4.5)
    ]
