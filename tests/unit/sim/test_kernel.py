"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_time_starts_at_zero(sim):
    assert sim.now == 0.0


def test_custom_start_time():
    assert Simulator(start_time=42.5).now == 42.5


def test_call_later_advances_time(sim):
    seen = []
    sim.call_later(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]


def test_call_at_absolute(sim):
    seen = []
    sim.call_later(1.0, lambda: sim.call_at(5.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [5.0]


def test_call_at_past_rejected(sim):
    sim.call_later(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.call_later(-0.1, lambda: None)


def test_call_later_passes_args(sim):
    seen = []
    sim.call_later(0.5, lambda *a: seen.append(a), "x", 7)
    sim.run()
    assert seen == [("x", 7)]


def test_call_at_passes_args(sim):
    seen = []
    sim.call_at(0.5, lambda *a: seen.append(a), "y", 8)
    sim.run()
    assert seen == [("y", 8)]


def test_args_survive_mixed_ordering(sim):
    # Args-carrying and closure-style events interleave deterministically.
    order = []
    sim.call_later(1.0, order.append, "args-a")
    sim.call_later(1.0, lambda: order.append("closure"))
    sim.call_later(1.0, order.append, "args-b")
    sim.run()
    assert order == ["args-a", "closure", "args-b"]


def test_fifo_order_at_same_instant(sim):
    order = []
    for i in range(5):
        sim.call_later(1.0, lambda i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_time_order_across_instants(sim):
    order = []
    sim.call_later(3.0, lambda: order.append("c"))
    sim.call_later(1.0, lambda: order.append("a"))
    sim.call_later(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_horizon(sim):
    seen = []
    sim.call_later(1.0, lambda: seen.append("early"))
    sim.call_later(10.0, lambda: seen.append("late"))
    sim.run(until=5.0)
    assert seen == ["early"]
    assert sim.now == 5.0
    assert sim.pending == 1


def test_run_until_advances_clock_even_with_empty_queue(sim):
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_run_until_event_returns_value(sim):
    ev = sim.event()
    sim.call_later(2.0, lambda: ev.trigger("payload"))
    sim.call_later(50.0, lambda: None)
    assert sim.run(until_event=ev) == "payload"
    assert sim.now == pytest.approx(2.0)


def test_step_returns_false_when_empty(sim):
    assert sim.step() is False


def test_executed_callbacks_counter(sim):
    for _ in range(3):
        sim.call_later(0.1, lambda: None)
    sim.run()
    assert sim.executed_callbacks == 3


def test_crash_raises_simulation_error(sim):
    def boom():
        yield sim.timeout(1.0)
        raise RuntimeError("bang")

    sim.process(boom())
    with pytest.raises(SimulationError, match="bang"):
        sim.run()


def test_crash_suppressible(sim):
    def boom():
        yield sim.timeout(1.0)
        raise RuntimeError("bang")

    proc = sim.process(boom())
    sim.run(raise_on_crash=False)
    crashed = sim.drain_crashes()
    assert crashed == [proc]
    assert isinstance(proc.error, RuntimeError)


def test_realtime_factor_paces_wall_clock():
    import time

    sim = Simulator()
    seen = []
    sim.call_later(0.05, lambda: seen.append(sim.now))
    t0 = time.monotonic()
    sim.run(realtime_factor=1.0)
    elapsed = time.monotonic() - t0
    assert seen == [0.05]
    assert elapsed >= 0.04  # paced, not instantaneous


def test_realtime_factor_speedup_is_faster():
    import time

    sim = Simulator()
    sim.call_later(0.2, lambda: None)
    t0 = time.monotonic()
    sim.run(realtime_factor=10.0)
    assert time.monotonic() - t0 < 0.15
