"""Unit tests for the echo agent's action surface and edge paths."""

import pytest

from repro.procs.echo import EchoAgent, EchoPlugin


@pytest.fixture
def echo_pair(pair_net, rngs):
    sim, _medium, a, b = pair_net
    agents = {}
    events = {}
    for node in (a, b):
        log = []
        events[node.name] = log

        def emit(name, params=(), _log=log):
            _log.append((sim.now, name, tuple(params)))

        agent = EchoAgent(sim, node, rngs, emit)
        agent.reset(0)
        agents[node.name] = agent
    return sim, agents, events, a, b


def test_roundtrip(echo_pair):
    sim, agents, events, a, b = echo_pair
    agents["h0"].action_init({"role": "server"})
    agents["h1"].action_init({"role": "client", "peer": a.address,
                              "rate": 20.0, "deadline": 0.5})
    agents["h1"].action_start({})
    sim.run(until=1.0)
    agents["h1"].action_stop({})
    replies = [e for e in events["h1"] if e[1] == "echo_reply"]
    assert len(replies) >= 15
    assert agents["h1"].rtts and all(r > 0 for r in agents["h1"].rtts)


def test_invalid_role_and_missing_peer(echo_pair):
    _sim, agents, _events, _a, _b = echo_pair
    with pytest.raises(ValueError, match="client or server"):
        agents["h0"].action_init({"role": "queen"})
    with pytest.raises(ValueError, match="peer"):
        agents["h0"].action_init({"role": "client"})


def test_double_init_rejected(echo_pair):
    _sim, agents, _events, a, _b = echo_pair
    agents["h0"].action_init({"role": "server"})
    with pytest.raises(RuntimeError, match="while initialized"):
        agents["h0"].action_init({"role": "server"})


def test_start_requires_client_role(echo_pair):
    _sim, agents, _events, _a, _b = echo_pair
    agents["h0"].action_init({"role": "server"})
    with pytest.raises(RuntimeError, match="client action"):
        agents["h0"].action_start({})


def test_timeout_when_server_absent(echo_pair):
    sim, agents, events, a, _b = echo_pair
    # Client probes an address nobody serves.
    agents["h1"].action_init({"role": "client", "peer": a.address,
                              "rate": 10.0, "deadline": 0.2})
    agents["h1"].action_start({})
    sim.run(until=1.5)
    timeouts = [e for e in events["h1"] if e[1] == "echo_timeout"]
    assert timeouts
    assert not [e for e in events["h1"] if e[1] == "echo_reply"]


def test_exit_frees_port_and_allows_reinit(echo_pair):
    sim, agents, events, _a, _b = echo_pair
    agents["h0"].action_init({"role": "server"})
    agents["h0"].action_exit({})
    assert events["h0"][-1][1] == "echo_exit_done"
    agents["h0"].action_init({"role": "server"})  # port was released


def test_reset_reseeds_and_clears(echo_pair):
    sim, agents, _events, a, _b = echo_pair
    agents["h1"].action_init({"role": "client", "peer": a.address})
    agents["h1"].rtts.append(1.0)
    agents["h1"].reset(3)
    assert agents["h1"].role is None
    assert agents["h1"].rtts == []
    agents["h1"].action_init({"role": "client", "peer": a.address})


def test_plugin_specs_cover_actions():
    names = {spec.name for spec in EchoPlugin().action_specs()}
    assert names == {"echo_init", "echo_start", "echo_stop", "echo_exit"}
