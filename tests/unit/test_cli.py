"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.paper import full_paper_experiment_xml
from repro.sd.processlib import build_two_party_description
from repro.core.xmlio import description_to_xml


@pytest.fixture
def desc_xml(tmp_path):
    path = tmp_path / "exp.xml"
    desc = build_two_party_description(
        name="cli-test", seed=3, replications=1, env_count=2,
    )
    path.write_text(description_to_xml(desc), encoding="utf-8")
    return path


@pytest.fixture
def paper_xml(tmp_path):
    path = tmp_path / "paper.xml"
    path.write_text(full_paper_experiment_xml(replications=1), encoding="utf-8")
    return path


def test_validate_ok(desc_xml, capsys):
    assert main(["validate", str(desc_xml)]) == 0
    out = capsys.readouterr().out
    assert "OK:" in out and "cli-test" in out


def test_validate_broken_description(tmp_path, capsys):
    path = tmp_path / "broken.xml"
    path.write_text(
        '<experiment name="b" seed="1">'
        "<processes><node_process>"
        '<actor id="a0"><actions><sd_frobnicate/></actions></actor>'
        "</node_process></processes></experiment>",
        encoding="utf-8",
    )
    assert main(["validate", str(path)]) == 1
    out = capsys.readouterr().out
    assert "error:" in out


def test_validate_unparseable_file(tmp_path, capsys):
    path = tmp_path / "junk.xml"
    path.write_text("not xml at all", encoding="utf-8")
    assert main(["validate", str(path)]) == 2
    assert "error:" in capsys.readouterr().err


def test_missing_file_is_clean_error(tmp_path, capsys):
    assert main(["validate", str(tmp_path / "ghost.xml")]) == 2
    assert "error:" in capsys.readouterr().err


def test_describe_with_plan(desc_xml, capsys):
    assert main(["describe", str(desc_xml), "--plan"]) == 0
    out = capsys.readouterr().out
    assert "experiment 'cli-test'" in out
    assert "treatment plan" in out


def test_run_inspect_timeline_condition_import(desc_xml, tmp_path, capsys):
    store = tmp_path / "l2"
    db = tmp_path / "exp.db"
    assert main(["run", str(desc_xml), "--store", str(store),
                 "--db", str(db), "--topology", "full"]) == 0
    out = capsys.readouterr().out
    assert "1/1 runs executed" in out
    assert db.exists()

    assert main(["inspect", str(db)]) == 0
    out = capsys.readouterr().out
    assert "discovery: 1/1 complete" in out

    assert main(["timeline", str(db), "--run", "0"]) == 0
    out = capsys.readouterr().out
    assert "t_R" in out and "legend:" in out

    assert main(["timeline", str(db), "--run", "99"]) == 1

    # Condition the same level-2 store into a second database: identical
    # content, so importing both dedups onto one catalogued experiment.
    db2 = tmp_path / "exp2.db"
    assert main(["condition", str(store), str(db2)]) == 0
    assert db2.exists()

    repo = tmp_path / "repo.db"
    assert main(["import", str(repo), str(db), str(db2)]) == 0
    out = capsys.readouterr().out
    assert out.count("as experiment #1") == 2
    assert "repository now holds 1 experiment(s)" in out


def test_run_resume_flow(desc_xml, tmp_path, capsys):
    store = tmp_path / "l2"
    assert main(["run", str(desc_xml), "--store", str(store), "--quiet"]) == 0
    # A second plain run against the same store must refuse...
    assert main(["run", str(desc_xml), "--store", str(store)]) == 2
    assert "journal" in capsys.readouterr().err
    # ...and --resume on a completed store explains itself too.
    assert main(["run", str(desc_xml), "--store", str(store), "--resume"]) == 2


def test_run_with_slp_protocol(tmp_path, capsys):
    from repro.sd.processlib import build_three_party_description

    path = tmp_path / "three.xml"
    desc = build_three_party_description(
        name="cli-slp", seed=5, replications=1, env_count=2,
    )
    path.write_text(description_to_xml(desc), encoding="utf-8")
    db = tmp_path / "three.db"
    assert main(["run", str(path), "--store", str(tmp_path / "l2"),
                 "--db", str(db), "--protocol", "slp", "--quiet"]) == 0
    assert main(["inspect", str(db)]) == 0
    assert "1/1 complete" in capsys.readouterr().out


def test_paper_document_through_cli(paper_xml, tmp_path, capsys):
    assert main(["validate", str(paper_xml)]) == 0
    assert "6 runs" in capsys.readouterr().out


def test_run_realtime_flag(desc_xml, tmp_path, capsys):
    """--realtime uses the wall-clock-paced platform."""
    assert main([
        "run", str(desc_xml), "--store", str(tmp_path / "rt"),
        "--realtime", "500", "--topology", "full", "--quiet",
    ]) == 0
    from repro.core.recovery import Journal
    from repro.storage.level2 import Level2Store

    assert Journal(Level2Store(tmp_path / "rt")).finished()


def test_paper_xml_command(capsys):
    assert main(["paper-xml", "--replications", "3", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert '<experiment name="paper-sd-two-party" seed="9">' in out
    assert ">3</replicationfactor>" in out
    # The emitted document is immediately loadable.
    from repro.core.xmlio import description_from_xml

    desc = description_from_xml(out)
    assert desc.factors.replication.count == 3


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
