"""Unit tests for campaign telemetry aggregation."""

from repro.campaign.telemetry import CampaignTelemetry


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def _telemetry(total=10, emit=None):
    clock = FakeClock()
    t = CampaignTelemetry(total_runs=total, emit=emit, clock=clock)
    return t, clock


def test_counters_and_in_flight():
    t, clock = _telemetry()
    t.campaign_started()
    t.run_started(0, "w0")
    t.run_started(1, "w1")
    assert t.in_flight == 2
    clock.now += 2.0
    t.run_completed(0, "w0", duration=2.0)
    assert t.in_flight == 1
    assert t.completed == 1 and t.staged == 1
    t.run_failed(1, "w1", "boom", requeued=True)
    assert t.in_flight == 0
    assert t.retried == 1 and t.failed == 0
    t.run_started(1, "w1")
    t.run_failed(1, "w1", "boom again", requeued=False)
    assert t.failed == 1


def test_resume_counts_staged_runs():
    t, _ = _telemetry(total=10)
    t.campaign_started(skipped=4)
    assert t.staged == 4
    t.run_started(4, "w0")
    t.run_completed(4, "w0", duration=0.5)
    assert t.staged == 5


def test_throughput_and_eta_use_injected_clock():
    t, clock = _telemetry(total=10)
    t.campaign_started()
    clock.now += 5.0
    for run_id in range(2):
        t.run_started(run_id, "w0")
        t.run_completed(run_id, "w0", duration=1.0)
    assert t.throughput() == 2 / 5.0
    assert t.eta_seconds() == (10 - 2) / (2 / 5.0)


def test_progress_lines_reach_the_sink():
    lines = []
    t, clock = _telemetry(total=3, emit=lines.append)
    t.campaign_started(skipped=1)
    t.run_started(1, "w0")
    clock.now += 1.0
    t.run_completed(1, "w0", duration=1.0)
    t.merge_started(3)
    assert any("resume" in line for line in lines)
    assert any("run 1 ok" in line for line in lines)
    assert any("merging 3 runs" in line for line in lines)
    assert lines and all(isinstance(line, str) for line in lines)


def test_worker_summary_is_sorted_and_complete():
    t, _ = _telemetry()
    t.campaign_started()
    for run_id, worker in ((0, "w1"), (1, "w0"), (2, "w1")):
        t.run_started(run_id, worker)
        t.run_completed(run_id, worker, duration=0.1)
    summary = t.summary()
    assert list(summary["workers"]) == ["w0", "w1"]
    assert summary["workers"]["w1"]["completed"] == 2
    assert summary["completed"] == 3


# ----------------------------------------------------------------------
# Regressions: uninitialized start time and stale WorkerStatus.since
# ----------------------------------------------------------------------
def test_throughput_zero_before_campaign_started():
    """A completion callback before campaign_started() must not divide by
    the monotonic clock's arbitrary origin (used to yield a near-zero rate
    and an ETA of days)."""
    t, clock = _telemetry(total=10)
    clock.now = 9000.0  # far from zero, like any real monotonic reading
    t.run_started(0, "w0")
    t.run_completed(0, "w0", duration=1.0)
    assert t.started_at is None
    assert t.throughput() == 0.0
    assert t.eta_seconds() is None
    # The progress line must not advertise a bogus ETA either.
    assert "eta" not in t.progress_line()


def test_eta_uses_this_sessions_rate_after_start():
    t, clock = _telemetry(total=10)
    clock.now = 9000.0
    t.campaign_started()
    clock.now += 4.0
    t.run_started(0, "w0")
    t.run_completed(0, "w0", duration=4.0)
    assert t.throughput() == 1 / 4.0
    assert t.eta_seconds() == (10 - 1) / (1 / 4.0)


def test_worker_since_resets_on_completion():
    t, clock = _telemetry()
    t.campaign_started()
    t.run_started(0, "w0")
    started_since = t.workers["w0"].since
    clock.now += 3.0
    t.run_completed(0, "w0", duration=3.0)
    status = t.workers["w0"]
    assert status.run_id is None
    assert status.since == clock.now != started_since
    clock.now += 2.0
    t.run_started(1, "w0")
    assert t.workers["w0"].since == clock.now


def test_worker_since_resets_on_failure():
    t, clock = _telemetry()
    t.campaign_started()
    t.run_started(0, "w0")
    clock.now += 1.5
    t.run_failed(0, "w0", "boom", requeued=True)
    assert t.workers["w0"].since == clock.now
    assert t.workers["w0"].run_id is None


def test_busy_seconds_accumulates_per_worker():
    from repro.obs.metrics import MetricsRegistry, set_registry

    registry = MetricsRegistry()
    set_registry(registry)
    try:
        t, clock = _telemetry()
        t.campaign_started()
        t.run_started(0, "w0")
        clock.now += 2.0
        t.run_completed(0, "w0", duration=2.0)
        t.run_started(1, "w0")
        clock.now += 3.0
        t.run_failed(1, "w0", "boom", requeued=False)
        # An idle->idle transition (no run in flight) adds nothing.
        t.run_failed(99, "w0", "spurious", requeued=False)
        status = t.workers["w0"]
        assert status.busy_seconds == 5.0
        gauge = registry.gauge(
            "repro_campaign_worker_busy_seconds",
            labels=("worker",),
        )
        assert gauge.value(worker="w0") == 5.0
        assert t.summary()["workers"]["w0"]["busy_seconds"] == 5.0
    finally:
        set_registry(None)


def test_phase_aggregation_in_summary():
    t, _ = _telemetry()
    t.campaign_started()
    t.run_phases({"preparation": 1.0, "execution": 4.0})
    t.run_phases({"preparation": 3.0, "execution": 2.0, "cleanup": 0.5})
    phases = t.summary()["phases"]
    assert list(phases) == ["preparation", "execution", "cleanup"]
    assert phases["preparation"]["count"] == 2
    assert phases["preparation"]["p50"] == 1.0
    assert phases["execution"]["max"] == 4.0
