"""Unit tests for campaign telemetry aggregation."""

from repro.campaign.telemetry import CampaignTelemetry


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def _telemetry(total=10, emit=None):
    clock = FakeClock()
    t = CampaignTelemetry(total_runs=total, emit=emit, clock=clock)
    return t, clock


def test_counters_and_in_flight():
    t, clock = _telemetry()
    t.campaign_started()
    t.run_started(0, "w0")
    t.run_started(1, "w1")
    assert t.in_flight == 2
    clock.now += 2.0
    t.run_completed(0, "w0", duration=2.0)
    assert t.in_flight == 1
    assert t.completed == 1 and t.staged == 1
    t.run_failed(1, "w1", "boom", requeued=True)
    assert t.in_flight == 0
    assert t.retried == 1 and t.failed == 0
    t.run_started(1, "w1")
    t.run_failed(1, "w1", "boom again", requeued=False)
    assert t.failed == 1


def test_resume_counts_staged_runs():
    t, _ = _telemetry(total=10)
    t.campaign_started(skipped=4)
    assert t.staged == 4
    t.run_started(4, "w0")
    t.run_completed(4, "w0", duration=0.5)
    assert t.staged == 5


def test_throughput_and_eta_use_injected_clock():
    t, clock = _telemetry(total=10)
    t.campaign_started()
    clock.now += 5.0
    for run_id in range(2):
        t.run_started(run_id, "w0")
        t.run_completed(run_id, "w0", duration=1.0)
    assert t.throughput() == 2 / 5.0
    assert t.eta_seconds() == (10 - 2) / (2 / 5.0)


def test_progress_lines_reach_the_sink():
    lines = []
    t, clock = _telemetry(total=3, emit=lines.append)
    t.campaign_started(skipped=1)
    t.run_started(1, "w0")
    clock.now += 1.0
    t.run_completed(1, "w0", duration=1.0)
    t.merge_started(3)
    assert any("resume" in line for line in lines)
    assert any("run 1 ok" in line for line in lines)
    assert any("merging 3 runs" in line for line in lines)
    assert lines and all(isinstance(line, str) for line in lines)


def test_worker_summary_is_sorted_and_complete():
    t, _ = _telemetry()
    t.campaign_started()
    for run_id, worker in ((0, "w1"), (1, "w0"), (2, "w1")):
        t.run_started(run_id, worker)
        t.run_completed(run_id, worker, duration=0.1)
    summary = t.summary()
    assert list(summary["workers"]) == ["w0", "w1"]
    assert summary["workers"]["w1"]["completed"] == 2
    assert summary["completed"] == 3
