"""Unit tests for sharded level-3 writes and the deterministic merge."""

import sqlite3

import pytest

from repro import ExperiMaster, Level2Store, store_level3
from repro.campaign.merge import ShardWriter, database_digest, merge_shards
from repro.core.errors import StorageError
from repro.platforms.simulated import SimulatedPlatform
from repro.sd.processlib import build_two_party_description
from repro.storage.level3 import RUN_TABLES


@pytest.fixture(scope="module")
def executed_store(tmp_path_factory):
    """A completed 2-run experiment's level-2 store (shared, read-only)."""
    root = tmp_path_factory.mktemp("store")
    desc = build_two_party_description(name="mrg", seed=11, replications=2, env_count=1)
    master = ExperiMaster(SimulatedPlatform(desc), desc, Level2Store(root))
    master.execute()
    return Level2Store(root)


def _row_counts(path, run_id):
    conn = sqlite3.connect(str(path))
    try:
        return {
            t: conn.execute(
                f"SELECT COUNT(*) FROM {t} WHERE RunID = ?",
                (run_id,),
            ).fetchone()[0]
            for t in RUN_TABLES
        }
    finally:
        conn.close()


def test_stage_run_is_idempotent(executed_store, tmp_path):
    shard = tmp_path / "w0.db"
    with ShardWriter(shard) as writer:
        writer.stage_run(executed_store, 0)
        once = _row_counts(shard, 0)
        writer.stage_run(executed_store, 0)  # retry/crash re-stage
        assert writer.run_ids() == [0]
    assert _row_counts(shard, 0) == once
    assert once["RunInfos"] > 0 and once["Events"] > 0


def test_merge_matches_serial_store_level3(executed_store, tmp_path):
    """Merging shards reproduces store_level3 byte-for-byte."""
    serial_db = store_level3(executed_store, tmp_path / "serial.db")
    shard = tmp_path / "w0.db"
    with ShardWriter(shard) as writer:
        writer.stage_run(executed_store, 1)  # staged out of order on purpose
        writer.stage_run(executed_store, 0)
    merged = merge_shards(
        tmp_path / "merged.db",
        executed_store,
        {0: shard, 1: shard},
    )
    assert database_digest(merged) == database_digest(serial_db)


def test_merge_refuses_existing_database(executed_store, tmp_path):
    out = tmp_path / "out.db"
    out.write_bytes(b"")
    with pytest.raises(StorageError, match="refusing to overwrite"):
        merge_shards(out, executed_store, {})


def test_merge_missing_shard_raises(executed_store, tmp_path):
    with pytest.raises(StorageError, match="shard database missing"):
        merge_shards(
            tmp_path / "out.db",
            executed_store,
            {0: tmp_path / "nope.db"},
        )


def test_merge_detects_journal_shard_divergence(executed_store, tmp_path):
    shard = tmp_path / "w0.db"
    with ShardWriter(shard) as writer:
        writer.stage_run(executed_store, 0)
    with pytest.raises(StorageError, match="diverged"):
        # Journal claims run 1 lives in this shard; it does not.
        merge_shards(tmp_path / "out.db", executed_store, {0: shard, 1: shard})


def test_database_digest_ignore_columns(executed_store, tmp_path):
    db = store_level3(executed_store, tmp_path / "a.db")
    base = database_digest(db)
    assert database_digest(db) == base  # stable
    assert database_digest(db, ignore_columns=("StartTime",)) != base
    assert database_digest(db, tables=("RunInfos",)) != base
