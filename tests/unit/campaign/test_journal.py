"""Unit tests for the write-ahead campaign journal."""

import json

import pytest

from repro.campaign.journal import CampaignJournal
from repro.core.errors import RecoveryError
from repro.sd.processlib import build_two_party_description


def _desc(seed=7):
    return build_two_party_description(name="jrnl", seed=seed, replications=2)


def _started(journal, desc, total=2, plan_fp="pfp"):
    return journal.record_start(desc.fingerprint(), desc.seed, total, plan_fp)


def test_round_trip_and_session_index(tmp_path):
    journal = CampaignJournal(tmp_path)
    desc = _desc()
    assert not journal.started()
    assert _started(journal, desc) == 0
    journal.record_run_start(0, "s0w00")
    journal.record_run_complete(0, "s0w00", "staging/s0w00/run_000000", "shards/s0w00.db")
    assert journal.started() and not journal.finished()
    assert _started(journal, desc) == 1  # second session
    journal.record_complete()
    assert journal.finished()
    assert journal.session_count() == 2
    assert [e["type"] for e in journal.entries()] == [
        "campaign_start",
        "run_start",
        "run_complete",
        "campaign_start",
        "campaign_complete",
    ]


def test_completed_latest_entry_wins(tmp_path):
    journal = CampaignJournal(tmp_path)
    journal.record_run_complete(3, "s0w00", "staging/old", "shards/old.db")
    journal.record_run_complete(3, "s1w01", "staging/new", "shards/new.db")
    assert journal.completed()[3]["store"] == "staging/new"


def test_prepare_resume_requires_a_start(tmp_path):
    with pytest.raises(RecoveryError, match="nothing to resume"):
        CampaignJournal(tmp_path).prepare_resume(_desc(), 2, "pfp")


def test_prepare_resume_rejects_finished_campaign(tmp_path):
    journal = CampaignJournal(tmp_path)
    _started(journal, _desc())
    journal.record_complete()
    with pytest.raises(RecoveryError, match="already completed"):
        journal.prepare_resume(_desc(), 2, "pfp")


def test_prepare_resume_rejects_changed_description(tmp_path):
    journal = CampaignJournal(tmp_path)
    _started(journal, _desc(seed=7))
    with pytest.raises(RecoveryError):
        journal.prepare_resume(_desc(seed=8), 2, "pfp")


def test_prepare_resume_rejects_changed_plan(tmp_path):
    journal = CampaignJournal(tmp_path)
    _started(journal, _desc(), plan_fp="original")
    with pytest.raises(RecoveryError, match="treatment plan changed"):
        journal.prepare_resume(_desc(), 2, "different")


def test_prepare_resume_drops_entries_with_missing_data(tmp_path):
    journal = CampaignJournal(tmp_path)
    desc = _desc()
    _started(journal, desc)
    # Journaled but its staged data never materialized on disk.
    journal.record_run_complete(0, "s0w00", "staging/gone", "shards/gone.db")
    assert journal.prepare_resume(desc, 2, "pfp") == {}


def test_append_tolerates_blank_lines(tmp_path):
    journal = CampaignJournal(tmp_path)
    _started(journal, _desc())
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write("\n")  # e.g. a torn write that only got the newline out
    journal.record_complete()
    assert journal.finished()


def test_entries_are_plain_jsonl(tmp_path):
    journal = CampaignJournal(tmp_path)
    _started(journal, _desc())
    lines = journal.path.read_text(encoding="utf-8").splitlines()
    assert all(json.loads(line)["type"] for line in lines if line)
