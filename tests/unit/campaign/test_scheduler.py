"""Unit tests for the campaign run scheduler."""

import pytest

from repro.campaign.scheduler import CampaignScheduler, RunTicket
from repro.core.errors import CampaignError
from repro.core.factors import Factor, FactorList, Level, ReplicationFactor, Usage
from repro.core.plan import generate_plan


def _plan(replications=6):
    factors = FactorList(
        [
            Factor(id="f", type="int", usage=Usage.CONSTANT, levels=[Level(1)]),
        ],
        ReplicationFactor(id="rep", count=replications),
    )
    return generate_plan(factors, 42)


def _drain(scheduler):
    order = []
    while True:
        ticket = scheduler.next_ticket()
        if ticket is None:
            return order
        order.append(ticket.run_id)
        scheduler.mark_done(ticket.run_id)


def test_default_dispatch_is_plan_order():
    assert _drain(CampaignScheduler(_plan(), jobs=4)) == [0, 1, 2, 3, 4, 5]


def test_completed_runs_never_scheduled():
    sched = CampaignScheduler(_plan(), completed=[0, 2, 4], jobs=2)
    assert _drain(sched) == [1, 3, 5]
    assert sched.skipped == {0, 2, 4}


def test_priority_callable_reorders_dispatch():
    sched = CampaignScheduler(
        _plan(),
        jobs=1,
        priority=lambda run: -run.run_id,
    )
    assert _drain(sched) == [5, 4, 3, 2, 1, 0]


def test_effective_jobs_capped_by_max_parallel_and_queue():
    assert CampaignScheduler(_plan(), jobs=8).effective_jobs == 6
    assert CampaignScheduler(_plan(), jobs=8, max_parallel=3).effective_jobs == 3
    assert CampaignScheduler(_plan(), jobs=2, max_parallel=3).effective_jobs == 2
    # max_parallel == 0 means "no description-imposed bound"
    assert CampaignScheduler(_plan(), jobs=4, max_parallel=0).effective_jobs == 4


def test_failed_run_requeued_ahead_of_its_class():
    sched = CampaignScheduler(_plan(), jobs=2, max_attempts=2)
    first = sched.next_ticket()
    assert first.run_id == 0
    assert sched.mark_failed(0, "boom") is True  # requeued
    # The retry dispatches before the rest of wave 0.
    assert sched.next_ticket().run_id == 0


def test_attempt_budget_exhausted_records_failure():
    sched = CampaignScheduler(_plan(replications=1), jobs=1, max_attempts=2)
    sched.next_ticket()
    assert sched.mark_failed(0, "first") is True
    sched.next_ticket()
    assert sched.mark_failed(0, "second") is False
    assert sched.failed == {0: "second"}
    assert sched.finished


def test_success_after_retry_clears_failure():
    sched = CampaignScheduler(_plan(replications=1), jobs=1, max_attempts=2)
    sched.next_ticket()
    sched.mark_failed(0, "transient")
    ticket = sched.next_ticket()
    assert ticket.attempts == 2
    sched.mark_done(0)
    assert sched.failed == {}
    assert sched.done == {0}


def test_finished_tracks_queue_and_in_flight():
    sched = CampaignScheduler(_plan(replications=2), jobs=2)
    assert not sched.finished
    a = sched.next_ticket()
    b = sched.next_ticket()
    assert sched.pending == 0 and not sched.finished  # both in flight
    sched.mark_done(a.run_id)
    sched.mark_done(b.run_id)
    assert sched.finished


def test_invalid_parameters_rejected():
    with pytest.raises(CampaignError):
        CampaignScheduler(_plan(), jobs=0)
    with pytest.raises(CampaignError):
        CampaignScheduler(_plan(), max_attempts=0)


def test_ticket_ordering_priority_then_wave_then_run_id():
    plain = RunTicket(priority=0, retry_wave=0, run_id=5, run=None)
    retry = RunTicket(priority=0, retry_wave=-1, run_id=9, run=None)
    urgent = RunTicket(priority=-1, retry_wave=0, run_id=7, run=None)
    assert sorted([plain, retry, urgent]) == [urgent, retry, plain]


def test_next_batch_pops_in_dispatch_order():
    sched = CampaignScheduler(_plan(), jobs=1)
    assert [t.run_id for t in sched.next_batch(4)] == [0, 1, 2, 3]
    assert [t.run_id for t in sched.next_batch(4)] == [4, 5]
    assert sched.next_batch(4) == []
    assert len(sched.in_flight) == 6


def test_release_requeues_without_charging_an_attempt():
    sched = CampaignScheduler(_plan(), jobs=1, max_attempts=2)
    ticket = sched.next_ticket()
    assert ticket.attempts == 1
    assert sched.release(ticket.run_id)
    assert not sched.release(ticket.run_id)  # no longer in flight
    again = sched.next_ticket()
    assert again.run_id == ticket.run_id  # retry-wave promotion
    assert again.attempts == 1  # budget untouched by the release


def test_claim_moves_a_specific_queued_run_in_flight():
    sched = CampaignScheduler(_plan(), jobs=1)
    claimed = sched.claim(3)
    assert claimed.run_id == 3 and claimed.attempts == 1
    assert sched.claim(3) is None  # already in flight
    assert [t.run_id for t in sched.next_batch(6)] == [0, 1, 2, 4, 5]


def test_stale_entry_after_release_ack_race_never_redispatches():
    sched = CampaignScheduler(_plan(), jobs=1)
    ticket = sched.next_ticket()
    sched.release(ticket.run_id)  # lease expired, run requeued ...
    sched.mark_done(ticket.run_id)  # ... then the original ack won
    assert sched.pending == 5  # stale entry not counted
    assert [t.run_id for t in sched.next_batch(10)] == [1, 2, 3, 4, 5]
    for run_id in (1, 2, 3, 4, 5):
        sched.mark_done(run_id)
    assert sched.finished
