"""Unit tests for route reconstruction and replication convergence."""

import pytest

from repro.analysis.convergence import (
    replications_to_converge,
    running_responsiveness,
)
from repro.analysis.routes import (
    forwarding_matrix,
    packet_routes,
    path_statistics,
    route_of,
)
from repro.sd.metrics import RunDiscovery


# ----------------------------------------------------------------------
# Routes
# ----------------------------------------------------------------------
def _obs(uid, node, direction, t, flow="experiment"):
    return {
        "uid": uid, "node": node, "direction": direction,
        "common_time": t, "flow": flow,
    }


def _two_hop_packet(uid=1, t0=0.0):
    """a --tx--> b (rx, tx) --> c (rx)."""
    return [
        _obs(uid, "a", "tx", t0),
        _obs(uid, "b", "rx", t0 + 0.01),
        _obs(uid, "b", "tx", t0 + 0.011),
        _obs(uid, "c", "rx", t0 + 0.02),
    ]


def test_packet_routes_ordered():
    routes = packet_routes(reversed(_two_hop_packet()))
    assert [n for _t, n, _d in routes[1]] == ["a", "b", "b", "c"]


def test_route_of_deduplicates():
    assert route_of(_two_hop_packet(), 1) == ["a", "b", "c"]


def test_route_of_unknown_uid():
    assert route_of(_two_hop_packet(), 99) == []


def test_flow_filter():
    packets = _two_hop_packet() + [_obs(2, "a", "tx", 1.0, flow="generated-load")]
    routes = packet_routes(packets, flow="experiment")
    assert set(routes) == {1}
    routes_all = packet_routes(packets, flow=None)
    assert set(routes_all) == {1, 2}


def test_path_statistics():
    packets = (
        _two_hop_packet(uid=1)
        + _two_hop_packet(uid=2, t0=1.0)
        + [_obs(3, "a", "tx", 2.0)]  # stranded: never seen elsewhere
    )
    stats = path_statistics(packets)
    assert stats["tracked_packets"] == 3
    assert stats["stranded"] == 1
    assert stats["hop_count_distribution"] == {2: 2}


def test_forwarding_matrix():
    matrix = forwarding_matrix(_two_hop_packet())
    assert matrix == {("a", "b"): 1, ("b", "c"): 1}


def test_routes_from_real_experiment(tmp_path):
    from repro import run_experiment
    from repro.platforms.simulated import PlatformConfig
    from repro.sd.processlib import build_two_party_description
    from repro.storage.conditioning import condition_run

    # A line forces multi-hop forwarding between SM and SU.
    desc = build_two_party_description(replications=1, seed=71, env_count=2)
    config = PlatformConfig(topology="line")
    result = run_experiment(desc, store_root=tmp_path / "line", config=config)
    run = condition_run(result.store, 0)
    stats = path_statistics(run.packets)
    assert stats["tracked_packets"] > 0
    # On a 4-node line some experiment packets must have crossed >1 hop.
    assert any(h > 1 for h in stats["hop_count_distribution"])
    matrix = forwarding_matrix(run.packets)
    assert matrix  # links carried traffic


# ----------------------------------------------------------------------
# Convergence
# ----------------------------------------------------------------------
def _outcome(run_id, t_r):
    found = {"sm": t_r} if t_r is not None else {}
    return RunDiscovery(
        run_id=run_id, su_node="su", search_started=0.0,
        found_at=found, required={"sm"},
    )


def test_running_responsiveness_series():
    outcomes = [_outcome(i, 0.1 if i % 2 == 0 else None) for i in range(4)]
    series = running_responsiveness(outcomes, deadline=1.0)
    assert [p["p"] for p in series] == [1.0, 0.5, 2 / 3, 0.5]
    assert all(p["ci_low"] <= p["p"] <= p["ci_high"] for p in series)


def test_replications_to_converge_settles():
    # 2 misses early, then 18 hits: the estimate climbs to 0.9 and the
    # last excursion outside ±0.1 determines the settle point.
    outcomes = [_outcome(i, None) for i in range(2)]
    outcomes += [_outcome(i + 2, 0.1) for i in range(18)]
    n = replications_to_converge(outcomes, deadline=1.0, tolerance=0.1)
    assert n is not None
    series = running_responsiveness(outcomes, 1.0)
    final = series[-1]["p"]
    assert all(abs(p["p"] - final) <= 0.1 for p in series[n - 1:])


def test_replications_to_converge_never_settles():
    # Alternating hit/miss keeps oscillating around 0.5 by ±~0.08 at the
    # end; an extremely tight tolerance never holds from early on.
    outcomes = [_outcome(i, 0.1 if i % 2 == 0 else None) for i in range(10)]
    assert replications_to_converge(outcomes, 1.0, tolerance=0.001) in (None, 10)


def test_convergence_empty_rejected():
    with pytest.raises(ValueError):
        replications_to_converge([], 1.0)
