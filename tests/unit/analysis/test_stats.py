"""Unit tests for statistics helpers."""

import pytest

from repro.analysis.stats import (
    binomial_proportion_ci,
    mean_confidence_interval,
    percentile,
    summarize,
)


def test_mean_ci_contains_mean():
    mean, lo, hi = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
    assert mean == pytest.approx(2.5)
    assert lo < mean < hi


def test_mean_ci_narrows_with_samples():
    small = mean_confidence_interval([1, 2, 3] * 3)
    large = mean_confidence_interval([1, 2, 3] * 100)
    assert (large[2] - large[1]) < (small[2] - small[1])


def test_mean_ci_single_sample_degenerate():
    mean, lo, hi = mean_confidence_interval([5.0])
    assert mean == lo == hi == 5.0


def test_mean_ci_empty_rejected():
    with pytest.raises(ValueError):
        mean_confidence_interval([])


def test_percentile():
    values = list(range(101))
    assert percentile(values, 50) == pytest.approx(50.0)
    assert percentile(values, 95) == pytest.approx(95.0)
    with pytest.raises(ValueError):
        percentile([], 50)


def test_binomial_ci_wilson_properties():
    p, lo, hi = binomial_proportion_ci(95, 100)
    assert p == 0.95
    assert 0.0 <= lo < p < hi <= 1.0
    # Near-certain estimates don't collapse to a zero-width interval.
    p, lo, hi = binomial_proportion_ci(100, 100)
    assert p == 1.0 and hi == 1.0 and lo < 1.0


def test_binomial_ci_validation():
    with pytest.raises(ValueError):
        binomial_proportion_ci(1, 0)
    with pytest.raises(ValueError):
        binomial_proportion_ci(5, 3)


def test_summarize_fields():
    s = summarize([1.0, 2.0, 3.0, 4.0, 100.0])
    assert s["n"] == 5
    assert s["min"] == 1.0 and s["max"] == 100.0
    assert s["p50"] == pytest.approx(3.0)
    assert s["mean"] == pytest.approx(22.0)


def test_summarize_empty():
    s = summarize([])
    assert s["n"] == 0 and s["mean"] is None
