"""Unit tests for run timelines and tag-based packet statistics."""

import pytest

from repro.analysis.packetstats import (
    packet_stats_for_run,
    tag_loss_between,
    tagged_observations,
)
from repro.analysis.timeline import build_run_timeline
from repro.net.tagger import TAG_NODE_OPTION, TAG_OPTION


def _events():
    mk = lambda name, t, node="su", params=(): {  # noqa: E731
        "name": name, "node": node, "common_time": t,
        "params": list(params), "run_id": 0,
    }
    return [
        mk("run_init", 0.0, node="master"),
        mk("sd_init_done", 0.4, node="sm"),
        mk("sd_start_search", 1.0),
        mk("sd_service_add", 1.8, params=("svc", "sm")),
        mk("done", 1.9),
        mk("run_exit", 2.5, node="master"),
    ]


# ----------------------------------------------------------------------
# Timeline
# ----------------------------------------------------------------------
def test_timeline_phases_and_t_r():
    tl = build_run_timeline(_events(), 0)
    assert tl.exec_begin == pytest.approx(1.0)
    assert tl.exec_end == pytest.approx(1.9)  # the done flag
    assert tl.t_r == pytest.approx(0.8)
    d = tl.durations()
    assert d["preparation"] == pytest.approx(1.0)
    assert d["execution"] == pytest.approx(0.9)
    assert d["cleanup"] == pytest.approx(0.6)
    assert d["total"] == pytest.approx(2.5)


def test_timeline_phase_classification():
    tl = build_run_timeline(_events(), 0)
    phases = {e.name: e.phase for e in tl.entries}
    assert phases["sd_init_done"] == "preparation"
    assert phases["sd_service_add"] == "execution"
    assert phases["run_exit"] == "cleanup"


def test_timeline_empty_run():
    tl = build_run_timeline(_events(), 99)
    assert tl.entries == [] and tl.t_r is None


def test_timeline_without_discovery():
    events = [e for e in _events() if e["name"] != "sd_service_add"]
    tl = build_run_timeline(events, 0)
    assert tl.t_r is None


def test_timeline_exclude_filter():
    tl = build_run_timeline(_events(), 0, exclude=("run_init", "run_exit"))
    names = [e.name for e in tl.entries]
    assert "run_init" not in names and "sd_service_add" in names


def test_timeline_nodes_and_relative_time():
    tl = build_run_timeline(_events(), 0)
    assert tl.nodes() == ["master", "sm", "su"]
    add = next(e for e in tl.entries if e.name == "sd_service_add")
    assert tl.relative_time(add) == pytest.approx(1.8)


def test_phase_duration_summary():
    from repro.analysis.timeline import phase_duration_summary

    events = _events()
    # A second run, twice as long in every phase.
    events += [
        {**e, "run_id": 1, "common_time": e["common_time"] * 2} for e in _events()
    ]
    summary = phase_duration_summary(events, [0, 1])
    assert summary["total"]["runs"] == 2.0
    assert summary["total"]["min"] == pytest.approx(2.5)
    assert summary["total"]["max"] == pytest.approx(5.0)
    assert summary["preparation"]["mean"] == pytest.approx(1.5)
    # Unknown runs contribute nothing.
    assert phase_duration_summary(events, [99]) == {}


def test_phase_summary_in_report(tmp_path):
    from repro import run_experiment, store_level3
    from repro.sd.processlib import build_two_party_description
    from repro.storage.level3 import ExperimentDatabase
    from repro.viz.report import experiment_report

    desc = build_two_party_description(replications=2, seed=45, env_count=0)
    result = run_experiment(desc, store_root=tmp_path / "l2")
    with ExperimentDatabase(store_level3(result.store, tmp_path / "p.db")) as db:
        text = experiment_report(db)
    assert "## Run phase durations" in text
    assert "| preparation |" in text


# ----------------------------------------------------------------------
# Packet stats
# ----------------------------------------------------------------------
def _packets():
    def obs(node, direction, tag, t, origin="a"):
        return {
            "node": node, "direction": direction, "common_time": t,
            "options": {TAG_OPTION: tag, TAG_NODE_OPTION: origin},
            "src": "10.0.0.1", "uid": tag,
        }

    return [
        obs("a", "tx", 0, 1.00),
        obs("a", "tx", 1, 1.10),
        obs("a", "tx", 2, 1.20),
        obs("b", "rx", 0, 1.02),
        obs("b", "rx", 2, 1.25),  # tag 1 lost
        # An untagged packet must be ignored entirely.
        {"node": "b", "direction": "rx", "common_time": 1.5, "options": {},
         "src": "x", "uid": 99},
    ]


def test_tagged_observations_split_by_observer():
    obs = tagged_observations(_packets(), "a")
    assert set(obs) == {"a", "b"}
    assert set(obs["a"]) == {0, 1, 2}
    assert set(obs["b"]) == {0, 2}


def test_tag_loss_between_counts_and_delay():
    out = tag_loss_between(_packets(), "a", "b")
    assert out["sent"] == 3 and out["received"] == 2
    assert out["loss_rate"] == pytest.approx(1 / 3)
    assert out["delay"]["n"] == 2
    assert out["delay"]["mean"] == pytest.approx((0.02 + 0.05) / 2)


def test_tag_loss_no_observations():
    out = tag_loss_between(_packets(), "a", "ghost")
    assert out["received"] == 0 and out["loss_rate"] == 1.0


def test_packet_stats_for_run_rows():
    rows = packet_stats_for_run(_packets())
    assert len(rows) == 1
    assert rows[0]["origin"] == "a" and rows[0]["observer"] == "b"


def test_packet_stats_node_filter():
    assert packet_stats_for_run(_packets(), nodes=["a"]) == []
    rows = packet_stats_for_run(_packets(), nodes=["a", "b"])
    assert rows and rows[0]["observer"] == "b"
