"""Unit tests for time-base conditioning."""

import pytest

from repro.core.errors import StorageError
from repro.storage.conditioning import condition_experiment, condition_run
from repro.storage.level2 import Level2Store


@pytest.fixture
def store(tmp_path):
    s = Level2Store(tmp_path / "l2")
    s.write_description('<experiment name="c" seed="1"/>')
    s.write_plan([{"run_id": 0, "treatment": {}}])
    return s


def _seed_run(store, run_id=0, offsets=None):
    offsets = offsets or {"n1": 0.5, "n2": -0.25}
    store.write_timesync(
        run_id,
        {n: {"offset": o, "rtt": 0.001, "error_bound": 0.0005, "probes": 5}
         for n, o in offsets.items()},
    )
    store.write_run_info(run_id, {"run_id": run_id, "start_time": 10.0,
                                  "treatment": {"f": 1}})
    # True event times 11.0 on both nodes — locals differ by the offsets.
    store.write_run_data(
        "n1", run_id,
        [{"name": "x", "node": "n1", "local_time": 11.0 + offsets["n1"],
          "params": [], "run_id": run_id}],
        [{"node": "n1", "local_time": 11.2 + offsets["n1"], "uid": 1,
          "src": "a", "direction": "tx"}],
    )
    store.write_run_data(
        "n2", run_id,
        [{"name": "y", "node": "n2", "local_time": 11.0 + offsets["n2"],
          "params": [], "run_id": run_id}],
        [],
    )


def test_offsets_inverted_onto_common_base(store):
    _seed_run(store)
    run = condition_run(store, 0)
    times = {e["name"]: e["common_time"] for e in run.events}
    assert times["x"] == pytest.approx(11.0)
    assert times["y"] == pytest.approx(11.0)
    assert run.packets[0]["common_time"] == pytest.approx(11.2)


def test_events_sorted_by_common_time(store):
    _seed_run(store)
    run = condition_run(store, 0)
    times = [e["common_time"] for e in run.events]
    assert times == sorted(times)


def test_master_offset_is_zero(store):
    _seed_run(store)
    store.write_run_data(
        "master", 0,
        [{"name": "m", "node": "master", "local_time": 10.5, "params": [],
          "run_id": 0}],
        [],
    )
    run = condition_run(store, 0)
    m = next(e for e in run.events if e["name"] == "m")
    assert m["common_time"] == 10.5
    assert run.offsets["master"] == 0.0


def test_causal_order_restored_across_skewed_clocks(store):
    # n1's clock is 2 s ahead; an effect on n1 at true 5.1 must sort
    # after its cause on n2 at true 5.0 despite a larger local timestamp
    # difference in raw data.
    store.write_timesync(0, {
        "n1": {"offset": 2.0, "rtt": 0.001, "error_bound": 0.0005, "probes": 1},
        "n2": {"offset": 0.0, "rtt": 0.001, "error_bound": 0.0005, "probes": 1},
    })
    store.write_run_info(0, {"run_id": 0, "start_time": 0.0, "treatment": {}})
    store.write_run_data("n1", 0, [
        {"name": "effect", "node": "n1", "local_time": 7.1, "params": [],
         "run_id": 0}], [])
    store.write_run_data("n2", 0, [
        {"name": "cause", "node": "n2", "local_time": 5.0, "params": [],
         "run_id": 0}], [])
    run = condition_run(store, 0)
    assert [e["name"] for e in run.events] == ["cause", "effect"]


def test_missing_run_info_raises(store):
    store.write_run_data("n1", 0, [], [])
    store.write_timesync(0, {})
    with pytest.raises(StorageError):
        condition_run(store, 0)


def test_condition_experiment_aggregates(store):
    _seed_run(store, 0)
    _seed_run(store, 1)
    store.write_node_log("n1", "log!")
    store.write_eefile("VERSION", "v")
    data = condition_experiment(store)
    assert [r.run_id for r in data.runs] == [0, 1]
    assert data.node_logs["n1"] == "log!"
    assert data.eefiles["VERSION"] == "v"
    assert data.plan[0]["run_id"] == 0


def test_extra_measurements_carried(store):
    _seed_run(store)
    store.write_extra_measurement("n1", 0, "plug", {"v": 2})
    run = condition_run(store, 0)
    assert run.extra_measurements == {"n1": {"plug": {"v": 2}}}
