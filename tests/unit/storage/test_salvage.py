"""Unit tests for CRC-framed run streams and salvage-mode conditioning."""

import json

import pytest

from repro.core.errors import StorageError
from repro.storage.conditioning import condition_experiment
from repro.storage.level2 import Level2Store, _crc, _frame_line
from repro.storage.level3 import ExperimentDatabase, store_level3

DESC_XML = """<experiment name="salv" seed="1" comment="c">
  <platform>
    <actornode id="h1" address="10.0.0.1" abstract="A" />
    <envnode id="h2" address="10.0.0.2" />
  </platform>
</experiment>"""


def _event(i, run_id=0, node="h1"):
    return {"name": f"ev{i}", "node": node, "local_time": float(i),
            "params": [], "run_id": run_id}


def _fill(root, salvage=False, events=5):
    store = Level2Store(root, salvage=salvage)
    store.write_description(DESC_XML)
    store.write_plan([])
    store.write_timesync(0, {})
    store.write_run_info(0, {"run_id": 0, "start_time": 0.0, "treatment": {}})
    store.write_run_data("h1", 0, [_event(i) for i in range(events)], [])
    return store


def _events_path(root):
    return root / "nodes" / "h1" / "runs" / "0" / "events.jsonl"


def _corrupt_crc(path):
    """Flip a digit in the last record's body, keeping its CRC frame."""
    lines = path.read_text(encoding="utf-8").splitlines()
    body, suffix = lines[-1].rsplit("\t", 1)
    lines[-1] = body.replace('"local_time": 4.0', '"local_time": 9.0') + "\t" + suffix
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def test_run_streams_are_crc_framed(tmp_path):
    _fill(tmp_path / "l2")
    for line in _events_path(tmp_path / "l2").read_text(encoding="utf-8").splitlines():
        body, suffix = line.rsplit("\t", 1)
        assert suffix == _crc(body)


def test_framed_roundtrip_and_legacy_lines(tmp_path):
    store = _fill(tmp_path / "l2")
    # A pre-framing store wrote bare JSON lines; both parse together.
    with open(_events_path(tmp_path / "l2"), "a", encoding="utf-8") as fh:
        fh.write(json.dumps(_event(5)) + "\n")
    events = store.read_run_events("h1", 0)
    assert [e["name"] for e in events] == [f"ev{i}" for i in range(6)]


# ----------------------------------------------------------------------
# Corruption without --salvage: hard fail, pointing at the flag
# ----------------------------------------------------------------------
def test_crc_mismatch_fails_without_salvage(tmp_path):
    store = _fill(tmp_path / "l2")
    _corrupt_crc(_events_path(tmp_path / "l2"))
    with pytest.raises(StorageError, match="--salvage"):
        store.read_run_events("h1", 0)


def test_truncated_tail_fails_without_salvage(tmp_path):
    store = _fill(tmp_path / "l2")
    path = _events_path(tmp_path / "l2")
    data = path.read_bytes()
    path.write_bytes(data[:-5])  # cuts into the 8-hex CRC suffix
    with pytest.raises(StorageError, match="truncated"):
        store.read_run_events("h1", 0)


# ----------------------------------------------------------------------
# Salvage mode: quarantine and carry on
# ----------------------------------------------------------------------
def test_salvage_quarantines_crc_mismatch(tmp_path):
    store = _fill(tmp_path / "l2", salvage=True)
    _corrupt_crc(_events_path(tmp_path / "l2"))
    events = store.read_run_events("h1", 0)
    assert [e["name"] for e in events] == ["ev0", "ev1", "ev2", "ev3"]
    records = store.salvage_records()
    assert records == [{"run_id": 0, "node": "h1", "stream": "events.jsonl",
                        "kept": 4, "dropped": 1, "reason": "crc_mismatch"}]
    sidecar = tmp_path / "l2" / "quarantine" / "nodes" / "h1" / "runs" / "0" / "events.jsonl"
    quarantined = [json.loads(ln) for ln in
                   sidecar.read_text(encoding="utf-8").splitlines()]
    assert len(quarantined) == 1
    assert quarantined[0]["reason"] == "crc_mismatch"
    assert '"local_time": 9.0' in quarantined[0]["raw"]


def test_salvage_classifies_bad_json(tmp_path):
    store = _fill(tmp_path / "l2", salvage=True)
    path = _events_path(tmp_path / "l2")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(_frame_line("{not json at all") + "\n")  # CRC itself is valid
    store.read_run_events("h1", 0)
    assert store.salvage_records()[0]["reason"] == "bad_json"


def test_salvage_report_written_and_probe_nonmutating(tmp_path):
    store = _fill(tmp_path / "l2", salvage=True)
    _corrupt_crc(_events_path(tmp_path / "l2"))

    probe = Level2Store(tmp_path / "l2").salvage_probe(0)
    assert probe == {"kept": 4, "dropped": 1}
    assert not (tmp_path / "l2" / "quarantine").exists()  # probe left no trace

    store.read_run_events("h1", 0)
    report_path = store.write_salvage_report()
    report = json.loads(report_path.read_text(encoding="utf-8"))
    assert report["total_kept"] == 4
    assert report["total_dropped"] == 1
    assert report["records"][0]["stream"] == "events.jsonl"
    # Nothing salvaged -> no report.
    assert Level2Store(tmp_path / "l2", salvage=True).write_salvage_report() is None


def test_clean_store_probe_and_records_empty(tmp_path):
    store = _fill(tmp_path / "l2", salvage=True)
    assert store.salvage_probe(0) == {"kept": 5, "dropped": 0}
    assert store.read_run_events("h1", 0)
    assert store.salvage_records() == []


def test_purge_run_clears_quarantine(tmp_path):
    store = _fill(tmp_path / "l2", salvage=True)
    _corrupt_crc(_events_path(tmp_path / "l2"))
    store.read_run_events("h1", 0)
    assert store.salvage_records()
    store.purge_run(0)
    assert store.salvage_records() == []
    assert not (tmp_path / "l2" / "quarantine" / "nodes" / "h1" / "runs" / "0").exists()


# ----------------------------------------------------------------------
# Conditioning and level 3
# ----------------------------------------------------------------------
def test_store_level3_salvage_path_records_salvage_info(tmp_path):
    _fill(tmp_path / "l2")
    _corrupt_crc(_events_path(tmp_path / "l2"))

    with pytest.raises(StorageError, match="--salvage"):
        store_level3(Level2Store(tmp_path / "l2"), tmp_path / "strict.db")

    salvaging = Level2Store(tmp_path / "l2", salvage=True)
    db_path = store_level3(salvaging, tmp_path / "salvaged.db")
    with ExperimentDatabase(db_path) as db:
        rows = db.salvage_info()
        assert len(rows) == 1
        assert rows[0]["RunID"] == 0
        assert rows[0]["NodeID"] == "h1"
        assert rows[0]["RecordsKept"] == 4
        assert rows[0]["RecordsDropped"] == 1
        assert rows[0]["Reason"] == "crc_mismatch"
        assert db.row_counts()["Events"] == 4
        assert db.fault_leases() == []
    # store_level3 also summarized the quarantine on the way out.
    assert (tmp_path / "l2" / "quarantine" / "salvage_report.json").exists()


def test_condition_experiment_carries_salvage_records(tmp_path):
    _fill(tmp_path / "l2")
    _corrupt_crc(_events_path(tmp_path / "l2"))
    data = condition_experiment(Level2Store(tmp_path / "l2", salvage=True))
    assert [r["reason"] for r in data.salvage_records] == ["crc_mismatch"]
    clean = condition_experiment(_fill(tmp_path / "clean"))
    assert clean.salvage_records == []


def test_journal_tolerates_torn_tail(tmp_path):
    store = Level2Store(tmp_path / "l2")
    store.append_journal({"type": "experiment_start", "seed": 1})
    store.append_journal({"type": "run_complete", "run_id": 0})
    with open(store.journal_path, "a", encoding="utf-8") as fh:
        fh.write('{"type": "run_complete", "run_id": 1')  # torn append
    entries = store.read_journal()
    assert [e["type"] for e in entries] == ["experiment_start", "run_complete"]


def test_reconciled_lease_log_roundtrip(tmp_path):
    store = Level2Store(tmp_path / "l2")
    assert store.read_reconciled_leases() == []
    store.append_reconciled_leases([])  # no-op, creates nothing
    assert not store.fault_lease_log_path.exists()
    store.append_reconciled_leases(
        [{"lease_id": "h1/0/1", "node": "h1", "run_id": 0, "kind": "msg_loss",
          "reconciled_at": 2.5}]
    )
    leases = store.read_reconciled_leases()
    assert [ls["lease_id"] for ls in leases] == ["h1/0/1"]
