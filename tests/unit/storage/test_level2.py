"""Unit tests for the level-2 filesystem store."""

import pytest

from repro.core.errors import StorageError
from repro.storage.level2 import Level2Store


@pytest.fixture
def store(tmp_path):
    return Level2Store(tmp_path / "exp")


def test_description_roundtrip(store):
    store.write_description("<experiment name='x'/>")
    assert store.read_description() == "<experiment name='x'/>"


def test_missing_description_raises(store):
    with pytest.raises(StorageError):
        store.read_description()


def test_plan_roundtrip(store):
    plan = [{"run_id": 0, "treatment": {"f": 1}}]
    store.write_plan(plan)
    assert store.read_plan() == plan


def test_journal_append_order(store):
    store.append_journal({"type": "a"})
    store.append_journal({"type": "b"})
    assert [e["type"] for e in store.read_journal()] == ["a", "b"]
    assert Level2Store(store.root).read_journal()  # persisted on disk


def test_topology_phases(store):
    store.write_topology("before", {"nodes": ["a"]})
    assert store.read_topology("before") == {"nodes": ["a"]}
    assert store.read_topology("after") is None
    with pytest.raises(StorageError):
        store.write_topology("middle", {})


def test_timesync_roundtrip(store):
    store.write_timesync(3, {"n1": {"offset": 0.5}})
    assert store.read_timesync(3)["n1"]["offset"] == 0.5
    with pytest.raises(StorageError):
        store.read_timesync(99)


def test_run_data_appends(store):
    store.write_run_data("n1", 0, [{"name": "e1"}], [{"uid": 1}])
    store.write_run_data("n1", 0, [{"name": "e2"}], [])
    events = store.read_run_events("n1", 0)
    assert [e["name"] for e in events] == ["e1", "e2"]
    assert store.read_run_packets("n1", 0) == [{"uid": 1}]
    assert store.read_run_events("n1", 5) == []


def test_extra_measurements(store):
    store.write_extra_measurement("n1", 0, "plugin_a", {"x": 1})
    store.write_extra_measurement("n1", 0, "plugin_b", [1, 2])
    out = store.read_extra_measurements("n1", 0)
    assert out == {"plugin_a": {"x": 1}, "plugin_b": [1, 2]}
    assert store.read_extra_measurements("n1", 9) == {}


def test_run_info_roundtrip(store):
    store.write_run_info(2, {"run_id": 2, "start_time": 1.5, "treatment": {}})
    assert store.read_run_info(2)["start_time"] == 1.5
    with pytest.raises(StorageError):
        store.read_run_info(3)


def test_node_logs_and_experiment_events(store):
    store.write_node_log("n1", "line1\nline2")
    assert store.read_node_log("n1") == "line1\nline2"
    assert store.read_node_log("ghost") == ""
    store.write_node_experiment_events("n1", [{"name": "init"}])


def test_eefiles(store):
    store.write_eefile("VERSION", "1.0")
    store.write_eefile("sub/tool.py", "print()")
    files = store.eefiles()
    assert files["VERSION"] == "1.0"
    assert files["sub/tool.py"] == "print()"


def test_experiment_measurements(store):
    store.write_experiment_measurement("medium", {"loss": 1})
    assert store.experiment_measurements() == {"medium": {"loss": 1}}


def test_enumeration(store):
    store.write_run_data("n1", 0, [], [])
    store.write_run_data("n2", 1, [], [])
    assert store.node_ids() == ["n1", "n2"]
    assert store.run_ids() == [0, 1]
    assert list(store.iter_run_node_pairs()) == [
        (0, "n1"), (0, "n2"), (1, "n1"), (1, "n2")
    ]


def test_run_writer_buffers_and_appends(store):
    with store.run_writer(0, flush_records=4) as w:
        w.add_events("n1", [{"name": "e1"}, {"name": "e2"}])
        w.add_packets("n1", [{"uid": 1}])
        w.add_events("n2", [{"name": "e3"}])
        # Below the flush threshold: nothing guaranteed on disk yet, but
        # the files exist (enumeration sees the run immediately).
        assert store.run_ids() == [0]
        w.add_events("n1", [{"name": "e4"}, {"name": "e5"}])  # crosses 4
        assert w.records_written == 6
    assert [e["name"] for e in store.read_run_events("n1", 0)] == \
        ["e1", "e2", "e4", "e5"]
    assert store.read_run_packets("n1", 0) == [{"uid": 1}]
    assert [e["name"] for e in store.read_run_events("n2", 0)] == ["e3"]


def test_run_writer_empty_batches_create_streams(store):
    # write_run_data with empty lists still creates both stream files;
    # the buffered writer must preserve that enumeration contract.
    with store.run_writer(3) as w:
        w.add_events("n1", [])
        w.add_packets("n1", [])
    assert store.run_ids() == [3]
    assert store.read_run_events("n1", 3) == []


def test_run_writer_interleaves_with_plain_appends(store):
    store.write_run_data("n1", 0, [{"name": "before"}], [])
    with store.run_writer(0) as w:
        w.add_events("n1", [{"name": "during"}])
    store.write_run_data("n1", 0, [{"name": "after"}], [])
    assert [e["name"] for e in store.read_run_events("n1", 0)] == \
        ["before", "during", "after"]


def test_run_writer_closed_rejects_appends(store):
    w = store.run_writer(0)
    w.close()
    with pytest.raises(StorageError):
        w.add_events("n1", [{"name": "late"}])
    w.close()  # idempotent


def test_enumeration_cache_tracks_writes(store):
    assert store.run_ids() == []
    store.write_run_data("n1", 0, [], [])
    assert store.node_ids() == ["n1"]
    assert store.run_ids() == [0]
    store.write_run_data("n2", 4, [], [])
    assert store.node_ids() == ["n1", "n2"]
    assert store.run_ids() == [0, 4]
    store.purge_run(4)
    assert store.run_ids() == [0]
    store.write_node_log("n3", "log")
    assert store.node_ids() == ["n1", "n2", "n3"]


def test_purge_run(store):
    store.write_run_data("n1", 0, [{"name": "keep"}], [])
    store.write_run_data("n1", 1, [{"name": "drop"}], [])
    store.write_timesync(1, {})
    store.write_run_info(1, {"run_id": 1, "start_time": 0.0})
    store.purge_run(1)
    assert store.read_run_events("n1", 1) == []
    assert store.read_run_events("n1", 0) != []
    with pytest.raises(StorageError):
        store.read_timesync(1)
