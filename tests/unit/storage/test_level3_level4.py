"""Unit tests for the level-3 database (Table I) and the level-4 repository."""


import pytest

from repro.core.errors import StorageError
from repro.storage.level2 import Level2Store
from repro.storage.level3 import (
    CHECKSUM_TABLE,
    EXTENSION_TABLES,
    TABLE_SCHEMAS,
    ExperimentDatabase,
    read_stamped_digest,
    store_level3,
)
from repro.storage.level4 import ExperimentRepository

DESC_XML = """<experiment name="t3" seed="1" comment="c">
  <platform>
    <actornode id="h1" address="10.0.0.1" abstract="A" />
    <envnode id="h2" address="10.0.0.2" />
  </platform>
</experiment>"""


@pytest.fixture
def filled_store(tmp_path):
    s = Level2Store(tmp_path / "l2")
    s.write_description(DESC_XML)
    s.write_plan([{"run_id": 0, "treatment": {"f": 1}, "replication": 0,
                   "treatment_index": 0, "seed": 7}])
    s.write_eefile("VERSION", "1.0")
    s.write_experiment_measurement("overall", {"k": 1})
    s.write_node_log("h1", "the log")
    s.write_timesync(0, {"h1": {"offset": 0.5, "rtt": 0.001,
                                "error_bound": 0.0005, "probes": 5}})
    s.write_run_info(0, {"run_id": 0, "start_time": 1.0, "treatment": {"f": 1}})
    s.write_run_data(
        "h1", 0,
        [{"name": "ev", "node": "h1", "local_time": 2.0, "params": ["p"],
          "run_id": 0}],
        [{"node": "h1", "local_time": 2.5, "uid": 3, "src": "10.0.0.1",
          "dst": "10.0.0.2", "direction": "tx", "payload": "'blob'"}],
    )
    s.write_extra_measurement("h1", 0, "plug", {"m": 9})
    return s


def test_schema_matches_table_one(filled_store, tmp_path):
    db_path = store_level3(filled_store, tmp_path / "x.db")
    with ExperimentDatabase(db_path) as db:
        schema = db.schema()
        # Table I verbatim, plus the integrity side tables (DESIGN.md §11)
        # and the digest-stamp table, which deliberately live outside
        # TABLE_SCHEMAS.
        assert set(schema) == (
            set(TABLE_SCHEMAS) | set(EXTENSION_TABLES) | {CHECKSUM_TABLE}
        )
        for table, attrs in TABLE_SCHEMAS.items():
            assert schema[table] == attrs, table
        for table, attrs in EXTENSION_TABLES.items():
            assert schema[table] == attrs, table


def test_experiment_info_row(filled_store, tmp_path):
    with ExperimentDatabase(store_level3(filled_store, tmp_path / "x.db")) as db:
        info = db.experiment_info()
        assert info["Name"] == "t3"
        assert info["Comment"] == "c"
        assert info["ExpXML"] == DESC_XML
        assert "excovery" in info["EEVersion"]


def test_events_conditioned_and_parsed(filled_store, tmp_path):
    with ExperimentDatabase(store_level3(filled_store, tmp_path / "x.db")) as db:
        events = db.events(run_id=0)
        assert len(events) == 1
        assert events[0]["name"] == "ev"
        assert events[0]["params"] == ["p"]
        assert events[0]["common_time"] == pytest.approx(1.5)  # 2.0 - 0.5


def test_packets_src_resolved_to_node(filled_store, tmp_path):
    with ExperimentDatabase(store_level3(filled_store, tmp_path / "x.db")) as db:
        packets = db.packets(run_id=0)
        assert packets[0]["src_node"] == "h1"  # 10.0.0.1 -> h1 via platform


def test_run_infos_carry_timediff(filled_store, tmp_path):
    with ExperimentDatabase(store_level3(filled_store, tmp_path / "x.db")) as db:
        rows = db.run_infos(0)
        by_node = {r["NodeID"]: r for r in rows}
        assert by_node["h1"]["TimeDiff"] == 0.5
        assert by_node["master"]["TimeDiff"] == 0.0
        assert by_node["h1"]["StartTime"] == 1.0


def test_plan_and_extras_stored(filled_store, tmp_path):
    with ExperimentDatabase(store_level3(filled_store, tmp_path / "x.db")) as db:
        assert db.plan()[0]["seed"] == 7
        extras = db.extra_measurements(0)
        assert extras["h1"]["plug"] == {"m": 9}
        counts = db.row_counts()
        assert counts["Logs"] == 1
        assert counts["ExperimentMeasurements"] == 1


def test_refuses_overwrite(filled_store, tmp_path):
    store_level3(filled_store, tmp_path / "x.db")
    with pytest.raises(StorageError):
        store_level3(filled_store, tmp_path / "x.db")


def test_rejects_wrong_source_type(tmp_path):
    with pytest.raises(StorageError):
        store_level3({"not": "a store"}, tmp_path / "y.db")


def test_event_pair_latencies(tmp_path):
    s = Level2Store(tmp_path / "l2x")
    s.write_description(DESC_XML)
    s.write_plan([])
    for run_id, (t_start, t_end) in enumerate([(1.0, 1.4), (2.0, None)]):
        s.write_timesync(run_id, {})
        s.write_run_info(run_id, {"run_id": run_id, "start_time": 0.0,
                                  "treatment": {}})
        events = [{"name": "op_start", "node": "h1", "local_time": t_start,
                   "params": [], "run_id": run_id}]
        if t_end is not None:
            events.append({"name": "op_done", "node": "h1",
                           "local_time": t_end, "params": [], "run_id": run_id})
        s.write_run_data("h1", run_id, events, [])
    with ExperimentDatabase(store_level3(s, tmp_path / "pair.db")) as db:
        rows = db.event_pair_latencies("op_start", "op_done")
        assert len(rows) == 2
        assert rows[0]["latency"] == pytest.approx(0.4)
        assert rows[1]["latency"] is None
        # End-before-start never matches.
        assert db.event_pair_latencies("op_done", "op_start")[0]["latency"] is None
        # Node filter applies.
        assert db.event_pair_latencies("op_start", "op_done", node_id="ghost") == []


def test_event_pair_latencies_single_pass_per_run_false(tmp_path):
    s = Level2Store(tmp_path / "l2y")
    s.write_description(DESC_XML)
    s.write_plan([])
    for run_id in (0, 1):
        s.write_timesync(run_id, {})
        s.write_run_info(run_id, {"run_id": run_id, "start_time": 0.0,
                                  "treatment": {}})
        s.write_run_data("h1", run_id, [
            {"name": "op_start", "node": "h1", "local_time": 1.0 + run_id,
             "params": [], "run_id": run_id},
            {"name": "op_done", "node": "h1", "local_time": 1.5 + run_id,
             "params": [], "run_id": run_id},
        ], [])
    with ExperimentDatabase(store_level3(s, tmp_path / "flat.db")) as db:
        rows = db.event_pair_latencies("op_start", "op_done", per_run=False)
        # One global scan: first start (run 0) to first subsequent done.
        assert rows == [{"run_id": None, "start": 1.0, "end": 1.5,
                         "latency": pytest.approx(0.5)}]


def test_iter_events_and_iter_packets_stream(filled_store, tmp_path):
    with ExperimentDatabase(store_level3(filled_store, tmp_path / "x.db")) as db:
        it = db.iter_events(run_id=0, chunk_size=1)
        assert next(it)["name"] == "ev"
        assert list(it) == []
        assert list(db.iter_events(event_type="ghost")) == []
        # Streaming readers return the same records as the list APIs.
        assert list(db.iter_events()) == db.events()
        assert list(db.iter_packets(chunk_size=1)) == db.packets()


def test_store_level3_streams_runs_lazily(filled_store, tmp_path, monkeypatch):
    """The Level2Store path must not materialize every run at once."""
    import repro.storage.level3 as level3

    seen = []

    def tracking_iter(store):
        from repro.storage.conditioning import condition_run
        for run_id in store.run_ids():
            seen.append(run_id)
            yield condition_run(store, run_id)

    monkeypatch.setattr(level3, "iter_conditioned_runs", tracking_iter)
    db_path = level3.store_level3(filled_store, tmp_path / "lazy.db")
    assert seen == [0]
    with ExperimentDatabase(db_path) as db:
        assert db.row_counts()["Events"] == 1


def test_open_missing_database(tmp_path):
    with pytest.raises(StorageError):
        ExperimentDatabase(tmp_path / "missing.db")


# ----------------------------------------------------------------------
# Level 4
# ----------------------------------------------------------------------
def test_repository_import_and_catalogue(filled_store, tmp_path):
    db_path = store_level3(filled_store, tmp_path / "x.db")
    with ExperimentRepository(tmp_path / "repo.db") as repo:
        exp_id = repo.import_experiment(db_path)
        assert exp_id == 1
        exps = repo.experiments()
        assert exps[0]["Name"] == "t3"
        assert repo.experiment_id_by_name("t3") == 1


def test_repository_events_scoped_by_experiment(filled_store, tmp_path):
    db_path = store_level3(filled_store, tmp_path / "x.db")
    with ExperimentRepository(tmp_path / "repo.db") as repo:
        e1 = repo.import_experiment(db_path)
        e2 = repo.import_experiment(db_path, force=True)  # forced second copy
        assert repo.run_ids(e1) == [0]
        assert len(repo.events(e1)) == 1
        assert len(repo.events(e2)) == 1
        assert repo.events(e1, event_type="ev")[0]["params"] == ["p"]
        assert repo.events(e1, event_type="nope") == []


def test_repository_cross_experiment_comparison(filled_store, tmp_path):
    db_path = store_level3(filled_store, tmp_path / "x.db")
    with ExperimentRepository(tmp_path / "repo.db") as repo:
        repo.import_experiment(db_path)
        counts = repo.compare_event_counts("ev")
        assert counts == {"t3": 1}


def test_repository_dimensional_views(filled_store, tmp_path):
    db_path = store_level3(filled_store, tmp_path / "x.db")
    with ExperimentRepository(tmp_path / "repo.db") as repo:
        repo.import_experiment(db_path)
        repo.create_dimensional_views()
        dims = [r[0] for r in repo.conn.execute(
            "SELECT name FROM sqlite_master WHERE type='view' ORDER BY name"
        )]
        assert dims == [
            "DimEventType", "DimExperiment", "DimNode", "DimRun", "FactEvents"
        ]
        facts = repo.conn.execute("SELECT COUNT(*) FROM FactEvents").fetchone()[0]
        assert facts == 1
        # Views track later imports without re-creation.
        repo.import_experiment(db_path, force=True)
        facts = repo.conn.execute("SELECT COUNT(*) FROM FactEvents").fetchone()[0]
        assert facts == 2


def test_repository_fact_aggregation(filled_store, tmp_path):
    db_path = store_level3(filled_store, tmp_path / "x.db")
    with ExperimentRepository(tmp_path / "repo.db") as repo:
        repo.import_experiment(db_path)
        by_type = repo.fact_event_counts("EventType")
        assert by_type == [{"key": "ev", "events": 1}]
        by_exp = repo.fact_event_counts("ExpID")
        assert by_exp[0]["events"] == 1
        with pytest.raises(StorageError):
            repo.fact_event_counts("Robert'); DROP TABLE Events;--")


def test_repository_unknown_name(tmp_path):
    with ExperimentRepository(tmp_path / "repo.db") as repo:
        with pytest.raises(StorageError):
            repo.experiment_id_by_name("ghost")


def test_repository_persists_across_reopen(filled_store, tmp_path):
    db_path = store_level3(filled_store, tmp_path / "x.db")
    repo = ExperimentRepository(tmp_path / "repo.db")
    repo.import_experiment(db_path)
    repo.close()
    with ExperimentRepository(tmp_path / "repo.db") as again:
        assert len(again.experiments()) == 1


def test_repository_import_dedups_by_content_digest(filled_store, tmp_path):
    db_path = store_level3(filled_store, tmp_path / "x.db")
    with ExperimentRepository(tmp_path / "repo.db") as repo:
        first = repo.import_experiment(db_path)
        # Same Table-I content: the import is an idempotent no-op.
        assert repo.import_experiment(db_path) == first
        assert len(repo.experiments()) == 1
        assert repo.experiments()[0]["ContentDigest"]
        # An explicit force creates the historic duplicate.
        forced = repo.import_experiment(db_path, force=True)
        assert forced != first
        assert len(repo.experiments()) == 2


def test_repository_import_streams_in_batches(filled_store, tmp_path,
                                              monkeypatch):
    db_path = store_level3(filled_store, tmp_path / "x.db")
    monkeypatch.setattr(ExperimentRepository, "IMPORT_BATCH_ROWS", 1)
    with ExperimentRepository(tmp_path / "repo.db") as repo:
        exp_id = repo.import_experiment(db_path)
        with ExperimentDatabase(db_path) as src:
            assert len(repo.events(exp_id)) == src.row_counts()["Events"]
            assert repo.run_ids(exp_id) == src.run_ids()


def test_repository_digest_column_added_to_existing_repo(filled_store,
                                                         tmp_path):
    import sqlite3

    repo_path = tmp_path / "old-repo.db"
    with sqlite3.connect(repo_path) as conn:
        conn.executescript(
            """
            CREATE TABLE Experiments (
                ExpID INTEGER PRIMARY KEY AUTOINCREMENT,
                Name TEXT NOT NULL,
                Comment TEXT NOT NULL DEFAULT '',
                EEVersion TEXT NOT NULL DEFAULT '',
                ExpXML TEXT NOT NULL DEFAULT '',
                SourcePath TEXT NOT NULL DEFAULT ''
            );
            INSERT INTO Experiments (Name) VALUES ('legacy');
            """
        )
        conn.commit()
    db_path = store_level3(filled_store, tmp_path / "x.db")
    with ExperimentRepository(repo_path) as repo:
        repo.import_experiment(db_path)
        names = [e["Name"] for e in repo.experiments()]
        assert "legacy" in names and "t3" in names


# ----------------------------------------------------------------------
# Digest stamping (PackageChecksums)
# ----------------------------------------------------------------------
def test_store_level3_stamps_table1_digest(filled_store, tmp_path):
    from repro.campaign.merge import database_digest

    db_path = store_level3(filled_store, tmp_path / "x.db")
    assert read_stamped_digest(db_path) == database_digest(db_path)


def test_content_fingerprint_trusts_stamp_unless_told_not_to(
    filled_store, tmp_path
):
    import sqlite3

    from repro.campaign.merge import database_digest
    from repro.repo.fingerprint import content_fingerprint

    db_path = store_level3(filled_store, tmp_path / "x.db")
    true_digest = database_digest(db_path)
    # Tamper with the stamp: the trusted path believes it (that is the
    # O(1) contract), the verification path recomputes.
    with sqlite3.connect(db_path) as conn:
        conn.execute(
            f"UPDATE {CHECKSUM_TABLE} SET Value = 'bogus'"
        )
        conn.commit()
    assert content_fingerprint(db_path) == "bogus"
    assert content_fingerprint(db_path, trusted=False) == true_digest


def test_content_fingerprint_falls_back_without_stamp(filled_store, tmp_path):
    import sqlite3

    from repro.campaign.merge import database_digest
    from repro.repo.fingerprint import content_fingerprint

    db_path = store_level3(filled_store, tmp_path / "x.db")
    # Pre-stamp package: drop the table entirely, as an old writer's
    # output would look.
    with sqlite3.connect(db_path) as conn:
        conn.execute(f"DROP TABLE {CHECKSUM_TABLE}")
        conn.commit()
    assert read_stamped_digest(db_path) is None
    assert content_fingerprint(db_path) == database_digest(db_path)


def test_stamp_survives_and_tracks_abort_annotation(filled_store, tmp_path):
    from repro.campaign.merge import apply_abort_reasons, database_digest

    db_path = store_level3(filled_store, tmp_path / "x.db")
    before = read_stamped_digest(db_path)
    # Annotation rewrites RunInfos (a digested table): the stamp must be
    # refreshed to the post-annotation digest, not left stale.
    assert apply_abort_reasons(db_path, {0: "node lost"}) > 0
    after = read_stamped_digest(db_path)
    assert after != before
    assert after == database_digest(db_path)
