"""Registry-family agent behaviour: registration/renewal, direct polling,
replica activation and gossip convergence."""

from __future__ import annotations

import pytest

SVC = "_exp._udp"


def _init(harness, node, role, **params):
    harness.agents[node].action_init({"role": role, **params})


class TestRegistrationLifecycle:
    def test_provider_registers_and_client_discovers(self, registry_trio):
        h = registry_trio
        _init(h, "s0", "scm")
        _init(h, "s1", "sm")
        _init(h, "s2", "su")
        h.agents["s1"].action_start_publish({})
        h.agents["s2"].action_start_search({})
        h.run(until=10.0)

        assert h.first("s0", "scm_started") is not None
        t_add, params = h.first("s0", "scm_registration_add")
        assert params == (f"s1.{SVC}", "s1")
        # The provider confirms the configured directory at first ack.
        assert h.first("s1", "scm_found")[1] == ("s0",)
        t_disc, disc = h.first("s2", "sd_service_add")
        assert disc == (f"s1.{SVC}", "s1")
        assert t_disc < 2.0

    def test_renewal_keeps_registration_alive(self, registry_trio):
        h = registry_trio
        _init(h, "s0", "scm")
        _init(h, "s1", "sm")
        h.agents["s1"].action_start_publish({})
        # registration_ttl=3.0, renewed at 80% — over 12 s the record
        # would expire four times without renewals.
        h.run(until=12.0)
        assert h.names_on("s0").count("scm_registration_add") == 1
        assert "scm_registration_del" not in h.names_on("s0")

    def test_crashed_provider_expires_at_registry_and_client(self, registry_trio):
        h = registry_trio
        _init(h, "s0", "scm")
        _init(h, "s1", "sm")
        _init(h, "s2", "su")
        h.agents["s1"].action_start_publish({})
        h.agents["s2"].action_start_search({})
        h.run(until=6.0)
        # Churn-style crash: exit without stop_publish (no deregistration).
        h.agents["s1"].action_exit({})
        h.run(until=14.0)
        t_del, params = h.first("s0", "scm_registration_del")
        assert params == (f"s1.{SVC}", "s1")
        assert t_del > 6.0
        # The client's cached deadline mirrors the registry's, so the
        # loss surfaces there too.
        t_lost, lost = h.first("s2", "sd_service_del")
        assert lost == (f"s1.{SVC}", "s1")
        assert t_lost > 6.0

    def test_graceful_stop_publish_deregisters(self, registry_trio):
        h = registry_trio
        _init(h, "s0", "scm")
        _init(h, "s1", "sm")
        h.agents["s1"].action_start_publish({})
        h.run(until=4.0)
        h.agents["s1"].action_stop_publish({})
        h.run(until=5.0)
        t_del, params = h.first("s0", "scm_registration_del")
        assert params == (f"s1.{SVC}", "s1")
        # Explicit deregistration beats TTL expiry by a wide margin.
        assert t_del < 4.5

    def test_missing_registry_addrs_is_an_error(self, registry_trio):
        agent = registry_trio.agents["s2"]
        agent.config.pop("registry_addrs")
        with pytest.raises(RuntimeError, match="registry_addrs"):
            agent.action_init({"role": "su"})


class TestReplicasAndGossip:
    def test_home_assignment_spreads_and_is_deterministic(self, registry_replicated):
        h = registry_replicated
        active = ["10.3.0.1", "10.3.0.2", "10.3.0.3"]
        sm_home = h.agents["s3"]._home_addr(active)
        su_home = h.agents["s4"]._home_addr(active)
        assert sm_home == "10.3.0.2"
        assert su_home == "10.3.0.1"
        assert sm_home != su_home

    def test_gossip_carries_record_to_clients_home_replica(self, registry_replicated):
        h = registry_replicated
        for replica in ("s0", "s1", "s2"):
            _init(h, replica, "scm", replicas=3)
        _init(h, "s3", "sm", replicas=3)
        _init(h, "s4", "su", replicas=3)
        h.agents["s3"].action_start_publish({})
        h.agents["s4"].action_start_search({})
        h.run(until=10.0)

        # The record registered at s1 but the client polls s0: only
        # anti-entropy can have carried it over.
        assert h.first("s1", "scm_registration_add") is not None
        assert h.first("s0", "scm_registration_add") is not None
        assert h.first("s4", "sd_service_add")[1] == (f"s3.{SVC}", "s3")
        assert h.names_on("s0").count("scm_gossip_sync") >= 1

    def test_gossip_sync_announced_only_for_real_changes(self, registry_replicated):
        h = registry_replicated
        for replica in ("s0", "s1", "s2"):
            _init(h, replica, "scm", replicas=3)
        _init(h, "s3", "sm", replicas=3)
        h.agents["s3"].action_start_publish({})
        h.run(until=30.0)
        # One record propagates once per learning replica; renewals only
        # extend deadlines and must not keep announcing syncs (~60 gossip
        # rounds happen in 30 s at interval 0.5).
        for replica in ("s0", "s1", "s2"):
            assert h.names_on(replica).count("scm_gossip_sync") <= 1
        assert (
            h.names_on("s0").count("scm_gossip_sync")
            + h.names_on("s2").count("scm_gossip_sync")
        ) == 2

    def test_replica_prefix_limits_active_replicas(self, registry_replicated):
        h = registry_replicated
        for replica in ("s0", "s1", "s2"):
            _init(h, replica, "scm", replicas=1)
        _init(h, "s3", "sm", replicas=1)
        _init(h, "s4", "su", replicas=1)
        h.agents["s3"].action_start_publish({})
        h.agents["s4"].action_start_search({})
        h.run(until=8.0)

        assert h.agents["s0"].is_active_replica
        assert not h.agents["s1"].is_active_replica
        assert not h.agents["s2"].is_active_replica
        # With a single active replica there are no gossip peers.
        assert h.agents["s0"].gossip is None
        assert all("scm_gossip_sync" not in h.names_on(r) for r in ("s0", "s1", "s2"))
        # Everyone homes onto the single active replica, so discovery
        # still works end to end.
        assert h.first("s0", "scm_registration_add") is not None
        assert h.first("s1", "scm_registration_add") is None
        assert h.first("s4", "sd_service_add")[1] == (f"s3.{SVC}", "s3")

    def test_update_publication_propagates_version(self, registry_trio):
        h = registry_trio
        _init(h, "s0", "scm")
        _init(h, "s1", "sm")
        _init(h, "s2", "su")
        h.agents["s1"].action_start_publish({})
        h.agents["s2"].action_start_search({})
        h.run(until=3.0)
        h.agents["s1"].action_update_publication({})
        h.run(until=6.0)
        assert "scm_registration_upd" in h.names_on("s0")
        assert "sd_service_upd" in h.names_on("s2")


class TestTeardown:
    def test_exit_unbinds_and_silences_the_agent(self, registry_trio):
        h = registry_trio
        _init(h, "s0", "scm")
        _init(h, "s1", "sm")
        _init(h, "s2", "su")
        h.agents["s1"].action_start_publish({})
        h.agents["s2"].action_start_search({})
        h.run(until=5.0)
        for node in ("s0", "s1", "s2"):
            h.agents[node].action_exit({})
        marker = len(h.events["s2"])
        h.run(until=20.0)
        after = [name for _t, name, _p in h.events["s2"][marker:]]
        assert after == []
        assert h.agents["s0"].registrations.all_entries() == []
