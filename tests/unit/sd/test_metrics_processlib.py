"""Unit tests for SD metrics extraction and the process-library builders."""

import pytest

from repro.core.validation import validate_description
from repro.sd.metrics import (
    extract_run_discovery,
    responsiveness,
    summarize_runs,
)
from repro.sd.processlib import (
    build_three_party_description,
    build_two_party_description,
    sm_actions,
    su_actions,
)


def _events(run_id=0):
    """A synthetic run: search at t=1, finds sm1 at 2.5, sm2 at 4.0."""
    mk = lambda name, t, params=(), node="su1": {  # noqa: E731
        "name": name, "node": node, "common_time": t,
        "params": list(params), "run_id": run_id,
    }
    return [
        mk("run_init", 0.0, node="master"),
        mk("sd_start_search", 1.0),
        mk("sd_service_add", 2.5, ("svc@sm1", "sm1")),
        mk("sd_service_add", 4.0, ("svc@sm2", "sm2")),
        mk("run_exit", 5.0, node="master"),
    ]


def test_extract_complete_discovery():
    out = extract_run_discovery(_events(), 0, "su1", ["sm1", "sm2"])
    assert out.complete
    assert out.t_r == pytest.approx(3.0)
    assert out.t_first() == pytest.approx(1.5)


def test_extract_partial_discovery():
    events = [e for e in _events() if "sm2" not in e["params"]]
    out = extract_run_discovery(events, 0, "su1", ["sm1", "sm2"])
    assert not out.complete and out.t_r is None
    assert out.t_first() == pytest.approx(1.5)


def test_extract_wrong_run_or_node_ignored():
    out = extract_run_discovery(_events(run_id=7), 0, "su1", ["sm1"])
    assert out.search_started is None


def test_extract_uses_first_matching_param_only_once():
    events = _events() + [
        {"name": "sd_service_add", "node": "su1", "common_time": 9.0,
         "params": ["svc@sm1", "sm1"], "run_id": 0}
    ]
    out = extract_run_discovery(events, 0, "su1", ["sm1", "sm2"])
    assert out.found_at["sm1"] == pytest.approx(2.5)  # first win


def test_responsiveness_deadlines():
    outcomes = [
        extract_run_discovery(_events(run_id=i), i, "su1", ["sm1", "sm2"])
        for i in range(4)
    ]
    assert responsiveness(outcomes, deadline=3.0) == 1.0
    assert responsiveness(outcomes, deadline=2.0) == 0.0
    with pytest.raises(ValueError):
        responsiveness([], 1.0)


def test_summarize_runs_fields():
    outcomes = [extract_run_discovery(_events(), 0, "su1", ["sm1", "sm2"])]
    s = summarize_runs(outcomes)
    assert s["runs"] == 1 and s["complete"] == 1
    assert s["success_rate"] == 1.0
    assert s["t_r_median"] == pytest.approx(3.0)


def test_summarize_empty():
    s = summarize_runs([])
    assert s["runs"] == 0 and s["t_r_median"] is None


# ----------------------------------------------------------------------
# Process library builders
# ----------------------------------------------------------------------
def test_sm_su_action_shapes():
    assert [type(a).__name__ for a in sm_actions()] == [
        "DomainAction", "DomainAction", "WaitForEvent", "DomainAction",
        "DomainAction",
    ]
    su = su_actions(deadline=12.0)
    waits = [a for a in su if type(a).__name__ == "WaitForEvent"]
    assert waits[-1].timeout == 12.0


def test_two_party_description_validates():
    desc = build_two_party_description(sm_count=2, su_count=2, replications=2)
    report = validate_description(desc)
    assert report.ok, report.errors
    assert len(desc.abstract_nodes) == 4
    assert desc.factors.total_runs() == 2


def test_two_party_with_traffic_has_fig5_factors():
    desc = build_two_party_description(traffic=True, replications=1)
    assert "fact_pairs" in desc.factors
    assert "fact_bw" in desc.factors
    assert desc.factors.get("fact_pairs").level_values == [5, 20]
    assert desc.factors.get("fact_bw").level_values == [10, 50, 100]
    assert validate_description(desc).ok


def test_two_party_settle_inserts_wait():
    desc = build_two_party_description(settle_after_publish=2.0)
    su = desc.actor("actor1")
    assert any(type(a).__name__ == "WaitForTime" for a in su.actions)


def test_three_party_adds_scm_actor():
    desc = build_three_party_description(replications=1)
    assert "actor2" in desc.actor_ids()
    assert "SCM0" in desc.abstract_nodes
    report = validate_description(desc)
    assert report.ok, report.errors
    # The platform spec covers the SCM node too.
    assert desc.platform.for_abstract("SCM0") is not None


def test_descriptions_roundtrip_xml():
    from repro.core.xmlio import description_from_xml, description_to_xml

    for desc in (
        build_two_party_description(traffic=True, replications=2),
        build_three_party_description(replications=1),
    ):
        xml = description_to_xml(desc)
        again = description_from_xml(xml)
        assert description_to_xml(again) == xml
