"""Unit tests for the abstract SD agent contract."""

import pytest

from repro.sd import model as M


def test_init_emits_done_and_sets_role(mdns_pair):
    h = mdns_pair
    h.agents["s0"].action_init({"role": "sm"})
    assert h.names_on("s0") == [M.EVENT_SD_INIT_DONE]
    assert h.agents["s0"].role is M.Role.SM
    assert h.agents["s0"].initialized


def test_double_init_rejected(mdns_pair):
    h = mdns_pair
    h.agents["s0"].action_init({"role": "su"})
    with pytest.raises(RuntimeError):
        h.agents["s0"].action_init({"role": "su"})


def test_action_before_init_rejected(mdns_pair):
    h = mdns_pair
    with pytest.raises(RuntimeError, match="sd_init"):
        h.agents["s0"].action_start_search({"type": "_t"})
    with pytest.raises(RuntimeError):
        h.agents["s0"].action_start_publish({"type": "_t"})


def test_exit_emits_and_allows_reinit(mdns_pair):
    h = mdns_pair
    agent = h.agents["s0"]
    agent.action_init({"role": "su"})
    agent.action_exit({})
    assert h.names_on("s0")[-1] == M.EVENT_SD_EXIT_DONE
    assert not agent.initialized
    agent.action_init({"role": "sm"})  # re-init after exit works


def test_exit_without_init_is_noop(mdns_pair):
    h = mdns_pair
    h.agents["s0"].action_exit({})
    assert h.names_on("s0") == []


def test_publish_creates_instance_and_event(mdns_pair):
    h = mdns_pair
    agent = h.agents["s0"]
    agent.action_init({"role": "sm"})
    agent.action_start_publish({"type": "_svc._udp"})
    assert "_svc._udp" in agent.published
    inst = agent.published["_svc._udp"]
    assert inst.name == "s0._svc._udp"
    assert inst.provider_node == "s0"
    _t, params = h.first("s0", M.EVENT_SD_START_PUBLISH)
    assert params == ("s0._svc._udp", "s0")


def test_stop_publish_removes_instance(mdns_pair):
    h = mdns_pair
    agent = h.agents["s0"]
    agent.action_init({"role": "sm"})
    agent.action_start_publish({"type": "_t"})
    agent.action_stop_publish({"type": "_t"})
    assert agent.published == {}
    assert h.names_on("s0")[-1] == M.EVENT_SD_STOP_PUBLISH


def test_update_publication_bumps_version_and_emits_first(mdns_pair):
    h = mdns_pair
    agent = h.agents["s0"]
    agent.action_init({"role": "sm"})
    agent.action_start_publish({"type": "_t"})
    agent.action_update_publication({"type": "_t"})
    assert agent.published["_t"].version == 2
    assert M.EVENT_SD_SERVICE_UPD in h.names_on("s0")


def test_update_unpublished_rejected(mdns_pair):
    h = mdns_pair
    agent = h.agents["s0"]
    agent.action_init({"role": "sm"})
    with pytest.raises(RuntimeError):
        agent.action_update_publication({"type": "_ghost"})


def test_search_start_stop_events(mdns_pair):
    h = mdns_pair
    agent = h.agents["s0"]
    agent.action_init({"role": "su"})
    agent.action_start_search({"type": "_t"})
    agent.action_start_search({"type": "_t"})  # idempotent
    assert h.names_on("s0").count(M.EVENT_SD_START_SEARCH) == 1
    agent.action_stop_search({"type": "_t"})
    assert agent.searching == []
    assert h.names_on("s0")[-1] == M.EVENT_SD_STOP_SEARCH


def test_reset_reseeds_rng_per_run(mdns_pair):
    h = mdns_pair
    agent = h.agents["s0"]
    agent.reset(1)
    seq1 = [agent.rng.random() for _ in range(3)]
    agent.reset(1)
    seq1_again = [agent.rng.random() for _ in range(3)]
    agent.reset(2)
    seq2 = [agent.rng.random() for _ in range(3)]
    assert seq1 == seq1_again
    assert seq1 != seq2


def test_reset_clears_all_state(mdns_pair):
    h = mdns_pair
    agent = h.agents["s0"]
    agent.action_init({"role": "su+sm"})
    agent.action_start_publish({"type": "_t"})
    agent.action_start_search({"type": "_t"})
    agent.reset(5)
    assert not agent.initialized
    assert agent.published == {} and agent.searching == []
    assert len(agent.cache) == 0
    # Port freed: a fresh init can bind again.
    agent.action_init({"role": "su"})


def test_add_event_fires_once_per_instance(mdns_pair):
    from repro.sd.model import ServiceInstance

    h = mdns_pair
    agent = h.agents["s0"]
    agent.action_init({"role": "su"})
    agent.action_start_search({"type": "_t"})
    inst = ServiceInstance(
        name="x._t", service_type="_t", provider_node="x", address="10.3.0.9"
    )
    agent.discovered(inst)
    agent.discovered(inst)
    assert h.names_on("s0").count(M.EVENT_SD_SERVICE_ADD) == 1


def test_lost_then_rediscovered_fires_add_again(mdns_pair):
    from repro.sd.model import ServiceInstance

    h = mdns_pair
    agent = h.agents["s0"]
    agent.action_init({"role": "su"})
    agent.action_start_search({"type": "_t"})
    inst = ServiceInstance(
        name="x._t", service_type="_t", provider_node="x", address="10.3.0.9"
    )
    agent.discovered(inst)
    agent.cache.remove("_t", "x._t")
    agent.lost(inst)
    agent.discovered(inst)
    names = h.names_on("s0")
    assert names.count(M.EVENT_SD_SERVICE_ADD) == 2
    assert names.count(M.EVENT_SD_SERVICE_DEL) == 1


def test_discovery_outside_search_is_silent(mdns_pair):
    from repro.sd.model import ServiceInstance

    h = mdns_pair
    agent = h.agents["s0"]
    agent.action_init({"role": "su"})
    inst = ServiceInstance(
        name="x._t", service_type="_t", provider_node="x", address="10.3.0.9"
    )
    agent.discovered(inst)  # caches passively, but no search -> no event
    assert M.EVENT_SD_SERVICE_ADD not in h.names_on("s0")
    assert len(agent.cache) == 1
