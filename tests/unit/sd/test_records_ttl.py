"""TTL edge cases in the service record cache (the SD-layer bug sweep).

Each test pins one audited behaviour of :class:`ServiceCache` /
:class:`CacheEntry`:

* a ``ttl <= 0`` record is a goodbye — it never enters the cache, and it
  evicts any cached entry for the same key,
* re-registration always extends ``expires_at`` to ``now + ttl`` (the
  renewal path),
* a stale (older-version) record neither overwrites the cached
  description nor refreshes its expiry,
* purge drops entries exactly at the expiry boundary (consistent with
  ``remaining() == 0`` / ``fresh_fraction() == 0`` there),
* ``fresh_fraction`` of a non-positive-TTL record is 0.
"""

from repro.sd.model import ServiceInstance, instance_name
from repro.sd.records import CacheEntry, ServiceCache


def _instance(ttl=10.0, version=1, provider="p0", stype="_exp._udp"):
    return ServiceInstance(
        name=instance_name(stype, provider),
        service_type=stype,
        provider_node=provider,
        address="10.0.0.1",
        ttl=ttl,
        version=version,
    )


def test_zero_ttl_record_is_not_cached():
    cache = ServiceCache()
    is_new, is_update = cache.add(_instance(ttl=0.0), now=5.0)
    assert (is_new, is_update) == (False, False)
    assert len(cache) == 0
    assert cache.get("_exp._udp", "p0._exp._udp") is None
    assert cache.entries_for_type("_exp._udp") == []


def test_negative_ttl_record_evicts_existing_entry():
    cache = ServiceCache()
    cache.add(_instance(ttl=10.0), now=0.0)
    assert len(cache) == 1
    cache.add(_instance(ttl=-1.0), now=1.0)
    assert len(cache) == 0


def test_reregistration_extends_expiry():
    cache = ServiceCache()
    cache.add(_instance(ttl=10.0), now=0.0)
    entry = cache.get("_exp._udp", "p0._exp._udp")
    assert entry.expires_at == 10.0
    # Renewal at t=8 with the same version pushes the deadline out.
    is_new, is_update = cache.add(_instance(ttl=10.0), now=8.0)
    assert (is_new, is_update) == (False, False)
    entry = cache.get("_exp._udp", "p0._exp._udp")
    assert entry.expires_at == 18.0
    assert entry.learned_at == 8.0
    assert cache.purge_expired(now=10.0) == []


def test_stale_version_does_not_overwrite_or_refresh():
    cache = ServiceCache()
    cache.add(_instance(ttl=10.0, version=3), now=0.0)
    is_new, is_update = cache.add(_instance(ttl=10.0, version=2), now=5.0)
    assert (is_new, is_update) == (False, False)
    entry = cache.get("_exp._udp", "p0._exp._udp")
    assert entry.instance.version == 3
    assert entry.expires_at == 10.0  # expiry not reset by the stale echo
    assert entry.learned_at == 0.0


def test_newer_version_replaces_and_reports_update():
    cache = ServiceCache()
    cache.add(_instance(ttl=10.0, version=1), now=0.0)
    is_new, is_update = cache.add(_instance(ttl=10.0, version=2), now=4.0)
    assert (is_new, is_update) == (False, True)
    assert cache.get("_exp._udp", "p0._exp._udp").instance.version == 2


def test_purge_at_exact_expiry_boundary():
    cache = ServiceCache()
    cache.add(_instance(ttl=10.0), now=0.0)
    entry = cache.get("_exp._udp", "p0._exp._udp")
    # At the boundary the record has no remaining lifetime...
    assert entry.remaining(10.0) == 0.0
    assert entry.fresh_fraction(10.0) == 0.0
    # ...and purge is consistent with that: it drops the entry.
    assert cache.purge_expired(now=9.999) == []
    gone = cache.purge_expired(now=10.0)
    assert [i.name for i in gone] == ["p0._exp._udp"]
    assert len(cache) == 0


def test_fresh_fraction_guards_non_positive_ttl():
    entry = CacheEntry(instance=_instance(ttl=0.0), expires_at=5.0, learned_at=0.0)
    assert entry.fresh_fraction(1.0) == 0.0
    entry = CacheEntry(instance=_instance(ttl=-3.0), expires_at=5.0, learned_at=0.0)
    assert entry.fresh_fraction(1.0) == 0.0


def test_refresh_merges_by_version_then_deadline():
    cache = ServiceCache()
    cache.add(_instance(ttl=10.0, version=2), now=0.0)  # expires 10
    # Same version, earlier deadline: ignored.
    assert cache.refresh(_instance(ttl=10.0, version=2), 8.0, 1.0) == (False, False)
    assert cache.get("_exp._udp", "p0._exp._udp").expires_at == 10.0
    # Same version, later deadline: extends.
    assert cache.refresh(_instance(ttl=10.0, version=2), 14.0, 1.0) == (False, False)
    assert cache.get("_exp._udp", "p0._exp._udp").expires_at == 14.0
    # Older version: ignored even with a later deadline.
    assert cache.refresh(_instance(ttl=10.0, version=1), 99.0, 2.0) == (False, False)
    assert cache.get("_exp._udp", "p0._exp._udp").instance.version == 2
    # Newer version wins regardless of deadline ordering.
    assert cache.refresh(_instance(ttl=10.0, version=3), 12.0, 2.0) == (False, True)
    entry = cache.get("_exp._udp", "p0._exp._udp")
    assert entry.instance.version == 3 and entry.expires_at == 12.0
    # Already-expired gossip records never enter.
    assert cache.refresh(_instance(ttl=10.0, version=9), 2.0, 2.0) == (False, False)
    assert cache.get("_exp._udp", "p0._exp._udp").instance.version == 3
    # Unknown key with a live deadline is new.
    other = _instance(ttl=10.0, provider="p1")
    assert cache.refresh(other, 20.0, 2.0) == (True, False)
