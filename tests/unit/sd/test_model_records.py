"""Unit tests for the SD domain model and TTL caches."""

import pytest

from repro.sd.model import Role, ServiceInstance, instance_name
from repro.sd.records import ServiceCache


def _inst(name="p1._t", type_="_t", provider="p1", ttl=10.0, version=1):
    return ServiceInstance(
        name=name, service_type=type_, provider_node=provider,
        address="10.0.0.1", ttl=ttl, version=version,
    )


# ----------------------------------------------------------------------
# Model
# ----------------------------------------------------------------------
def test_role_parse():
    assert Role.parse("su") is Role.SU
    assert Role.parse(" SCM ") is Role.SCM
    assert Role.parse("su+sm") is Role.SU_SM
    assert Role.parse("") is Role.SU
    with pytest.raises(ValueError):
        Role.parse("king")


def test_role_predicates():
    assert Role.SU.is_user and not Role.SU.is_manager
    assert Role.SM.is_manager and not Role.SM.is_user
    assert Role.SU_SM.is_user and Role.SU_SM.is_manager
    assert not Role.SCM.is_user and not Role.SCM.is_manager


def test_instance_name_convention():
    assert instance_name("_http._tcp", "host7") == "host7._http._tcp"


def test_wire_roundtrip():
    inst = _inst()
    again = ServiceInstance.from_wire(inst.as_wire())
    assert again == inst


def test_bumped_increments_version():
    inst = _inst(version=3)
    assert inst.bumped().version == 4
    assert inst.version == 3


def test_event_params_pair():
    assert _inst().event_params() == ("p1._t", "p1")


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def test_cache_add_new_vs_update():
    cache = ServiceCache()
    is_new, is_upd = cache.add(_inst(), now=0.0)
    assert is_new and not is_upd
    is_new, is_upd = cache.add(_inst(), now=1.0)  # refresh, same version
    assert not is_new and not is_upd
    is_new, is_upd = cache.add(_inst(version=2), now=2.0)
    assert not is_new and is_upd


def test_cache_expiry():
    cache = ServiceCache()
    cache.add(_inst(ttl=5.0), now=0.0)
    assert cache.purge_expired(now=4.9) == []
    gone = cache.purge_expired(now=5.0)
    assert [g.name for g in gone] == ["p1._t"]
    assert len(cache) == 0


def test_cache_refresh_extends_lifetime():
    cache = ServiceCache()
    cache.add(_inst(ttl=5.0), now=0.0)
    cache.add(_inst(ttl=5.0), now=4.0)
    assert cache.purge_expired(now=6.0) == []
    assert cache.purge_expired(now=9.0) != []


def test_fresh_fraction():
    cache = ServiceCache()
    cache.add(_inst(ttl=10.0), now=0.0)
    entry = cache.get("_t", "p1._t")
    assert entry.fresh_fraction(0.0) == pytest.approx(1.0)
    assert entry.fresh_fraction(5.0) == pytest.approx(0.5)
    assert entry.fresh_fraction(20.0) == 0.0


def test_entries_for_type_sorted():
    cache = ServiceCache()
    cache.add(_inst(name="b._t", provider="b"), now=0.0)
    cache.add(_inst(name="a._t", provider="a"), now=0.0)
    cache.add(_inst(name="x._other", type_="_other", provider="x"), now=0.0)
    names = [e.instance.name for e in cache.entries_for_type("_t")]
    assert names == ["a._t", "b._t"]


def test_remove():
    cache = ServiceCache()
    cache.add(_inst(), now=0.0)
    gone = cache.remove("_t", "p1._t")
    assert gone is not None and len(cache) == 0
    assert cache.remove("_t", "p1._t") is None


def test_next_expiry():
    cache = ServiceCache()
    assert cache.next_expiry() is None
    cache.add(_inst(name="a._t", provider="a", ttl=5.0), now=0.0)
    cache.add(_inst(name="b._t", provider="b", ttl=2.0), now=0.0)
    assert cache.next_expiry() == pytest.approx(2.0)


def test_clear():
    cache = ServiceCache()
    cache.add(_inst(), now=0.0)
    cache.clear()
    assert len(cache) == 0
