"""The teardown ordering race in ``SDAgent._teardown``.

When the cache-housekeeping timeout fires in the *same simulation
instant* as ``sd_exit``, the kernel has already detached the process's
resume callback from the timeout, so the teardown's ``interrupt()``
cannot cancel it: without the epoch guard the housekeeping body runs one
extra time after ``cache.clear()`` / ``initialized = False`` — purging
state of the next lifecycle and scheduling a stray timeout.  These tests
force exactly that interleaving.
"""

from repro.net.node import NetNode
from repro.sd import model as M
from repro.sd.agent import SDAgent
from repro.sd.model import ServiceInstance, instance_name
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


class _LoopbackAgent(SDAgent):
    """Minimal concrete agent: no network, just the housekeeping loop."""

    protocol = "loopback"

    def on_init(self, params):
        self.spawn(self.cache_housekeeping(interval=1.0), "cache")

    def on_start_search(self, service_type, params):
        pass

    def on_start_publish(self, instance, params):
        pass


def _make_agent():
    sim = Simulator()
    node = NetNode(sim, "s0", "10.9.0.1")
    events = []

    def emit(name, params=()):
        events.append((sim.now, name, tuple(params)))

    agent = _LoopbackAgent(sim, node, RngRegistry(7), emit=emit, config={})
    agent.reset(0)
    return sim, agent, events


def _instance(ttl):
    return ServiceInstance(
        name=instance_name("_exp._udp", "p0"),
        service_type="_exp._udp",
        provider_node="p0",
        address="10.9.0.9",
        ttl=ttl,
    )


def test_exit_mid_housekeeping_interval_never_purges_after_teardown():
    sim, agent, events = _make_agent()

    # The driver's timeout is created *before* the agent spawns its
    # housekeeping loop, so at t=2.0 — where both the exit and the
    # housekeeping wakeup land — the exit runs first and the already
    # scheduled housekeeping resume runs right after the teardown.
    def driver():
        yield sim.timeout(2.0)
        agent.action_exit({})

    sim.process(driver(), name="driver")
    agent.action_init({"role": "su"})
    agent.action_start_search({"type": "_exp._udp"})
    agent.discovered(_instance(ttl=1.5))

    purge_calls = []
    real_purge = agent.cache.purge_expired

    def spying_purge(now):
        purge_calls.append(agent.initialized)
        return real_purge(now)

    agent.cache.purge_expired = spying_purge
    sim.run(until=5.0)

    # The t=1.0 wakeup purged normally (agent initialized); the stale
    # resume that raced the teardown at t=2.0 must not have run a purge.
    assert purge_calls == [True]
    assert not agent.initialized
    assert len(agent.cache) == 0

    # No SD event may follow sd_exit_done: the goodbye is the last word.
    names = [name for _t, name, _p in events]
    assert names.count(M.EVENT_SD_EXIT_DONE) == 1
    assert names[-1] == M.EVENT_SD_EXIT_DONE
    assert M.EVENT_SD_SERVICE_DEL not in names[names.index(M.EVENT_SD_EXIT_DONE) :]


def test_reinit_in_exit_instant_keeps_new_cache_untouched():
    """Exit + immediate re-init in the racing instant: the stale loop of
    the previous lifecycle must not purge (or announce loss for) entries
    of the new one, and the new housekeeping still works."""
    sim, agent, events = _make_agent()

    def driver():
        yield sim.timeout(2.0)
        agent.action_exit({})
        agent.action_init({"role": "su"})
        agent.action_start_search({"type": "_exp._udp"})
        # Fresh lifecycle entry expiring at t=2.5.
        agent.discovered(_instance(ttl=0.5))

    sim.process(driver(), name="driver")
    agent.action_init({"role": "su"})
    agent.action_start_search({"type": "_exp._udp"})
    sim.run(until=2.1)
    assert agent.initialized
    assert len(agent.cache) == 1  # the stale loop did not purge it early

    sim.run(until=5.0)
    # The new lifecycle's own housekeeping expired it at t=3.0.
    assert len(agent.cache) == 0
    dels = [(t, p) for t, name, p in events if name == M.EVENT_SD_SERVICE_DEL]
    assert dels == [(3.0, ("p0._exp._udp", "p0"))]


def test_housekeeping_still_expires_and_announces_normally():
    sim, agent, events = _make_agent()
    agent.action_init({"role": "su"})
    agent.action_start_search({"type": "_exp._udp"})
    agent.discovered(_instance(ttl=2.5))
    sim.run(until=10.0)
    names = [name for _t, name, _p in events]
    assert M.EVENT_SD_SERVICE_ADD in names
    assert M.EVENT_SD_SERVICE_DEL in names
