"""Fixtures for SD protocol tests: agents on a small emulated mesh."""

from __future__ import annotations

import pytest

from repro.net.medium import WirelessMedium
from repro.net.node import NetNode
from repro.net.topology import full_mesh_topology, line_topology
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


class AgentHarness:
    """A set of nodes with SD agents and per-node event recorders."""

    def __init__(self, agent_cls, n=3, topology="full", base_loss=0.0, config=None):
        self.sim = Simulator()
        self.rngs = RngRegistry(777)
        if topology == "full":
            topo = full_mesh_topology(n, base_loss=base_loss, prefix="s")
        else:
            topo = line_topology(n, base_loss=base_loss, prefix="s")
        self.medium = WirelessMedium(self.sim, topo, self.rngs.stream("medium"))
        self.nodes = {}
        self.agents = {}
        self.events = {}
        for i, name in enumerate(topo.node_names):
            node = NetNode(self.sim, name, f"10.3.0.{i + 1}")
            self.medium.attach(node)
            self.nodes[name] = node
            log = []
            self.events[name] = log

            def emit(event_name, params=(), _log=log, _name=name, run_id=None):
                _log.append((self.sim.now, event_name, tuple(params)))

            agent = agent_cls(
                self.sim, node, self.rngs, emit=emit, config=dict(config or {})
            )
            agent.reset(0)
            self.agents[name] = agent

    def names_on(self, node):
        return [name for _t, name, _p in self.events[node]]

    def first(self, node, event_name):
        for t, name, params in self.events[node]:
            if name == event_name:
                return t, params
        return None

    def run(self, until):
        self.sim.run(until=until)


@pytest.fixture
def mdns_pair():
    from repro.sd.mdns import MdnsAgent

    return AgentHarness(MdnsAgent, n=2)


@pytest.fixture
def mdns_trio():
    from repro.sd.mdns import MdnsAgent

    return AgentHarness(MdnsAgent, n=3)


@pytest.fixture
def slp_trio():
    from repro.sd.slp import SlpAgent

    return AgentHarness(SlpAgent, n=3)


@pytest.fixture
def hybrid_trio():
    from repro.sd.hybrid import HybridAgent

    return AgentHarness(HybridAgent, n=3)


@pytest.fixture
def registry_trio():
    """s0 = registry, s1 = provider, s2 = client (direct polling)."""
    from repro.sd.registry import RegistryAgent

    return AgentHarness(
        RegistryAgent,
        n=3,
        config={
            "registry_addrs": ["10.3.0.1"],
            "registration_ttl": 3.0,
            "poll_interval": 0.5,
        },
    )


@pytest.fixture
def registry_broker_quad():
    """s0 = registry, s1 = broker, s2 = provider, s3 = subscriber."""
    from repro.sd.registry import RegistryAgent

    return AgentHarness(
        RegistryAgent,
        n=4,
        config={
            "registry_addrs": ["10.3.0.1"],
            "broker_addrs": ["10.3.0.2"],
            "dissemination": "broker",
            "registration_ttl": 3.0,
        },
    )


@pytest.fixture
def registry_replicated():
    """s0/s1/s2 = replicas, s3 = provider, s4 = client.

    The crc32 home assignment puts the provider on s1 and the client on
    s0, so direct discovery only works once gossip has converged.
    """
    from repro.sd.registry import RegistryAgent

    return AgentHarness(
        RegistryAgent,
        n=5,
        config={
            "registry_addrs": ["10.3.0.1", "10.3.0.2", "10.3.0.3"],
            "registration_ttl": 5.0,
            "poll_interval": 0.5,
            "gossip_interval": 0.5,
        },
    )
