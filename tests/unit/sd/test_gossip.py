"""Anti-entropy gossip merge semantics (pure functions + replicator)."""

from __future__ import annotations

from repro.sd.gossip import gossip_wire, merge_gossip
from repro.sd.model import ServiceInstance
from repro.sd.records import ServiceCache

SVC = "_exp._udp"


def _instance(provider="p0", version=1, ttl=10.0):
    return ServiceInstance(
        name=f"{provider}.{SVC}",
        service_type=SVC,
        provider_node=provider,
        address="10.3.0.9",
        ttl=ttl,
        version=version,
    )


def test_gossip_wire_carries_remaining_lifetimes():
    cache = ServiceCache()
    cache.add(_instance("a", ttl=10.0), now=0.0)
    cache.add(_instance("b", ttl=4.0), now=2.0)
    wire = gossip_wire(cache, now=3.0)
    assert [(w["provider"], rem) for w, rem in wire] == [("a", 7.0), ("b", 3.0)]


def test_merge_reports_adds_and_updates():
    cache = ServiceCache()
    cache.add(_instance("a", version=1), now=0.0)
    payload = [
        [_instance("a", version=2).as_wire(), 8.0],
        [_instance("b").as_wire(), 5.0],
    ]
    changes, extended = merge_gossip(cache, payload, now=1.0)
    assert [(i.provider_node, op) for i, op in changes] == [("a", "upd"), ("b", "add")]
    assert extended == 0
    assert cache.get(SVC, f"a.{SVC}").instance.version == 2


def test_merge_counts_pure_deadline_extensions_separately():
    cache = ServiceCache()
    cache.add(_instance("a"), now=0.0)  # expires at 10
    changes, extended = merge_gossip(cache, [[_instance("a").as_wire(), 9.5]], now=4.0)
    assert changes == []
    assert extended == 1
    assert cache.get(SVC, f"a.{SVC}").expires_at == 13.5


def test_merge_ignores_stale_versions_and_earlier_deadlines():
    cache = ServiceCache()
    cache.add(_instance("a", version=3), now=0.0)  # expires at 10
    changes, extended = merge_gossip(
        cache,
        [
            [_instance("a", version=2).as_wire(), 50.0],  # stale version
            [_instance("a", version=3).as_wire(), 1.0],  # earlier deadline
        ],
        now=1.0,
    )
    assert changes == []
    assert extended == 0
    entry = cache.get(SVC, f"a.{SVC}")
    assert entry.instance.version == 3
    assert entry.expires_at == 10.0


def test_merge_skips_already_expired_payload_records():
    cache = ServiceCache()
    changes, extended = merge_gossip(cache, [[_instance("a").as_wire(), 0.0]], now=5.0)
    assert changes == []
    assert extended == 0
    assert len(cache) == 0


def test_replicator_tracks_rounds_and_merges(registry_replicated):
    h = registry_replicated
    for replica in ("s0", "s1", "s2"):
        h.agents[replica].action_init({"role": "scm", "replicas": 3})
    h.agents["s3"].action_init({"role": "sm", "replicas": 3})
    h.agents["s3"].action_start_publish({})
    h.run(until=6.0)
    total_rounds = sum(
        h.agents[r].gossip.rounds_sent for r in ("s0", "s1", "s2")
    )
    # ~interval 0.5 over 6 s per replica.
    assert total_rounds >= 20
    merged = [r for r in ("s0", "s1", "s2") if h.agents[r].gossip.merges_applied]
    assert merged  # somebody learned the record via anti-entropy
    for replica in ("s0", "s1", "s2"):
        assert len(h.agents[replica].registrations) == 1
