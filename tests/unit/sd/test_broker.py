"""Broker-relay dissemination: subscriptions, snapshots, push fan-out."""

from __future__ import annotations

from repro.sd.broker import SubscriberTable
from repro.sd.model import ServiceInstance

SVC = "_exp._udp"


def _instance(provider="p0", stype=SVC, version=1, ttl=10.0):
    return ServiceInstance(
        name=f"{provider}.{stype}",
        service_type=stype,
        provider_node=provider,
        address="10.3.0.9",
        ttl=ttl,
        version=version,
    )


class TestSubscriberTable:
    def test_add_is_idempotent_and_counted(self):
        table = SubscriberTable()
        assert table.add("10.0.0.1", SVC)
        assert not table.add("10.0.0.1", SVC)
        assert table.add("10.0.0.1", "*")
        assert len(table) == 2

    def test_targets_match_type_and_wildcard_sorted(self):
        table = SubscriberTable()
        table.add("10.0.0.3", SVC)
        table.add("10.0.0.1", "*")
        table.add("10.0.0.2", "_other._udp")
        assert table.targets_for(SVC) == ["10.0.0.1", "10.0.0.3"]
        assert table.targets_for("_other._udp") == ["10.0.0.1", "10.0.0.2"]

    def test_notify_fans_out_one_datagram_per_target(self):
        table = SubscriberTable()
        table.add("10.0.0.1", SVC)
        table.add("10.0.0.2", "*")
        sent = []
        count = table.notify(
            lambda addr, payload, size: sent.append((addr, payload, size)),
            _instance(),
            "add",
            7.5,
        )
        assert count == 2
        assert [addr for addr, _p, _s in sent] == ["10.0.0.1", "10.0.0.2"]
        for _addr, payload, size in sent:
            assert payload["kind"] == "notify"
            assert payload["op"] == "add"
            assert payload["remaining"] == 7.5
            assert size == 160

    def test_remove_and_clear(self):
        table = SubscriberTable()
        table.add("10.0.0.1", SVC)
        table.remove("10.0.0.1", SVC)
        assert table.targets_for(SVC) == []
        table.add("10.0.0.1", SVC)
        table.clear()
        assert len(table) == 0


class TestBrokerDissemination:
    def test_subscriber_gets_snapshot_and_pushes(self, registry_broker_quad):
        h = registry_broker_quad
        h.agents["s0"].action_init({"role": "scm"})
        h.agents["s1"].action_init({"role": "broker"})
        h.agents["s2"].action_init({"role": "sm"})
        h.agents["s3"].action_init({"role": "su"})
        h.agents["s2"].action_start_publish({})
        h.run(until=4.0)
        h.agents["s3"].action_start_search({})
        h.run(until=8.0)

        # The broker synced its wildcard mirror from the registry ...
        assert h.first("s1", "sd_subscribed") is not None
        assert h.agents["s1"].relay.synced
        assert len(h.agents["s1"].relay.mirror) == 1
        # ... and the client got a subscription snapshot, not a poll.
        t_sub, sub = h.first("s3", "sd_subscribed")
        assert sub[0] == "s1"
        assert h.first("s3", "sd_service_add")[1] == (f"s2.{SVC}", "s2")

    def test_new_registration_is_pushed_without_polling(self, registry_broker_quad):
        h = registry_broker_quad
        h.agents["s0"].action_init({"role": "scm"})
        h.agents["s1"].action_init({"role": "broker"})
        h.agents["s3"].action_init({"role": "su"})
        h.agents["s3"].action_start_search({})
        h.run(until=2.0)
        # Provider appears *after* the client subscribed: push path only.
        h.agents["s2"].action_init({"role": "sm"})
        h.agents["s2"].action_start_publish({})
        h.run(until=4.0)
        t_add, params = h.first("s3", "sd_service_add")
        assert params == (f"s2.{SVC}", "s2")
        assert t_add > 2.0
        # Push latency is network RTTs, far below any poll interval.
        assert t_add < 2.5

    def test_deregistration_is_pushed_as_del(self, registry_broker_quad):
        h = registry_broker_quad
        h.agents["s0"].action_init({"role": "scm"})
        h.agents["s1"].action_init({"role": "broker"})
        h.agents["s2"].action_init({"role": "sm"})
        h.agents["s3"].action_init({"role": "su"})
        h.agents["s2"].action_start_publish({})
        h.agents["s3"].action_start_search({})
        h.run(until=4.0)
        h.agents["s2"].action_stop_publish({})
        h.run(until=6.0)
        t_del, params = h.first("s3", "sd_service_del")
        assert params == (f"s2.{SVC}", "s2")
        # TTL expiry would need > 3 s more; the push lands within ~RTT.
        assert t_del < 4.5

    def test_renewals_extend_client_deadlines_via_refresh(self, registry_broker_quad):
        h = registry_broker_quad
        h.agents["s0"].action_init({"role": "scm"})
        h.agents["s1"].action_init({"role": "broker"})
        h.agents["s2"].action_init({"role": "sm"})
        h.agents["s3"].action_init({"role": "su"})
        h.agents["s2"].action_start_publish({})
        h.agents["s3"].action_start_search({})
        # registration_ttl=3.0: without refresh pushes the client's cached
        # deadline from the initial snapshot would lapse within 3 s.
        h.run(until=12.0)
        assert "sd_service_del" not in h.names_on("s3")
        entry = h.agents["s3"].cache.get(SVC, f"s2.{SVC}")
        assert entry is not None
        assert entry.expires_at > 12.0
