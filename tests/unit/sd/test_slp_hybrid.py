"""Unit tests for the three-party SLP-style and hybrid protocols."""


from repro.sd import model as M


def _scm(h, node="s2"):
    h.agents[node].action_init({"role": "scm"})


def _sm(h, node="s0", type_="_t"):
    h.agents[node].action_init({"role": "sm"})
    h.agents[node].action_start_publish({"type": type_})


def _su(h, node="s1", type_="_t"):
    h.agents[node].action_init({"role": "su"})
    h.agents[node].action_start_search({"type": type_})


# ----------------------------------------------------------------------
# SLP
# ----------------------------------------------------------------------
def test_scm_started_event(slp_trio):
    h = slp_trio
    _scm(h)
    assert h.names_on("s2")[0] == M.EVENT_SCM_STARTED


def test_da_discovery_via_advert(slp_trio):
    h = slp_trio
    _scm(h)
    _sm(h, "s0")
    h.run(until=3.0)
    hit = h.first("s0", M.EVENT_SCM_FOUND)
    assert hit is not None and hit[1] == ("s2",)


def test_da_discovery_via_active_request(slp_trio):
    h = slp_trio
    # SM comes up first; SCM appears later: the active DASrvRqst finds it.
    _sm(h, "s0")
    h.run(until=5.0)
    assert h.first("s0", M.EVENT_SCM_FOUND) is None
    _scm(h)
    h.run(until=12.0)
    assert h.first("s0", M.EVENT_SCM_FOUND) is not None


def test_registration_reaches_scm(slp_trio):
    h = slp_trio
    _scm(h)
    _sm(h, "s0")
    h.run(until=5.0)
    hit = h.first("s2", M.EVENT_SCM_REGISTRATION_ADD)
    assert hit is not None
    assert hit[1] == ("s0._t", "s0")
    assert len(h.agents["s2"].registrations) == 1


def test_directed_discovery_end_to_end(slp_trio):
    h = slp_trio
    _scm(h)
    _sm(h, "s0")
    _su(h, "s1")
    h.run(until=8.0)
    hit = h.first("s1", M.EVENT_SD_SERVICE_ADD)
    assert hit is not None and hit[1] == ("s0._t", "s0")


def test_su_polls_scm_for_late_registration(slp_trio):
    h = slp_trio
    _scm(h)
    _su(h, "s1")
    h.run(until=6.0)
    assert h.first("s1", M.EVENT_SD_SERVICE_ADD) is None
    _sm(h, "s0")  # publisher appears later; SU's next poll finds it
    h.run(until=14.0)
    assert h.first("s1", M.EVENT_SD_SERVICE_ADD) is not None


def test_deregistration_removes_from_scm(slp_trio):
    h = slp_trio
    _scm(h)
    _sm(h, "s0")
    h.run(until=5.0)
    h.agents["s0"].action_stop_publish({"type": "_t"})
    h.run(until=8.0)
    assert M.EVENT_SCM_REGISTRATION_DEL in h.names_on("s2")
    assert len(h.agents["s2"].registrations) == 0


def test_registration_lifetime_expires_without_refresh(slp_trio):
    h = slp_trio
    h.agents["s0"].config["registration_ttl"] = 3.0
    _scm(h)
    _sm(h, "s0")
    h.run(until=4.0)
    assert len(h.agents["s2"].registrations) == 1
    # Kill the SM so it cannot refresh; lifetime lapses on the SCM.
    h.agents["s0"].action_exit({})
    h.run(until=12.0)
    assert len(h.agents["s2"].registrations) == 0
    assert M.EVENT_SCM_REGISTRATION_DEL in h.names_on("s2")


def test_update_publication_updates_registration(slp_trio):
    h = slp_trio
    _scm(h)
    _sm(h, "s0")
    h.run(until=4.0)
    h.agents["s0"].action_update_publication({"type": "_t"})
    h.run(until=8.0)
    assert M.EVENT_SCM_REGISTRATION_UPD in h.names_on("s2")


def test_unicast_retry_survives_lossy_link():
    from repro.sd.slp import SlpAgent

    from .conftest import AgentHarness

    h = AgentHarness(SlpAgent, n=3, base_loss=0.35)
    _scm(h)
    _sm(h, "s0")
    _su(h, "s1")
    h.run(until=40.0)
    assert h.first("s2", M.EVENT_SCM_REGISTRATION_ADD) is not None
    assert h.first("s1", M.EVENT_SD_SERVICE_ADD) is not None


# ----------------------------------------------------------------------
# Hybrid
# ----------------------------------------------------------------------
def test_hybrid_works_without_scm(hybrid_trio):
    h = hybrid_trio
    _sm(h, "s0")
    _su(h, "s1")
    h.run(until=6.0)
    assert h.first("s1", M.EVENT_SD_SERVICE_ADD) is not None
    assert h.first("s1", M.EVENT_SCM_FOUND) is None


def test_hybrid_upgrades_to_directed_with_scm(hybrid_trio):
    h = hybrid_trio
    _scm(h, "s2")
    _sm(h, "s0")
    _su(h, "s1")
    h.run(until=10.0)
    assert h.first("s1", M.EVENT_SCM_FOUND) is not None
    assert h.first("s1", M.EVENT_SD_SERVICE_ADD) is not None
    assert h.first("s2", M.EVENT_SCM_REGISTRATION_ADD) is not None


def test_hybrid_announcements_discover_passively(hybrid_trio):
    h = hybrid_trio
    h.agents["s1"].action_init({"role": "su"})
    h.agents["s1"].action_start_search({"type": "_t"})
    _sm(h, "s0")
    h.run(until=3.0)
    assert h.first("s1", M.EVENT_SD_SERVICE_ADD) is not None


def test_hybrid_goodbye(hybrid_trio):
    h = hybrid_trio
    _sm(h, "s0")
    _su(h, "s1")
    h.run(until=4.0)
    h.agents["s0"].action_stop_publish({"type": "_t"})
    h.run(until=6.0)
    assert M.EVENT_SD_SERVICE_DEL in h.names_on("s1")
