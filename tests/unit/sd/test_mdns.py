"""Unit tests for the two-party mDNS-style protocol."""

import pytest

from repro.sd import model as M


def _publish(h, node, type_="_t"):
    h.agents[node].action_init({"role": "sm"})
    h.agents[node].action_start_publish({"type": type_})


def _search(h, node, type_="_t", **params):
    h.agents[node].action_init({"role": "su"})
    h.agents[node].action_start_search({"type": type_, **params})


def test_scm_role_rejected(mdns_pair):
    with pytest.raises(RuntimeError, match="no SCM"):
        mdns_pair.agents["s0"].action_init({"role": "scm"})


def test_announcement_discovers_listening_su(mdns_pair):
    h = mdns_pair
    _search(h, "s1")
    _publish(h, "s0")
    h.run(until=2.0)
    hit = h.first("s1", M.EVENT_SD_SERVICE_ADD)
    assert hit is not None
    _t, params = hit
    assert params == ("s0._t", "s0")


def test_query_discovers_late_joining_su(mdns_pair):
    h = mdns_pair
    _publish(h, "s0")
    h.run(until=5.0)  # announcements long gone
    _search(h, "s1")
    h.run(until=8.0)
    hit = h.first("s1", M.EVENT_SD_SERVICE_ADD)
    assert hit is not None
    t, _params = hit
    assert t > 5.0  # found via query/response, not stale announcements


def test_passive_mode_sends_no_queries(mdns_pair):
    h = mdns_pair
    h.agents["s1"].action_init({"role": "su"})
    h.agents["s1"].action_start_search({"type": "_t", "mode": "passive"})
    h.run(until=5.0)
    queries = [
        r for r in h.nodes["s1"].capture.records
        if r["direction"] == "tx" and isinstance(r["payload"], dict)
        and r["payload"].get("kind") == "query"
    ]
    assert queries == []
    # But announcements still discover it.
    _publish(h, "s0")
    h.run(until=8.0)
    assert h.first("s1", M.EVENT_SD_SERVICE_ADD) is not None


def test_query_backoff_doubles(mdns_pair):
    h = mdns_pair
    _search(h, "s1")  # nothing published: queries keep going
    h.run(until=16.0)
    agent = h.agents["s1"]
    times = sorted(agent.query_sent_at.values())
    assert len(times) >= 4
    gaps = [b - a for a, b in zip(times, times[1:])]
    for earlier, later in zip(gaps, gaps[1:]):
        assert later == pytest.approx(earlier * 2.0, rel=0.01)


def test_known_answer_suppression(mdns_pair):
    h = mdns_pair
    _publish(h, "s0")
    _search(h, "s1")
    h.run(until=3.0)
    assert h.first("s1", M.EVENT_SD_SERVICE_ADD) is not None
    responses_before = len([
        r for r in h.nodes["s0"].capture.records
        if r["direction"] == "tx" and r["payload"].get("kind") == "response"
    ])
    # Further queries carry the fresh known answer -> no more responses
    # (and no announcements due: ttl 120 -> refresh at 96 s).
    h.run(until=20.0)
    responses_after = len([
        r for r in h.nodes["s0"].capture.records
        if r["direction"] == "tx" and r["payload"].get("kind") == "response"
    ])
    assert responses_after == responses_before


def test_response_echoes_query_id(mdns_pair):
    h = mdns_pair
    _publish(h, "s0")
    h.run(until=5.0)
    _search(h, "s1")
    h.run(until=8.0)
    agent = h.agents["s1"]
    assert agent.response_rtts, "request/response association must yield RTTs"
    qid, rtt = agent.response_rtts[0]
    assert qid in agent.query_sent_at
    assert 0.0 < rtt < 1.0


def test_goodbye_triggers_service_del(mdns_pair):
    h = mdns_pair
    _publish(h, "s0")
    _search(h, "s1")
    h.run(until=3.0)
    h.agents["s0"].action_stop_publish({"type": "_t"})
    h.run(until=5.0)
    names = h.names_on("s1")
    assert M.EVENT_SD_SERVICE_DEL in names


def test_cache_expiry_triggers_service_del(mdns_pair):
    h = mdns_pair
    h.agents["s0"].config["record_ttl"] = 3.0
    h.agents["s0"].config["refresh"] = False
    _publish(h, "s0")
    _search(h, "s1")
    h.run(until=2.0)
    assert h.first("s1", M.EVENT_SD_SERVICE_ADD) is not None
    # Suppress re-discovery: stop the publisher's responder by exiting.
    h.agents["s0"].action_exit({})
    h.run(until=10.0)
    assert M.EVENT_SD_SERVICE_DEL in h.names_on("s1")


def test_refresh_announcements_keep_service_alive(mdns_pair):
    h = mdns_pair
    h.agents["s0"].config["record_ttl"] = 3.0  # refresh every 2.4 s
    _publish(h, "s0")
    _search(h, "s1")
    h.run(until=12.0)
    assert M.EVENT_SD_SERVICE_DEL not in h.names_on("s1")


def test_two_sms_both_discovered(mdns_trio):
    h = mdns_trio
    _publish(h, "s0")
    _publish(h, "s1")
    _search(h, "s2")
    h.run(until=3.0)
    adds = [p for t, n, p in h.events["s2"] if n == M.EVENT_SD_SERVICE_ADD]
    providers = {params[1] for params in adds}
    assert providers == {"s0", "s1"}


def test_own_announcement_ignored(mdns_pair):
    h = mdns_pair
    agent = h.agents["s0"]
    agent.action_init({"role": "su+sm"})
    agent.action_start_publish({"type": "_t"})
    agent.action_start_search({"type": "_t"})
    h.run(until=3.0)
    adds = [p for t, n, p in h.events["s0"] if n == M.EVENT_SD_SERVICE_ADD]
    assert adds == []  # a node does not "discover" itself


def test_stop_search_halts_querier(mdns_pair):
    h = mdns_pair
    _search(h, "s1")
    h.run(until=2.0)
    n_queries = len(h.agents["s1"].query_sent_at)
    h.agents["s1"].action_stop_search({"type": "_t"})
    h.run(until=20.0)
    assert len(h.agents["s1"].query_sent_at) == n_queries


def test_service_type_enumeration(mdns_trio):
    """DNS-SD meta-query: browsing for types, not instances."""
    from repro.sd.mdns import META_TYPE_ENUMERATION

    h = mdns_trio
    h.agents["s0"].action_init({"role": "sm"})
    h.agents["s0"].action_start_publish({"type": "_http._tcp"})
    h.agents["s1"].action_init({"role": "sm"})
    h.agents["s1"].action_start_publish({"type": "_ipp._tcp"})
    h.agents["s2"].action_init({"role": "su"})
    h.agents["s2"].action_start_search({"type": META_TYPE_ENUMERATION})
    h.run(until=3.0)
    adds = [p for _t, n, p in h.events["s2"] if n == M.EVENT_SD_SERVICE_ADD]
    discovered_types = {params[0] for params in adds}
    assert discovered_types == {"_http._tcp", "_ipp._tcp"}


def test_type_enumeration_known_answer_suppression(mdns_trio):
    from repro.sd.mdns import META_TYPE_ENUMERATION

    h = mdns_trio
    h.agents["s0"].action_init({"role": "sm"})
    h.agents["s0"].action_start_publish({"type": "_http._tcp"})
    h.agents["s2"].action_init({"role": "su"})
    h.agents["s2"].action_start_search({"type": META_TYPE_ENUMERATION})
    h.run(until=2.0)
    before = len([
        r for r in h.nodes["s0"].capture.records
        if r["direction"] == "tx" and r["payload"].get("kind") == "response"
        and any(
            rec["type"] == META_TYPE_ENUMERATION
            for rec in r["payload"].get("records", [])
        )
    ])
    assert before >= 1
    # Further meta-queries carry the pointer as a known answer.
    h.run(until=10.0)
    after = len([
        r for r in h.nodes["s0"].capture.records
        if r["direction"] == "tx" and r["payload"].get("kind") == "response"
        and any(
            rec["type"] == META_TYPE_ENUMERATION
            for rec in r["payload"].get("records", [])
        )
    ])
    assert after == before


def test_type_enumeration_without_publications_is_silent(mdns_pair):
    from repro.sd.mdns import META_TYPE_ENUMERATION

    h = mdns_pair
    h.agents["s0"].action_init({"role": "sm"})  # initialized, publishes nothing
    h.agents["s1"].action_init({"role": "su"})
    h.agents["s1"].action_start_search({"type": META_TYPE_ENUMERATION})
    h.run(until=3.0)
    assert h.first("s1", M.EVENT_SD_SERVICE_ADD) is None


def test_multihop_discovery_over_line(mdns_trio):
    # Line topology: s0 - s1 - s2; multicast flooding must carry queries
    # and responses across the middle hop.
    from repro.sd.mdns import MdnsAgent

    from .conftest import AgentHarness

    h = AgentHarness(MdnsAgent, n=3, topology="line")
    _publish(h, "s0")
    h.run(until=5.0)
    _search(h, "s2")
    h.run(until=10.0)
    assert h.first("s2", M.EVENT_SD_SERVICE_ADD) is not None
