"""Unit tests for factors, levels and replication."""

import pytest

from repro.core.errors import DescriptionError
from repro.core.factors import (
    Factor,
    FactorList,
    Level,
    ReplicationFactor,
    Usage,
    coerce_value,
)


def _factor(fid="f", type="int", usage=Usage.CONSTANT, values=(1, 2)):
    return Factor(id=fid, type=type, usage=usage, levels=[Level(v) for v in values])


def test_usage_parse():
    assert Usage.parse("random") is Usage.RANDOM
    assert Usage.parse(" Blocking ") is Usage.BLOCKING
    with pytest.raises(DescriptionError):
        Usage.parse("bogus")


@pytest.mark.parametrize(
    "type_name,raw,expected",
    [
        ("int", "5", 5),
        ("int", '"5"', 5),
        ("float", "2.5", 2.5),
        ("str", '"hello"', "hello"),
        ("bool", "true", True),
        ("bool", "0", False),
        ("bool", True, True),
    ],
)
def test_coerce_scalars(type_name, raw, expected):
    assert coerce_value(type_name, raw) == expected


def test_coerce_actor_map():
    raw = {"actor0": {"0": "A", 1: "B"}}
    out = coerce_value("actor_node_map", raw)
    assert out == {"actor0": {"0": "A", "1": "B"}}


def test_coerce_errors():
    with pytest.raises(DescriptionError):
        coerce_value("int", "not-a-number")
    with pytest.raises(DescriptionError):
        coerce_value("actor_node_map", "string")
    with pytest.raises(DescriptionError):
        coerce_value("nosuch", "1")


def test_factor_validates_type():
    with pytest.raises(DescriptionError):
        Factor(id="f", type="weird", usage=Usage.CONSTANT)
    with pytest.raises(DescriptionError):
        Factor(id="", type="int", usage=Usage.CONSTANT)


def test_factor_coerced_copy():
    f = Factor(id="f", type="int", usage=Usage.CONSTANT, levels=[Level("3")])
    assert f.coerced().level_values == [3]
    assert f.level_values == ["3"]  # original untouched


def test_factor_is_constant():
    assert _factor(values=(1,)).is_constant()
    assert not _factor(values=(1, 2)).is_constant()


def test_replication_validation():
    assert ReplicationFactor(count=1).count == 1
    with pytest.raises(DescriptionError):
        ReplicationFactor(count=0)


def test_factorlist_counts():
    fl = FactorList(
        [_factor("a", values=(1, 2)), _factor("b", values=(1, 2, 3))],
        ReplicationFactor(count=4),
    )
    assert fl.treatment_count() == 6
    assert fl.total_runs() == 24
    assert len(fl) == 2


def test_factorlist_duplicate_id_rejected():
    fl = FactorList([_factor("a")])
    with pytest.raises(DescriptionError):
        fl.add(_factor("a"))


def test_factorlist_id_clash_with_replication():
    fl = FactorList(replication=ReplicationFactor(id="rep", count=2))
    with pytest.raises(DescriptionError):
        fl.add(_factor("rep"))


def test_factorlist_empty_levels_rejected():
    fl = FactorList()
    with pytest.raises(DescriptionError):
        fl.add(Factor(id="e", type="int", usage=Usage.CONSTANT, levels=[]))


def test_factorlist_lookup_and_contains():
    fl = FactorList([_factor("a")])
    assert fl.get("a").id == "a"
    assert "a" in fl and fl.replication.id in fl
    with pytest.raises(DescriptionError):
        fl.get("missing")


def test_actor_map_factor_uniqueness():
    amap = Factor(
        id="m", type="actor_node_map", usage=Usage.BLOCKING,
        levels=[Level({"actor0": {"0": "A"}})],
    )
    fl = FactorList([amap, _factor("other")])
    assert fl.actor_map_factor() is amap

    amap2 = Factor(
        id="m2", type="actor_node_map", usage=Usage.BLOCKING,
        levels=[Level({"actor0": {"0": "A"}})],
    )
    fl.add(amap2)
    with pytest.raises(DescriptionError):
        fl.actor_map_factor()


def test_actor_map_factor_absent():
    assert FactorList([_factor("x")]).actor_map_factor() is None
