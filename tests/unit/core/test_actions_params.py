"""Unit tests for the action registry and special parameters."""

import pytest

from repro.core.actions import ActionKind, ActionSpec, default_registry
from repro.core.errors import DescriptionError
from repro.core.params import SPECIAL_PARAM_DEFS, SpecialParams


# ----------------------------------------------------------------------
# Action registry
# ----------------------------------------------------------------------
def test_default_registry_has_sd_vocabulary():
    reg = default_registry()
    for name in (
        "sd_init", "sd_exit", "sd_start_search", "sd_stop_search",
        "sd_start_publish", "sd_stop_publish", "sd_update_publication",
    ):
        assert name in reg
        assert reg.lookup(name).kind is ActionKind.NODE


def test_default_registry_has_fault_actions():
    reg = default_registry()
    for kind in ("iface_fault", "msg_loss", "msg_delay", "path_loss", "path_delay"):
        assert f"{kind}_start" in reg
        assert f"{kind}_stop" in reg


def test_default_registry_env_actions():
    reg = default_registry()
    for name in (
        "env_traffic_start", "env_traffic_stop",
        "env_drop_all_start", "env_drop_all_stop",
    ):
        assert reg.lookup(name).kind is ActionKind.ENVIRONMENT


def test_lookup_unknown_raises():
    with pytest.raises(DescriptionError):
        default_registry().lookup("nope")


def test_register_duplicate_rejected_unless_replace():
    reg = default_registry()
    spec = ActionSpec("sd_init", ActionKind.NODE)
    with pytest.raises(DescriptionError):
        reg.register(spec)
    reg.register(spec, replace=True)
    assert reg.lookup("sd_init") is spec


def test_known_events_inventory():
    events = default_registry().known_events()
    assert "sd_service_add" in events
    assert "env_traffic_started" in events


def test_copy_isolates():
    reg = default_registry()
    clone = reg.copy()
    clone.register(ActionSpec("custom_action", ActionKind.NODE))
    assert "custom_action" in clone
    assert "custom_action" not in reg


# ----------------------------------------------------------------------
# Special parameters
# ----------------------------------------------------------------------
def test_defaults_apply():
    sp = SpecialParams({})
    assert sp.get("max_run_duration") == SPECIAL_PARAM_DEFS["max_run_duration"].default
    assert isinstance(sp.get("sync_probes"), int)


def test_values_coerced_to_declared_type():
    sp = SpecialParams({"max_run_duration": "45", "sync_probes": "3"})
    assert sp.get("max_run_duration") == 45.0
    assert sp.get("sync_probes") == 3


def test_bool_coercion():
    assert SpecialParams({"collect_packets": "false"}).get("collect_packets") is False
    assert SpecialParams({"collect_packets": "yes"}).get("collect_packets") is True
    assert SpecialParams({"collect_packets": True}).get("collect_packets") is True


def test_uncoercible_falls_back_to_default():
    sp = SpecialParams({"max_run_duration": "garbage"})
    assert sp.get("max_run_duration") == SPECIAL_PARAM_DEFS["max_run_duration"].default


def test_unknown_keys_pass_through():
    sp = SpecialParams({"custom": 17})
    assert sp.get("custom") == 17
    assert sp.unknown_keys() == ["custom"]


def test_as_dict_merges_known_and_unknown():
    sp = SpecialParams({"custom": 1, "sync_probes": 9})
    d = sp.as_dict()
    assert d["custom"] == 1 and d["sync_probes"] == 9
    assert "max_run_duration" in d
