"""Unit tests for treatment plan generation."""

import pytest

from repro.core.errors import PlanError
from repro.core.factors import Factor, FactorList, Level, ReplicationFactor, Usage
from repro.core.plan import generate_plan


def _fl(replications=1, usages=(Usage.CONSTANT, Usage.CONSTANT)):
    return FactorList(
        [
            Factor(id="first", type="int", usage=usages[0],
                   levels=[Level(1), Level(2)]),
            Factor(id="last", type="str", usage=usages[1],
                   levels=[Level("x"), Level("y"), Level("z")]),
        ],
        ReplicationFactor(id="rep", count=replications),
    )


def test_ofat_nesting_first_factor_varies_least():
    plan = generate_plan(_fl(), 1)
    firsts = [r.treatment["first"] for r in plan]
    lasts = [r.treatment["last"] for r in plan]
    assert firsts == [1, 1, 1, 2, 2, 2]
    assert lasts == ["x", "y", "z", "x", "y", "z"]


def test_replication_is_innermost():
    plan = generate_plan(_fl(replications=2), 1)
    assert len(plan) == 12
    # Each treatment's replications are adjacent.
    assert [r.replication for r in plan][:4] == [0, 1, 0, 1]
    assert plan[0].treatment_index == plan[1].treatment_index
    assert plan[0].treatment_index != plan[2].treatment_index


def test_replication_id_exposed_as_factor():
    plan = generate_plan(_fl(replications=3), 1)
    assert plan[2].treatment["rep"] == 2


def test_run_ids_sequential():
    plan = generate_plan(_fl(replications=2), 1)
    assert [r.run_id for r in plan] == list(range(12))


def test_run_seeds_unique_and_deterministic():
    p1 = generate_plan(_fl(), 42)
    p2 = generate_plan(_fl(), 42)
    assert [r.seed for r in p1] == [r.seed for r in p2]
    assert len({r.seed for r in p1}) == len(p1)


def test_random_usage_shuffles_deterministically():
    fl = _fl(usages=(Usage.CONSTANT, Usage.RANDOM))
    p1 = generate_plan(fl, 7)
    p2 = generate_plan(fl, 7)
    assert [r.treatment for r in p1] == [r.treatment for r in p2]
    # A different seed gives a different order for the same factor set
    # (with 3 levels and several cycles, collision odds are negligible).
    p3 = generate_plan(fl, 8)
    assert [r.treatment["last"] for r in p1] != [r.treatment["last"] for r in p3]


def test_random_usage_covers_all_levels_per_cycle():
    fl = _fl(usages=(Usage.CONSTANT, Usage.RANDOM))
    plan = generate_plan(fl, 7)
    # Within each block of the outer factor, the random factor applies
    # every level exactly once.
    first_cycle = [r.treatment["last"] for r in plan if r.treatment["first"] == 1]
    second_cycle = [r.treatment["last"] for r in plan if r.treatment["first"] == 2]
    assert sorted(first_cycle) == ["x", "y", "z"]
    assert sorted(second_cycle) == ["x", "y", "z"]


def test_random_cycles_reshuffle_independently():
    # With enough cycles, at least one differs from the first (else the
    # shuffle would be a fixed permutation, not per-cycle randomization).
    outer = Factor(
        id="outer", type="int", usage=Usage.CONSTANT,
        levels=[Level(i) for i in range(10)],
    )
    inner = Factor(
        id="inner", type="int", usage=Usage.RANDOM,
        levels=[Level(i) for i in range(4)],
    )
    plan = generate_plan(FactorList([outer, inner]), 3)
    cycles = [
        tuple(r.treatment["inner"] for r in plan if r.treatment["outer"] == o)
        for o in range(10)
    ]
    assert len(set(cycles)) > 1


def test_custom_plan_replaces_expansion():
    fl = _fl(replications=2)
    custom = [{"first": 2, "last": "y"}, {"first": 1, "last": "x"}]
    plan = generate_plan(fl, 1, custom_treatments=custom)
    assert len(plan) == 4  # 2 treatments x 2 replications
    assert plan[0].treatment["first"] == 2
    assert plan[2].treatment["first"] == 1


def test_custom_plan_missing_factor_rejected():
    with pytest.raises(PlanError):
        generate_plan(_fl(), 1, custom_treatments=[{"first": 1}])


def test_custom_plan_unknown_factor_rejected():
    with pytest.raises(PlanError):
        generate_plan(
            _fl(), 1,
            custom_treatments=[{"first": 1, "last": "x", "ghost": 1}],
        )


def test_empty_custom_plan_rejected():
    with pytest.raises(PlanError):
        generate_plan(_fl(), 1, custom_treatments=[])


def test_plan_treatments_listing():
    plan = generate_plan(_fl(replications=2), 1)
    treatments = plan.treatments()
    assert len(treatments) == 6
    assert plan.treatment_count == 6


def test_plan_describe_roundtrips_to_json():
    import json

    plan = generate_plan(_fl(), 1)
    dumped = json.dumps(plan.describe())
    assert json.loads(dumped)[0]["run_id"] == 0


def test_single_factor_single_level():
    fl = FactorList(
        [Factor(id="only", type="int", usage=Usage.CONSTANT, levels=[Level(9)])]
    )
    plan = generate_plan(fl, 1)
    assert len(plan) == 1 and plan[0].treatment["only"] == 9
