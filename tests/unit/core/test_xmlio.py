"""Unit tests for the XML dialect — including the paper's verbatim figures."""

import pytest

from repro.core.description import ExperimentDescription
from repro.core.errors import DescriptionError
from repro.core.factors import Usage
from repro.core.processes import (
    DomainAction,
    EventFlag,
    FactorRef,
    NodeSelector,
    WaitForEvent,
    WaitForTime,
    WaitMarker,
)
from repro.core.xmlio import (
    description_from_xml,
    description_to_xml,
    parse_action_sequence,
    parse_factorlist,
    parse_literal,
)
from repro.paper import (
    FIG5_FACTORLIST,
    FIG7_ENV_PROCESS,
    FIG9_SM_ACTOR,
    FIG10_SU_ACTOR,
    full_paper_experiment_xml,
)

import xml.etree.ElementTree as ET


# ----------------------------------------------------------------------
# Literals
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "raw,expected",
    [
        ('"done"', "done"),
        ('"30"', 30),
        ("30", 30),
        ("2.5", 2.5),
        (" spaced ", "spaced"),
        ("", ""),
        (None, ""),
        ('""', ""),
    ],
)
def test_parse_literal(raw, expected):
    assert parse_literal(raw) == expected


# ----------------------------------------------------------------------
# Paper figures parse verbatim
# ----------------------------------------------------------------------
def test_fig5_factorlist_parses():
    fl = parse_factorlist(ET.fromstring(FIG5_FACTORLIST))
    assert [f.id for f in fl] == ["fact_nodes", "fact_pairs", "fact_bw"]
    nodes = fl.get("fact_nodes")
    assert nodes.type == "actor_node_map" and nodes.usage is Usage.BLOCKING
    assert nodes.levels[0].value == {
        "actor0": {"0": "A"}, "actor1": {"0": "B"}
    }
    assert fl.get("fact_pairs").level_values == [5, 20]
    assert fl.get("fact_pairs").usage is Usage.RANDOM
    assert fl.get("fact_bw").level_values == [10, 50, 100]
    assert fl.get("fact_bw").description == "datarate generated load"
    assert fl.replication.count == 1000
    assert fl.replication.id == "fact_replication_id"


def test_fig9_sm_actor_parses():
    actor = ET.fromstring(FIG9_SM_ACTOR)
    actions = parse_action_sequence(actor.find("sd_actions"))
    names = [type(a).__name__ for a in actions]
    assert names == [
        "DomainAction", "DomainAction", "WaitForEvent", "DomainAction",
        "DomainAction",
    ]
    assert actions[0].name == "sd_init"
    assert actions[2].event == "done"


def test_fig10_su_actor_parses():
    actor = ET.fromstring(FIG10_SU_ACTOR)
    actions = parse_action_sequence(actor.find("sd_actions"))
    wait_pub = actions[0]
    assert isinstance(wait_pub, WaitForEvent)
    assert wait_pub.from_nodes == NodeSelector(actor="actor0", instance="all")
    assert isinstance(actions[3], WaitMarker)
    final_wait = actions[5]
    assert final_wait.event == "sd_service_add"
    assert final_wait.param_nodes == NodeSelector(actor="actor0", instance="all")
    assert final_wait.timeout == 30
    assert isinstance(actions[6], EventFlag) and actions[6].value == "done"


def test_fig7_env_process_parses():
    env = ET.fromstring(FIG7_ENV_PROCESS)
    actions = parse_action_sequence(env.find("env_actions"))
    assert isinstance(actions[0], EventFlag)
    traffic = actions[1]
    assert isinstance(traffic, DomainAction) and traffic.name == "env_traffic_start"
    assert traffic.params["bw"] == FactorRef("fact_bw")
    assert traffic.params["random_switch_seed"] == FactorRef("fact_replication_id")
    assert traffic.params["random_switch_amount"] == 1
    assert actions[3].name == "env_traffic_stop"


def test_full_paper_experiment_parses_and_counts():
    desc = description_from_xml(full_paper_experiment_xml(replications=2))
    assert desc.parameters["sd_architecture"] == "two-party"
    assert desc.abstract_nodes == ["A", "B"]
    assert len(desc.actors) == 2
    assert len(desc.environment_processes) == 1
    assert len(desc.platform) == 6
    assert len(desc.platform.environment_nodes) == 4
    assert desc.factors.total_runs() == 1 * 2 * 3 * 2


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
def test_roundtrip_is_stable():
    desc = description_from_xml(full_paper_experiment_xml(replications=2))
    xml1 = description_to_xml(desc)
    xml2 = description_to_xml(description_from_xml(xml1))
    assert xml1 == xml2


def test_roundtrip_preserves_semantics():
    desc = description_from_xml(full_paper_experiment_xml(replications=3))
    again = description_from_xml(description_to_xml(desc))
    assert again.seed == desc.seed
    assert again.factors.total_runs() == desc.factors.total_runs()
    assert [a.actor_id for a in again.actors] == [a.actor_id for a in desc.actors]
    assert again.platform.for_abstract("A").node_id == "t9-105"
    su = again.actor("actor1")
    final_wait = [a for a in su.actions if isinstance(a, WaitForEvent)][-1]
    assert final_wait.timeout == 30


def test_roundtrip_wait_for_time_and_param_values():
    desc = ExperimentDescription(name="t", seed=3)
    from repro.core.description import ActorDescription
    from repro.core.factors import Factor, Level

    desc.abstract_nodes = ["A"]
    desc.factors.add(
        Factor(id="m", type="actor_node_map", usage=Usage.BLOCKING,
               levels=[Level({"a0": {"0": "A"}})])
    )
    desc.actors.append(
        ActorDescription(
            "a0",
            actions=[
                WaitForTime(seconds=1.5),
                WaitForTime(seconds=FactorRef("m")),
                WaitForEvent(event="e", param_values=("x", 3)),
                EventFlag(value="flag", params=("p1",)),
            ],
        )
    )
    again = description_from_xml(description_to_xml(desc))
    acts = again.actor("a0").actions
    assert acts[0].seconds == 1.5
    assert acts[1].seconds == FactorRef("m")
    assert set(acts[2].param_values) == {"x", 3}
    assert acts[3].params == ("p1",)


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------
def test_malformed_xml_rejected():
    with pytest.raises(DescriptionError):
        description_from_xml("<experiment><unclosed>")


def test_wrong_root_rejected():
    with pytest.raises(DescriptionError):
        description_from_xml("<notexperiment/>")


def test_unknown_section_rejected():
    with pytest.raises(DescriptionError):
        description_from_xml('<experiment name="x"><mystery/></experiment>')


def test_factor_without_levels_rejected():
    bad = '<factorlist><factor id="f" type="int" usage="constant"/></factorlist>'
    with pytest.raises(DescriptionError):
        parse_factorlist(ET.fromstring(bad))


def test_factorref_without_id_rejected():
    bad = "<actions><a><p><factorref/></p></a></actions>"
    with pytest.raises(DescriptionError):
        parse_action_sequence(ET.fromstring(bad))


def test_event_flag_without_value_rejected():
    bad = "<actions><event_flag/></actions>"
    with pytest.raises(DescriptionError):
        parse_action_sequence(ET.fromstring(bad))


def test_wait_for_event_without_dependency_rejected():
    bad = "<actions><wait_for_event><timeout>1</timeout></wait_for_event></actions>"
    with pytest.raises(DescriptionError):
        parse_action_sequence(ET.fromstring(bad))
