"""Unit tests for the ExCovery event model, bus and dependency matching."""

import pytest

from repro.core.events import EventBus, EventPattern, ExEvent


def _ev(name="e", node="n1", t=1.0, params=(), run_id=0):
    return ExEvent(name=name, node=node, local_time=t, params=tuple(params), run_id=run_id)


@pytest.fixture
def bus(sim):
    return EventBus(sim)


# ----------------------------------------------------------------------
# ExEvent
# ----------------------------------------------------------------------
def test_event_record_roundtrip():
    ev = _ev(params=("a", 1))
    rec = ev.as_record()
    back = ExEvent.from_record(rec)
    assert back.name == ev.name and back.params == ("a", 1)
    assert back.run_id == 0


def test_with_seq_is_functional():
    ev = _ev()
    stamped = ev.with_seq(5)
    assert stamped.seq == 5 and ev.seq == -1


# ----------------------------------------------------------------------
# Bus registration
# ----------------------------------------------------------------------
def test_register_assigns_sequences(bus):
    a = bus.register(_ev("a"))
    b = bus.register(_ev("b"))
    assert (a.seq, b.seq) == (0, 1)
    assert [e.name for e in bus.log] == ["a", "b"]


def test_events_named_with_run_filter(bus):
    bus.register(_ev("x", run_id=0))
    bus.register(_ev("x", run_id=1))
    bus.register(_ev("y", run_id=0))
    assert len(bus.events_named("x")) == 2
    assert len(bus.events_named("x", run_id=1)) == 1


def test_clear_resets_sequence(bus):
    bus.register(_ev())
    bus.clear()
    assert bus.register(_ev()).seq == 0


# ----------------------------------------------------------------------
# Pattern matching
# ----------------------------------------------------------------------
def test_pattern_name_and_run_scope():
    pat = EventPattern(name="x", run_id=1)
    assert pat.matches(_ev("x", run_id=1).with_seq(0))
    assert not pat.matches(_ev("y", run_id=1).with_seq(0))
    assert not pat.matches(_ev("x", run_id=2).with_seq(0))


def test_pattern_experiment_scope_event_matches_any_run():
    # Events with run_id None (experiment scope) pass run-scoped patterns.
    pat = EventPattern(name="x", run_id=3)
    assert pat.matches(_ev("x", run_id=None).with_seq(0))


def test_pattern_node_set():
    pat = EventPattern(name="x", nodes=frozenset({"n1", "n2"}), run_id=0)
    assert pat.matches(_ev("x", node="n1").with_seq(0))
    assert not pat.matches(_ev("x", node="n9").with_seq(0))


def test_pattern_params_any_of_set():
    pat = EventPattern(name="x", params=frozenset({"p1", "p2"}), run_id=0)
    assert pat.matches(_ev("x", params=("other", "p2")).with_seq(0))
    assert not pat.matches(_ev("x", params=("other",)).with_seq(0))


def test_pattern_marker_excludes_earlier(bus):
    pat = EventPattern(name="x", after_seq=0, run_id=0)
    first = bus.register(_ev("x"))
    second = bus.register(_ev("x"))
    assert not pat.matches(first)
    assert pat.matches(second)


# ----------------------------------------------------------------------
# Waiting semantics
# ----------------------------------------------------------------------
def test_watch_simple_any(sim, bus):
    signal = bus.watch(EventPattern(name="go", run_id=0))
    assert not signal.triggered
    bus.register(_ev("go"))
    assert signal.triggered


def test_watch_matches_already_logged_event(sim, bus):
    bus.register(_ev("go"))
    signal = bus.watch(EventPattern(name="go", run_id=0))
    assert signal.triggered


def test_watch_require_all_nodes(sim, bus):
    pat = EventPattern(
        name="pub", nodes=frozenset({"a", "b"}), require_all_nodes=True, run_id=0
    )
    signal = bus.watch(pat)
    bus.register(_ev("pub", node="a"))
    assert not signal.triggered
    bus.register(_ev("pub", node="a"))  # duplicate does not help
    assert not signal.triggered
    bus.register(_ev("pub", node="b"))
    assert signal.triggered


def test_watch_require_all_params(sim, bus):
    pat = EventPattern(
        name="add", params=frozenset({"sm1", "sm2"}), require_all_params=True,
        run_id=0,
    )
    signal = bus.watch(pat)
    bus.register(_ev("add", params=("svc@sm1", "sm1")))
    assert not signal.triggered
    bus.register(_ev("add", params=("svc@sm2", "sm2")))
    assert signal.triggered


def test_watch_all_nodes_and_all_params_cross_product(sim, bus):
    # Fig. 10 with 2 SUs and 2 SMs: every SU must report every SM.
    pat = EventPattern(
        name="add",
        nodes=frozenset({"su1", "su2"}),
        require_all_nodes=True,
        params=frozenset({"sm1", "sm2"}),
        require_all_params=True,
        run_id=0,
    )
    signal = bus.watch(pat)
    bus.register(_ev("add", node="su1", params=("sm1",)))
    bus.register(_ev("add", node="su1", params=("sm2",)))
    bus.register(_ev("add", node="su2", params=("sm1",)))
    assert not signal.triggered
    bus.register(_ev("add", node="su2", params=("sm2",)))
    assert signal.triggered


def test_watch_marker_semantics(sim, bus):
    bus.register(_ev("x"))
    marker = bus.marker()
    signal = bus.watch(EventPattern(name="x", after_seq=marker, run_id=0))
    assert not signal.triggered  # the earlier event is before the marker
    bus.register(_ev("x"))
    assert signal.triggered


def test_cancel_removes_watcher(sim, bus):
    signal = bus.watch(EventPattern(name="never", run_id=0))
    assert bus.pending_watchers() == 1
    bus.cancel(signal)
    assert bus.pending_watchers() == 0
    bus.register(_ev("never"))
    assert not signal.triggered


def test_completed_watcher_removed(sim, bus):
    bus.watch(EventPattern(name="go", run_id=0))
    assert bus.pending_watchers() == 1
    bus.register(_ev("go"))
    assert bus.pending_watchers() == 0


def test_watch_delivers_triggering_event(sim, bus):
    signal = bus.watch(EventPattern(name="go", run_id=0))
    bus.register(_ev("go", node="n7"))
    assert signal.value.node == "n7"
