"""Unit tests for the recovery journal and topology measurement."""

import pytest

from repro.core.errors import RecoveryError
from repro.core.recovery import Journal
from repro.core.topomeasure import (
    compare_snapshots,
    measure_hop_counts,
    snapshot_topology,
)
from repro.net.topology import grid_topology
from repro.sd.processlib import build_two_party_description
from repro.storage.level2 import Level2Store


@pytest.fixture
def store(tmp_path):
    return Level2Store(tmp_path / "l2")


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
def test_journal_lifecycle(store):
    j = Journal(store)
    assert not j.started() and not j.finished()
    j.record_start("fp", 1, 10)
    j.record_run_complete(0)
    j.record_run_complete(1)
    assert j.started() and not j.finished()
    assert j.completed_runs() == {0, 1}
    j.record_experiment_complete()
    assert j.finished()


def test_prepare_resume_happy_path(store):
    desc = build_two_party_description(replications=4, seed=3)
    total = desc.factors.total_runs()
    j = Journal(store)
    j.record_start(desc.fingerprint(), desc.seed, total)
    j.record_run_complete(0)
    assert j.prepare_resume(desc, total) == {0}


def test_prepare_resume_requires_start(store):
    desc = build_two_party_description(replications=1)
    with pytest.raises(RecoveryError, match="nothing to resume"):
        Journal(store).prepare_resume(desc, 1)


def test_prepare_resume_refuses_finished(store):
    desc = build_two_party_description(replications=1)
    j = Journal(store)
    j.record_start(desc.fingerprint(), desc.seed, 1)
    j.record_experiment_complete()
    with pytest.raises(RecoveryError, match="already completed"):
        j.prepare_resume(desc, 1)


def test_prepare_resume_detects_description_change(store):
    desc = build_two_party_description(replications=2, seed=3)
    j = Journal(store)
    j.record_start(desc.fingerprint(), desc.seed, 2)
    changed = build_two_party_description(replications=2, seed=3, deadline=10.0)
    with pytest.raises(RecoveryError, match="description changed"):
        j.prepare_resume(changed, 2)


def test_prepare_resume_detects_seed_change(store):
    desc = build_two_party_description(replications=2, seed=3)
    j = Journal(store)
    j.record_start(desc.fingerprint(), 999, 2)
    with pytest.raises(RecoveryError, match="seed changed"):
        j.prepare_resume(desc, 2)


def test_prepare_resume_purges_partial_runs(store):
    desc = build_two_party_description(replications=3, seed=3)
    total = desc.factors.total_runs()
    j = Journal(store)
    j.record_start(desc.fingerprint(), desc.seed, total)
    j.record_run_complete(0)
    # Run 1 aborted mid-way: partial data on disk, no journal entry.
    store.write_run_data("nodeX", 0, [{"name": "ok", "local_time": 0.0, "node": "nodeX"}], [])
    store.write_run_data("nodeX", 1, [{"name": "partial", "local_time": 0.0, "node": "nodeX"}], [])
    store.write_timesync(1, {})
    completed = j.prepare_resume(desc, total)
    assert completed == {0}
    assert store.read_run_events("nodeX", 1) == []
    assert store.read_run_events("nodeX", 0) != []


# ----------------------------------------------------------------------
# Topology measurement
# ----------------------------------------------------------------------
def test_measure_hop_counts_keys_and_values():
    topo = grid_topology(2, 2)
    out = measure_hop_counts(topo, ["n0", "n3"])
    assert out == {"n0->n3": 2, "n3->n0": 2}


def test_snapshot_and_compare_stable():
    topo = grid_topology(2, 2)
    before = snapshot_topology(topo)
    after = snapshot_topology(topo)
    diff = compare_snapshots(before, after)
    assert diff["stable"]


def test_compare_detects_link_change():
    topo = grid_topology(2, 2)
    before = snapshot_topology(topo)
    topo.graph.remove_edge("n0", "n1")
    after = snapshot_topology(topo)
    diff = compare_snapshots(before, after)
    assert not diff["stable"]
    assert ("n0", "n1") in diff["links_removed"]


def test_snapshot_serializable():
    import json

    snap = snapshot_topology(grid_topology(3, 3))
    assert json.loads(json.dumps(snap))["nodes"]
