"""Unit tests for the classic experiment designs."""

from collections import Counter

import pytest

from repro.core.designs import (
    completely_randomized_design,
    latin_square_design,
    randomized_complete_block_design,
)
from repro.core.errors import PlanError
from repro.core.factors import Factor, FactorList, Level, ReplicationFactor, Usage
from repro.core.plan import generate_plan


def _fl(*specs):
    return FactorList(
        [
            Factor(id=name, type="int", usage=Usage.CONSTANT,
                   levels=[Level(v) for v in values])
            for name, values in specs
        ],
        ReplicationFactor(count=1),
    )


# ----------------------------------------------------------------------
# Completely randomized design
# ----------------------------------------------------------------------
def test_crd_covers_grid_times_replications():
    fl = _fl(("a", (1, 2)), ("b", (1, 2, 3)))
    plan = completely_randomized_design(fl, seed=5, replications=4)
    assert len(plan) == 24
    combos = Counter((t["a"], t["b"]) for t in plan)
    assert set(combos.values()) == {4}


def test_crd_actually_randomizes_order():
    fl = _fl(("a", (1, 2)), ("b", (1, 2, 3)))
    plan = completely_randomized_design(fl, seed=5, replications=4)
    # Replications of one treatment must not all be contiguous (the whole
    # point vs the default OFAT plan).
    positions = [i for i, t in enumerate(plan) if (t["a"], t["b"]) == (1, 1)]
    assert positions != list(range(positions[0], positions[0] + 4))


def test_crd_deterministic():
    fl = _fl(("a", (1, 2)), ("b", (1, 2)))
    assert completely_randomized_design(fl, 9, 3) == completely_randomized_design(fl, 9, 3)
    assert completely_randomized_design(fl, 9, 3) != completely_randomized_design(fl, 10, 3)


def test_crd_feeds_generate_plan():
    fl = _fl(("a", (1, 2)), ("b", (1, 2)))
    custom = completely_randomized_design(fl, seed=1, replications=2)
    plan = generate_plan(fl, 1, custom_treatments=custom)
    assert len(plan) == 8


def test_crd_validates_replications():
    with pytest.raises(PlanError):
        completely_randomized_design(_fl(("a", (1,))), 1, replications=0)


# ----------------------------------------------------------------------
# Randomized complete block design
# ----------------------------------------------------------------------
def test_rcbd_block_structure():
    fl = _fl(("block", (10, 20, 30)), ("t", (1, 2)), ("u", (5, 6)))
    plan = randomized_complete_block_design(fl, "block", seed=3)
    assert len(plan) == 3 * 4
    # Blocks appear in declared order, contiguously.
    blocks = [t["block"] for t in plan]
    assert blocks == [10] * 4 + [20] * 4 + [30] * 4
    # Within each block every (t, u) combination appears exactly once.
    for level in (10, 20, 30):
        combos = Counter(
            (t["t"], t["u"]) for t in plan if t["block"] == level
        )
        assert set(combos.values()) == {1}
        assert len(combos) == 4


def test_rcbd_within_block_orders_differ():
    fl = _fl(("block", tuple(range(8))), ("t", (1, 2, 3, 4)))
    plan = randomized_complete_block_design(fl, "block", seed=3)
    orders = set()
    for level in range(8):
        orders.add(tuple(t["t"] for t in plan if t["block"] == level))
    assert len(orders) > 1  # per-block shuffles are independent


def test_rcbd_requires_treatment_factor():
    with pytest.raises(PlanError):
        randomized_complete_block_design(_fl(("block", (1, 2))), "block", 1)


def test_rcbd_feeds_generate_plan():
    fl = _fl(("block", (1, 2)), ("t", (1, 2)))
    custom = randomized_complete_block_design(fl, "block", seed=1)
    plan = generate_plan(fl, 1, custom_treatments=custom)
    assert len(plan) == 4


# ----------------------------------------------------------------------
# Latin square
# ----------------------------------------------------------------------
def test_latin_square_properties():
    fl = _fl(("row", (1, 2, 3)), ("col", (10, 20, 30)), ("t", (7, 8, 9)))
    plan = latin_square_design(fl, "row", "col", "t", seed=4)
    assert len(plan) == 9
    # Each treatment level appears exactly once per row and per column.
    for r in (1, 2, 3):
        values = [t["t"] for t in plan if t["row"] == r]
        assert sorted(values) == [7, 8, 9]
    for c in (10, 20, 30):
        values = [t["t"] for t in plan if t["col"] == c]
        assert sorted(values) == [7, 8, 9]


def test_latin_square_randomization_differs_by_seed():
    fl = _fl(("row", (1, 2, 3)), ("col", (1, 2, 3)), ("t", (1, 2, 3)))
    a = latin_square_design(fl, "row", "col", "t", seed=1)
    b = latin_square_design(fl, "row", "col", "t", seed=2)
    assert a != b
    assert a == latin_square_design(fl, "row", "col", "t", seed=1)


def test_latin_square_level_count_mismatch():
    fl = _fl(("row", (1, 2)), ("col", (1, 2, 3)), ("t", (1, 2)))
    with pytest.raises(PlanError, match="equal level counts"):
        latin_square_design(fl, "row", "col", "t", seed=1)


def test_latin_square_extra_factor_must_be_constant():
    fl = _fl(("row", (1, 2)), ("col", (1, 2)), ("t", (1, 2)), ("x", (1, 2)))
    with pytest.raises(PlanError, match="held constant"):
        latin_square_design(fl, "row", "col", "t", seed=1)


def test_latin_square_carries_constants():
    fl = _fl(("row", (1, 2)), ("col", (1, 2)), ("t", (1, 2)), ("x", (42,)))
    plan = latin_square_design(fl, "row", "col", "t", seed=1)
    assert all(t["x"] == 42 for t in plan)
    # And the result is a valid custom plan.
    assert len(generate_plan(fl, 1, custom_treatments=plan)) == 4
