"""Unit tests for the NodeManager control-plane component."""

import pytest

from repro.core.nodemanager import NodeManager
from repro.core.rpc import ControlChannel


@pytest.fixture
def managed(pair_net, rngs):
    sim, medium, a, b = pair_net
    channel = ControlChannel(sim, latency=0.0)
    received = []
    channel.set_master_handler(received.append)
    nm_a = NodeManager(sim, a, channel, rngs)
    nm_b = NodeManager(sim, b, channel, rngs)
    return sim, channel, nm_a, nm_b, received


def test_ping_returns_local_clock(managed):
    sim, channel, nm_a, _nm_b, _rx = managed
    nm_a.node.clock.offset = 5.0
    assert nm_a.ping() == pytest.approx(5.0)


def test_hostinfo(managed):
    _sim, _ch, nm_a, _nm_b, _rx = managed
    assert nm_a.hostinfo() == {"node_id": "h0", "address": "10.1.0.1"}


def test_emit_records_locally_and_forwards(managed):
    sim, _ch, nm_a, _nm_b, received = managed
    nm_a.run_init(3)
    nm_a.emit("custom", params=("p",))
    sim.run(until=0.1)
    names = [r["name"] for r in received]
    assert names == ["run_init", "custom"]
    local = nm_a.collect_run(3)["events"]
    assert [e["name"] for e in local] == ["run_init", "custom"]
    assert local[1]["params"] == ["p"]
    assert local[1]["run_id"] == 3


def test_experiment_scope_events(managed):
    sim, _ch, nm_a, _nm_b, _rx = managed
    nm_a.experiment_init("exp")
    data = nm_a.collect_experiment()
    assert [e["name"] for e in data["events"]] == ["experiment_init"]
    assert "experiment_init: exp" in data["log"]


def test_run_init_resets_data_plane(managed):
    sim, _ch, nm_a, nm_b, _rx = managed
    nm_b.node.bind(9, lambda *a: None)
    nm_a.node.send_datagram("x", nm_b.node.address, 9)
    sim.run(until=0.5)
    assert len(nm_a.node.capture) == 1
    nm_a.run_init(0)
    assert len(nm_a.node.capture) == 0
    assert nm_a.current_run == 0


def test_run_hooks_called_with_run_id(managed):
    _sim, _ch, nm_a, _nm_b, _rx = managed
    seen = []
    nm_a.add_run_hook(seen.append)
    nm_a.run_init(7)
    assert seen == [7]


def test_run_exit_seals_packets(managed):
    sim, _ch, nm_a, nm_b, _rx = managed
    nm_a.run_init(0)
    nm_b.run_init(0)
    nm_b.node.bind(9, lambda *a: None)
    nm_a.node.send_datagram("x", nm_b.node.address, 9)
    sim.run(until=0.5)
    nm_a.run_exit(0)
    packets = nm_a.collect_run(0)["packets"]
    assert len(packets) == 1
    assert packets[0]["direction"] == "tx"
    assert isinstance(packets[0]["payload"], str)  # wire-safe blob


def test_execute_action_dispatch_and_unknown(managed):
    _sim, _ch, nm_a, _nm_b, _rx = managed
    nm_a.register_action_handler("my_action", lambda params: params["v"] * 2)
    assert nm_a.execute_action("my_action", {"v": 21}) == 42
    with pytest.raises(LookupError):
        nm_a.execute_action("ghost", {})


def test_event_flag_handler(managed):
    sim, _ch, nm_a, _nm_b, _rx = managed
    nm_a.run_init(0)
    nm_a.execute_action("event_flag", {"value": "ready", "params": [1]})
    events = nm_a.collect_run(0)["events"]
    assert events[-1]["name"] == "ready" and events[-1]["params"] == [1]


def test_generic_action_records_params(managed):
    _sim, _ch, nm_a, _nm_b, _rx = managed
    nm_a.run_init(0)
    nm_a.execute_action("generic", {"b": 2, "a": 1})
    events = nm_a.collect_run(0)["events"]
    assert events[-1]["name"] == "generic_executed"
    assert events[-1]["params"] == ["a=1", "b=2"]


def test_fault_handlers_wired(managed):
    sim, _ch, nm_a, _nm_b, _rx = managed
    nm_a.run_init(0)
    fid = nm_a.execute_action("msg_loss_start", {"probability": 0.5})
    assert fid >= 1
    assert len(nm_a.node.interface.filters) == 1
    assert nm_a.execute_action("msg_loss_stop", {})
    assert len(nm_a.node.interface.filters) == 0


def test_traffic_start_stop(managed):
    sim, _ch, nm_a, nm_b, _rx = managed
    nm_a.run_init(0)
    nm_a.traffic_start(
        [{"peer_addr": nm_b.node.address, "rate_kbps": 200.0, "packet_size": 200}]
    )
    sim.run(until=1.0)
    assert nm_a.traffic_stop() == 1
    sent = [r for r in nm_a.node.capture.records if r["direction"] == "tx"]
    assert sent


def test_traffic_unknown_peer_raises(managed):
    _sim, _ch, nm_a, _nm_b, _rx = managed
    with pytest.raises(LookupError):
        nm_a.traffic_start([{"peer_addr": "10.9.9.9", "rate_kbps": 10}])


def test_drop_all_blocks_experiment_flow_only(managed):
    sim, _ch, nm_a, nm_b, _rx = managed
    got = []
    nm_b.node.bind(9, lambda pl, pkt, n: got.append(pkt.flow))
    nm_a.drop_all_start()
    nm_a.node.send_datagram("x", nm_b.node.address, 9, flow="experiment")
    nm_a.node.send_datagram("x", nm_b.node.address, 9, flow="generated-load")
    sim.run(until=0.5)
    assert got == ["generated-load"]
    nm_a.drop_all_stop()
    nm_a.node.send_datagram("x", nm_b.node.address, 9, flow="experiment")
    sim.run(until=1.0)
    assert "experiment" in got


def test_drop_all_idempotent(managed):
    _sim, _ch, nm_a, _nm_b, _rx = managed
    nm_a.drop_all_start()
    nm_a.drop_all_start()
    assert len(nm_a.node.interface.filters) == 1
    nm_a.drop_all_stop()
    nm_a.drop_all_stop()
    assert len(nm_a.node.interface.filters) == 0


def test_reset_environment_clears_everything(managed):
    sim, _ch, nm_a, nm_b, _rx = managed
    nm_a.run_init(0)
    nm_a.execute_action("msg_delay_start", {"delay": 0.1})
    nm_a.drop_all_start()
    nm_a.traffic_start([{"peer_addr": nm_b.node.address, "rate_kbps": 10}])
    nm_a.reset_environment()
    assert nm_a.node.interface.filters == []
    assert nm_a._flows == []


def test_set_address_emits_event(managed):
    sim, _ch, nm_a, _nm_b, _rx = managed
    nm_a.run_init(0)
    nm_a.set_address("10.1.0.99")
    assert nm_a.node.address == "10.1.0.99"
    events = nm_a.collect_run(0)["events"]
    assert events[-1]["name"] == "address_changed"
    assert events[-1]["params"] == ["10.1.0.1", "10.1.0.99"]


def test_experiment_init_clears_prior_state(managed):
    sim, _ch, nm_a, _nm_b, _rx = managed
    nm_a.run_init(0)
    nm_a.emit("leftover")
    nm_a.experiment_init("fresh")
    assert nm_a.collect_run(0)["events"] == []
    assert nm_a.current_run is None
    assert nm_a.node.tagger.next_tag == 0
