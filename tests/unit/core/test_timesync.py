"""Unit tests for clock-offset measurement."""

import pytest

from repro.core.rpc import ControlChannel, RpcServer
from repro.core.timesync import measure_node_offset, measure_offsets
from repro.net.clock import LocalClock


def _node_server(sim, offset, drift=0.0):
    clock = LocalClock(sim, offset=offset, drift=drift)
    server = RpcServer("n")
    server.register_function(lambda: clock.time(), "ping")
    return server, clock


def _measure(sim, channel, node_ids, probes=5):
    box = {}

    def proc():
        box["out"] = yield from measure_offsets(sim, channel, node_ids, probes)

    p = sim.process(proc())
    sim.run(until_event=p)
    return box["out"]


def test_symmetric_latency_estimates_exactly(sim):
    channel = ControlChannel(sim, latency=0.002)
    server, _clock = _node_server(sim, offset=0.345)
    channel.add_node("n", server)
    out = _measure(sim, channel, ["n"])
    m = out["n"]
    assert m.offset == pytest.approx(0.345, abs=1e-9)
    assert m.rtt == pytest.approx(0.004)
    assert m.error_bound == pytest.approx(0.002)


def test_negative_offset(sim):
    channel = ControlChannel(sim, latency=0.001)
    server, _ = _node_server(sim, offset=-1.5)
    channel.add_node("n", server)
    out = _measure(sim, channel, ["n"])
    assert out["n"].offset == pytest.approx(-1.5, abs=1e-9)


def test_jitter_error_within_bound(sim, rngs):
    channel = ControlChannel(
        sim, latency=0.001, jitter=0.004, rng=rngs.stream("sync")
    )
    true_offset = 0.123
    server, _ = _node_server(sim, offset=true_offset)
    channel.add_node("n", server)
    out = _measure(sim, channel, ["n"], probes=7)
    m = out["n"]
    assert abs(m.offset - true_offset) <= m.error_bound + 1e-12


def test_more_probes_tighten_bound(sim, rngs):
    def bound_with(probes, key):
        channel = ControlChannel(
            sim, latency=0.001, jitter=0.01, rng=rngs.fresh("sync", key)
        )
        server, _ = _node_server(sim, offset=0.0)
        channel.add_node("n", server)
        return _measure(sim, channel, ["n"], probes=probes)["n"].error_bound

    # Min-RTT selection: the 10-probe bound cannot exceed the 1-probe
    # bound in expectation; verify over several trials.
    wins = sum(
        bound_with(10, i) <= bound_with(1, 100 + i) for i in range(5)
    )
    assert wins >= 4


def test_probes_must_be_positive(sim):
    channel = ControlChannel(sim)
    with pytest.raises(ValueError):
        next(measure_node_offset(sim, channel, "n", probes=0))


def test_measure_many_nodes(sim):
    channel = ControlChannel(sim, latency=0.001)
    for i, offset in enumerate((0.1, -0.2, 0.0)):
        server, _ = _node_server(sim, offset=offset)
        channel.add_node(f"n{i}", server)
    out = _measure(sim, channel, ["n0", "n1", "n2"])
    assert out["n0"].offset == pytest.approx(0.1, abs=1e-9)
    assert out["n1"].offset == pytest.approx(-0.2, abs=1e-9)
    assert out["n2"].offset == pytest.approx(0.0, abs=1e-9)


def test_measurement_record_shape(sim):
    channel = ControlChannel(sim, latency=0.001)
    server, _ = _node_server(sim, offset=0.5)
    channel.add_node("n", server)
    rec = _measure(sim, channel, ["n"])["n"].as_record()
    assert set(rec) == {"node_id", "offset", "rtt", "error_bound", "probes"}


def test_drifting_clock_measured_at_current_rate(sim):
    # After 100 s of true time, a 100 ppm clock is 10 ms ahead; the
    # sync estimate must reflect the *current* deviation.
    channel = ControlChannel(sim, latency=0.001)
    server, _clock = _node_server(sim, offset=0.0, drift=100e-6)
    channel.add_node("n", server)
    sim.call_later(100.0, lambda: None)
    sim.run()
    out = _measure(sim, channel, ["n"])
    assert out["n"].offset == pytest.approx(0.01, abs=1e-4)
