"""Unit tests for run bindings and node-selector resolution."""

import pytest

from repro.core.errors import ExecutionError
from repro.core.plan import Run
from repro.core.processes import NodeSelector
from repro.core.runner import ProcessScope, RunBinding


@pytest.fixture
def binding():
    run = Run(
        run_id=0, treatment_index=0, replication=0,
        treatment={"fact_nodes": {}}, seed=1,
    )
    return RunBinding(
        run=run,
        actor_map={
            "actor0": {"0": "A", "1": "B"},
            "actor1": {"0": "C"},
        },
        abstract_to_platform={"A": "h0", "B": "h1", "C": "h2"},
    )


def test_platform_node_lookup(binding):
    assert binding.platform_node("A") == "h0"
    with pytest.raises(ExecutionError, match="no platform mapping"):
        binding.platform_node("Z")


def test_actor_instances(binding):
    assert binding.actor_instances("actor0") == {"0": "h0", "1": "h1"}
    with pytest.raises(ExecutionError, match="not in actor map"):
        binding.actor_instances("ghost")


def test_selector_all_instances(binding):
    sel = NodeSelector(actor="actor0", instance="all")
    assert binding.resolve_selector(sel) == ["h0", "h1"]


def test_selector_single_instance(binding):
    sel = NodeSelector(actor="actor0", instance="1")
    assert binding.resolve_selector(sel) == ["h1"]
    with pytest.raises(ExecutionError, match="no instance"):
        binding.resolve_selector(NodeSelector(actor="actor0", instance="9"))


def test_selector_abstract_node(binding):
    sel = NodeSelector(node_id="C")
    assert binding.resolve_selector(sel) == ["h2"]


def test_acting_platform_nodes_sorted_unique(binding):
    assert binding.acting_platform_nodes() == ["h0", "h1", "h2"]


def test_scope_kinds():
    node_scope = ProcessScope(kind="node", label="x", node_id="h0")
    env_scope = ProcessScope(kind="env", label="env")
    assert node_scope.is_node and not env_scope.is_node
