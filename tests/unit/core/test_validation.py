"""Unit tests for description validation."""

import pytest

from repro.core.description import (
    ActorDescription,
    EnvironmentProcess,
    ExperimentDescription,
    ManipulationProcess,
    PlatformNode,
    PlatformSpec,
)
from repro.core.errors import ValidationError
from repro.core.factors import Factor, Level, Usage
from repro.core.processes import (
    DomainAction,
    EventFlag,
    FactorRef,
    NodeSelector,
    WaitForEvent,
    WaitForTime,
)
from repro.core.validation import validate_description
from repro.paper import full_paper_experiment_xml
from repro.core.xmlio import description_from_xml


def _minimal() -> ExperimentDescription:
    desc = ExperimentDescription(name="v", seed=1)
    desc.abstract_nodes = ["A", "B"]
    desc.factors.add(
        Factor(
            id="fact_nodes", type="actor_node_map", usage=Usage.BLOCKING,
            levels=[Level({"a0": {"0": "A"}, "a1": {"0": "B"}})],
        )
    )
    desc.actors = [
        ActorDescription("a0", actions=[DomainAction(name="sd_init")]),
        ActorDescription("a1", actions=[DomainAction(name="sd_init")]),
    ]
    desc.platform = PlatformSpec(
        [
            PlatformNode("h0", "10.0.0.1", abstract_id="A"),
            PlatformNode("h1", "10.0.0.2", abstract_id="B"),
        ]
    )
    return desc


def test_minimal_description_valid():
    report = validate_description(_minimal())
    assert report.ok, report.errors


def test_paper_experiment_valid():
    desc = description_from_xml(full_paper_experiment_xml(replications=1))
    report = validate_description(desc)
    assert report.ok, report.errors
    assert report.warnings == []


def test_duplicate_actor_ids():
    desc = _minimal()
    desc.actors.append(ActorDescription("a0"))
    assert any("duplicate actor" in e for e in validate_description(desc).errors)


def test_duplicate_abstract_nodes():
    desc = _minimal()
    desc.abstract_nodes.append("A")
    assert any("duplicate abstract" in e for e in validate_description(desc).errors)


def test_map_level_unknown_actor():
    desc = _minimal()
    desc.factors.get("fact_nodes").levels[0].value["ghost"] = {"0": "A"}
    errors = validate_description(desc).errors
    assert any("unknown actor 'ghost'" in e for e in errors)


def test_map_level_undeclared_abstract_node():
    desc = _minimal()
    desc.factors.get("fact_nodes").levels[0].value["a0"] = {"0": "Z"}
    errors = validate_description(desc).errors
    assert any("undeclared abstract node 'Z'" in e for e in errors)


def test_map_level_double_assignment():
    desc = _minimal()
    desc.factors.get("fact_nodes").levels[0].value["a1"] = {"0": "A"}
    errors = validate_description(desc).errors
    assert any("assigned to multiple" in e for e in errors)


def test_map_level_missing_actor_assignment():
    desc = _minimal()
    del desc.factors.get("fact_nodes").levels[0].value["a1"]
    errors = validate_description(desc).errors
    assert any("no node assignment" in e for e in errors)


def test_actors_without_map_factor():
    desc = _minimal()
    from repro.core.factors import FactorList

    desc.factors = FactorList()
    errors = validate_description(desc).errors
    assert any("no actor_node_map" in e for e in errors)


def test_unmapped_abstract_node():
    desc = _minimal()
    desc.platform = PlatformSpec([PlatformNode("h0", "10.0.0.1", abstract_id="A")])
    errors = validate_description(desc).errors
    assert any("'B' not mapped" in e for e in errors)


def test_unknown_action_name():
    desc = _minimal()
    desc.actors[0].actions.append(DomainAction(name="sd_frobnicate"))
    errors = validate_description(desc).errors
    assert any("unknown action 'sd_frobnicate'" in e for e in errors)


def test_environment_action_in_node_process():
    desc = _minimal()
    desc.actors[0].actions.append(DomainAction(name="env_traffic_start"))
    errors = validate_description(desc).errors
    assert any("environment action" in e for e in errors)


def test_node_action_in_env_process():
    desc = _minimal()
    desc.environment_processes.append(
        EnvironmentProcess(actions=[DomainAction(name="sd_init")])
    )
    errors = validate_description(desc).errors
    assert any("node action" in e for e in errors)


def test_factorref_to_unknown_factor():
    desc = _minimal()
    desc.actors[0].actions.append(WaitForTime(seconds=FactorRef("ghost")))
    errors = validate_description(desc).errors
    assert any("unknown factor 'ghost'" in e for e in errors)


def test_selector_to_unknown_actor():
    desc = _minimal()
    desc.actors[0].actions.append(
        WaitForEvent(event="run_init", from_nodes=NodeSelector(actor="nobody"))
    )
    errors = validate_description(desc).errors
    assert any("unknown actor 'nobody'" in e for e in errors)


def test_negative_timeout():
    desc = _minimal()
    desc.actors[0].actions.append(WaitForEvent(event="run_init", timeout=-5))
    errors = validate_description(desc).errors
    assert any("negative wait_for_event timeout" in e for e in errors)


def test_manipulation_target_checked():
    desc = _minimal()
    desc.manipulations.append(
        ManipulationProcess(actor_id="ghost", actions=[])
    )
    errors = validate_description(desc).errors
    assert any("targets unknown actor" in e for e in errors)


def test_unemitted_event_is_warning_not_error():
    desc = _minimal()
    desc.actors[0].actions.append(WaitForEvent(event="mystery_event"))
    report = validate_description(desc)
    assert report.ok
    assert any("mystery_event" in w for w in report.warnings)


def test_flagged_event_silences_warning():
    desc = _minimal()
    desc.actors[0].actions.append(WaitForEvent(event="custom"))
    desc.actors[1].actions.append(EventFlag(value="custom"))
    report = validate_description(desc)
    assert not any("custom" in w for w in report.warnings)


def test_unknown_special_param_warns():
    desc = _minimal()
    desc.special_params["quantum_flux"] = 3
    report = validate_description(desc)
    assert report.ok
    assert any("quantum_flux" in w for w in report.warnings)


def test_raise_if_failed():
    desc = _minimal()
    desc.actors.append(ActorDescription("a0"))
    report = validate_description(desc)
    with pytest.raises(ValidationError) as info:
        report.raise_if_failed()
    assert info.value.problems
