"""Unit tests for the XML-RPC control channel."""

import pytest

from repro.core.errors import RpcError, RpcFault
from repro.core.rpc import ControlChannel, RpcServer


def _server(name="node"):
    server = RpcServer(name)
    server.register_function(lambda x, y: x + y, "add")
    server.register_function(lambda: {"k": [1, 2.5, "s", None]}, "blob")

    def fail():
        raise ValueError("remote boom")

    server.register_function(fail, "fail")
    return server


def _call(sim, channel, node, method, *args):
    """Drive one RPC to completion; returns (result, completion_time)."""
    box = {}

    def proc():
        box["result"] = yield from channel.call(node, method, *args)
        box["time"] = sim.now

    p = sim.process(proc())
    sim.run(until_event=p)
    return box.get("result"), box.get("time")


def test_roundtrip_result(sim):
    channel = ControlChannel(sim, latency=0.001)
    channel.add_node("n", _server())
    result, t = _call(sim, channel, "n", "add", 2, 3)
    assert result == 5
    assert t == pytest.approx(0.002)  # two one-way latencies


def test_complex_values_cross_the_wire(sim):
    channel = ControlChannel(sim, latency=0.0)
    channel.add_node("n", _server())
    result, _ = _call(sim, channel, "n", "blob")
    assert result == {"k": [1, 2.5, "s", None]}


def test_remote_exception_becomes_fault(sim):
    channel = ControlChannel(sim, latency=0.0)
    channel.add_node("n", _server())

    def proc():
        yield from channel.call("n", "fail")

    sim.process(proc())
    with pytest.raises(Exception) as info:
        sim.run()
    assert "remote boom" in str(info.value)


def test_unknown_method_is_fault(sim):
    channel = ControlChannel(sim, latency=0.0)
    channel.add_node("n", _server())

    box = {}

    def proc():
        try:
            yield from channel.call("n", "nosuch")
        except RpcFault as exc:
            box["fault"] = exc.fault_code

    p = sim.process(proc())
    sim.run(until_event=p)
    assert box["fault"] == 404


def test_unknown_node_raises_transport_error(sim):
    channel = ControlChannel(sim)
    gen = channel.call("ghost", "x")
    with pytest.raises(RpcError):
        next(gen)


def test_duplicate_node_rejected(sim):
    channel = ControlChannel(sim)
    channel.add_node("n", _server())
    with pytest.raises(RpcError):
        channel.add_node("n", _server())


def test_per_node_locking_serializes_calls(sim):
    """Two concurrent callers to one node are served strictly in request
    arrival order (the paper's per-node lock)."""
    order = []
    server = RpcServer("n")
    server.register_function(lambda tag: order.append(tag) or tag, "mark")
    channel = ControlChannel(sim, latency=0.001)
    channel.add_node("n", server)

    def caller(tag, start_delay):
        yield sim.timeout(start_delay)
        yield from channel.call("n", "mark", tag)

    sim.process(caller("first", 0.0))
    sim.process(caller("second", 0.0001))
    sim.run()
    assert order == ["first", "second"]


def test_calls_to_different_nodes_parallel(sim):
    channel = ControlChannel(sim, latency=0.01)
    channel.add_node("a", _server("a"))
    channel.add_node("b", _server("b"))
    times = {}

    def caller(node):
        yield from channel.call(node, "add", 1, 1)
        times[node] = sim.now

    sim.process(caller("a"))
    sim.process(caller("b"))
    sim.run()
    # Both complete after one RTT; not 2 RTT as strict serialization would.
    assert times["a"] == pytest.approx(0.02)
    assert times["b"] == pytest.approx(0.02)


def test_jitter_requires_rng(sim):
    with pytest.raises(ValueError):
        ControlChannel(sim, jitter=0.1)


def test_jitter_varies_latency(sim, rngs):
    channel = ControlChannel(sim, latency=0.001, jitter=0.005, rng=rngs.stream("j"))
    channel.add_node("n", _server())
    times = []
    for _ in range(5):
        _, t0 = None, sim.now
        _, t = _call(sim, channel, "n", "add", 1, 1)
        times.append(t - t0)
    assert len({round(t, 9) for t in times}) > 1


def test_cast_to_master_delivers_decoded_payload(sim):
    channel = ControlChannel(sim, latency=0.001)
    received = []
    channel.set_master_handler(received.append)
    channel.cast_to_master({"name": "ev", "params": [1, "a", None]})
    sim.run()
    assert received == [{"name": "ev", "params": [1, "a", None]}]


def test_cast_without_master_handler_raises(sim):
    channel = ControlChannel(sim)
    with pytest.raises(RpcError):
        channel.cast_to_master({})


def test_unserializable_argument_fails_loudly(sim):
    channel = ControlChannel(sim, latency=0.0)
    channel.add_node("n", _server())
    gen = channel.call("n", "add", object(), 1)
    with pytest.raises(TypeError):
        next(gen)


def test_register_instance_exposes_public_methods(sim):
    class Obj:
        def visible(self):
            return 1

        def _hidden(self):  # pragma: no cover
            return 2

    server = RpcServer("n")
    server.register_instance(Obj())
    assert "visible" in server.methods()
    assert "_hidden" not in server.methods()


def test_completed_calls_counter(sim):
    channel = ControlChannel(sim, latency=0.0)
    channel.add_node("n", _server())
    _call(sim, channel, "n", "add", 1, 2)
    _call(sim, channel, "n", "add", 3, 4)
    assert channel.completed_calls == 2
