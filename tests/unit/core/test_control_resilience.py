"""Unit tests for the control-plane resilience layer (DESIGN.md §10):
retry policy determinism, per-call deadlines, and heartbeat liveness.
"""

import pytest

from repro.core.errors import (
    RpcError,
    RpcFault,
    RpcTimeout,
    extract_node_id,
    node_token,
)
from repro.core.heartbeat import (
    ALIVE,
    DEAD,
    QUARANTINED,
    SUSPECT,
    HeartbeatConfig,
    HeartbeatMonitor,
    NodeHealth,
)
from repro.core.rpc import (
    IDEMPOTENT_METHODS,
    ControlChannel,
    RetryPolicy,
    RpcServer,
)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_backoff_deterministic_across_constructions():
    a = RetryPolicy(max_attempts=6, seed=42)
    b = RetryPolicy(max_attempts=6, seed=42)
    assert a.delays() == b.delays()


def test_backoff_differs_across_seeds():
    a = RetryPolicy(max_attempts=6, seed=1)
    b = RetryPolicy(max_attempts=6, seed=2)
    assert a.delays() != b.delays()


def test_reseed_replays_the_jitter_stream():
    policy = RetryPolicy(max_attempts=5, seed=7)
    first = policy.delays()
    policy.reseed(7)
    assert policy.delays() == first


def test_backoff_grows_and_caps():
    policy = RetryPolicy(
        max_attempts=10,
        base_delay=0.1,
        multiplier=2.0,
        max_delay=0.5,
        jitter_fraction=0.0,
        seed=0,
    )
    delays = policy.delays()
    assert delays[0] == pytest.approx(0.1)
    assert delays[1] == pytest.approx(0.2)
    assert max(delays) == pytest.approx(0.5)  # capped, not 0.1 * 2**8


def test_jitter_bounded_by_fraction():
    policy = RetryPolicy(
        max_attempts=50,
        base_delay=1.0,
        multiplier=1.0,
        max_delay=1.0,
        jitter_fraction=0.5,
        seed=3,
    )
    for d in policy.delays():
        assert 1.0 <= d <= 1.5


def test_zero_attempts_rejected():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


# ----------------------------------------------------------------------
# Node tokens
# ----------------------------------------------------------------------
def test_node_token_roundtrip():
    assert extract_node_id(f"boom: {node_token('t9-105')} gone") == "t9-105"
    assert extract_node_id("no token here") is None
    assert extract_node_id("") is None


# ----------------------------------------------------------------------
# Deadlines and retries on the channel
# ----------------------------------------------------------------------
def _node(name="n"):
    server = RpcServer(name)
    server.register_function(lambda: 1, "ping")
    server.register_function(lambda seq: {"seq": seq, "node_id": name}, "heartbeat")
    server.register_function(lambda name, params: 0, "execute_action")
    return server


def _drive(sim, gen):
    """Run one channel call to completion; returns (result, error)."""
    box = {}

    def proc():
        try:
            box["result"] = yield from gen
        except RpcError as exc:
            box["error"] = exc

    p = sim.process(proc())
    sim.run(until_event=p)
    return box.get("result"), box.get("error")


def test_hung_node_times_out_with_node_token(sim):
    channel = ControlChannel(
        sim, latency=0.001, call_timeout=0.05, retry=RetryPolicy(max_attempts=3, seed=0)
    )
    channel.add_node("n", _node())
    channel.set_node_down("n", "hang")
    _, error = _drive(sim, channel.call("n", "ping"))
    assert isinstance(error, RpcTimeout)
    assert extract_node_id(str(error)) == "n"
    assert channel.timed_out_calls == 3
    assert channel.retried_calls == 2


def test_dropped_reply_recovered_by_retry(sim):
    channel = ControlChannel(
        sim, latency=0.001, call_timeout=0.05, retry=RetryPolicy(max_attempts=3, seed=0)
    )
    channel.add_node("n", _node())
    channel.add_call_fault("n", "drop_reply", method="ping", count=1)
    result, error = _drive(sim, channel.call("n", "ping"))
    assert error is None and result == 1
    assert channel.timed_out_calls == 1
    assert channel.retried_calls == 1
    assert channel.completed_calls == 1


def test_non_idempotent_method_never_retried(sim):
    assert "execute_action" not in IDEMPOTENT_METHODS
    channel = ControlChannel(
        sim, latency=0.001, call_timeout=0.05, retry=RetryPolicy(max_attempts=3, seed=0)
    )
    channel.add_node("n", _node())
    channel.add_call_fault("n", "drop_reply", method="execute_action", count=1)
    _, error = _drive(sim, channel.call("n", "execute_action", "x", {}))
    assert isinstance(error, RpcTimeout)
    assert channel.retried_calls == 0


def test_refused_node_fails_with_transport_fault_after_retries(sim):
    channel = ControlChannel(
        sim, latency=0.001, call_timeout=0.05, retry=RetryPolicy(max_attempts=2, seed=0)
    )
    channel.add_node("n", _node())
    channel.set_node_down("n", "refuse")
    _, error = _drive(sim, channel.call("n", "ping"))
    assert isinstance(error, RpcFault)
    assert error.fault_code == 503
    assert extract_node_id(str(error)) == "n"
    assert channel.retried_calls == 1


def test_restore_node_lifts_the_fault(sim):
    channel = ControlChannel(
        sim, latency=0.001, call_timeout=0.05, retry=RetryPolicy(max_attempts=2, seed=0)
    )
    channel.add_node("n", _node())
    channel.set_node_down("n", "hang")
    channel.restore_node("n")
    result, error = _drive(sim, channel.call("n", "ping"))
    assert error is None and result == 1


def test_zero_timeout_keeps_historical_behavior(sim):
    """Deadline 0 = the pre-resilience channel: no extra events, no
    retries, identical completion time."""
    channel = ControlChannel(sim, latency=0.001)
    channel.add_node("n", _node())
    result, error = _drive(sim, channel.call("n", "ping", timeout=0))
    assert error is None and result == 1
    assert sim.now == pytest.approx(0.002)
    assert channel.timed_out_calls == 0


def test_bad_down_mode_rejected(sim):
    channel = ControlChannel(sim)
    with pytest.raises(RpcError):
        channel.set_node_down("n", "explode")
    with pytest.raises(RpcError):
        channel.add_call_fault("n", "drop_everything")


# ----------------------------------------------------------------------
# NodeHealth state machine
# ----------------------------------------------------------------------
def _health(**kwargs):
    config = HeartbeatConfig(
        suspect_after=kwargs.pop("suspect_after", 2),
        dead_after=kwargs.pop("dead_after", 4),
        quarantine_after=kwargs.pop("quarantine_after", 2),
    )
    return NodeHealth("n", config)


def test_health_alive_to_suspect_to_dead():
    h = _health()
    assert h.state == ALIVE
    h.record_miss()
    assert h.state == ALIVE
    h.record_miss()
    assert h.state == SUSPECT
    h.record_miss()
    h.record_miss()
    assert h.state == DEAD
    assert (ALIVE, SUSPECT) in h.transitions
    assert (SUSPECT, DEAD) in h.transitions


def test_health_success_resets_to_alive():
    h = _health()
    h.record_miss()
    h.record_miss()
    assert h.state == SUSPECT
    h.record_success()
    assert h.state == ALIVE
    assert h.consecutive_misses == 0
    # The miss streak starts over: one new miss is not enough.
    h.record_miss()
    assert h.state == ALIVE


def test_health_repeated_death_quarantines():
    h = _health(quarantine_after=2)
    for _ in range(4):
        h.record_miss()
    assert h.state == DEAD and h.deaths == 1
    h.record_success()
    for _ in range(4):
        h.record_miss()
    assert h.state == QUARANTINED and h.deaths == 2
    # Terminal: nothing revives a quarantined node.
    h.record_success()
    assert h.state == QUARANTINED


def test_health_record():
    h = _health()
    h.record_miss()
    h.record_success()
    rec = h.as_record()
    assert rec["state"] == ALIVE
    assert rec["probes"] == 2 and rec["misses"] == 1


# ----------------------------------------------------------------------
# HeartbeatMonitor over the channel
# ----------------------------------------------------------------------
def test_monitor_marks_hung_node_and_spares_healthy_one(sim):
    channel = ControlChannel(sim, latency=0.0001)
    channel.add_node("good", _node("good"))
    channel.add_node("bad", _node("bad"))
    channel.set_node_down("bad", "hang")

    transitions = []
    monitor = HeartbeatMonitor(
        sim,
        channel,
        ["good", "bad"],
        config=HeartbeatConfig(interval=0.1, timeout=0.05, suspect_after=2, dead_after=4),
        on_transition=lambda node, old, new: transitions.append((node, new)),
    )
    monitor.start()
    sim.run(until=2.0)
    monitor.stop()

    states = monitor.states()
    assert states["good"] == ALIVE
    assert states["bad"] == DEAD
    assert ("bad", SUSPECT) in transitions
    assert ("bad", DEAD) in transitions
    assert all(node != "good" for node, _ in transitions)


def test_monitor_recovery_transitions_back_to_alive(sim):
    channel = ControlChannel(sim, latency=0.0001)
    channel.add_node("n", _node("n"))
    channel.set_node_down("n", "hang")

    monitor = HeartbeatMonitor(
        sim,
        channel,
        ["n"],
        config=HeartbeatConfig(interval=0.1, timeout=0.05, suspect_after=2, dead_after=50),
    )
    monitor.start()
    sim.call_later(1.0, lambda: channel.restore_node("n"))
    sim.run(until=2.0)
    monitor.stop()

    health = monitor.health["n"]
    assert (ALIVE, SUSPECT) in health.transitions
    assert (SUSPECT, ALIVE) in health.transitions
    assert monitor.states()["n"] == ALIVE


def test_monitor_summary_counts(sim):
    channel = ControlChannel(sim, latency=0.0001)
    channel.add_node("n", _node("n"))
    monitor = HeartbeatMonitor(
        sim, channel, ["n"], config=HeartbeatConfig(interval=0.1, timeout=0.05)
    )
    monitor.start()
    sim.run(until=1.0)
    monitor.stop()
    summary = monitor.summary()
    assert summary["n"]["state"] == ALIVE
    assert summary["n"]["probes"] >= 5
    assert summary["n"]["misses"] == 0
