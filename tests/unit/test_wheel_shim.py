"""Unit tests for the offline wheel shim (tools/wheel_shim).

The shim backs ``pip install -e .`` on machines without the real
``wheel`` package; if it rots, installation breaks first — so it gets
tests like everything else.  The modules are loaded from the tools tree
directly, independent of whether a ``wheel`` package is installed.
"""

import importlib.util
import zipfile
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parents[2] / "tools" / "wheel_shim" / "wheel"


def _load(name, path):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


wheelfile_mod = _load("shim_wheelfile", TOOLS / "wheelfile.py")
bdist_mod = _load("shim_bdist_wheel", TOOLS / "bdist_wheel.py")


# ----------------------------------------------------------------------
# WheelFile
# ----------------------------------------------------------------------
def test_wheelfile_parses_archive_name(tmp_path):
    wf = wheelfile_mod.WheelFile(
        tmp_path / "pkg-1.2.3-0.editable-py3-none-any.whl", "w"
    )
    assert wf.dist_info_path == "pkg-1.2.3.dist-info"
    assert wf.record_path == "pkg-1.2.3.dist-info/RECORD"
    wf.close()


def test_wheelfile_rejects_bad_name(tmp_path):
    with pytest.raises(ValueError):
        wheelfile_mod.WheelFile(tmp_path / "nodashes.whl", "w")


def test_wheelfile_record_contents(tmp_path):
    path = tmp_path / "pkg-1.0-py3-none-any.whl"
    with wheelfile_mod.WheelFile(path, "w") as wf:
        wf.writestr("pkg/__init__.py", "x = 1\n")
        wf.writestr("pkg-1.0.dist-info/METADATA", "Name: pkg\n")
    with zipfile.ZipFile(path) as zf:
        names = zf.namelist()
        assert "pkg-1.0.dist-info/RECORD" in names
        record = zf.read("pkg-1.0.dist-info/RECORD").decode()
    lines = [ln for ln in record.splitlines() if ln]
    assert any(ln.startswith("pkg/__init__.py,sha256=") for ln in lines)
    assert "pkg-1.0.dist-info/RECORD,," in lines
    # Hash format: urlsafe base64 without padding.
    entry = next(ln for ln in lines if ln.startswith("pkg/__init__.py"))
    _, digest, size = entry.split(",")
    assert "=" not in digest.split("sha256=", 1)[1]
    assert int(size) == len("x = 1\n")


def test_wheelfile_write_files_walks_tree(tmp_path):
    src = tmp_path / "unpacked"
    (src / "pkg").mkdir(parents=True)
    (src / "pkg" / "mod.py").write_text("pass\n")
    (src / "pkg-2.0.dist-info").mkdir()
    (src / "pkg-2.0.dist-info" / "METADATA").write_text("Name: pkg\n")
    path = tmp_path / "pkg-2.0-py3-none-any.whl"
    with wheelfile_mod.WheelFile(path, "w") as wf:
        wf.write_files(src)
    with zipfile.ZipFile(path) as zf:
        assert "pkg/mod.py" in zf.namelist()
        assert "pkg-2.0.dist-info/METADATA" in zf.namelist()
        assert "pkg-2.0.dist-info/RECORD" in zf.namelist()


# ----------------------------------------------------------------------
# requires.txt conversion
# ----------------------------------------------------------------------
def test_requires_conversion_plain_and_extras():
    lines = bdist_mod._requires_to_metadata(
        "numpy\nnetworkx\n\n[dev]\npytest\nhypothesis\n"
    )
    assert "Requires-Dist: numpy" in lines
    assert "Provides-Extra: dev" in lines
    assert 'Requires-Dist: pytest ; extra == "dev"' in lines


def test_requires_conversion_markers():
    lines = bdist_mod._requires_to_metadata(
        '[:python_version < "3.10"]\ntyping-extensions\n'
    )
    assert any(
        "typing-extensions" in ln and 'python_version < "3.10"' in ln
        for ln in lines
    )


# ----------------------------------------------------------------------
# egg2dist
# ----------------------------------------------------------------------
def test_egg2dist_produces_metadata(tmp_path):
    egg = tmp_path / "pkg.egg-info"
    egg.mkdir()
    (egg / "PKG-INFO").write_text(
        "Metadata-Version: 2.1\nName: pkg\nVersion: 1.0\n\nlong description\n"
    )
    (egg / "requires.txt").write_text("numpy\n")
    (egg / "SOURCES.txt").write_text("setup.py\n")
    (egg / "entry_points.txt").write_text("[console_scripts]\nx = y:z\n")

    class FakeDist:
        def has_ext_modules(self):
            return False

    cmd = bdist_mod.bdist_wheel.__new__(bdist_mod.bdist_wheel)
    cmd.distribution = FakeDist()

    dist_info = tmp_path / "pkg-1.0.dist-info"
    cmd.egg2dist(egg, dist_info)

    metadata = (dist_info / "METADATA").read_text()
    assert "Name: pkg" in metadata
    assert "Requires-Dist: numpy" in metadata
    assert "long description" in metadata
    assert not (dist_info / "PKG-INFO").exists()
    assert not (dist_info / "SOURCES.txt").exists()
    assert not (dist_info / "requires.txt").exists()
    assert (dist_info / "entry_points.txt").exists()
    wheel_meta = (dist_info / "WHEEL").read_text()
    assert "Tag: py3-none-any" in wheel_meta
    assert "Root-Is-Purelib: true" in wheel_meta


def test_get_tag_pure_only():
    class PureDist:
        def has_ext_modules(self):
            return False

    class ExtDist:
        def has_ext_modules(self):
            return True

    cmd = bdist_mod.bdist_wheel.__new__(bdist_mod.bdist_wheel)
    cmd.distribution = PureDist()
    assert cmd.get_tag() == ("py3", "none", "any")
    cmd.distribution = ExtDist()
    with pytest.raises(RuntimeError, match="pure-Python"):
        cmd.get_tag()
