"""Property tests: SD protocol liveness under randomized adversity.

For any seed and any moderate loss level, the protocols must eventually
discover (liveness) — the retry machinery's whole job.  These run the
agents directly on a two-node medium for speed.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.medium import WirelessMedium
from repro.net.node import NetNode
from repro.net.topology import line_topology
from repro.sd import model as M
from repro.sd.mdns import MdnsAgent
from repro.sd.slp import SlpAgent
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


def _pair(agent_cls, seed, base_loss, config=None):
    sim = Simulator()
    rngs = RngRegistry(seed)
    topo = line_topology(2, base_loss=base_loss, prefix="p")
    medium = WirelessMedium(sim, topo, rngs.fresh("medium"))
    agents = {}
    events = {}
    for i, name in enumerate(topo.node_names):
        node = NetNode(sim, name, f"10.9.0.{i + 1}")
        medium.attach(node)
        log = []
        events[name] = log

        def emit(event_name, params=(), _log=log):
            _log.append((sim.now, event_name, tuple(params)))

        agent = agent_cls(sim, node, rngs, emit=emit, config=dict(config or {}))
        agent.reset(0)
        agents[name] = agent
    return sim, agents, events


def _first(events, node, name):
    for t, n, p in events[node]:
        if n == name:
            return t
    return None


def _run_until_event(sim, events, node, name, horizon, extended):
    """Run to *horizon*; on a miss keep going to *extended*.

    Liveness is an *eventually* claim.  Under per-packet loss the failure
    probability within any fixed horizon is small but nonzero (every
    retry can lose the coin toss), so a hard cutoff makes the property
    statistically false and the test flaky — Hypothesis will eventually
    find a seed whose first N transmissions all drop.  The extended
    horizon leaves room for enough further retries/refreshes that a miss
    means a real liveness bug, not bad luck.
    """
    sim.run(until=horizon)
    if _first(events, node, name) is None:
        sim.run(until=extended)
    return _first(events, node, name)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss=st.floats(min_value=0.0, max_value=0.5),
)
@settings(max_examples=25, deadline=None)
def test_mdns_discovery_liveness_under_loss(seed, loss):
    """With per-packet loss up to 50% (both the announcement and the
    query/response path suffering), active two-party discovery succeeds
    within a generous horizon."""
    sim, agents, events = _pair(MdnsAgent, seed, loss)
    agents["p0"].action_init({"role": "sm"})
    agents["p0"].action_start_publish({"type": "_t"})
    agents["p1"].action_init({"role": "su"})
    agents["p1"].action_start_search({"type": "_t"})
    assert _run_until_event(
        sim, events, "p1", M.EVENT_SD_SERVICE_ADD, 120.0, 1800.0
    ) is not None


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss=st.floats(min_value=0.0, max_value=0.4),
)
@settings(max_examples=15, deadline=None)
def test_slp_registration_liveness_under_loss(seed, loss):
    """Acknowledged unicast registration eventually lands on the SCM."""
    sim, agents, events = _pair(SlpAgent, seed, loss)
    agents["p0"].action_init({"role": "scm"})
    agents["p1"].action_init({"role": "sm"})
    agents["p1"].action_start_publish({"type": "_t"})
    assert _run_until_event(
        sim, events, "p0", M.EVENT_SCM_REGISTRATION_ADD, 180.0, 1800.0
    ) is not None
    assert _first(events, "p1", M.EVENT_SCM_FOUND) is not None


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_mdns_add_del_add_cycle(seed):
    """Publish -> goodbye -> republish yields add, del, add (in order)."""
    sim, agents, events = _pair(MdnsAgent, seed, base_loss=0.0)
    agents["p0"].action_init({"role": "sm"})
    agents["p1"].action_init({"role": "su"})
    agents["p1"].action_start_search({"type": "_t"})
    agents["p0"].action_start_publish({"type": "_t"})
    sim.run(until=5.0)
    agents["p0"].action_stop_publish({"type": "_t"})
    sim.run(until=10.0)
    agents["p0"].action_start_publish({"type": "_t"})
    sim.run(until=20.0)
    names = [n for _t, n, _p in events["p1"]
             if n in (M.EVENT_SD_SERVICE_ADD, M.EVENT_SD_SERVICE_DEL)]
    assert names[:3] == [
        M.EVENT_SD_SERVICE_ADD, M.EVENT_SD_SERVICE_DEL, M.EVENT_SD_SERVICE_ADD
    ]


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_protocol_events_deterministic_per_seed(seed):
    """Same seed -> byte-identical event logs (agent-level determinism)."""
    def run_once():
        sim, agents, events = _pair(MdnsAgent, seed, base_loss=0.2)
        agents["p0"].action_init({"role": "sm"})
        agents["p0"].action_start_publish({"type": "_t"})
        agents["p1"].action_init({"role": "su"})
        agents["p1"].action_start_search({"type": "_t"})
        sim.run(until=30.0)
        return events

    assert run_once() == run_once()
