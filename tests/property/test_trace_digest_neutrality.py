"""The observability layer is provably inert.

Tracing and metrics are on by default, so the burden of proof is theirs:
with tracing on, off, or any worker count, the level-3 Table-I digest and
the complete RNG schedule (the end state of every named stream the
platform drew from) must be byte-identical.  Span persistence may only
add rows to the ``RunTraces`` extension table, which the digest excludes
by design.
"""

import sqlite3

from repro.campaign import database_digest, run_campaign
from repro.core.master import ExperiMaster
from repro.obs.trace import TRACE_ENV_VAR
from repro.platforms.simulated import SimulatedPlatform
from repro.sd.processlib import build_two_party_description
from repro.storage.level2 import Level2Store
from repro.storage.level3 import store_level3


def _description(seed=501, replications=6):
    return build_two_party_description(
        name="trace-neutrality", seed=seed, replications=replications, env_count=1
    )


def _rng_schedule(platform):
    """End state of every RNG stream the execution touched.

    Any extra draw anywhere — one ``random()`` call from the tracing
    path — shifts the state of the stream it came from.
    """
    states = {
        repr(key): rng.getstate()
        for key, rng in platform.rngs._streams.items()
    }
    states["channel"] = platform.channel.rng.getstate()
    states["medium"] = platform.medium.rng.getstate()
    return states


def _execute(tmp_path, monkeypatch, trace_value):
    monkeypatch.setenv(TRACE_ENV_VAR, trace_value)
    desc = _description()
    platform = SimulatedPlatform(desc)
    master = ExperiMaster(platform, desc, Level2Store(tmp_path / "l2"))
    result = master.execute()
    db_path = store_level3(result.store, tmp_path / "exp.db")
    return database_digest(db_path), _rng_schedule(platform), db_path


def _run_trace_rows(db_path):
    conn = sqlite3.connect(str(db_path))
    try:
        return conn.execute("SELECT COUNT(*) FROM RunTraces").fetchone()[0]
    finally:
        conn.close()


def test_digest_and_rng_schedule_identical_tracing_on_off(tmp_path, monkeypatch):
    digest_on, rng_on, db_on = _execute(tmp_path / "on", monkeypatch, "1")
    digest_off, rng_off, db_off = _execute(tmp_path / "off", monkeypatch, "0")
    assert digest_on == digest_off
    assert rng_on == rng_off
    # Tracing is not silently dead — it wrote spans, outside the digest.
    assert _run_trace_rows(db_on) > 0
    assert _run_trace_rows(db_off) == 0


def test_campaign_digest_identical_for_tracing_and_jobs(tmp_path, monkeypatch):
    digests = {}
    for label, trace_value, jobs in (
        ("on-j1", "1", 1),
        ("on-j2", "1", 2),
        ("off-j2", "0", 2),
    ):
        monkeypatch.setenv(TRACE_ENV_VAR, trace_value)
        db_path = tmp_path / f"{label}.db"
        run_campaign(
            _description(),
            tmp_path / label,
            db_path=db_path,
            jobs=jobs,
            pool="thread",
        )
        digests[label] = database_digest(db_path)
    assert len(set(digests.values())) == 1
    # Per-run spans rode the shard merge into the merged database.
    assert _run_trace_rows(tmp_path / "on-j1.db") > 0
    assert _run_trace_rows(tmp_path / "on-j2.db") > 0
    assert _run_trace_rows(tmp_path / "off-j2.db") == 0


def test_traced_phase_spans_cover_every_run(tmp_path, monkeypatch):
    monkeypatch.setenv(TRACE_ENV_VAR, "1")
    _, _, db_path = _execute(tmp_path, monkeypatch, "1")
    conn = sqlite3.connect(str(db_path))
    try:
        rows = conn.execute(
            "SELECT RunID, Name, COUNT(*) FROM RunTraces "
            "WHERE Name IN ('preparation', 'execution', 'cleanup') "
            "GROUP BY RunID, Name"
        ).fetchall()
        run_count = conn.execute(
            "SELECT COUNT(DISTINCT RunID) FROM RunInfos"
        ).fetchone()[0]
    finally:
        conn.close()
    by_run = {}
    for run_id, name, count in rows:
        by_run.setdefault(run_id, set()).add(name)
        assert count == 1, (run_id, name)
    assert len(by_run) == run_count
    assert all(
        phases == {"preparation", "execution", "cleanup"}
        for phases in by_run.values()
    )
