"""Property tests: kernel scheduling and medium conservation invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.medium import CongestionModel, WirelessMedium
from repro.net.node import NetNode
from repro.net.packet import MULTICAST_SD_GROUP
from repro.net.topology import full_mesh_topology, line_topology
from repro.sim.kernel import Simulator


# ----------------------------------------------------------------------
# Kernel
# ----------------------------------------------------------------------
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=60
    )
)
@settings(max_examples=100, deadline=None)
def test_callbacks_run_in_time_order_exactly_once(delays):
    sim = Simulator()
    fired = []
    for i, delay in enumerate(delays):
        sim.call_later(delay, lambda i=i, d=delay: fired.append((d, i)))
    sim.run()
    assert len(fired) == len(delays)
    times = [d for d, _i in fired]
    assert times == sorted(times)
    # Equal times preserve scheduling order.
    for (d1, i1), (d2, i2) in zip(fired, fired[1:]):
        if d1 == d2:
            assert i1 < i2


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40
    )
)
@settings(max_examples=60, deadline=None)
def test_clock_is_monotone_under_any_schedule(delays):
    sim = Simulator()
    observed = []

    def nested(remaining):
        observed.append(sim.now)
        if remaining:
            head, *tail = remaining
            sim.call_later(head, lambda: nested(tail))

    nested(list(delays))
    sim.run()
    assert observed == sorted(observed)


@given(
    n_procs=st.integers(min_value=1, max_value=10),
    steps=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=50, deadline=None)
def test_processes_complete_regardless_of_interleaving(n_procs, steps, seed):
    sim = Simulator()
    rng = random.Random(seed)
    finished = []

    def worker(wid):
        for _ in range(steps):
            yield sim.timeout(rng.uniform(0.0, 1.0))
        finished.append(wid)
        return wid

    procs = [sim.process(worker(i)) for i in range(n_procs)]
    sim.run()
    assert sorted(finished) == list(range(n_procs))
    assert all(p.value == i for i, p in enumerate(procs))


# ----------------------------------------------------------------------
# Medium conservation
# ----------------------------------------------------------------------
@given(
    n_packets=st.integers(min_value=1, max_value=60),
    base_loss=st.floats(min_value=0.0, max_value=0.9),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_unicast_conservation_sent_equals_delivered_plus_lost(
    n_packets, base_loss, seed
):
    sim = Simulator()
    topo = line_topology(2, base_loss=base_loss, prefix="c")
    medium = WirelessMedium(sim, topo, random.Random(seed), mac_retries=2)
    a = NetNode(sim, "c0", "10.8.0.1")
    b = NetNode(sim, "c1", "10.8.0.2")
    medium.attach(a)
    medium.attach(b)
    received = []
    b.bind(9, lambda pl, pkt, n: received.append(pl))
    for i in range(n_packets):
        a.send_datagram(i, b.address, 9)
    sim.run(until=60.0)
    # Every transmission is either delivered or counted lost.
    assert medium.stats.deliveries + medium.stats.losses == n_packets
    assert len(received) == medium.stats.deliveries
    # No duplication ever.
    assert len(set(received)) == len(received)


@given(
    n=st.integers(min_value=2, max_value=6),
    n_packets=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=50, deadline=None)
def test_multicast_delivers_at_most_once_per_member(n, n_packets, seed):
    sim = Simulator()
    topo = full_mesh_topology(n, base_loss=0.3, prefix="m")
    medium = WirelessMedium(sim, topo, random.Random(seed))
    nodes = []
    delivered = {}
    for i in range(n):
        node = NetNode(sim, f"m{i}", f"10.8.1.{i + 1}")
        medium.attach(node)
        nodes.append(node)
    for node in nodes[1:]:
        node.join_group(MULTICAST_SD_GROUP)
        log = delivered.setdefault(node.name, [])
        node.bind(9, lambda pl, pkt, node_, _log=log: _log.append(pl))
    for i in range(n_packets):
        nodes[0].send_datagram(i, MULTICAST_SD_GROUP, 9)
    sim.run(until=60.0)
    for name, payloads in delivered.items():
        # Flooding may carry several copies, but dedup guarantees at most
        # one delivery per uid per member.
        assert len(payloads) == len(set(payloads)), name
        assert len(payloads) <= n_packets


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=40),
)
@settings(max_examples=60, deadline=None)
def test_utilization_bounded_and_zero_after_window(sizes):
    sim = Simulator()
    topo = line_topology(2, base_loss=0.0, prefix="u")
    medium = WirelessMedium(
        sim, topo, random.Random(1),
        congestion=CongestionModel(capacity_bps=1_000_000, window=1.0),
    )
    a = NetNode(sim, "u0", "10.8.2.1")
    b = NetNode(sim, "u1", "10.8.2.2")
    medium.attach(a)
    medium.attach(b)
    for size in sizes:
        a.send_datagram("x", b.address, 9, size=size)
        assert 0.0 <= medium.utilization() <= 1.5
    sim.call_later(2.0, lambda: None)
    sim.run()
    assert medium.utilization() == 0.0
