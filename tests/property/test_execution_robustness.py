"""Property test: random (terminating) descriptions execute end to end.

Hypothesis generates small arbitrary process descriptions from a
terminating action vocabulary (bounded waits, flags, generic actions,
timed-out event waits, fault start/stop pairs); every generated
experiment must validate, execute to completion on the platform, collect
all runs, and condition into a consistent level-3 database.  This is the
broadest robustness net over the interpreter/master/storage stack.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ExperiMaster, Level2Store, store_level3
from repro.core.description import (
    ActorDescription,
    EnvironmentProcess,
    ExperimentDescription,
    ManipulationProcess,
    PlatformNode,
    PlatformSpec,
)
from repro.core.factors import Factor, FactorList, Level, ReplicationFactor, Usage
from repro.core.processes import (
    DomainAction,
    EventFlag,
    WaitForEvent,
    WaitForTime,
    WaitMarker,
)
from repro.core.validation import validate_description
from repro.platforms.simulated import PlatformConfig, SimulatedPlatform
from repro.storage.level3 import ExperimentDatabase

_flag_names = st.sampled_from(["alpha", "beta", "gamma"])


@st.composite
def terminating_actions(draw, max_len=5):
    """A short action sequence guaranteed to finish in bounded time."""
    n = draw(st.integers(min_value=0, max_value=max_len))
    actions = []
    for _ in range(n):
        kind = draw(st.integers(min_value=0, max_value=5))
        if kind == 0:
            actions.append(WaitForTime(seconds=draw(
                st.floats(min_value=0.0, max_value=0.3))))
        elif kind == 1:
            actions.append(EventFlag(value=draw(_flag_names)))
        elif kind == 2:
            actions.append(WaitMarker())
        elif kind == 3:
            # Every event wait carries a timeout -> cannot hang.
            actions.append(WaitForEvent(
                event=draw(_flag_names),
                timeout=draw(st.floats(min_value=0.05, max_value=0.5)),
            ))
        elif kind == 4:
            actions.append(DomainAction(
                name="generic",
                params={"k": draw(st.integers(min_value=0, max_value=9))},
            ))
        else:
            actions.append(DomainAction(
                name="msg_loss_start",
                params={
                    "probability": draw(st.floats(min_value=0.0, max_value=1.0)),
                    "duration": draw(st.floats(min_value=0.05, max_value=0.5)),
                },
            ))
    return actions


@st.composite
def random_descriptions(draw):
    desc = ExperimentDescription(
        name="fuzz", seed=draw(st.integers(min_value=0, max_value=2**20)),
    )
    desc.abstract_nodes = ["A", "B"]
    desc.factors = FactorList(
        [
            Factor(id="fact_nodes", type="actor_node_map", usage=Usage.BLOCKING,
                   levels=[Level({"a0": {"0": "A"}, "a1": {"0": "B"}})]),
            Factor(id="knob", type="int", usage=Usage.RANDOM,
                   levels=[Level(1), Level(2)]),
        ],
        ReplicationFactor(count=draw(st.integers(min_value=1, max_value=2))),
    )
    desc.actors = [
        ActorDescription("a0", actions=draw(terminating_actions())),
        ActorDescription("a1", actions=draw(terminating_actions())),
    ]
    if draw(st.booleans()):
        desc.manipulations.append(
            ManipulationProcess(actor_id="a0", actions=draw(terminating_actions(3)))
        )
    if draw(st.booleans()):
        desc.environment_processes.append(
            EnvironmentProcess(actions=[
                EventFlag(value="ready"),
                *draw(terminating_actions(2)),
            ])
        )
        # Keep env sequences node-action-free.
        desc.environment_processes[0].actions = [
            a for a in desc.environment_processes[0].actions
            if not isinstance(a, DomainAction)
        ]
    desc.platform = PlatformSpec([
        PlatformNode("f0", "10.0.0.1", abstract_id="A"),
        PlatformNode("f1", "10.0.0.2", abstract_id="B"),
    ])
    desc.special_params = {"max_run_duration": 30.0, "run_spacing": 0.0,
                           "run_settle_time": 0.0}
    return desc


@given(desc=random_descriptions())
@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_descriptions_execute_and_store(tmp_path_factory, desc):
    report = validate_description(desc)
    assert report.ok, report.errors

    root = tmp_path_factory.mktemp("fuzz")
    platform = SimulatedPlatform(desc, PlatformConfig(topology="full"))
    master = ExperiMaster(platform, desc, Level2Store(root / "l2"))
    result = master.execute()
    assert len(result.executed_runs) == desc.factors.total_runs()
    assert result.timed_out_runs == []  # terminating vocabulary

    db_path = store_level3(result.store, root / "fuzz.db")
    with ExperimentDatabase(db_path) as db:
        # Every run has run_init/run_exit bracketing on the master lane.
        for run_id in db.run_ids():
            names = [e["name"] for e in db.events(run_id=run_id, node_id="master")]
            assert names[0] == "run_init" and names[-1] == "run_exit"
        # Events are JSON-clean and time-ordered per run.
        for run_id in db.run_ids():
            events = db.events(run_id=run_id)
            json.dumps(events)
            times = [e["common_time"] for e in events]
            assert times == sorted(times)
