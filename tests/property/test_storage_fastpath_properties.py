"""Properties of the storage fast path (buffered L2 ingest, merge-by-key
conditioning, tuned L3 writes).

The optimizations are only admissible because they are invisible in the
data: the level-3 package they produce must hold *identical* table
contents — row for row, in order — to the pre-optimization pipeline, and
the campaign merge must stay byte-identical for any ``--jobs``.  These
tests pin both claims:

* a Hypothesis property comparing merge-by-key conditioning against the
  reference concatenate-and-stable-sort implementation over adversarial
  per-node streams (sorted, unsorted, mixed, cross-attributed nodes);
* an end-to-end test storing a seeded 18-run experiment through the
  optimized writer and through an inline copy of the pre-optimization
  writer, asserting identical table dumps;
* a campaign executed with different worker counts over the same 18-run
  plan, asserting digest equality.
"""

import json
import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run_experiment, store_level3
from repro.campaign import database_digest, run_campaign
from repro.core.description import EE_VERSION
from repro.sd.processlib import build_two_party_description
from repro.storage.conditioning import (
    _condition_stream,
    _merge_streams,
    condition_experiment,
)
from repro.storage.level3 import (
    TABLE_SCHEMAS,
    _addr_to_node_map,
    _name_comment,
    create_schema,
)

# ----------------------------------------------------------------------
# Reference implementations (the pre-optimization pipeline, verbatim)
# ----------------------------------------------------------------------


def _reference_condition_records(records, offsets, run_id):
    """The original conditioning: concatenate, then one stable full sort."""
    out = []
    for rec in records:
        node = rec.get("node", "master")
        offset = offsets.get(node, 0.0)
        conditioned = dict(rec)
        conditioned["common_time"] = float(rec["local_time"]) - offset
        conditioned.setdefault("run_id", run_id)
        out.append(conditioned)
    out.sort(key=lambda r: (r["common_time"], r.get("node", ""), r.get("seq", -1)))
    return out


def _reference_store_level3(store, db_path):
    """The original level-3 writer: full in-memory conditioning, default
    connection pragmas, per-row scope/run-info inserts, one commit."""
    data = condition_experiment(store)
    conn = sqlite3.connect(str(db_path))
    try:
        create_schema(conn)
        name, comment = _name_comment(data.description_xml)
        conn.execute(
            "INSERT INTO ExperimentInfo (ExpXML, EEVersion, Name, Comment) "
            "VALUES (?, ?, ?, ?)",
            (data.description_xml, EE_VERSION, name, comment),
        )
        for node_id, log in sorted(data.node_logs.items()):
            conn.execute("INSERT INTO Logs (NodeID, Log) VALUES (?, ?)",
                         (node_id, log))
        for file_id, content in sorted(data.eefiles.items()):
            conn.execute("INSERT INTO EEFiles (ID, File) VALUES (?, ?)",
                         (file_id, content))
        conn.execute(
            "INSERT INTO EEFiles (ID, File) VALUES (?, ?)",
            ("plan.json", json.dumps(data.plan, sort_keys=True)),
        )
        for mname, content in sorted(data.experiment_measurements.items()):
            conn.execute(
                "INSERT INTO ExperimentMeasurements (NodeID, Name, Content) "
                "VALUES (?, ?, ?)",
                ("master", mname, json.dumps(content, sort_keys=True)),
            )
        src_map = _addr_to_node_map(data.description_xml)
        for run in data.runs:
            for node_id, offset in sorted(run.offsets.items()):
                conn.execute(
                    "INSERT INTO RunInfos (RunID, NodeID, StartTime, TimeDiff) "
                    "VALUES (?, ?, ?, ?)",
                    (run.run_id, node_id, run.start_time, offset),
                )
            for node_id, plugins in sorted(run.extra_measurements.items()):
                for pname, content in sorted(plugins.items()):
                    conn.execute(
                        "INSERT INTO ExtraRunMeasurements "
                        "(RunID, NodeID, Name, Content) VALUES (?, ?, ?, ?)",
                        (run.run_id, node_id, pname,
                         json.dumps(content, sort_keys=True)),
                    )
            conn.executemany(
                "INSERT INTO Events (RunID, NodeID, CommonTime, EventType, "
                "Parameter) VALUES (?, ?, ?, ?, ?)",
                (
                    (rec.get("run_id"), rec["node"], rec["common_time"],
                     rec["name"], json.dumps(rec.get("params", []),
                                             sort_keys=True))
                    for rec in run.events
                ),
            )
            conn.executemany(
                "INSERT INTO Packets (RunID, NodeID, CommonTime, SrcNodeID, "
                "Data) VALUES (?, ?, ?, ?, ?)",
                (
                    (rec.get("run_id"), rec["node"], rec["common_time"],
                     src_map.get(rec.get("src", ""), rec.get("src", "")),
                     json.dumps(rec, sort_keys=True))
                    for rec in run.packets
                ),
            )
        conn.commit()
    finally:
        conn.close()
    return db_path


def _table_dump(db_path, table):
    """Every row of *table* in stored (rowid) order."""
    conn = sqlite3.connect(str(db_path))
    try:
        columns = ", ".join(TABLE_SCHEMAS[table])
        return conn.execute(f"SELECT {columns} FROM {table}").fetchall()
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Conditioning equivalence (Hypothesis)
# ----------------------------------------------------------------------

_record = st.fixed_dictionaries({
    # Drawing the node label per record (not per stream) deliberately
    # produces cross-attributed streams whose sort keys interleave, so
    # the merge path's sortedness detection and fallback are exercised.
    "node": st.sampled_from(["n0", "n1", "master"]),
    "local_time": st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False, allow_infinity=False),
    "seq": st.integers(min_value=0, max_value=50),
    "name": st.sampled_from(["a", "b"]),
})

_streams = st.lists(
    st.lists(_record, max_size=12).map(
        # Half the streams arrive pre-sorted (the realistic collection
        # order), half in arrival order — both must condition identically.
        lambda recs: sorted(
            recs, key=lambda r: (r["local_time"], r["node"], r["seq"])
        )
    ) | st.lists(_record, max_size=12),
    max_size=5,
)


@settings(max_examples=200, deadline=None)
@given(streams=_streams)
def test_merge_by_key_matches_reference_sort(streams):
    offsets = {"n0": 0.25, "n1": -1.5, "master": 0.0}
    reference = _reference_condition_records(
        [rec for stream in streams for rec in stream], offsets, run_id=7
    )
    merged = _merge_streams(
        [_condition_stream(stream, offsets, 7) for stream in streams]
    )
    assert merged == reference


# ----------------------------------------------------------------------
# End-to-end byte-identity on a seeded 18-run plan
# ----------------------------------------------------------------------

REPLICATIONS = 18


def _description():
    return build_two_party_description(
        name="fastpath-prop", seed=1803, replications=REPLICATIONS, env_count=1,
    )


@pytest.fixture(scope="module")
def executed_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("fastpath")
    result = run_experiment(_description(), store_root=root / "l2")
    assert len(result.executed_runs) == REPLICATIONS
    return result.store


def test_optimized_writer_identical_table_dumps(executed_store, tmp_path):
    fast = store_level3(executed_store, tmp_path / "fast.db")
    reference = _reference_store_level3(executed_store, tmp_path / "ref.db")
    for table in TABLE_SCHEMAS:
        assert _table_dump(fast, table) == _table_dump(reference, table), table


def test_campaign_merge_identical_for_any_jobs(tmp_path):
    digests = set()
    for jobs in (1, 3):
        run_campaign(_description(), tmp_path / f"j{jobs}",
                     db_path=tmp_path / f"j{jobs}.db", jobs=jobs, pool="thread")
        digests.add(database_digest(tmp_path / f"j{jobs}.db"))
    assert len(digests) == 1
