"""Property tests: the event-wheel kernel is order-identical to the
frozen single-heap reference kernel.

The determinism contract says both kernels execute the same schedule in
exactly the same global ``(time, sequence)`` order — including
same-instant bursts, callbacks that schedule more callbacks at the
current instant, far-future overflow entries, and ``run(until=...)``
horizons.  These tests drive both kernels through randomized schedules
and compare the full execution traces element by element.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.reference import ReferenceSimulator

# Delay pool mixing sub-bucket, near-window and overflow times, plus
# exact duplicates to force same-instant ties.
_DELAYS = st.one_of(
    st.sampled_from([0.0, 0.0005, 0.001, 0.25, 1.0, 1.024, 5.0, 60.0]),
    st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
)


def _trace_run(sim_cls, schedule, until=None, chain_every=0):
    """Execute *schedule* on a fresh kernel; return the execution trace.

    Each trace element is ``(now, tag)``.  When ``chain_every`` is > 0,
    every chain_every-th callback schedules a follow-up at the *current*
    instant — the same-instant-during-drain case the wheel clamps into
    the cursor bucket.
    """
    sim = sim_cls()
    trace = []

    def fire(tag):
        trace.append((sim.now, tag))
        if chain_every and tag % chain_every == 0:
            sim.call_later(0.0, fire, -tag - 1)

    for tag, delay in enumerate(schedule):
        sim.call_later(delay, fire, tag)
    sim.run(until=until)
    return trace, sim.now, sim.executed_callbacks


@given(delays=st.lists(_DELAYS, min_size=1, max_size=120))
@settings(max_examples=150, deadline=None)
def test_traces_identical_for_random_schedules(delays):
    wheel_trace, wheel_now, wheel_count = _trace_run(Simulator, delays)
    ref_trace, ref_now, ref_count = _trace_run(ReferenceSimulator, delays)
    assert wheel_trace == ref_trace
    assert wheel_now == ref_now
    assert wheel_count == ref_count


@given(delays=st.lists(_DELAYS, min_size=1, max_size=80))
@settings(max_examples=100, deadline=None)
def test_traces_identical_with_same_instant_chains(delays):
    wheel = _trace_run(Simulator, delays, chain_every=3)
    ref = _trace_run(ReferenceSimulator, delays, chain_every=3)
    assert wheel == ref


@given(
    delays=st.lists(_DELAYS, min_size=1, max_size=80),
    until=st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_until_horizon_semantics_match(delays, until):
    wheel_trace, wheel_now, _ = _trace_run(Simulator, delays, until=until)
    ref_trace, ref_now, _ = _trace_run(ReferenceSimulator, delays, until=until)
    assert wheel_trace == ref_trace
    # Both kernels advance the clock exactly to the horizon, and neither
    # executes anything scheduled past it.
    assert wheel_now == ref_now == until
    assert all(t <= until for t, _ in wheel_trace)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_interleaved_run_segments_match(seed):
    # Alternate run(until=...) segments with fresh schedule calls between
    # them, so pushes land behind, inside and beyond the active window.
    rng = random.Random(seed)
    kernels = []
    for sim_cls in (Simulator, ReferenceSimulator):
        local = random.Random(seed)
        sim = sim_cls()
        trace = []

        def fire(tag, trace=trace, sim=sim):
            trace.append((sim.now, tag))

        horizon = 0.0
        tag = 0
        for _segment in range(4):
            for _ in range(local.randrange(1, 12)):
                sim.call_later(local.uniform(0.0, 30.0), fire, tag)
                tag += 1
            horizon += local.uniform(0.0, 15.0)
            sim.run(until=horizon)
        sim.run()  # drain the rest
        kernels.append((trace, sim.now, sim.executed_callbacks))
    del rng
    assert kernels[0] == kernels[1]


@pytest.mark.parametrize("sim_cls", [Simulator, ReferenceSimulator])
def test_negative_delay_rejected_by_both(sim_cls):
    sim = sim_cls()
    with pytest.raises(SimulationError):
        sim.call_later(-1e-9, lambda: None)


@pytest.mark.parametrize("sim_cls", [Simulator, ReferenceSimulator])
def test_past_absolute_time_rejected_by_both(sim_cls):
    sim = sim_cls()
    sim.call_later(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(0.5, lambda: None)
