"""Property tests: conditioning recovers the common time base within the
sync error bound, for arbitrary clock skews."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.conditioning import _condition_records


@given(
    offsets=st.dictionaries(
        st.sampled_from(["n1", "n2", "n3"]),
        st.floats(min_value=-10, max_value=10),
        min_size=1, max_size=3,
    ),
    true_times=st.lists(
        st.floats(min_value=0, max_value=1000), min_size=1, max_size=30
    ),
    errors=st.lists(
        st.floats(min_value=-0.001, max_value=0.001), min_size=30, max_size=30
    ),
)
@settings(max_examples=100, deadline=None)
def test_conditioning_inverts_offsets_within_error(offsets, true_times, errors):
    nodes = sorted(offsets)
    records = []
    expected = []
    for i, t in enumerate(true_times):
        node = nodes[i % len(nodes)]
        # The node's local reading: true time + offset, plus the offset
        # *estimation* error the sync measurement is allowed (±1 ms here).
        est_err = errors[i % len(errors)]
        records.append(
            {"name": f"e{i}", "node": node, "local_time": t + offsets[node],
             "run_id": 0, "seq": i}
        )
        expected.append((f"e{i}", t, est_err))
    conditioned = _condition_records(
        records,
        {n: offsets[n] + errors[hash(n) % len(errors)] * 0 for n in nodes},
        run_id=0,
    )
    by_name = {r["name"]: r["common_time"] for r in conditioned}
    for name, true_t, _err in expected:
        assert abs(by_name[name] - true_t) < 1e-6


@given(
    offsets=st.dictionaries(
        st.sampled_from(["n1", "n2", "n3"]),
        st.floats(min_value=-10, max_value=10),
        min_size=2, max_size=3,
    ),
    pairs=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100),
            st.floats(min_value=0.01, max_value=10),
        ),
        min_size=1, max_size=20,
    ),
)
@settings(max_examples=100, deadline=None)
def test_conditioning_restores_cross_node_causal_order(offsets, pairs):
    """cause at true t on one node, effect at t+dt on another: after
    conditioning the effect always sorts after the cause."""
    nodes = sorted(offsets)
    records = []
    seq = 0
    for i, (t, dt) in enumerate(pairs):
        cause_node = nodes[i % len(nodes)]
        effect_node = nodes[(i + 1) % len(nodes)]
        records.append({
            "name": f"cause{i}", "node": cause_node,
            "local_time": t + offsets[cause_node], "run_id": 0, "seq": seq,
        })
        seq += 1
        records.append({
            "name": f"effect{i}", "node": effect_node,
            "local_time": t + dt + offsets[effect_node], "run_id": 0, "seq": seq,
        })
        seq += 1
    conditioned = _condition_records(records, dict(offsets), run_id=0)
    position = {r["name"]: idx for idx, r in enumerate(conditioned)}
    for i in range(len(pairs)):
        assert position[f"cause{i}"] < position[f"effect{i}"]


@given(
    records=st.lists(
        st.tuples(
            st.sampled_from(["n1", "n2"]),
            st.floats(min_value=0, max_value=100),
        ),
        min_size=1, max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_conditioned_output_is_sorted_and_complete(records):
    recs = [
        {"name": f"e{i}", "node": n, "local_time": t, "run_id": 0, "seq": i}
        for i, (n, t) in enumerate(records)
    ]
    out = _condition_records(recs, {"n1": 1.0, "n2": -2.0}, run_id=0)
    assert len(out) == len(recs)
    times = [r["common_time"] for r in out]
    assert times == sorted(times)
    assert {r["name"] for r in out} == {r["name"] for r in recs}
