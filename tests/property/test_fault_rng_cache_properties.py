"""Property tests: fault windows, RNG derivation, caches, tag unwrapping,
event dependency matching."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.events import EventPattern, ExEvent, Watcher
from repro.faults.model import FaultTiming
from repro.net.tagger import TAG_MODULUS, unwrap_tags
from repro.sd.model import ServiceInstance
from repro.sd.records import ServiceCache
from repro.sim.rng import RngRegistry, derive_seed


# ----------------------------------------------------------------------
# Fault windows
# ----------------------------------------------------------------------
@given(
    duration=st.floats(min_value=0.001, max_value=1e4),
    rate=st.floats(min_value=0.001, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31),
    start=st.floats(min_value=0, max_value=1e6),
)
@settings(max_examples=200, deadline=None)
def test_fault_window_inside_duration_with_exact_length(duration, rate, seed, start):
    timing = FaultTiming(duration=duration, rate=rate, randomseed=seed)
    w = timing.window(start)
    assert start - 1e-9 <= w.active_from
    assert w.active_until <= start + duration + 1e-6
    assert abs(w.length - rate * duration) < 1e-6 * max(1.0, duration)


@given(
    duration=st.floats(min_value=0.1, max_value=100),
    rate=st.floats(min_value=0.1, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=100, deadline=None)
def test_fault_window_pure_function_of_seed(duration, rate, seed):
    t = FaultTiming(duration=duration, rate=rate, randomseed=seed)
    assert t.window(3.0) == t.window(3.0)


# ----------------------------------------------------------------------
# RNG derivation
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=2**63),
    path_a=st.lists(st.one_of(st.integers(-100, 100), st.text(max_size=8)), max_size=4),
    path_b=st.lists(st.one_of(st.integers(-100, 100), st.text(max_size=8)), max_size=4),
)
@settings(max_examples=150, deadline=None)
def test_distinct_key_paths_give_distinct_seeds(seed, path_a, path_b):
    assume(path_a != path_b)
    assert derive_seed(seed, *path_a) != derive_seed(seed, *path_b)


@given(seed=st.integers(min_value=0, max_value=2**63), n=st.integers(1, 20))
@settings(max_examples=50, deadline=None)
def test_fresh_streams_reproducible(seed, n):
    reg = RngRegistry(seed)
    a = [reg.fresh("k", i).random() for i in range(n)]
    b = [reg.fresh("k", i).random() for i in range(n)]
    assert a == b


# ----------------------------------------------------------------------
# Service cache
# ----------------------------------------------------------------------
@st.composite
def cache_ops(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    ops = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.0, max_value=5.0))
        provider = f"p{draw(st.integers(0, 4))}"
        ttl = draw(st.floats(min_value=0.5, max_value=20.0))
        ops.append((t, provider, ttl))
    return ops


@given(ops=cache_ops())
@settings(max_examples=100, deadline=None)
def test_cache_never_holds_expired_entries_after_purge(ops):
    cache = ServiceCache()
    for now, provider, ttl in ops:
        cache.add(
            ServiceInstance(
                name=f"{provider}._t", service_type="_t",
                provider_node=provider, address="10.0.0.1", ttl=ttl,
            ),
            now=now,
        )
        cache.purge_expired(now)
        for entry in cache.all_entries():
            assert entry.expires_at > now
            assert 0.0 <= entry.fresh_fraction(now) <= 1.0


@given(ops=cache_ops())
@settings(max_examples=50, deadline=None)
def test_cache_len_equals_distinct_live_providers(ops):
    cache = ServiceCache()
    last_add = {}
    for now, provider, ttl in ops:
        cache.add(
            ServiceInstance(
                name=f"{provider}._t", service_type="_t",
                provider_node=provider, address="10.0.0.1", ttl=ttl,
            ),
            now=now,
        )
        last_add[provider] = (now, ttl)
    final = max(t for t, _p, _ttl in ops)
    cache.purge_expired(final)
    live = {p for p, (t, ttl) in last_add.items() if t + ttl > final}
    assert len(cache) == len(live)


# ----------------------------------------------------------------------
# Tag unwrapping
# ----------------------------------------------------------------------
@given(
    start=st.integers(min_value=0, max_value=TAG_MODULUS - 1),
    steps=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200),
)
@settings(max_examples=150, deadline=None)
def test_unwrap_recovers_monotonic_sequence(start, steps):
    true_values = [start]
    for step in steps:
        true_values.append(true_values[-1] + step)
    wrapped = [v % TAG_MODULUS for v in true_values]
    unwrapped = unwrap_tags(wrapped)
    diffs_true = [b - a for a, b in zip(true_values, true_values[1:])]
    diffs_un = [b - a for a, b in zip(unwrapped, unwrapped[1:])]
    assert diffs_true == diffs_un


# ----------------------------------------------------------------------
# Event dependency matching
# ----------------------------------------------------------------------
@given(
    nodes=st.sets(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4),
    params=st.sets(st.sampled_from(["p", "q", "r"]), min_size=1, max_size=3),
    order_seed=st.randoms(use_true_random=False),
)
@settings(max_examples=100, deadline=None)
def test_all_nodes_all_params_completes_exactly_at_coverage(nodes, params, order_seed):
    """The watcher fires exactly when the (node x param) grid is covered,
    regardless of arrival order."""

    class FakeSignal:
        triggered = False

        def trigger(self, value=None):
            self.triggered = True

    pattern = EventPattern(
        name="e",
        nodes=frozenset(nodes),
        require_all_nodes=True,
        params=frozenset(params),
        require_all_params=True,
        run_id=0,
    )
    watcher = Watcher(pattern, FakeSignal())
    grid = [(n, p) for n in sorted(nodes) for p in sorted(params)]
    order_seed.shuffle(grid)
    for i, (node, param) in enumerate(grid):
        event = ExEvent(
            name="e", node=node, local_time=0.0, params=(param,), run_id=0
        ).with_seq(i)
        completed = watcher.offer(event)
        if i < len(grid) - 1:
            assert not completed
        else:
            assert completed
