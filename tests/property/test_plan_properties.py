"""Property tests: treatment plan invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.factors import Factor, FactorList, Level, ReplicationFactor, Usage
from repro.core.plan import generate_plan

_usages = st.sampled_from([Usage.CONSTANT, Usage.RANDOM, Usage.BLOCKING])


@st.composite
def factor_lists(draw):
    n_factors = draw(st.integers(min_value=1, max_value=4))
    factors = []
    for i in range(n_factors):
        n_levels = draw(st.integers(min_value=1, max_value=4))
        values = draw(
            st.lists(
                st.integers(min_value=-100, max_value=100),
                min_size=n_levels, max_size=n_levels, unique=True,
            )
        )
        factors.append(
            Factor(
                id=f"f{i}", type="int", usage=draw(_usages),
                levels=[Level(v) for v in values],
            )
        )
    reps = draw(st.integers(min_value=1, max_value=4))
    return FactorList(factors, ReplicationFactor(count=reps))


@given(fl=factor_lists(), seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=60, deadline=None)
def test_plan_size_is_product_of_levels_times_replications(fl, seed):
    plan = generate_plan(fl, seed)
    assert len(plan) == fl.total_runs()


@given(fl=factor_lists(), seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=60, deadline=None)
def test_plan_covers_every_treatment_exactly_replication_times(fl, seed):
    """Randomization must permute, never drop or duplicate, treatments."""
    from collections import Counter

    plan = generate_plan(fl, seed)
    combos = Counter(
        tuple(run.treatment[f.id] for f in fl) for run in plan
    )
    assert len(combos) == fl.treatment_count()
    assert set(combos.values()) == {fl.replication.count}


@given(fl=factor_lists(), seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=40, deadline=None)
def test_plan_deterministic_in_seed(fl, seed):
    a = generate_plan(fl, seed)
    b = generate_plan(fl, seed)
    assert [r.treatment for r in a] == [r.treatment for r in b]
    assert [r.seed for r in a] == [r.seed for r in b]


@given(fl=factor_lists(), seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=40, deadline=None)
def test_plan_run_ids_and_replications_well_formed(fl, seed):
    plan = generate_plan(fl, seed)
    assert [r.run_id for r in plan] == list(range(len(plan)))
    for run in plan:
        assert 0 <= run.replication < fl.replication.count
        assert run.treatment[fl.replication.id] == run.replication


@given(fl=factor_lists(), seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=40, deadline=None)
def test_replications_of_a_treatment_are_contiguous(fl, seed):
    plan = generate_plan(fl, seed)
    seen_done = set()
    current = None
    for run in plan:
        if run.treatment_index != current:
            assert run.treatment_index not in seen_done
            if current is not None:
                seen_done.add(current)
            current = run.treatment_index
            assert run.replication == 0
    # Per-treatment replication counters increase by one.
    by_treatment = {}
    for run in plan:
        expected = by_treatment.get(run.treatment_index, 0)
        assert run.replication == expected
        by_treatment[run.treatment_index] = expected + 1


@given(fl=factor_lists(), seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=40, deadline=None)
def test_run_seeds_unique(fl, seed):
    plan = generate_plan(fl, seed)
    seeds = [r.seed for r in plan]
    assert len(set(seeds)) == len(seeds)
