"""Property tests: 16-bit tag wrap-around through the packet analysis.

The tagger's identifier space wraps at 65536 (Sec. VI-A); these tests
drive synthetic tag sequences that start near the modulus and wrap
multiple times per run through :mod:`repro.analysis.packetstats`,
asserting that loss and delay come out exactly right anyway — distinct
packets must never alias onto one tag key.
"""

import random

import pytest

from repro.analysis.packetstats import tag_loss_between, tagged_observations
from repro.net.packet import Packet
from repro.net.tagger import (
    TAG_MODULUS,
    TAG_NODE_OPTION,
    TAG_OPTION,
    PacketTagger,
    unwrap_tags,
)


def _packet():
    return Packet("10.0.0.1", "10.0.0.2", 1, 2, payload=None)


# ----------------------------------------------------------------------
# The tagger itself
# ----------------------------------------------------------------------
def test_tagger_counter_wraps_at_modulus():
    tagger = PacketTagger("a", start=TAG_MODULUS - 2)
    tags = []
    for _ in range(5):
        p = _packet()
        assert tagger.tag(p)
        tags.append(p.options[TAG_OPTION])
    assert tags == [TAG_MODULUS - 2, TAG_MODULUS - 1, 0, 1, 2]
    assert tagger.tagged_count == 5
    assert unwrap_tags(tags) == [
        TAG_MODULUS - 2,
        TAG_MODULUS - 1,
        TAG_MODULUS,
        TAG_MODULUS + 1,
        TAG_MODULUS + 2,
    ]


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_unwrap_tags_recovers_any_slow_sequence(seed):
    """Unwrapping inverts ``% TAG_MODULUS`` for every increasing sequence
    whose successive gaps stay below half the tag space (RFC 1982)."""
    rng = random.Random(seed)
    value = rng.randrange(TAG_MODULUS)
    truth = []
    for _ in range(400):
        truth.append(value)
        value += rng.randrange(1, TAG_MODULUS // 2)
    unwrapped = unwrap_tags([v % TAG_MODULUS for v in truth])
    assert [u - unwrapped[0] for u in unwrapped] == [t - truth[0] for t in truth]


def test_unwrap_tags_tolerates_reordering():
    # 65535 arriving after 1 is an older tag, not another full epoch.
    assert unwrap_tags([TAG_MODULUS - 1, 1, 0, 2]) == [
        TAG_MODULUS - 1,
        TAG_MODULUS + 1,
        TAG_MODULUS,
        TAG_MODULUS + 2,
    ]


def test_unwrap_tags_rejects_out_of_range():
    with pytest.raises(ValueError):
        unwrap_tags([TAG_MODULUS])
    with pytest.raises(ValueError):
        unwrap_tags([-1])


# ----------------------------------------------------------------------
# Wrapped sequences through the analysis
# ----------------------------------------------------------------------
def _tagged_stream(seed, start, count, max_gap):
    """Synthetic unwrapped tag timeline: (unwrapped_tag, send_time)."""
    rng = random.Random(seed)
    sequence = []
    tag = start
    t = 1.0
    for _ in range(count):
        sequence.append((tag, round(t, 6)))
        tag += rng.randrange(1, max_gap)
        t += 0.01
    return sequence


def _capture(sequence, origin, observer, delay, drop):
    """TX records on *origin* plus RX records on *observer* (minus drops)."""
    packets = []
    for tag, t in sequence:
        opts = {TAG_OPTION: tag % TAG_MODULUS, TAG_NODE_OPTION: origin}
        packets.append({"node": origin, "direction": "tx", "common_time": t,
                        "options": dict(opts)})
        if tag not in drop:
            packets.append({"node": observer, "direction": "rx",
                            "common_time": t + delay, "options": dict(opts)})
    return packets


@pytest.mark.parametrize("start", [0, TAG_MODULUS - 3, TAG_MODULUS - 40000])
@pytest.mark.parametrize("seed", [11, 12])
def test_multiple_wraps_never_alias_tags(start, seed):
    # Gap ceiling: real taggers increment by one, so even with isolated
    # losses the observer's successive deltas stay far below half the tag
    # space — the bound serial unwrapping needs (two merged gaps must not
    # exceed TAG_MODULUS / 2).
    sequence = _tagged_stream(seed, start, count=300, max_gap=TAG_MODULUS // 4 - 1)
    span = sequence[-1][0] - sequence[0][0]
    assert span > 2 * TAG_MODULUS  # the run wraps the 16-bit space 2+ times
    drop = {tag for idx, (tag, _) in enumerate(sequence) if idx % 17 == 0}
    packets = _capture(sequence, "a", "b", delay=0.002, drop=drop)
    rng = random.Random(seed)
    rng.shuffle(packets)  # capture files are not sorted; analysis must be

    out = tag_loss_between(packets, "a", "b")
    assert out["sent"] == len(sequence)
    assert out["received"] == len(sequence) - len(drop)
    assert out["loss_rate"] == pytest.approx(len(drop) / len(sequence))
    # Every matched pair is a true pair: one-way delay is exact.
    assert out["delay"]["min"] == pytest.approx(0.002)
    assert out["delay"]["max"] == pytest.approx(0.002)


def test_same_residue_in_different_epochs_stays_distinct():
    """The regression this file pins: tag k and tag k+65536 are different
    packets.  Keying observations by the raw 16-bit value folded them
    together, under-counting ``sent`` and pairing a late RX with an early
    TX."""
    sequence = []
    t = 1.0
    for tag in list(range(TAG_MODULUS - 6, TAG_MODULUS + 10)):  # first wrap
        sequence.append((tag, t))
        t += 0.01
    bridge = TAG_MODULUS + 10
    while bridge < 2 * TAG_MODULUS - 6:  # keep gaps under half the space
        sequence.append((bridge, t))
        t += 0.01
        bridge += 30000
    for tag in list(range(2 * TAG_MODULUS - 6, 2 * TAG_MODULUS + 10)):
        sequence.append((tag, t))  # second wrap: residues repeat
        t += 0.01

    residues = [tag % TAG_MODULUS for tag, _ in sequence]
    assert len(set(residues)) < len(residues)  # collisions by construction

    packets = _capture(sequence, "a", "b", delay=0.003, drop=set())
    obs = tagged_observations(packets, "a")
    assert len(obs["a"]) == len(sequence)
    assert len(obs["b"]) == len(sequence)
    out = tag_loss_between(packets, "a", "b")
    assert out["sent"] == len(sequence)
    assert out["received"] == len(sequence)
    assert out["loss_rate"] == 0.0
    assert out["delay"]["max"] == pytest.approx(0.003)


def test_late_observer_aligns_to_the_origins_epoch():
    """An observer that only tunes in after a wrap must still match the
    origin's numbering (origin-anchored alignment)."""
    sequence = _tagged_stream(21, TAG_MODULUS - 10, count=80, max_gap=3000)
    late_from = sequence[40][1]
    packets = _capture(sequence, "a", "b", delay=0.004, drop=set())
    packets = [
        rec for rec in packets
        if rec["node"] == "a" or rec["common_time"] >= late_from
    ]
    out = tag_loss_between(packets, "a", "b")
    assert out["sent"] == len(sequence)
    assert out["received"] == 40
    assert out["delay"]["min"] == pytest.approx(0.004)
    assert out["delay"]["max"] == pytest.approx(0.004)
