"""Property tests: the lease ledger under arbitrary failover chaos.

Hypothesis drives a model of the fabric's settle path — grants, worker
deaths (TTL expiry), leadership epoch bumps with a stale predecessor
still appending, duplicate acks and stale-epoch acks — against the real
:class:`repro.fabric.leases.LeaseStore` and the dispatcher's first-ack-
wins dedupe rule.  Two invariants must hold for *every* interleaving:

1. **Exactly-once commit.**  Each run's durable-commit callback fires at
   most once during the chaos, and exactly once after the queue drains.
2. **Replay determinism.**  Restoring a fresh store from any prefix of
   the ledger file reconstructs exactly the lease state the legitimate
   (current-epoch) store held when that prefix was the whole file —
   stale leaders' appends are fenced out by epoch comparison.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.leases import LeaseStore

RUNS = 8
TTL = 30.0


class Model:
    """The coordinator-side settle model: store + first-ack-wins dedupe."""

    def __init__(self, tmp_path):
        self.root = tmp_path
        self.now = [1000.0]
        self.epoch = 1
        self.store = LeaseStore(tmp_path, ttl=TTL, clock=self.clock, epoch=1)
        self.store.fence()  # what FabricCoordinator.start does on claim
        self.stale_store = None  # the deposed predecessor, if any
        self.done = set()
        self.commits = Counter()
        self.queue = list(range(RUNS))
        self.snapshots = []
        self.snapshot()

    def clock(self):
        return self.now[0]

    # -- canonical state + snapshotting --------------------------------
    def state(self, store):
        return {
            lease.lease_id: (
                lease.worker_id,
                lease.run_ids,
                tuple(sorted(lease.acked)),
                lease.closed,
            )
            for lease in store._leases.values()
        }

    def lines(self):
        if not self.store.path.exists():
            return 0
        with open(self.store.path, "r", encoding="utf-8") as fh:
            return sum(1 for _ in fh)

    def snapshot(self):
        self.snapshots.append((self.lines(), self.epoch, self.state(self.store)))

    # -- operations ----------------------------------------------------
    def grant(self, worker):
        batch = self.queue[:2]
        if not batch:
            return
        del self.queue[:2]
        self.store.grant(worker, batch)
        self.snapshot()

    def ack(self, run_id):
        """First-ack-wins settle, mirroring LeaseDispatcher.ack_completed."""
        for lease in self.store.active():
            if run_id in lease.pending:
                if run_id not in self.done:
                    self.commits[run_id] += 1
                    self.done.add(run_id)
                self.store.ack(lease.lease_id, run_id)
                self.snapshot()
                return

    def duplicate_ack(self, run_id):
        """A retried/replayed ack of an already settled run."""
        if run_id not in self.done:
            return
        for lease in self.store._leases.values():
            if run_id in lease.run_ids:
                if run_id in self.done:
                    pass  # dedupe: commit callback NOT invoked
                self.store.ack(lease.lease_id, run_id)
                self.snapshot()
                return

    def worker_dies(self):
        """Advance past the TTL; expire leases, requeue unsettled runs."""
        self.now[0] += TTL + 1.0
        for lease in self.store.expired():
            closed = self.store.close(lease.lease_id, "expired")
            if closed is not None and closed.closed == "expired":
                for run_id in lease.pending:
                    if run_id not in self.done:
                        self.queue.append(run_id)
        self.snapshot()

    def epoch_bump(self):
        """A rival coordinator takes over; we become the stale writer."""
        self.stale_store = self.store
        self.epoch += 1
        successor = LeaseStore(self.root, ttl=TTL, clock=self.clock,
                               epoch=self.epoch)
        successor.restore()
        successor.epoch = self.epoch
        successor.fence()
        self.store = successor
        self.snapshot()

    def stale_append(self, run_id):
        """The deposed leader keeps acking/granting at its old epoch."""
        if self.stale_store is None:
            return
        for lease in self.stale_store.active():
            if run_id in lease.pending:
                self.stale_store.ack(lease.lease_id, run_id)
                return
        # Nothing to ack: append a stale grant instead (also fenced).
        self.stale_store.grant("ghost", [run_id])

    def drain(self):
        """Settle everything still outstanding under the current leader."""
        guard = 0
        while len(self.done) < RUNS and guard < 100:
            guard += 1
            outstanding = [
                r for lease in self.store.active() for r in lease.pending
            ]
            for run_id in outstanding:
                self.ack(run_id)
            if self.queue:
                self.grant("drainer")
        assert guard < 100, "drain did not converge"


ops = st.lists(
    st.one_of(
        st.tuples(st.just("grant"), st.sampled_from(["w1", "w2", "w3"])),
        st.tuples(st.just("ack"), st.integers(0, RUNS - 1)),
        st.tuples(st.just("dup"), st.integers(0, RUNS - 1)),
        st.tuples(st.just("die"), st.none()),
        st.tuples(st.just("bump"), st.none()),
        st.tuples(st.just("stale"), st.integers(0, RUNS - 1)),
    ),
    min_size=1,
    max_size=30,
)


@given(ops=ops)
@settings(max_examples=60, deadline=None)
def test_exactly_once_commits_and_prefix_replay(ops, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("ledger")
    model = Model(tmp_path)
    dispatch = {
        "grant": model.grant,
        "ack": model.ack,
        "dup": model.duplicate_ack,
        "die": lambda _=None: model.worker_dies(),
        "bump": lambda _=None: model.epoch_bump(),
        "stale": model.stale_append,
    }
    for name, arg in ops:
        dispatch[name](arg) if arg is not None else dispatch[name]()
        # Invariant 1, continuously: no run ever commits twice.
        assert all(count == 1 for count in model.commits.values())

    model.drain()
    # Invariant 1, terminally: every run committed exactly once.
    assert model.commits == Counter({run: 1 for run in range(RUNS)})

    # Invariant 2: replaying any prefix of the ledger reconstructs the
    # exact state the legitimate store held at that point.
    with open(model.store.path, "r", encoding="utf-8") as fh:
        all_lines = fh.readlines()
    replay_root = tmp_path_factory.mktemp("replay")
    for i, (line_count, epoch, expected) in enumerate(model.snapshots):
        prefix_dir = replay_root / f"p{i}"
        prefix_dir.mkdir()
        (prefix_dir / "leases.jsonl").write_text(
            "".join(all_lines[:line_count]), encoding="utf-8",
        )
        replayed = LeaseStore(prefix_dir, ttl=TTL, clock=model.clock)
        replayed.restore()
        assert replayed.epoch == epoch
        assert model.state(replayed) == expected, (
            f"prefix of {line_count} lines diverged at epoch {epoch}"
        )
