"""Property tests: XML serialization round trips for arbitrary descriptions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.description import (
    ActorDescription,
    EnvironmentProcess,
    ExperimentDescription,
    ManipulationProcess,
    PlatformNode,
    PlatformSpec,
)
from repro.core.factors import Factor, FactorList, Level, ReplicationFactor, Usage
from repro.core.processes import (
    DomainAction,
    EventFlag,
    FactorRef,
    NodeSelector,
    WaitForEvent,
    WaitForTime,
    WaitMarker,
)
from repro.core.xmlio import description_from_xml, description_to_xml

_ident = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)
_value = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-100, max_value=100, allow_nan=False).map(
        lambda f: round(f, 4)
    ),
    st.from_regex(r"[a-zA-Z][a-zA-Z0-9_.-]{0,12}", fullmatch=True),
)


@st.composite
def actions(draw):
    kind = draw(st.integers(min_value=0, max_value=4))
    if kind == 0:
        return WaitForTime(seconds=draw(st.floats(min_value=0, max_value=100).map(lambda f: round(f, 3))))
    if kind == 1:
        return WaitMarker()
    if kind == 2:
        return EventFlag(value=draw(_ident), params=tuple(draw(st.lists(_value, max_size=2))))
    if kind == 3:
        timeout = draw(st.one_of(st.none(), st.floats(min_value=0, max_value=60).map(lambda f: round(f, 2))))
        sel = draw(st.one_of(
            st.none(),
            st.builds(NodeSelector, actor=st.just("actor0"),
                      instance=st.sampled_from(["all", "0"])),
        ))
        return WaitForEvent(event=draw(_ident), from_nodes=sel, timeout=timeout)
    params = draw(
        st.dictionaries(_ident, st.one_of(_value, st.builds(FactorRef, factor_id=st.just("f0"))), max_size=3)
    )
    return DomainAction(name=draw(_ident), params=params)


@st.composite
def descriptions(draw):
    desc = ExperimentDescription(
        name=draw(_ident), seed=draw(st.integers(min_value=0, max_value=10**6))
    )
    desc.parameters = draw(st.dictionaries(_ident, _ident, max_size=3))
    desc.abstract_nodes = ["A", "B"]
    desc.factors = FactorList(
        [
            Factor(
                id="fmap", type="actor_node_map", usage=Usage.BLOCKING,
                levels=[Level({"actor0": {"0": "A"}, "actor1": {"0": "B"}})],
            ),
            Factor(
                id="f0", type="int", usage=draw(st.sampled_from(list(Usage)[:3])),
                levels=[Level(v) for v in draw(
                    st.lists(st.integers(-50, 50), min_size=1, max_size=3, unique=True)
                )],
            ),
        ],
        ReplicationFactor(count=draw(st.integers(min_value=1, max_value=5))),
    )
    desc.actors = [
        ActorDescription(
            "actor0", name="SM",
            actions=draw(st.lists(actions(), max_size=4)),
        ),
        ActorDescription("actor1", name="SU", actions=draw(st.lists(actions(), max_size=3))),
    ]
    if draw(st.booleans()):
        desc.manipulations.append(
            ManipulationProcess(actor_id="actor0", actions=draw(st.lists(actions(), max_size=2)))
        )
    if draw(st.booleans()):
        desc.environment_processes.append(
            EnvironmentProcess(actions=draw(st.lists(actions(), max_size=2)))
        )
    desc.platform = PlatformSpec(
        [
            PlatformNode("h0", "10.0.0.1", abstract_id="A"),
            PlatformNode("h1", "10.0.0.2", abstract_id="B"),
            PlatformNode("h2", "10.0.0.3"),
        ]
    )
    desc.special_params = draw(
        st.dictionaries(_ident, st.integers(min_value=0, max_value=100), max_size=2)
    )
    return desc


@given(desc=descriptions())
@settings(max_examples=60, deadline=None)
def test_serialize_parse_serialize_is_identity(desc):
    xml1 = description_to_xml(desc)
    desc2 = description_from_xml(xml1)
    xml2 = description_to_xml(desc2)
    assert xml1 == xml2


@given(desc=descriptions())
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_run_count_and_seed(desc):
    again = description_from_xml(description_to_xml(desc))
    assert again.seed == desc.seed
    assert again.name == desc.name
    assert again.factors.total_runs() == desc.factors.total_runs()
    assert again.parameters == desc.parameters
    assert [a.actor_id for a in again.actors] == [a.actor_id for a in desc.actors]
    assert len(again.platform) == len(desc.platform)


@given(desc=descriptions())
@settings(max_examples=30, deadline=None)
def test_roundtrip_preserves_action_structure(desc):
    again = description_from_xml(description_to_xml(desc))
    for orig_actor, new_actor in zip(desc.actors, again.actors):
        assert len(orig_actor.actions) == len(new_actor.actions)
        for a, b in zip(orig_actor.actions, new_actor.actions):
            assert type(a) is type(b)
            if isinstance(a, DomainAction):
                assert a.name == b.name
                assert set(a.params) == set(b.params)
