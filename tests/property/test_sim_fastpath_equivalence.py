"""The simulator fast path is provably invisible in the science.

The event-wheel kernel, the O(1) medium hot loop and the copy-avoiding
data plane are performance work; the experiment data must not know they
exist.  These tests run the *same full 100-node experiment* twice — once
on the production fast path and once on the frozen pre-optimization
stack (``ReferenceSimulator`` + ``ReferenceMedium`` +
``ReferenceNetNode``, swapped in through the platform's module-level
names) — and require:

* byte-identical level-3 Table-I digests,
* identical ``MediumStats`` (transmissions, deliveries, losses, MAC
  retries),
* identical kernel callback counts and RNG end states.
"""

import pytest

from repro.campaign import database_digest
from repro.core.master import ExperiMaster
from repro.net.medium import WirelessMedium
from repro.net.node import NetNode
from repro.net.reference import ReferenceMedium, ReferenceNetNode
from repro.platforms.simulated import PlatformConfig, SimulatedPlatform
from repro.sd.processlib import build_two_party_description
from repro.sim.kernel import Simulator
from repro.sim.reference import ReferenceSimulator
from repro.storage.level2 import Level2Store
from repro.storage.level3 import store_level3

NODES = 100


def _description():
    return build_two_party_description(
        name="fastpath-equiv",
        seed=1009,
        sm_count=2,
        su_count=2,
        env_count=NODES - 4,
        replications=2,
        deadline=30.0,
        special_params={"run_spacing": 0.0},
    )


def _execute(tmp_path, label):
    desc = _description()
    config = PlatformConfig(topology="mesh", mesh_radius=0.22, base_loss=0.03)
    platform = SimulatedPlatform(desc, config)
    master = ExperiMaster(platform, desc, Level2Store(tmp_path / label / "l2"))
    result = master.execute()
    db_path = store_level3(result.store, tmp_path / label / "exp.db")
    stats = platform.medium.stats
    return {
        "digest": database_digest(db_path),
        "stats": (
            stats.transmissions,
            stats.deliveries,
            stats.losses,
            stats.mac_retries,
        ),
        "callbacks": platform.sim.executed_callbacks,
        "medium_rng": platform.medium.rng.getstate(),
        "runs": len(result.executed_runs),
    }


@pytest.fixture
def reference_data_plane(monkeypatch):
    """Swap the whole pre-optimization stack into the simulated platform."""
    monkeypatch.setattr("repro.platforms.simulated.Simulator", ReferenceSimulator)
    monkeypatch.setattr("repro.platforms.simulated.WirelessMedium", ReferenceMedium)
    monkeypatch.setattr("repro.platforms.simulated.NetNode", ReferenceNetNode)


def test_level3_digest_identical_at_paper_scale(tmp_path, monkeypatch):
    fast = _execute(tmp_path, "fast")

    monkeypatch.setattr("repro.platforms.simulated.Simulator", ReferenceSimulator)
    monkeypatch.setattr("repro.platforms.simulated.WirelessMedium", ReferenceMedium)
    monkeypatch.setattr("repro.platforms.simulated.NetNode", ReferenceNetNode)
    ref = _execute(tmp_path, "reference")

    assert fast["runs"] == ref["runs"] > 0
    # The headline claim: the fast path changes nothing the paper's
    # tables are built from.
    assert fast["digest"] == ref["digest"]
    assert fast["stats"] == ref["stats"]
    assert fast["callbacks"] == ref["callbacks"]
    # Identical RNG end state proves neither flavour drew a single
    # extra random number anywhere in the run.
    assert fast["medium_rng"] == ref["medium_rng"]


def test_reference_stack_actually_swapped(tmp_path, reference_data_plane):
    # Guard against the monkeypatch silently missing its target: the
    # platform built under the fixture must really carry reference parts.
    desc = _description()
    config = PlatformConfig(topology="mesh", mesh_radius=0.22, base_loss=0.03)
    platform = SimulatedPlatform(desc, config)
    assert isinstance(platform.sim, ReferenceSimulator)
    assert isinstance(platform.medium, ReferenceMedium)
    assert not isinstance(platform.medium, WirelessMedium)
    node = next(iter(platform.node_managers.values())).node
    assert isinstance(node, ReferenceNetNode)
    assert type(node) is not NetNode
