"""Property: the warehouse is invisible in the data.

A level-3 package routed through the L4 warehouse — partitioned shard
copy, ATTACH-based batch ingest, materialized read models — must answer
every query byte-identically to the ``ExperimentDatabase`` reader over
the original package.  Hypothesis drives adversarial package shapes
(run counts, factor spaces, event mixes, clock origins) through the full
ingest path and compares each query surface row for row.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.repo import Warehouse
from repro.storage.level3 import ExperimentDatabase

from tests.unit.repo.conftest import build_level3

packages = st.fixed_dictionaries(
    {
        "n_runs": st.integers(min_value=1, max_value=6),
        "t0": st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                        allow_infinity=False),
        "levels": st.lists(st.integers(min_value=0, max_value=9),
                           min_size=1, max_size=4, unique=True),
        "extra": st.lists(
            st.sampled_from(["custom_probe", "fault_cpu_run",
                             "fault_pl_setup", "watchdog_tick"]),
            max_size=3, unique=True),
    }
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(shape=packages)
def test_warehouse_view_byte_equal_to_level3(tmp_path_factory, shape):
    root = tmp_path_factory.mktemp("prop")
    db_path = build_level3(
        root, "prop-exp", n_runs=shape["n_runs"], t0=shape["t0"],
        factor_levels=tuple(shape["levels"]),
        extra_events=tuple(shape["extra"]),
    )
    with Warehouse(root / "wh") as warehouse:
        exp_id = warehouse.ingest(db_path).exp_id
        view = warehouse.view(exp_id)
        with ExperimentDatabase(db_path) as level3:
            assert view.events() == level3.events()
            sd_types = {"sd_start_search", "sd_start_publish",
                        "sd_service_add"}
            assert view.sd_events() == [
                e for e in level3.events() if e["name"] in sd_types
            ]
            assert view.packets() == level3.packets()
            assert view.run_infos() == level3.run_infos()
            assert view.run_ids() == level3.run_ids()
            assert view.node_ids() == level3.node_ids()
            assert view.plan() == level3.plan()
            # The shard holds the Table-I subset; L3 additionally carries
            # operational tables (RunTraces, FaultLeases, ...).
            direct_counts = level3.row_counts()
            for table, count in view.row_counts().items():
                assert count == direct_counts[table]

            stats = warehouse.stats(exp_id)
            counts = level3.row_counts()
            assert stats["Runs"] == len(level3.run_ids())
            assert stats["Events"] == counts["Events"]
            assert stats["Packets"] == counts["Packets"]

            mv_counts = {r["event_type"]: r["n"]
                         for r in warehouse.event_counts(exp_id=exp_id)}
            direct = {}
            for event in level3.events():
                direct[event["name"]] = direct.get(event["name"], 0) + 1
            assert mv_counts == direct
