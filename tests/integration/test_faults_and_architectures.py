"""Integration: fault injection effects and architecture comparison.

These tests assert the *qualitative shapes* the case study predicts:
message loss delays discovery along the mDNS retry schedule; an interface
fault during the deadline window makes discovery fail; the three-party
and hybrid architectures complete the same task.
"""


from repro import run_experiment, store_level3
from repro.analysis.responsiveness import run_outcomes
from repro.core.description import ManipulationProcess
from repro.core.processes import DomainAction
from repro.platforms.simulated import PlatformConfig
from repro.sd.processlib import (
    build_three_party_description,
    build_two_party_description,
)
from repro.storage.level3 import ExperimentDatabase


def _median_t_r(tmp_path, tag, desc, config=None):
    result = run_experiment(desc, store_root=tmp_path / tag, config=config)
    db_path = store_level3(result.store, tmp_path / f"{tag}.db")
    with ExperimentDatabase(db_path) as db:
        outcomes = run_outcomes(db)
    times = sorted(o.t_r for o in outcomes if o.t_r is not None)
    return outcomes, (times[len(times) // 2] if times else None)


def _loss_manipulation(probability, target_actor="actor1"):
    return ManipulationProcess(
        actor_id=target_actor,
        actions=[
            DomainAction(
                name="msg_loss_start",
                params={"probability": probability, "direction": "both"},
            )
        ],
    )


def test_message_loss_slows_discovery(tmp_path):
    # Two nodes only: on a denser mesh, flooding delivers redundant copies
    # of every multicast and each copy rolls the loss dice independently,
    # which (realistically) masks even heavy per-packet loss.  Announcements
    # are disabled so discovery must go query -> response, making the retry
    # schedule the observable.
    config = PlatformConfig(sd_config={"announce_count": 0})
    clean = build_two_party_description(replications=8, seed=21, env_count=0)
    outcomes, t_clean = _median_t_r(tmp_path, "clean", clean, config)
    assert all(o.complete for o in outcomes)
    assert t_clean < 0.5

    lossy = build_two_party_description(replications=8, seed=21, env_count=0)
    lossy.manipulations.append(_loss_manipulation(0.5))
    outcomes_lossy, t_lossy = _median_t_r(tmp_path, "lossy", lossy, config)
    # 50% loss each way means a query round trip succeeds 1 time in 4;
    # the back-off schedule (1 s, 2 s, 4 s, ...) dominates the median.
    assert t_lossy is not None
    assert t_lossy > t_clean
    assert t_lossy > 0.5  # at least one ~1 s retry interval was needed


def test_flooding_redundancy_masks_loss(tmp_path):
    """The flip side, asserted deliberately: with environment nodes
    re-flooding multicast, the same loss probability barely hurts."""
    lossy = build_two_party_description(replications=4, seed=21, env_count=3)
    lossy.manipulations.append(_loss_manipulation(0.7))
    outcomes, t_med = _median_t_r(tmp_path, "flood", lossy)
    assert all(o.complete for o in outcomes)
    assert t_med < 1.0


def test_interface_fault_window_blocks_discovery(tmp_path):
    desc = build_two_party_description(
        replications=3, seed=22, env_count=2, deadline=3.0
    )
    desc.manipulations.append(
        ManipulationProcess(
            actor_id="actor1",
            actions=[
                DomainAction(
                    name="iface_fault_start",
                    params={"direction": "both", "duration": 60.0},
                ),
            ],
        )
    )
    result = run_experiment(desc, store_root=tmp_path / "dead")
    db_path = store_level3(result.store, tmp_path / "dead.db")
    with ExperimentDatabase(db_path) as db:
        outcomes = run_outcomes(db)
        assert all(not o.complete for o in outcomes)
        # The SU's own deadline fired and it still cleaned up properly.
        assert len(db.events(event_type="wait_timeout")) == 3
        assert len(db.events(event_type="sd_exit_done")) > 0


def test_fault_events_recorded(tmp_path):
    desc = build_two_party_description(replications=1, seed=23, env_count=2)
    desc.manipulations.append(_loss_manipulation(0.2))
    result = run_experiment(desc, store_root=tmp_path / "ev")
    db_path = store_level3(result.store, tmp_path / "ev.db")
    with ExperimentDatabase(db_path) as db:
        assert db.events(event_type="fault_msg_loss_started")


def test_three_party_slp_completes(tmp_path):
    desc = build_three_party_description(replications=2, seed=24, env_count=2)
    outcomes, t_med = _median_t_r(
        tmp_path, "slp", desc, PlatformConfig(protocol="slp")
    )
    assert all(o.complete for o in outcomes)
    assert t_med is not None and t_med < 30.0


def test_three_party_registration_visible(tmp_path):
    desc = build_three_party_description(replications=1, seed=25, env_count=2)
    result = run_experiment(
        desc, store_root=tmp_path / "reg", config=PlatformConfig(protocol="slp")
    )
    db_path = store_level3(result.store, tmp_path / "reg.db")
    with ExperimentDatabase(db_path) as db:
        assert db.events(event_type="scm_started")
        assert db.events(event_type="scm_found")
        assert db.events(event_type="scm_registration_add")


def test_hybrid_protocol_two_party_scenario(tmp_path):
    desc = build_two_party_description(replications=2, seed=26, env_count=2)
    outcomes, _ = _median_t_r(
        tmp_path, "hyb", desc, PlatformConfig(protocol="hybrid")
    )
    assert all(o.complete for o in outcomes)


def test_multiple_sms_and_sus(tmp_path):
    desc = build_two_party_description(
        sm_count=2, su_count=2, replications=2, seed=27, env_count=2
    )
    result = run_experiment(desc, store_root=tmp_path / "multi")
    db_path = store_level3(result.store, tmp_path / "multi.db")
    with ExperimentDatabase(db_path) as db:
        outcomes = run_outcomes(db)
        # Two SUs per run, each needing both SMs.
        assert len(outcomes) == 4
        assert all(o.complete for o in outcomes)
        assert all(len(o.required) == 2 for o in outcomes)
