"""Integration: special parameters steering the EE implementation (Sec. IV-E)."""

import pytest

from repro import run_experiment, store_level3
from repro.sd.processlib import build_two_party_description
from repro.storage.level3 import ExperimentDatabase


def test_collect_packets_false_drops_captures(tmp_path):
    desc = build_two_party_description(
        replications=1, seed=44, env_count=0,
        special_params={"collect_packets": False},
    )
    result = run_experiment(desc, store_root=tmp_path / "nopkts")
    with ExperimentDatabase(store_level3(result.store, tmp_path / "x.db")) as db:
        assert db.row_counts()["Packets"] == 0
        assert db.row_counts()["Events"] > 0  # events unaffected


def test_special_params_travel_via_xml(tmp_path):
    from repro.core.xmlio import description_from_xml, description_to_xml

    desc = build_two_party_description(
        replications=1, seed=44, env_count=0,
        special_params={"max_run_duration": 55, "rpc_latency": 0.002},
    )
    again = description_from_xml(description_to_xml(desc))
    assert again.special_params["max_run_duration"] == 55
    assert again.special_params["rpc_latency"] == 0.002


def test_rpc_latency_param_shapes_sync_error(tmp_path):
    """A slower control channel must widen the measured sync error bound."""
    def error_bound(latency):
        desc = build_two_party_description(
            replications=1, seed=44, env_count=0,
            special_params={"rpc_latency": latency, "rpc_jitter": 0.0},
        )
        result = run_experiment(desc, store_root=tmp_path / f"lat{latency}")
        sync = result.store.read_timesync(0)
        return max(m["error_bound"] for m in sync.values())

    fast = error_bound(0.0005)
    slow = error_bound(0.01)
    assert slow > fast
    assert slow >= 0.01  # bound >= one-way latency


def test_sync_probes_param_controls_probe_count(tmp_path):
    from repro import ExperiMaster, Level2Store
    from repro.platforms.simulated import SimulatedPlatform

    desc = build_two_party_description(
        replications=1, seed=44, env_count=0,
        special_params={"sync_probes": 9},
    )
    platform = SimulatedPlatform(desc)
    master = ExperiMaster(platform, desc, Level2Store(tmp_path / "probes"))
    master.execute()
    sync = master.store.read_timesync(0)
    assert all(m["probes"] == 9 for m in sync.values())


def test_missing_capability_blocks_execution(tmp_path):
    from repro import ExperiMaster, Level2Store
    from repro.core.errors import PlatformError
    from repro.platforms.base import PlatformCapabilities
    from repro.platforms.simulated import SimulatedPlatform

    desc = build_two_party_description(replications=1, seed=44, env_count=0)

    class CrippledPlatform(SimulatedPlatform):
        def capabilities(self):
            return PlatformCapabilities(
                management_channel=True,
                connection_control=False,  # cannot manipulate packets
                packet_capture=True,
                packet_tagging=True,
                time_sync=True,
            )

    platform = CrippledPlatform(desc)
    master = ExperiMaster(platform, desc, Level2Store(tmp_path / "cap"))
    with pytest.raises(PlatformError, match="connection_control"):
        master.execute()
