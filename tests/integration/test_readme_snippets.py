"""Integration: the README's Python snippets actually run.

Documentation that silently rots is worse than none; this test extracts
every fenced ``python`` block from README.md and executes it in a
temporary working directory.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parents[2] / "README.md"


def _python_blocks():
    text = README.read_text(encoding="utf-8")
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README must contain python examples"
    return blocks


@pytest.mark.parametrize("index", range(len(_python_blocks())))
def test_readme_python_block_runs(index, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    code = _python_blocks()[index]
    # Scale the quickstart down so the docs test stays fast.
    code = code.replace("replications=10", "replications=2")
    exec(compile(code, f"README.md[python #{index}]", "exec"), {})


def test_readme_cli_commands_exist():
    """Every `python -m repro <command>` the README shows is a real
    subcommand."""
    from repro.cli import build_parser

    text = README.read_text(encoding="utf-8")
    shown = set(re.findall(r"python -m repro ([a-z-]+)", text))
    assert shown
    parser = build_parser()
    known = set()
    for action in parser._actions:
        if hasattr(action, "choices") and action.choices:
            known |= set(action.choices)
    missing = shown - known
    assert not missing, f"README shows unknown commands: {missing}"
