"""Integration: the registry/broker discovery family end to end.

Three layers of assertions:

* each scenario variant (direct polling, broker dissemination,
  3-replica gossip) runs end-to-end **from its XML form** and produces
  Table-I-style outcomes;
* churn and population manipulations leave their events in the level-3
  database;
* the determinism invariant extends to the new family: the merged
  level-3 database of the full registry campaign (3 replicas + broker +
  churn + population factors) is byte-identical across ``--jobs 1``,
  ``--jobs 4`` and a 3-worker fleet.
"""

import threading

import pytest

from repro import run_experiment, store_level3
from repro.analysis.responsiveness import run_outcomes
from repro.campaign import database_digest, run_campaign
from repro.core.xmlio import description_from_xml, description_to_xml
from repro.fabric import FabricCoordinator, FabricWorker
from repro.platforms.simulated import PlatformConfig
from repro.sd.processlib import build_registry_description
from repro.storage.level3 import ExperimentDatabase


def _config():
    # Registry traffic is unicast; a clean full mesh keeps the scenario
    # assertions about *protocol* behaviour free of loss noise.
    return PlatformConfig(protocol="registry", topology="full", base_loss=0.0)


def _run_from_xml(tmp_path, tag, desc, config=None):
    """XML round-trip the description, execute, return (outcomes, db)."""
    desc = description_from_xml(description_to_xml(desc))
    result = run_experiment(desc, store_root=tmp_path / tag, config=config or _config())
    db_path = store_level3(result.store, tmp_path / f"{tag}.db")
    db = ExperimentDatabase(db_path)
    return run_outcomes(db), db


def test_direct_scenario_end_to_end(tmp_path):
    desc = build_registry_description(
        name="registry-direct", seed=41, replications=3, env_count=1
    )
    outcomes, db = _run_from_xml(tmp_path, "direct", desc)
    with db:
        assert len(outcomes) == 3
        assert all(o.complete for o in outcomes)
        assert all(o.t_r is not None and o.t_r < 10.0 for o in outcomes)
        # The provider reached its home registry (scm_found) and the
        # registry accounted the registration.
        assert db.events(event_type="scm_found")
        assert db.events(event_type="scm_registration_add")


def test_broker_scenario_end_to_end(tmp_path):
    desc = build_registry_description(
        name="registry-broker",
        seed=42,
        replications=3,
        env_count=1,
        broker_count=1,
    )
    outcomes, db = _run_from_xml(tmp_path, "broker", desc)
    with db:
        assert all(o.complete for o in outcomes)
        # Clients subscribed at the relay instead of polling: every run
        # carries the subscription handshake event.
        subscribed = db.events(event_type="sd_subscribed")
        assert {e["run_id"] for e in subscribed} == {o.run_id for o in outcomes}


def test_replicated_gossip_scenario_end_to_end(tmp_path):
    desc = build_registry_description(
        name="registry-gossip",
        seed=43,
        replications=2,
        env_count=1,
        registry_count=3,
        replica_levels=(3,),
        hold_time=6.0,  # > 2 gossip rounds (gossip_interval 2.0 s)
    )
    outcomes, db = _run_from_xml(tmp_path, "gossip", desc)
    with db:
        assert all(o.complete for o in outcomes)
        # With three active replicas only the provider's home replica has
        # the record at first; the first anti-entropy push to either peer
        # must therefore merge real changes.
        syncs = db.events(event_type="scm_gossip_sync")
        assert {e["run_id"] for e in syncs} == {o.run_id for o in outcomes}


def test_churn_and_population_events_recorded(tmp_path):
    desc = build_registry_description(
        name="registry-churn",
        seed=44,
        replications=2,
        env_count=2,
        sm_count=2,
        churn=True,
        churn_mode="leave",
        churn_interval_levels=(1.5,),
        population=True,
        population_levels=(200,),
        hold_time=6.0,
    )
    outcomes, db = _run_from_xml(tmp_path, "churn", desc)
    with db:
        assert all(o.complete for o in outcomes)
        run_ids = {o.run_id for o in outcomes}
        started = db.events(event_type="env_churn_started")
        assert {e["run_id"] for e in started} == run_ids
        # The hold window is 4x the churn cadence: every run sees churn.
        events = db.events(event_type="env_churn_event")
        assert {e["run_id"] for e in events} == run_ids
        assert {e["params"][1] for e in events} >= {"leave", "rejoin"}
        population = db.events(event_type="env_population_started")
        assert {e["run_id"] for e in population} == run_ids
        for e in population:
            users, total_qps = e["params"][0], e["params"][1]
            assert users == 200
            assert total_qps == pytest.approx(20.0)


# ----------------------------------------------------------------------
# Determinism: --jobs 1 == --jobs 4 == 3-worker fleet, byte for byte
# ----------------------------------------------------------------------
def _campaign_desc():
    """The full-family campaign: broker dissemination over 3 gossiping
    replicas, with churn and population factors in the treatment grid."""
    return build_registry_description(
        name="registry-campaign",
        seed=47,
        replications=2,
        env_count=2,
        sm_count=2,
        registry_count=3,
        broker_count=1,
        replica_levels=(1, 3),
        churn=True,
        churn_interval_levels=(2.0,),
        population=True,
        population_levels=(100,),
        hold_time=5.0,
    )


def _table_i_stats(db_path):
    from repro.sd.metrics import summarize_runs

    with ExperimentDatabase(db_path) as db:
        return summarize_runs(run_outcomes(db))


@pytest.fixture(scope="module")
def jobs1_reference(tmp_path_factory):
    """The serial (``--jobs 1``) campaign every other mode must match."""
    root = tmp_path_factory.mktemp("registry-jobs1")
    result = run_campaign(
        _campaign_desc(),
        root / "campaign",
        db_path=root / "ref.db",
        jobs=1,
        pool="thread",
        config=_config(),
    )
    assert result.failed_runs == {}
    stats = _table_i_stats(root / "ref.db")
    assert stats["runs"] == len(result.plan)
    return database_digest(root / "ref.db"), stats


def test_jobs4_campaign_byte_identical(jobs1_reference, tmp_path):
    ref_digest, ref_stats = jobs1_reference
    result = run_campaign(
        _campaign_desc(),
        tmp_path / "campaign",
        db_path=tmp_path / "jobs4.db",
        jobs=4,
        pool="thread",
        config=_config(),
    )
    assert result.failed_runs == {}
    assert database_digest(tmp_path / "jobs4.db") == ref_digest
    assert _table_i_stats(tmp_path / "jobs4.db") == ref_stats


def _spawn_worker(address, workdir, worker_id):
    worker = FabricWorker(
        address,
        worker_id,
        workdir,
        capacity=2,
        poll_interval=0.1,
        reconnect_budget=30.0,
    )
    thread = threading.Thread(
        target=worker.run_forever, daemon=True, name=f"fleet-{worker_id}"
    )
    thread.start()
    return worker, thread


def test_three_worker_fleet_byte_identical(jobs1_reference, tmp_path):
    ref_digest, ref_stats = jobs1_reference
    coordinator = FabricCoordinator(
        _campaign_desc(),
        tmp_path / "campaign",
        port=0,
        batch_size=2,
        lease_ttl=10.0,
        config=_config(),
    )
    with coordinator:
        workers = [
            _spawn_worker(coordinator.address, tmp_path / f"w{i}", f"w{i}")
            for i in range(3)
        ]
        result = coordinator.run_until_complete(
            db_path=tmp_path / "fleet.db",
            timeout=240.0,
        )
        for _, thread in workers:
            thread.join(timeout=10.0)
    assert result.pool == "fleet"
    assert result.failed_runs == {}
    assert database_digest(tmp_path / "fleet.db") == ref_digest
    assert _table_i_stats(tmp_path / "fleet.db") == ref_stats
