"""Integration: campaigns flowing into the L4 warehouse.

* A real campaign's level-3 database round-trips through ``repro repo
  ingest`` and the materialized read models answer the same questions as
  the canonical analysis over the source database.
* ``repro repo diff`` and ``repro repo regression-check`` drive the
  drift-detection path end to end from the CLI.
* An ingest killed mid-flight (``os._exit`` between the shard copy and
  the catalogue commit) resumes on the next warehouse open with no
  duplicate and no missing experiments.
"""

import os
import shutil
import sqlite3
import subprocess
import sys

import pytest

from repro.campaign import run_campaign
from repro.cli import main as cli_main
from repro.repo import Warehouse
from repro.sd.processlib import build_two_party_description
from repro.storage.level3 import ExperimentDatabase

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _campaign_db(root, name, seed, replications=4):
    desc = build_two_party_description(
        name=name, seed=seed, replications=replications, env_count=1,
    )
    db_path = root / f"{name}.db"
    run_campaign(desc, root / f"{name}-campaign", db_path=db_path,
                 jobs=1, pool="thread")
    return db_path


@pytest.fixture(scope="module")
def campaign_dbs(tmp_path_factory):
    root = tmp_path_factory.mktemp("repo-it")
    return (_campaign_db(root, "wh-a", seed=31),
            _campaign_db(root, "wh-b", seed=47))


def test_campaign_ingest_query_diff_regression(campaign_dbs, tmp_path,
                                               capsys):
    db_a, db_b = campaign_dbs
    root = tmp_path / "wh"

    assert cli_main(["repo", "ingest", str(root),
                     str(db_a), str(db_b)]) == 0
    assert "warehouse holds 2 experiment(s)" in capsys.readouterr().out

    assert cli_main(["repo", "query", str(root), "responsiveness",
                     "--experiment", "wh-a"]) == 0
    assert "t_R median=" in capsys.readouterr().out

    assert cli_main(["repo", "diff", str(root), "wh-a", "wh-b"]) == 0
    capsys.readouterr()

    # The archived package is its own baseline: no drift.
    assert cli_main(["repo", "regression-check", str(root), str(db_a)]) == 0
    assert "regression check passed" in capsys.readouterr().out

    # A perturbed Table-I digest is flagged.
    perturbed = tmp_path / "perturbed.db"
    shutil.copy(db_a, perturbed)
    with sqlite3.connect(perturbed) as conn:
        conn.execute("UPDATE Events SET CommonTime = CommonTime + 2.0 "
                     "WHERE EventType = 'sd_service_add'")
        conn.commit()
    assert cli_main(["repo", "regression-check", str(root), str(perturbed),
                     "--baseline", "wh-a"]) == 1
    assert "[DRIFT]" in capsys.readouterr().out


def test_warehouse_models_match_canonical_analysis(campaign_dbs, tmp_path):
    from repro.analysis.responsiveness import responsiveness_by_treatment

    db_a, _ = campaign_dbs
    with Warehouse(tmp_path / "wh") as warehouse:
        exp_id = warehouse.ingest(db_a).exp_id
        surface = warehouse.responsiveness_surface(exp_id=exp_id)
        view = warehouse.view(exp_id)
        with ExperimentDatabase(db_a) as level3:
            canonical = responsiveness_by_treatment(level3, deadlines=[1.0])
            assert view.events() == level3.events()
            assert view.packets() == level3.packets()
    assert [(r["runs"], r["complete"], r["t_r_median"], r["t_r_mean"])
            for r in surface] == \
        [(c["summary"]["runs"], c["summary"]["complete"],
          c["summary"]["t_r_median"], c["summary"]["t_r_mean"])
         for c in canonical]


_KILL_SCRIPT = """
import os, sys

import repro.repo.catalog as catalog_mod

calls = []
original = catalog_mod.Catalog.mark_done

def crashing_mark_done(self, exp_id):
    calls.append(exp_id)
    if len(calls) >= 2:
        os._exit(9)
    return original(self, exp_id)

catalog_mod.Catalog.mark_done = crashing_mark_done

from repro.repo import Warehouse

warehouse = Warehouse(sys.argv[1])
warehouse.ingest_many(sys.argv[2:])
os._exit(1)  # unreachable: the crash fires first
"""


def test_kill_mid_ingest_resumes_without_duplicates(campaign_dbs, tmp_path):
    db_a, db_b = campaign_dbs
    root = tmp_path / "wh"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")

    proc = subprocess.run(
        [sys.executable, "-c", _KILL_SCRIPT, str(root), str(db_a), str(db_b)],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 9, proc.stderr

    with Warehouse(root) as warehouse:
        report = warehouse.last_recovery
        assert any(report.values()), report
        experiments = warehouse.experiments()
        digests = [e["ContentDigest"] for e in experiments]
        assert sorted(digests) == sorted(set(digests))  # no duplicates
        assert len(experiments) == 2  # nothing missing
        # Recovered copies are faithful, not torn.
        for exp, src in zip(experiments, (db_a, db_b)):
            view = warehouse.view(exp["ExpID"])
            with ExperimentDatabase(src) as level3:
                assert view.events() == level3.events()
                assert view.run_ids() == level3.run_ids()
        # Re-offering the same packages is a pure no-op.
        results = warehouse.ingest_many([db_a, db_b])
        assert all(r.duplicate for r in results)
        assert len(warehouse.experiments()) == 2
