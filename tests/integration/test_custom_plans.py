"""Integration: custom factor level variation plans through the master."""

import pytest

from repro import ExperiMaster, Level2Store
from repro.core.designs import (
    completely_randomized_design,
    randomized_complete_block_design,
)
from repro.core.errors import ExecutionError, RecoveryError
from repro.platforms.simulated import SimulatedPlatform
from repro.sd.processlib import build_two_party_description


def _desc(seed=81):
    return build_two_party_description(
        name="custom-plan", seed=seed, replications=1, env_count=2,
        traffic=True, pairs_levels=(1, 2), bw_levels=(10, 50),
        special_params={"run_spacing": 0.0},
    )


def _execute(desc, root, custom, **kw):
    platform = SimulatedPlatform(desc)
    master = ExperiMaster(
        platform, desc, Level2Store(root), custom_treatments=custom, **kw
    )
    return master.execute()


def test_crd_plan_executes_all_runs(tmp_path):
    desc = _desc()
    custom = completely_randomized_design(desc.factors, seed=81, replications=2)
    result = _execute(desc, tmp_path / "crd", custom)
    assert len(result.executed_runs) == len(custom) == 8
    # The stored plan reflects the custom order, not OFAT.
    stored = result.store.read_plan()
    treatments = [(t["treatment"]["fact_pairs"], t["treatment"]["fact_bw"])
                  for t in stored]
    ofat = sorted(treatments)
    assert treatments != ofat or len(set(treatments)) < len(treatments)


def test_rcbd_plan_executes(tmp_path):
    desc = _desc()
    custom = randomized_complete_block_design(desc.factors, "fact_bw", seed=2)
    result = _execute(desc, tmp_path / "rcbd", custom)
    stored = result.store.read_plan()
    bws = [t["treatment"]["fact_bw"] for t in stored]
    assert bws == sorted(bws)  # blocks contiguous, declared order


def test_custom_plan_resume_roundtrip(tmp_path):
    desc = _desc()
    custom = completely_randomized_design(desc.factors, seed=81, replications=2)
    with pytest.raises(ExecutionError):
        _execute(desc, tmp_path / "r", custom, abort_after_runs=2)
    result = _execute(desc, tmp_path / "r", custom, resume=True)
    assert sorted(result.skipped_runs) == [0, 1]
    assert len(result.executed_runs) == 6


def test_resume_with_different_custom_plan_refused(tmp_path):
    desc = _desc()
    custom_a = completely_randomized_design(desc.factors, seed=81, replications=2)
    with pytest.raises(ExecutionError):
        _execute(desc, tmp_path / "r", custom_a, abort_after_runs=1)
    custom_b = completely_randomized_design(desc.factors, seed=999, replications=2)
    assert custom_a != custom_b
    with pytest.raises(RecoveryError, match="plan changed"):
        _execute(desc, tmp_path / "r", custom_b, resume=True)
