"""Integration: fault leases and salvage conditioning (DESIGN.md §11).

The experiment-integrity story end to end: a run killed in the middle of
an open ``msg_loss`` window leaks the fault's on-disk lease; the next
execution's reconciliation sweep force-reverts it before any run starts,
records it as ``fault_leak_reconciled``, and the resumed package digests
byte-identical to a fault-free reference.  The salvage side: a campaign
resume probes staged level-2 data and re-queues runs whose loss exceeds
the threshold, again converging to the reference digest.
"""

import pytest

from repro.campaign import (
    CampaignEngine,
    CampaignJournal,
    database_digest,
    run_campaign,
)
from repro.cli import main as cli_main
from repro.core.description import ManipulationProcess
from repro.core.errors import (
    CampaignError,
    ExecutionError,
    RpcTimeout,
    RunAbortedError,
)
from repro.core.master import ExperiMaster
from repro.core.processes import DomainAction
from repro.core.recovery import Journal
from repro.faults.leases import FaultLeaseStore
from repro.platforms.simulated import PlatformConfig, SimulatedPlatform
from repro.sd.processlib import build_two_party_description
from repro.storage.level2 import Level2Store
from repro.storage.level3 import ExperimentDatabase, store_level3

SM_NODE = "t9-100"  # actor node hosting the SM role
SU_NODE = "t9-101"  # hosts actor1, the target of the msg_loss window

# Lose every run_exit reply from the SM node during run 1: the master
# exhausts its RPC retries and aborts the run in the *cleanup* phase —
# after actor1's 600 s msg_loss window opened on the SU node, but before
# the SU's own run_exit could revert it.  The fault's lease stays on
# disk: exactly the leak the reconciliation sweep exists for.
KILL_MID_WINDOW = {
    "node": SM_NODE,
    "action": "drop_reply",
    "method": "run_exit",
    "run_id": 1,
    "count": 20,
}


def _desc(seed=91, replications=3, **kwargs):
    kwargs.setdefault("env_count", 1)
    desc = build_two_party_description(
        name="lease-it", seed=seed, replications=replications, **kwargs
    )
    # A long fault window (longer than any run) so an aborted run always
    # dies inside it; orderly runs revert it via stop_all at run exit.
    desc.manipulations.append(
        ManipulationProcess(
            actor_id="actor1",
            actions=[
                DomainAction(
                    name="msg_loss_start",
                    params={
                        "probability": 0.2,
                        "direction": "both",
                        "duration": 600.0,
                    },
                )
            ],
        )
    )
    return desc


def _fresh_master(store, **kwargs):
    desc = _desc()
    return ExperiMaster(SimulatedPlatform(desc), desc, store, **kwargs)


@pytest.fixture(scope="module")
def fault_free_reference(tmp_path_factory):
    """Fault-free digests shaped like the recovery paths under test.

    Same construction as in test_control_plane_faults: the serial
    reference is a controlled abort after run 0 plus a resume (serial
    kernels make absolute times depend on the interruption point); the
    campaign reference runs straight through (per-run kernels are
    directly comparable).
    """
    root = tmp_path_factory.mktemp("lease-reference")
    serial_store = Level2Store(root / "serial.l2")
    with pytest.raises(ExecutionError):
        _fresh_master(serial_store, abort_after_runs=1).execute()
    result = _fresh_master(serial_store, resume=True).execute()
    serial_db = store_level3(result.store, root / "serial.db")
    run_campaign(
        _desc(replications=4),
        root / "campaign",
        db_path=root / "campaign.db",
        jobs=2,
        pool="thread",
    )
    ignore = ("AbortReason",)
    return {
        "serial": database_digest(serial_db, ignore_columns=ignore),
        "campaign": database_digest(root / "campaign.db", ignore_columns=ignore),
    }


# ----------------------------------------------------------------------
# Serial: kill mid-window, resume sweeps the leaked lease
# ----------------------------------------------------------------------
def test_killed_run_leaks_lease_and_resume_reconciles(
    fault_free_reference, tmp_path
):
    desc = _desc()
    store = Level2Store(tmp_path / "exp.l2")
    faulty = SimulatedPlatform(
        desc, PlatformConfig(control_faults=[dict(KILL_MID_WINDOW)])
    )
    with pytest.raises((RpcTimeout, RunAbortedError)):
        ExperiMaster(faulty, desc, store).execute()

    journal = Journal(store)
    assert journal.completed_runs() == {0}
    aborted = journal.abort_reasons()
    assert set(aborted) == {1}
    assert aborted[1]["phase"] == "cleanup"

    # The crash left the msg_loss lease active on disk for the SU node.
    leases = FaultLeaseStore(store.root / "leases")
    active = leases.active(SU_NODE)
    assert len(active) == 1
    assert active[0]["kind"] == "msg_loss"
    assert active[0]["run_id"] == 1
    assert active[0]["expires_at"] is not None  # advisory TTL was stamped

    # Resume on a pristine platform: the startup sweep force-reverts the
    # leaked fault before any run executes, then runs 1 and 2 replay.
    result = _fresh_master(store, resume=True).execute()
    assert sorted(result.executed_runs) == [1, 2]
    assert leases.active(SU_NODE) == []

    reconciled = store.read_reconciled_leases()
    assert [r["kind"] for r in reconciled] == ["msg_loss"]
    assert reconciled[0]["node"] == SU_NODE
    assert reconciled[0]["run_id"] == 1
    assert len(Journal(store).fault_leases_reconciled()) == 1

    # The sweep is visible in level 3 (FaultLeases side table) and the
    # Table I digest is byte-identical to the fault-free reference.
    db_path = store_level3(result.store, tmp_path / "resumed.db")
    with ExperimentDatabase(db_path) as db:
        rows = db.fault_leases()
        assert len(rows) == 1
        assert rows[0]["Kind"] == "msg_loss"
        assert rows[0]["Event"] == "fault_leak_reconciled"
        assert rows[0]["RunID"] == 1
        assert rows[0]["NodeID"] == SU_NODE
    digest = database_digest(db_path, ignore_columns=("AbortReason",))
    assert digest == fault_free_reference["serial"]


# ----------------------------------------------------------------------
# Campaign: the retry's master sweeps the first attempt's leak
# ----------------------------------------------------------------------
def test_campaign_retry_sweeps_leaked_lease_and_digest_matches(
    fault_free_reference, tmp_path
):
    result = run_campaign(
        _desc(replications=4),
        tmp_path / "campaign",
        db_path=tmp_path / "chaos.db",
        jobs=2,
        pool="thread",
        max_attempts=2,
        control_faults=[dict(KILL_MID_WINDOW, max_attempt=1)],
    )
    assert result.executed_runs == [0, 1, 2, 3]
    assert result.failed_runs == {}
    assert result.telemetry["retried"] == 1

    # The lease root lives outside the rmtree'd staging tree, so the
    # retry found the first attempt's leaked lease and swept it.
    lease_dir = tmp_path / "campaign" / "leases" / "run_000001"
    assert lease_dir.is_dir()
    assert FaultLeaseStore(lease_dir).active(SU_NODE) == []

    with ExperimentDatabase(tmp_path / "chaos.db") as db:
        rows = db.fault_leases(run_id=1)
        assert [r["Kind"] for r in rows] == ["msg_loss"]
        assert rows[0]["NodeID"] == SU_NODE
        assert db.fault_leases(run_id=0) == []
    digest = database_digest(tmp_path / "chaos.db", ignore_columns=("AbortReason",))
    assert digest == fault_free_reference["campaign"]


# ----------------------------------------------------------------------
# Campaign resume: salvage probe re-queues a corrupted staged run
# ----------------------------------------------------------------------
def test_campaign_resume_requeues_salvage_lossy_run(
    fault_free_reference, tmp_path
):
    desc = _desc(replications=4)
    with pytest.raises(CampaignError, match="abort"):
        run_campaign(
            desc, tmp_path / "campaign", jobs=2, pool="thread", abort_after_runs=2
        )
    journal = CampaignJournal(tmp_path / "campaign")
    staged = journal.completed()
    assert staged
    victim = min(staged)
    events = (
        tmp_path / "campaign" / staged[victim]["store"]
        / "nodes" / SU_NODE / "runs" / str(victim) / "events.jsonl"
    )
    # Tear the file's tail the way a crashed writer would.
    data = events.read_bytes()
    assert len(data) > 25
    events.write_bytes(data[:-25])

    result = CampaignEngine(
        desc,
        tmp_path / "campaign",
        jobs=2,
        pool="thread",
        resume=True,
        salvage_requeue_loss=0.0,
    ).execute(db_path=tmp_path / "resumed.db")
    # The torn run was re-executed instead of trusted.
    assert victim in result.executed_runs
    assert victim not in result.skipped_runs
    requeued = journal.salvage_requeued()
    assert set(requeued) == {victim}
    assert requeued[victim]["dropped"] >= 1

    digest = database_digest(
        tmp_path / "resumed.db", ignore_columns=("AbortReason",)
    )
    assert digest == fault_free_reference["campaign"]


# ----------------------------------------------------------------------
# CLI surface: repro inspect --leases over stores and databases
# ----------------------------------------------------------------------
def test_cli_inspect_leases_over_directory_and_db(tmp_path, capsys):
    desc = _desc(replications=2)
    store = Level2Store(tmp_path / "exp.l2")
    faulty = SimulatedPlatform(
        desc, PlatformConfig(control_faults=[dict(KILL_MID_WINDOW)])
    )
    with pytest.raises((RpcTimeout, RunAbortedError)):
        ExperiMaster(faulty, desc, store).execute()

    rc = cli_main(["inspect", str(store.root), "--leases"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "active leases: 1" in out
    assert "kind=msg_loss" in out
    assert "reconciled leases: 0" in out

    result = ExperiMaster(
        SimulatedPlatform(desc), desc, store, resume=True
    ).execute()
    rc = cli_main(["inspect", str(store.root), "--leases"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "active leases: 0" in out
    assert "reconciled leases: 1" in out

    # The same view over the level-3 database.
    db_path = store_level3(result.store, tmp_path / "resumed.db")
    rc = cli_main(["inspect", str(db_path), "--leases"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fault leases: 1" in out
    assert "kind=msg_loss" in out

    # A directory without a view flag is a usage error.
    assert cli_main(["inspect", str(store.root)]) == 2
