"""Integration: the parallel campaign engine's determinism and recovery.

* A campaign executed with 4 workers produces the same level-3 database —
  byte-for-byte, modulo nothing — as the same plan with 1 worker: the
  Sec. IV-C1 repeatability guarantee survives concurrency.
* A campaign killed mid-flight resumes from its write-ahead journal,
  re-executes only the unfinished runs and converges to the identical
  database.
* The CLI ``campaign`` subcommand drives the same machinery end to end.
"""

import pytest

from repro.campaign import (
    CampaignEngine,
    CampaignJournal,
    database_digest,
    merge_campaign,
    run_campaign,
)
from repro.cli import main as cli_main
from repro.core.errors import CampaignError, RecoveryError
from repro.core.xmlio import description_to_xml
from repro.sd.processlib import build_two_party_description


def _desc(seed=31, replications=20, **kwargs):
    kwargs.setdefault("env_count", 1)
    return build_two_party_description(
        name="campaign-it",
        seed=seed,
        replications=replications,
        **kwargs,
    )


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """The 1-worker campaign over the 20-run plan: digest + directory."""
    root = tmp_path_factory.mktemp("serial")
    result = run_campaign(
        _desc(),
        root / "campaign",
        db_path=root / "ref.db",
        jobs=1,
        pool="thread",
    )
    assert len(result.plan) >= 20
    assert result.executed_runs == list(range(len(result.plan)))
    return database_digest(root / "ref.db"), root


def test_four_workers_byte_identical_to_one(serial_reference, tmp_path):
    ref_digest, _ = serial_reference
    result = run_campaign(
        _desc(),
        tmp_path / "campaign",
        db_path=tmp_path / "par.db",
        jobs=4,
        pool="thread",
    )
    assert result.jobs == 4
    assert database_digest(tmp_path / "par.db") == ref_digest


def test_kill_and_resume_converges(serial_reference, tmp_path):
    ref_digest, _ = serial_reference
    desc = _desc()
    with pytest.raises(CampaignError, match="abort"):
        run_campaign(desc, tmp_path / "campaign", jobs=4, pool="thread", abort_after_runs=7)
    journal = CampaignJournal(tmp_path / "campaign")
    staged_before = set(journal.completed())
    assert 0 < len(staged_before) < len(journal.entries())
    assert not journal.finished()

    # Resuming without resume=True must refuse (a journal exists).
    with pytest.raises(RecoveryError, match="resume"):
        run_campaign(desc, tmp_path / "campaign", jobs=4, pool="thread")

    result = CampaignEngine(
        desc,
        tmp_path / "campaign",
        jobs=4,
        pool="thread",
        resume=True,
    ).execute(db_path=tmp_path / "resumed.db")
    assert set(result.skipped_runs) == staged_before
    assert set(result.executed_runs).isdisjoint(staged_before)
    assert len(result.skipped_runs) + len(result.executed_runs) == len(result.plan)
    assert database_digest(tmp_path / "resumed.db") == ref_digest


def test_resume_reexecutes_runs_whose_staging_vanished(tmp_path):
    desc = _desc(replications=4)
    import shutil

    with pytest.raises(CampaignError):
        run_campaign(desc, tmp_path / "campaign", jobs=2, pool="thread", abort_after_runs=2)
    journal = CampaignJournal(tmp_path / "campaign")
    victim_id, victim = sorted(journal.completed().items())[0]
    shutil.rmtree(tmp_path / "campaign" / victim["store"])

    result = CampaignEngine(
        desc,
        tmp_path / "campaign",
        jobs=2,
        pool="thread",
        resume=True,
    ).execute(db_path=tmp_path / "out.db")
    assert victim_id in result.executed_runs
    assert victim_id not in result.skipped_runs


def test_merge_campaign_rebuilds_database(serial_reference, tmp_path):
    ref_digest, root = serial_reference
    rebuilt = merge_campaign(root / "campaign", tmp_path / "again.db")
    assert database_digest(rebuilt) == ref_digest


def test_merge_campaign_requires_completion(tmp_path):
    with pytest.raises(CampaignError, match="not complete"):
        merge_campaign(tmp_path, tmp_path / "out.db")


def test_max_parallel_caps_requested_jobs(tmp_path):
    desc = _desc(replications=4, special_params={"max_parallel": 2})
    result = run_campaign(desc, tmp_path / "campaign", jobs=8, pool="thread")
    assert result.jobs == 2


def test_process_pool_matches_thread_pool(tmp_path):
    desc = _desc(replications=4)
    a = run_campaign(desc, tmp_path / "t", db_path=tmp_path / "t.db", jobs=2, pool="thread")
    b = run_campaign(desc, tmp_path / "p", db_path=tmp_path / "p.db", jobs=2, pool="process")
    assert a.pool == "thread" and b.pool == "process"
    assert database_digest(tmp_path / "t.db") == database_digest(tmp_path / "p.db")


def test_cli_campaign_subcommand(tmp_path, capsys):
    xml = tmp_path / "exp.xml"
    xml.write_text(description_to_xml(_desc(replications=3)), encoding="utf-8")
    rc = cli_main(
        [
            "campaign",
            str(xml),
            "--dir",
            str(tmp_path / "campaign"),
            "--db",
            str(tmp_path / "cli.db"),
            "--jobs",
            "2",
            "--pool",
            "thread",
            "--quiet",
        ],
    )
    assert rc == 0
    assert (tmp_path / "cli.db").exists()
    assert CampaignJournal(tmp_path / "campaign").finished()
    # merge-only rebuilds the database from the shards alone
    rc = cli_main(
        [
            "campaign",
            str(xml),
            "--dir",
            str(tmp_path / "campaign"),
            "--db",
            str(tmp_path / "cli2.db"),
            "--merge-only",
        ],
    )
    assert rc == 0
    assert database_digest(tmp_path / "cli.db") == database_digest(tmp_path / "cli2.db")
