"""Integration: the echo process domain — framework generality.

Demonstrates (and pins) the extension path of Secs. IV-B/IV-D2: a new
process domain registered purely through the plugin/handler machinery,
executing through the unchanged master, storage and analysis layers.
"""


from repro import ExperiMaster, Level2Store, store_level3
from repro.core.description import ManipulationProcess
from repro.core.plugins import PluginManager
from repro.core.processes import DomainAction
from repro.core.validation import validate_description
from repro.platforms.simulated import SimulatedPlatform
from repro.procs.echo import EchoPlugin, build_echo_description, install_echo_agent
from repro.storage.level3 import ExperimentDatabase


def _execute(desc, root, config=None):
    platform = SimulatedPlatform(desc, config)
    for nm in platform.node_managers.values():
        install_echo_agent(nm)
    plugins = PluginManager(action=[EchoPlugin()])
    master = ExperiMaster(platform, desc, Level2Store(root), plugins=plugins)
    return master.execute(), master


def test_echo_description_validates_with_plugin():
    from repro.core.actions import default_registry

    desc = build_echo_description(replications=1)
    registry = default_registry()
    PluginManager(action=[EchoPlugin()]).extend_registry(registry)
    report = validate_description(desc, registry)
    assert report.ok, report.errors


def test_echo_description_rejected_without_plugin():
    desc = build_echo_description(replications=1)
    report = validate_description(desc)
    assert any("echo_init" in e for e in report.errors)


def test_echo_availability_run(tmp_path):
    desc = build_echo_description(
        replications=2, probe_rate=10.0, measure_seconds=3.0, seed=5,
    )
    result, _master = _execute(desc, tmp_path / "echo")
    assert len(result.executed_runs) == 2
    db_path = store_level3(result.store, tmp_path / "echo.db")
    with ExperimentDatabase(db_path) as db:
        for run_id in db.run_ids():
            replies = db.events(run_id=run_id, event_type="echo_reply")
            timeouts = db.events(run_id=run_id, event_type="echo_timeout")
            # ~30 probes in 3 s at 10 Hz on a healthy mesh: nearly all answered.
            assert len(replies) >= 20
            assert len(timeouts) <= len(replies) * 0.2
            # RTT parameters recorded with each reply.
            rtts = [e["params"][1] for e in replies]
            assert all(0.0 < r < 0.5 for r in rtts)
        # The client's lifecycle events came through the generic machinery.
        names = [e["name"] for e in db.events(run_id=0, node_id="echo-cli")]
        for expected in ("echo_init_done", "echo_start", "echo_stop",
                         "echo_exit_done", "done"):
            assert expected in names


def test_echo_under_interface_fault_loses_probes(tmp_path):
    desc = build_echo_description(
        replications=1, probe_rate=10.0, measure_seconds=4.0, seed=6,
    )
    # Kill the server's radio for the middle of the run.
    desc.manipulations.append(
        ManipulationProcess(
            actor_id="server",
            actions=[DomainAction(
                name="iface_fault_start",
                params={"direction": "both", "duration": 6.0, "rate": 0.4,
                        "randomseed": 3},
            )],
        )
    )
    result, _ = _execute(desc, tmp_path / "echo-fault")
    db_path = store_level3(result.store, tmp_path / "echo-fault.db")
    with ExperimentDatabase(db_path) as db:
        replies = db.events(event_type="echo_reply")
        timeouts = db.events(event_type="echo_timeout")
        assert timeouts, "the fault window must cost probes"
        assert replies, "outside the window, probes still succeed"
        # The timeouts cluster inside the fault's activation window.
        window_start = db.events(event_type="fault_iface_fault_started")[0]
        _kind, active_from, active_until = window_start["params"]
        for t in timeouts:
            probe_time = t["common_time"] - 0.5  # deadline before the event
            assert probe_time >= active_from - 0.6


def test_echo_deterministic(tmp_path):
    import json

    def events_of(root):
        desc = build_echo_description(replications=1, measure_seconds=2.0, seed=9)
        result, _ = _execute(desc, root)
        db_path = store_level3(result.store, root / "db.sqlite")
        with ExperimentDatabase(db_path) as db:
            return json.dumps(db.events(), sort_keys=True)

    assert events_of(tmp_path / "a") == events_of(tmp_path / "b")
