"""Integration: description-language features beyond the happy path.

Covers the run-duration backstop, factor-referenced delays, node-targeted
manipulation processes, drop-all environments, windowed (duration x rate)
faults, path faults with node selectors, and publication updates.
"""


from repro import run_experiment, store_level3
from repro.analysis.responsiveness import run_outcomes
from repro.core.description import EnvironmentProcess, ManipulationProcess
from repro.core.factors import Factor, Level, Usage
from repro.core.processes import (
    DomainAction,
    EventFlag,
    FactorRef,
    NodeSelector,
    WaitForEvent,
    WaitForTime,
)
from repro.platforms.simulated import PlatformConfig
from repro.sd.processlib import build_two_party_description
from repro.storage.level3 import ExperimentDatabase


def _db(result, tmp_path, tag="x"):
    return ExperimentDatabase(store_level3(result.store, tmp_path / f"{tag}.db"))


def test_run_backstop_interrupts_hung_actor(tmp_path):
    desc = build_two_party_description(replications=2, seed=61, env_count=0)
    # The SM waits for an event nobody ever raises (no timeout) — without
    # the backstop the run would hang forever.
    desc.actor("actor0").actions.insert(
        2, WaitForEvent(event="never_raised")
    )
    # And the SU never raises done either (it waits for the SM's flag).
    desc.special_params["max_run_duration"] = 3.0
    desc.special_params["run_spacing"] = 0.0
    result = run_experiment(desc, store_root=tmp_path / "hang")
    assert result.timed_out_runs == [0, 1]
    assert len(result.executed_runs) == 2  # the series still completes
    with _db(result, tmp_path) as db:
        assert len(db.events(event_type="run_timeout")) == 2
        # Both runs were still collected and conditioned.
        assert db.run_ids() == [0, 1]


def test_wait_for_time_factor_reference(tmp_path):
    desc = build_two_party_description(replications=1, seed=62, env_count=0)
    desc.factors.add(
        Factor(id="fact_delay", type="float", usage=Usage.CONSTANT,
               levels=[Level(1.5)])
    )
    su = desc.actor("actor1")
    # Delay the search by the factor's value.
    idx = next(i for i, a in enumerate(su.actions)
               if isinstance(a, DomainAction) and a.name == "sd_start_search")
    su.actions.insert(idx, WaitForTime(seconds=FactorRef("fact_delay")))
    result = run_experiment(desc, store_root=tmp_path / "delay")
    with _db(result, tmp_path) as db:
        events = {e["name"]: e["common_time"] for e in db.events(run_id=0)}
        assert events["sd_start_search"] - events["sd_init_done"] >= 1.5


def test_manipulation_targeting_abstract_node(tmp_path):
    desc = build_two_party_description(replications=1, seed=63, env_count=0)
    # Target by abstract node id rather than actor role.
    desc.manipulations.append(
        ManipulationProcess(
            node_id="SU0",
            actions=[DomainAction(name="msg_delay_start", params={"delay": 0.2})],
        )
    )
    result = run_experiment(desc, store_root=tmp_path / "nid")
    with _db(result, tmp_path) as db:
        started = db.events(event_type="fault_msg_delay_started")
        assert len(started) == 1
        # The SU's platform node (second actor node) carries the fault.
        assert started[0]["node"] == desc.platform.for_abstract("SU0").node_id


def test_drop_all_environment_blocks_discovery(tmp_path):
    desc = build_two_party_description(
        replications=1, seed=64, env_count=2, deadline=2.0,
    )
    desc.environment_processes = [
        EnvironmentProcess(actions=[
            DomainAction(name="env_drop_all_start"),
            EventFlag(value="ready_to_init"),
            WaitForEvent(event="done"),
            DomainAction(name="env_drop_all_stop"),
        ])
    ]
    result = run_experiment(desc, store_root=tmp_path / "dropall")
    with _db(result, tmp_path) as db:
        outcomes = run_outcomes(db)
        assert all(not o.complete for o in outcomes)
        assert db.events(event_type="env_drop_all_started")
        assert db.events(event_type="env_drop_all_stopped")


def test_windowed_fault_delays_discovery_until_window_ends(tmp_path):
    """An interface fault with duration=4, rate=1.0 silences the SU for
    the first 4 s of the run; discovery succeeds right after."""
    desc = build_two_party_description(
        replications=2, seed=65, env_count=0, deadline=20.0,
    )
    desc.manipulations.append(
        ManipulationProcess(
            actor_id="actor1",
            actions=[DomainAction(
                name="iface_fault_start",
                params={"direction": "both", "duration": 4.0, "rate": 1.0},
            )],
        )
    )
    result = run_experiment(desc, store_root=tmp_path / "window")
    with _db(result, tmp_path) as db:
        for run_id in db.run_ids():
            events = {e["name"]: e["common_time"] for e in db.events(run_id=run_id)}
            fault_start = next(
                e["common_time"]
                for e in db.events(run_id=run_id, event_type="fault_iface_fault_started")
            )
            add = events.get("sd_service_add")
            assert add is not None, "discovery must succeed after the window"
            assert add > fault_start + 3.5
            assert "fault_iface_fault_stopped" in events


def test_path_loss_with_node_selector_peer(tmp_path):
    """A path fault whose peer parameter is a node selector resolving to
    the SM: SU<->SM traffic dies, but the SU still hears third parties."""
    desc = build_two_party_description(
        sm_count=2, replications=1, seed=66, env_count=0, deadline=3.0,
    )
    desc.manipulations.append(
        ManipulationProcess(
            actor_id="actor1",
            actions=[DomainAction(
                name="path_loss_start",
                params={
                    "peer": NodeSelector(actor="actor0", instance="0"),
                    "probability": 1.0,
                },
            )],
        )
    )
    config = PlatformConfig(topology="full", sd_config={"announce_count": 0})
    result = run_experiment(desc, store_root=tmp_path / "path", config=config)
    with _db(result, tmp_path) as db:
        outcomes = run_outcomes(db)
        assert len(outcomes) == 1
        outcome = outcomes[0]
        # Multicast queries still reach SM1 (instance "1"), whose responses
        # are multicast from a different source address -> they pass.
        sm0 = desc.platform.for_abstract("SM0").node_id
        sm1 = desc.platform.for_abstract("SM1").node_id
        assert sm1 in outcome.found_at
        assert sm0 not in outcome.found_at


def test_update_publication_emits_upd_events(tmp_path):
    desc = build_two_party_description(replications=1, seed=67, env_count=0)
    sm = desc.actor("actor0")
    # Publish, wait a moment, update the description, then proceed.
    idx = next(i for i, a in enumerate(sm.actions)
               if isinstance(a, DomainAction) and a.name == "sd_start_publish")
    sm.actions.insert(idx + 1, WaitForTime(seconds=0.5))
    sm.actions.insert(
        idx + 2, DomainAction(name="sd_update_publication", params={})
    )
    result = run_experiment(desc, store_root=tmp_path / "upd")
    with _db(result, tmp_path) as db:
        upd = db.events(event_type="sd_service_upd")
        assert upd, "the SM must emit sd_service_upd"
        # The SU sees the new version arriving after its add.
        su_events = [e["name"] for e in db.events(
            run_id=0, node_id=desc.platform.for_abstract("SU0").node_id)]
        assert "sd_service_add" in su_events


def test_event_flag_params_travel_to_bus(tmp_path):
    desc = build_two_party_description(replications=1, seed=68, env_count=0)
    su = desc.actor("actor1")
    done_idx = next(i for i, a in enumerate(su.actions)
                    if isinstance(a, EventFlag))
    su.actions.insert(done_idx, EventFlag(value="checkpoint", params=(7, "tag")))
    result = run_experiment(desc, store_root=tmp_path / "flag")
    with _db(result, tmp_path) as db:
        flags = db.events(event_type="checkpoint")
        assert flags and flags[0]["params"] == [7, "tag"]


def test_role_rotation_across_treatments(tmp_path):
    """The actor_node_map factor can carry several levels, rotating which
    physical node plays SM vs SU per treatment — role placement as a
    studied factor.  Analysis infers roles per run, so it follows."""
    desc = build_two_party_description(replications=1, seed=73, env_count=0)
    map_factor = desc.factors.actor_map_factor()
    swapped = {
        "actor0": {"0": "SU0"},  # the SM role lands on the other node
        "actor1": {"0": "SM0"},
    }
    map_factor.levels.append(type(map_factor.levels[0])(swapped))
    result = run_experiment(desc, store_root=tmp_path / "rot")
    assert len(result.executed_runs) == 2
    with _db(result, tmp_path, "rot") as db:
        from repro.analysis.responsiveness import discover_roles

        sm_node = desc.platform.for_abstract("SM0").node_id
        su_node = desc.platform.for_abstract("SU0").node_id
        sus0, sms0 = discover_roles(db, 0)
        sus1, sms1 = discover_roles(db, 1)
        assert sms0 == [sm_node] and sus0 == [su_node]
        assert sms1 == [su_node] and sus1 == [sm_node]  # swapped
        # Both placements succeed.
        outcomes = run_outcomes(db)
        assert all(o.complete for o in outcomes)


def test_multi_instance_actor_role(tmp_path):
    """One actor role instantiated on several abstract nodes: the same
    prototype runs on each instance (Sec. IV-C: 'multiple abstract nodes
    can instantiate the same actor description')."""
    desc = build_two_party_description(
        sm_count=3, su_count=1, replications=1, seed=74, env_count=0,
    )
    result = run_experiment(desc, store_root=tmp_path / "multi")
    with _db(result, tmp_path, "multi") as db:
        publishes = db.events(event_type="sd_start_publish", run_id=0)
        assert len(publishes) == 3  # one per instance of actor0
        outcomes = run_outcomes(db)
        assert outcomes[0].complete and len(outcomes[0].required) == 3


def test_replication_factor_addressable_in_actions(tmp_path):
    """Fig. 7 references fact_replication_id as a factor; any action can."""
    desc = build_two_party_description(replications=3, seed=69, env_count=0)
    su = desc.actor("actor1")
    su.actions.append(
        DomainAction(name="generic",
                     params={"rep": FactorRef("fact_replication_id")})
    )
    result = run_experiment(desc, store_root=tmp_path / "repref")
    with _db(result, tmp_path) as db:
        generics = db.events(event_type="generic_executed")
        reps = sorted(p for e in generics for p in e["params"] if p.startswith("rep="))
        assert reps == ["rep=0", "rep=1", "rep=2"]
