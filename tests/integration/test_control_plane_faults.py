"""Integration: the control plane under injected faults (DESIGN.md §10).

The dfuntest argument, turned on ExCovery itself: the experiment harness
must tolerate its own infrastructure misbehaving.  These tests inject
RPC hangs, dropped replies and node crashes into the master↔node control
channel and assert that

* a hung NodeManager aborts the run cleanly into the journal and a
  ``--resume`` replays it to a byte-identical database,
* the campaign engine re-queues runs that failed on a dead node and the
  merged database records every run exactly once — with the earlier
  attempt's failure in ``RunInfos.AbortReason`` — while the surviving
  measurement data digests equal to a fault-free reference,
* a node failing repeatedly is quarantined instead of burning the whole
  campaign's retry budget.
"""

import json

import pytest

from repro.campaign import (
    CampaignEngine,
    CampaignJournal,
    database_digest,
    run_campaign,
)
from repro.cli import build_parser, main as cli_main
from repro.core.errors import (
    CampaignError,
    ExecutionError,
    RpcTimeout,
    RunAbortedError,
)
from repro.core.master import ExperiMaster
from repro.core.recovery import Journal
from repro.core.xmlio import description_to_xml
from repro.platforms.simulated import PlatformConfig, SimulatedPlatform
from repro.sd.processlib import build_two_party_description
from repro.storage.level2 import Level2Store
from repro.storage.level3 import ExperimentDatabase, store_level3

SM_NODE = "t9-100"  # actor node hosting the SM role
SU_NODE = "t9-101"


def _desc(seed=77, replications=3, **kwargs):
    kwargs.setdefault("env_count", 1)
    return build_two_party_description(
        name="chaos-it", seed=seed, replications=replications, **kwargs
    )


def _fresh_master(store, **kwargs):
    desc = _desc()
    return ExperiMaster(SimulatedPlatform(desc), desc, store, **kwargs)


@pytest.fixture(scope="module")
def fault_free_reference(tmp_path_factory):
    """Fault-free digests shaped like the chaos tests' recovery paths.

    Campaigns execute every run in its own kernel, so a fault-free
    campaign digest is directly comparable to a chaotic one.  The serial
    master shares one kernel across the series, which makes absolute
    times depend on where the series was interrupted — so the serial
    reference is a *controlled* fault-free abort after run 0 plus a
    resume, the same shape the hung-node test recovers through.
    """
    root = tmp_path_factory.mktemp("reference")
    # Serial reference over the 3-run plan: abort cleanly after run 0,
    # then resume on a pristine platform.
    serial_store = Level2Store(root / "serial.l2")
    with pytest.raises(ExecutionError):
        _fresh_master(serial_store, abort_after_runs=1).execute()
    result = _fresh_master(serial_store, resume=True).execute()
    serial_db = store_level3(result.store, root / "serial.db")
    # Campaign reference over the 4-run plan.
    run_campaign(
        _desc(replications=4),
        root / "campaign",
        db_path=root / "campaign.db",
        jobs=2,
        pool="thread",
    )
    ignore = ("AbortReason",)
    return {
        "serial": database_digest(serial_db, ignore_columns=ignore),
        "campaign": database_digest(root / "campaign.db", ignore_columns=ignore),
    }


# ----------------------------------------------------------------------
# Serial execution: watchdog abort + resume replay
# ----------------------------------------------------------------------
def test_hung_node_aborts_into_journal_and_resume_replays(fault_free_reference, tmp_path):
    desc = _desc()
    store = Level2Store(tmp_path / "exp.l2")
    faulty = SimulatedPlatform(
        desc,
        PlatformConfig(control_faults=[{"node": SU_NODE, "action": "hang", "run_id": 1}]),
    )
    with pytest.raises(RpcTimeout) as info:
        ExperiMaster(faulty, desc, store).execute()
    assert f"[node={SU_NODE}]" in str(info.value)

    journal = Journal(store)
    assert journal.completed_runs() == {0}
    aborted = journal.abort_reasons()
    assert set(aborted) == {1}
    assert aborted[1]["phase"] == "preparation"
    assert "RpcTimeout" in aborted[1]["reason"]

    # Resume on a pristine platform: the aborted run replays cleanly and
    # the final package is byte-identical to the fault-free reference
    # (a controlled abort at the same point, resumed the same way).
    result = _fresh_master(store, resume=True).execute()
    assert sorted(result.executed_runs) == [1, 2]
    db = store_level3(result.store, tmp_path / "resumed.db")
    assert database_digest(db, ignore_columns=("AbortReason",)) == fault_free_reference["serial"]


def test_phase_deadline_watchdog_aborts_run(tmp_path):
    desc = _desc(
        replications=1,
        special_params={"exec_deadline": 0.01},  # execution needs seconds
    )
    store = Level2Store(tmp_path / "exp.l2")
    with pytest.raises(RunAbortedError) as info:
        ExperiMaster(SimulatedPlatform(desc), desc, store).execute()
    assert info.value.phase == "execution"
    assert info.value.run_id == 0
    aborted = Journal(store).abort_reasons()
    assert aborted[0]["phase"] == "execution"
    assert "deadline" in aborted[0]["reason"]


# ----------------------------------------------------------------------
# Campaign: re-queue after a node crash, abort reasons, digest equality
# ----------------------------------------------------------------------
def test_campaign_requeues_crashed_run_and_digest_matches(fault_free_reference, tmp_path):
    result = run_campaign(
        _desc(replications=4),
        tmp_path / "campaign",
        db_path=tmp_path / "chaos.db",
        jobs=2,
        pool="thread",
        max_attempts=2,
        control_faults=[
            {"node": SM_NODE, "action": "hang", "run_id": 2, "max_attempt": 1},
        ],
    )
    # Every run present exactly once, despite run 2's first attempt dying.
    assert result.executed_runs == [0, 1, 2, 3]
    assert result.failed_runs == {}
    assert result.telemetry["retried"] == 1

    with ExperimentDatabase(tmp_path / "chaos.db") as db:
        assert db.run_ids() == [0, 1, 2, 3]
        reasons = db.abort_reasons()
        assert set(reasons) == {2}
        assert "RpcTimeout" in reasons[2] and SM_NODE in reasons[2]

    journal = CampaignJournal(tmp_path / "campaign")
    assert set(journal.failure_reasons()) == {2}
    # Masking the annotation, the surviving data is identical to the
    # fault-free campaign's.
    digest = database_digest(tmp_path / "chaos.db", ignore_columns=("AbortReason",))
    assert digest == fault_free_reference["campaign"]


def test_campaign_in_run_retry_recovers_dropped_reply(tmp_path):
    fault = {"node": SU_NODE, "action": "drop_reply", "method": "run_init", "run_id": 1}
    result = run_campaign(
        _desc(replications=2),
        tmp_path / "campaign",
        db_path=tmp_path / "out.db",
        jobs=1,
        pool="thread",
        control_faults=[fault],
    )
    # The in-run RPC retry absorbed the fault: no run-level failure.
    assert result.executed_runs == [0, 1]
    assert result.failed_runs == {}
    assert result.telemetry["retried"] == 0
    assert result.telemetry["rpc_retries"] >= 1
    assert result.telemetry["rpc_timeouts"] >= 1


def test_campaign_quarantines_repeatedly_failing_node(tmp_path):
    with pytest.raises(CampaignError, match="failed"):
        run_campaign(
            _desc(replications=3),
            tmp_path / "campaign",
            jobs=1,
            pool="thread",
            max_attempts=3,
            quarantine_after=2,
            control_faults=[{"node": SM_NODE, "action": "hang"}],
        )
    journal = CampaignJournal(tmp_path / "campaign")
    assert journal.quarantined_nodes() == [SM_NODE]
    # Once quarantined, later runs fail terminally on their first attempt
    # instead of exhausting the retry budget: strictly fewer run_failed
    # entries than 3 runs x 3 attempts.
    failed_entries = [e for e in journal.entries() if e["type"] == "run_failed"]
    assert len(failed_entries) < 9


def test_campaign_crash_plus_session_faults_resume_to_reference(fault_free_reference, tmp_path):
    desc = _desc(replications=4)
    faults = [
        {"node": SU_NODE, "action": "hang", "run_id": 1, "max_attempt": 1, "sessions": [0]},
    ]
    with pytest.raises(CampaignError, match="abort"):
        run_campaign(
            desc,
            tmp_path / "campaign",
            jobs=2,
            pool="thread",
            max_attempts=2,
            control_faults=faults,
            abort_after_runs=2,
        )
    journal = CampaignJournal(tmp_path / "campaign")
    assert 0 < len(journal.completed()) < 4

    result = CampaignEngine(
        desc,
        tmp_path / "campaign",
        jobs=2,
        pool="thread",
        max_attempts=2,
        control_faults=faults,
        resume=True,
    ).execute(db_path=tmp_path / "resumed.db")
    assert len(result.skipped_runs) + len(result.executed_runs) == 4
    digest = database_digest(tmp_path / "resumed.db", ignore_columns=("AbortReason",))
    assert digest == fault_free_reference["campaign"]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_campaign_chaos_and_inspect(tmp_path, capsys):
    xml = tmp_path / "exp.xml"
    xml.write_text(description_to_xml(_desc(replications=4)), encoding="utf-8")
    chaos = tmp_path / "chaos.json"
    fault = {"node": SM_NODE, "action": "hang", "run_id": 1, "max_attempt": 1}
    chaos.write_text(json.dumps([fault]), encoding="utf-8")

    rc = cli_main(
        [
            "campaign",
            str(xml),
            "--dir",
            str(tmp_path / "campaign"),
            "--db",
            str(tmp_path / "cli.db"),
            "--jobs",
            "2",
            "--pool",
            "thread",
            "--max-retries",
            "1",
            "--chaos-json",
            str(chaos),
            "--quiet",
        ]
    )
    assert rc == 0
    capsys.readouterr()

    rc = cli_main(["inspect", str(tmp_path / "cli.db")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "runs: 4" in out
    assert "retried runs: 1" in out
    assert "RpcTimeout" in out


def test_cli_retries_alias_and_resilience_flags():
    parser = build_parser()
    args = parser.parse_args(["campaign", "x.xml", "--retries", "3"])
    assert args.max_retries == 3
    args = parser.parse_args(["campaign", "x.xml", "--max-retries", "2", "--abort-after", "2"])
    assert args.max_retries == 2
    assert args.abort_after == 2
    args = parser.parse_args(["campaign", "x.xml", "--rpc-timeout", "5", "--run-deadline", "120"])
    assert args.rpc_timeout == 5.0
    assert args.run_deadline == 120.0
    args = parser.parse_args(["run", "x.xml", "--rpc-timeout", "5", "--run-deadline", "60"])
    assert args.rpc_timeout == 5.0 and args.run_deadline == 60.0
