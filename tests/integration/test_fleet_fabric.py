"""Integration: the distributed campaign fabric's determinism invariant.

The pinned invariant (DESIGN.md §15): because every run is a pure
function of (description, run id), the merged level-3 database of a
fleet campaign is **byte-identical** to a local ``--jobs`` campaign —
across a healthy 3-worker fleet, and across a fleet where one worker is
killed mid-batch and the coordinator itself is restarted.  Table-I
summary statistics agree as a corollary.

Workers run as in-process threads over real localhost sockets; the CI
``fleet-chaos`` job repeats the same drill with real processes and
SIGKILL (``tools/fleet_chaos_drill.py``).
"""

import threading
import time

import pytest

from repro.campaign import CampaignJournal, database_digest, run_campaign
from repro.core.heartbeat import HeartbeatConfig
from repro.fabric import FabricCoordinator, FabricWorker, FleetChannel
from repro.sd.processlib import build_two_party_description


def _desc(seed=31, replications=6):
    return build_two_party_description(
        name="fleet-it",
        seed=seed,
        replications=replications,
        env_count=1,
    )


def _table_i_stats(db_path):
    from repro.analysis.responsiveness import run_outcomes
    from repro.sd.metrics import summarize_runs
    from repro.storage.level3 import ExperimentDatabase

    with ExperimentDatabase(db_path) as db:
        return summarize_runs(run_outcomes(db))


@pytest.fixture(scope="module")
def local_reference(tmp_path_factory):
    """The ``--jobs 2`` local campaign the fleet must match byte-for-byte."""
    root = tmp_path_factory.mktemp("local")
    run_campaign(_desc(), root / "campaign", db_path=root / "ref.db", jobs=2, pool="thread")
    return database_digest(root / "ref.db"), _table_i_stats(root / "ref.db")


def _spawn_worker(address, workdir, worker_id, execute=None, capacity=2):
    worker = FabricWorker(
        address,
        worker_id,
        workdir,
        capacity=capacity,
        poll_interval=0.1,
        reconnect_budget=30.0,
        execute=execute,
    )
    thread = threading.Thread(target=worker.run_forever, daemon=True, name=f"fleet-{worker_id}")
    thread.start()
    return worker, thread


def test_three_worker_fleet_byte_identical(local_reference, tmp_path):
    ref_digest, ref_stats = local_reference
    coordinator = FabricCoordinator(
        _desc(),
        tmp_path / "campaign",
        port=0,
        batch_size=2,
        lease_ttl=10.0,
    )
    with coordinator:
        workers = [
            _spawn_worker(coordinator.address, tmp_path / f"w{i}", f"w{i}")
            for i in range(3)
        ]
        result = coordinator.run_until_complete(
            db_path=tmp_path / "fleet.db",
            timeout=240.0,
        )
        for _, thread in workers:
            thread.join(timeout=10.0)
    assert result.pool == "fleet"
    assert result.failed_runs == {}
    assert database_digest(tmp_path / "fleet.db") == ref_digest
    assert _table_i_stats(tmp_path / "fleet.db") == ref_stats
    # Every worker registered; the journal has one completion per run.
    journal = CampaignJournal(tmp_path / "campaign")
    assert journal.registered_workers() == ["w0", "w1", "w2"]
    assert sorted(journal.completed()) == list(range(len(result.plan)))


def test_kill_worker_and_coordinator_restart_converges(local_reference, tmp_path):
    """The full failover drill: SIGKILL-equivalent worker death mid-batch,
    coordinator crash, resume — the merged database must not notice."""
    ref_digest, ref_stats = local_reference
    heartbeat = HeartbeatConfig(
        interval=0.3,
        suspect_after=2,
        dead_after=4,
        quarantine_after=2,
    )
    coordinator = FabricCoordinator(
        _desc(),
        tmp_path / "campaign",
        port=0,
        batch_size=2,
        lease_ttl=2.0,
        heartbeat=heartbeat,
    )

    executed = []
    wedge = threading.Event()

    def die_after_first(spec):
        from repro.core.master import execute_spec_run

        if executed:
            # Second leased run: the process "dies" — renewals stop, the
            # ack never arrives, and this thread wedges like a zombie.
            bad_worker.kill()
            wedge.wait(300.0)
            raise RuntimeError("unreachable")
        executed.append(spec["run_id"])
        return execute_spec_run(spec)

    with coordinator:
        bad_worker, bad_thread = _spawn_worker(
            coordinator.address,
            tmp_path / "bad",
            "w-bad",
            execute=die_after_first,
        )
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            with coordinator._lock:
                settled = len(coordinator.scheduler.done)
            if settled >= 1 and bad_worker._dead.is_set():
                break
            time.sleep(0.05)
        else:
            pytest.fail("bad worker never completed a run and died")
    # Coordinator is now stopped mid-campaign (its crash): the dead
    # worker's lease is still open in the ledger.

    resumed = FabricCoordinator(
        _desc(),
        tmp_path / "campaign",
        port=0,
        batch_size=2,
        lease_ttl=2.0,
        heartbeat=heartbeat,
        resume=True,
    )
    with resumed:
        workers = [
            _spawn_worker(resumed.address, tmp_path / f"fresh{i}", f"fresh{i}")
            for i in range(2)
        ]
        result = resumed.run_until_complete(
            db_path=tmp_path / "fleet.db",
            timeout=240.0,
        )
        for _, thread in workers:
            thread.join(timeout=10.0)
    wedge.set()

    assert database_digest(tmp_path / "fleet.db") == ref_digest
    assert _table_i_stats(tmp_path / "fleet.db") == ref_stats
    journal = CampaignJournal(tmp_path / "campaign")
    # All runs accounted for, exactly one lease expiry reclaimed the dead
    # worker's batch (exactly-once re-lease), and both sessions journaled.
    assert sorted(journal.completed()) == list(range(len(result.plan)))
    expiries = [e for e in journal.entries() if e["type"] == "lease_expired"]
    assert len(expiries) == 1
    assert expiries[0]["worker_id"] == "w-bad"
    assert journal.session_count() == 2
    assert journal.finished()


def test_quarantine_rpc_re_leases_in_flight_batch_exactly_once(tmp_path):
    """An operator quarantine revokes a worker's in-flight batch once; the
    batch is re-leased to the remaining fleet exactly once."""
    coordinator = FabricCoordinator(
        _desc(replications=4),
        tmp_path / "campaign",
        port=0,
        batch_size=2,
        lease_ttl=300.0,
    )
    wedge = threading.Event()

    def never_finishes(spec):
        wedge.wait(300.0)
        raise RuntimeError("unreachable")

    with coordinator:
        slow, _ = _spawn_worker(
            coordinator.address,
            tmp_path / "slow",
            "w-slow",
            execute=never_finishes,
        )
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            with coordinator._lock:
                leased = coordinator.dispatcher.leases.leased_runs()
            if leased:
                break
            time.sleep(0.05)
        assert leased == {0, 1}

        with FleetChannel(coordinator.address) as channel:
            import json

            first = json.loads(channel.call("quarantine", "w-slow", "wedged"))
            second = json.loads(channel.call("quarantine", "w-slow", "wedged"))
        assert first["requeued"] == [0, 1]
        assert second["requeued"] == []  # exactly once

        healthy, healthy_thread = _spawn_worker(
            coordinator.address,
            tmp_path / "ok",
            "w-ok",
        )
        result = coordinator.run_until_complete(
            db_path=tmp_path / "fleet.db",
            timeout=240.0,
        )
        healthy_thread.join(timeout=10.0)
        slow.kill()
    wedge.set()
    assert result.failed_runs == {}
    journal = CampaignJournal(tmp_path / "campaign")
    assert journal.quarantined_workers() == ["w-slow"]
    # The re-executed batch committed through the healthy worker only.
    completed = journal.completed()
    assert {completed[r]["worker"] for r in (0, 1)} == {"w-ok"}
