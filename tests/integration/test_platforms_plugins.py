"""Integration: platform adapters, plugins, and the packet tagger pipeline."""

import pytest

from repro import ExperiMaster, Level2Store, run_experiment, store_level3
from repro.analysis.packetstats import packet_stats_for_run
from repro.core.errors import PlatformError
from repro.core.plugins import MediumStatsPlugin, PluginManager
from repro.platforms.base import PlatformCapabilities
from repro.platforms.localhost import LocalhostPlatform
from repro.platforms.simulated import PlatformConfig, SimulatedPlatform
from repro.sd.processlib import build_two_party_description
from repro.storage.conditioning import condition_run
from repro.storage.level3 import ExperimentDatabase


def _small_desc(seed=41, **kw):
    kw.setdefault("replications", 1)
    kw.setdefault("env_count", 2)
    return build_two_party_description(seed=seed, **kw)


# ----------------------------------------------------------------------
# Platforms
# ----------------------------------------------------------------------
def test_platform_capabilities_complete():
    platform = SimulatedPlatform(_small_desc())
    assert platform.capabilities().missing() == []
    assert isinstance(platform.capabilities(), PlatformCapabilities)


def test_platform_rejects_unknown_protocol():
    with pytest.raises(PlatformError, match="unknown SD protocol"):
        SimulatedPlatform(_small_desc(), PlatformConfig(protocol="carrier-pigeon"))


def test_platform_rejects_unknown_topology():
    with pytest.raises(PlatformError, match="unknown topology"):
        SimulatedPlatform(_small_desc(), PlatformConfig(topology="moebius"))


def test_platform_topology_covers_all_platform_nodes():
    for shape in ("mesh", "grid", "line", "full"):
        platform = SimulatedPlatform(_small_desc(), PlatformConfig(topology=shape))
        ids = {n.node_id for n in platform.description.platform.nodes}
        assert set(platform.topology.node_names) == ids


def test_platform_custom_topology():
    from repro.net.topology import from_edges

    desc = _small_desc(env_count=0)  # two nodes: t9-100, t9-101
    topo = from_edges([("t9-100", "t9-101")])
    platform = SimulatedPlatform(desc, PlatformConfig(topology=topo))
    assert platform.topology is topo


def test_platform_custom_topology_must_cover_nodes():
    from repro.net.topology import from_edges

    desc = _small_desc(env_count=2)
    topo = from_edges([("t9-100", "t9-101")])
    with pytest.raises(PlatformError, match="misses platform nodes"):
        SimulatedPlatform(desc, PlatformConfig(topology=topo))


def test_check_nodes_detects_missing():
    platform = SimulatedPlatform(_small_desc())
    with pytest.raises(PlatformError, match="no nodes"):
        platform.check_nodes(["ghost-node"])


def test_localhost_platform_realtime_pacing(tmp_path):
    import time

    desc = _small_desc(env_count=0)
    desc.special_params.update({"run_spacing": 0.0, "run_settle_time": 0.01})
    platform = LocalhostPlatform(desc, realtime_factor=200.0)
    master = ExperiMaster(platform, desc, Level2Store(tmp_path / "rt"))
    t0 = time.monotonic()
    result = master.execute()
    wall = time.monotonic() - t0
    assert result.summary()["executed"] == 1
    # Simulated duration / 200 must roughly lower-bound the wall time.
    assert wall >= result.duration / 200.0 * 0.5


def test_localhost_rejects_bad_factor():
    with pytest.raises(ValueError):
        LocalhostPlatform(_small_desc(), realtime_factor=0.0)


# ----------------------------------------------------------------------
# Plugins
# ----------------------------------------------------------------------
def test_medium_stats_plugin_records_per_run(tmp_path):
    desc = _small_desc(replications=2)
    platform = SimulatedPlatform(desc)
    plugins = PluginManager(measurement=[MediumStatsPlugin(platform.medium)])
    master = ExperiMaster(platform, desc, Level2Store(tmp_path / "pl"), plugins=plugins)
    result = master.execute()
    db_path = store_level3(result.store, tmp_path / "pl.db")
    with ExperimentDatabase(db_path) as db:
        for run_id in db.run_ids():
            extras = db.extra_measurements(run_id)
            medium = extras["master"]["medium_stats"]["medium"]
            assert medium["transmissions"] > 0
            assert medium["deliveries"] > 0


def test_custom_measurement_and_action_plugin(tmp_path):
    from repro.core.actions import ActionKind, ActionSpec
    from repro.core.plugins import ActionPlugin, MeasurementPlugin
    from repro.core.processes import DomainAction

    class CountingPlugin(MeasurementPlugin):
        name = "counter"

        def __init__(self):
            self.inits = 0

        def on_run_init(self, master, run):
            self.inits += 1

        def on_run_exit(self, master, run):
            return {"runs_seen": self.inits}

        def on_experiment_exit(self, master):
            return {"total": self.inits}

    class BeepAction(ActionPlugin):
        name = "beeper"

        def action_specs(self):
            return [ActionSpec("beep", ActionKind.NODE, emits=("beeped",))]

        def node_handlers(self):
            # handler(node_manager, params): installed on every node by
            # the master — the complete plugin extension path.
            return {"beep": lambda nm, params: nm.emit("beeped")}

    desc = _small_desc()
    desc.actors[0].actions.insert(1, DomainAction(name="beep"))
    platform = SimulatedPlatform(desc)
    counting = CountingPlugin()
    plugins = PluginManager(measurement=[counting], action=[BeepAction()])
    master = ExperiMaster(platform, desc, Level2Store(tmp_path / "cp"), plugins=plugins)
    result = master.execute()
    assert counting.inits == 1
    db_path = store_level3(result.store, tmp_path / "cp.db")
    with ExperimentDatabase(db_path) as db:
        assert db.events(event_type="beeped")
        extras = db.extra_measurements(0)
        assert extras["master"]["counter"]["runs_seen"] == 1
    meas = result.store.experiment_measurements()
    assert meas["counter"]["total"] == 1


def test_duplicate_plugin_names_rejected():
    from repro.core.plugins import MeasurementPlugin

    class P(MeasurementPlugin):
        name = "same"

    with pytest.raises(ValueError):
        PluginManager(measurement=[P(), P()])


# ----------------------------------------------------------------------
# Tagger end-to-end
# ----------------------------------------------------------------------
def test_tagged_packets_enable_loss_delay_analysis(tmp_path):
    result = run_experiment(_small_desc(), store_root=tmp_path / "tag")
    run = condition_run(result.store, 0)
    rows = packet_stats_for_run(run.packets)
    assert rows, "tagged experiment packets must produce loss/delay rows"
    for row in rows:
        assert 0.0 <= row["loss_rate"] <= 1.0
        if row["delay"]["n"]:
            assert row["delay"]["mean"] > 0.0
