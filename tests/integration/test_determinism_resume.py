"""Integration: the repeatability and recovery claims.

* Two fresh executions of the same description are byte-identical at the
  level-3 Events table (absolute common times included) — Sec. IV-C1's
  "perfect repeatability".
* An execution aborted mid-series and resumed converges to the same
  per-run behaviour: identical event sequences and (within float noise)
  identical run-relative timings — Sec. VII's "recovers from failures by
  resuming aborted runs".
"""

import json

import pytest

from repro import ExperiMaster, Level2Store, store_level3
from repro.core.errors import ExecutionError, RecoveryError
from repro.platforms.simulated import SimulatedPlatform
from repro.sd.processlib import build_two_party_description
from repro.storage.level3 import ExperimentDatabase


def _desc(seed=31):
    return build_two_party_description(
        replications=3, seed=seed, env_count=2,
        special_params={"run_spacing": 0.1},
    )


def _execute(desc, root, resume=False, abort_after=None):
    platform = SimulatedPlatform(desc)
    master = ExperiMaster(
        platform, desc, Level2Store(root), resume=resume,
        abort_after_runs=abort_after,
    )
    return master.execute()


def _events_table(root, tmp, tag):
    db_path = store_level3(Level2Store(root), tmp / f"{tag}.db")
    with ExperimentDatabase(db_path) as db:
        return db.events(), {r["RunID"]: r["StartTime"] for r in db.run_infos()
                             if r["NodeID"] == "master"}


def test_fresh_executions_byte_identical(tmp_path):
    desc = _desc()
    _execute(desc, tmp_path / "a")
    _execute(desc, tmp_path / "b")
    ev_a, _ = _events_table(tmp_path / "a", tmp_path, "a")
    ev_b, _ = _events_table(tmp_path / "b", tmp_path, "b")
    assert json.dumps(ev_a, sort_keys=True) == json.dumps(ev_b, sort_keys=True)


def test_different_seed_differs(tmp_path):
    _execute(_desc(seed=31), tmp_path / "a")
    _execute(_desc(seed=32), tmp_path / "b")
    ev_a, _ = _events_table(tmp_path / "a", tmp_path, "a")
    ev_b, _ = _events_table(tmp_path / "b", tmp_path, "b")
    assert json.dumps(ev_a, sort_keys=True) != json.dumps(ev_b, sort_keys=True)


def test_abort_and_resume_completes_all_runs(tmp_path):
    desc = _desc()
    with pytest.raises(ExecutionError, match="abort"):
        _execute(desc, tmp_path / "r", abort_after=1)
    result = _execute(desc, tmp_path / "r", resume=True)
    assert sorted(result.skipped_runs) == [0]
    assert sorted(result.executed_runs) == [1, 2]

    from repro.core.recovery import Journal

    assert Journal(result.store).finished()


def test_resumed_runs_equivalent_to_uninterrupted(tmp_path):
    desc = _desc()
    # Reference: uninterrupted execution.
    _execute(desc, tmp_path / "full")
    # Aborted after one run, then resumed.
    with pytest.raises(ExecutionError):
        _execute(desc, tmp_path / "resumed", abort_after=1)
    _execute(desc, tmp_path / "resumed", resume=True)

    ev_full, starts_full = _events_table(tmp_path / "full", tmp_path, "f")
    ev_res, starts_res = _events_table(tmp_path / "resumed", tmp_path, "r")

    def per_run(events, starts):
        runs = {}
        for e in events:
            rid = e["run_id"]
            if rid is None:
                continue
            runs.setdefault(rid, []).append(
                (e["name"], e["node"], tuple(e["params"]),
                 e["common_time"] - starts[rid])
            )
        return runs

    full_runs = per_run(ev_full, starts_full)
    res_runs = per_run(ev_res, starts_res)
    assert set(full_runs) == set(res_runs)
    for rid in full_runs:
        a, b = full_runs[rid], res_runs[rid]
        assert [x[:3] for x in a] == [x[:3] for x in b], f"run {rid} sequence"
        for (_, _, _, ta), (_, _, _, tb) in zip(a, b):
            assert ta == pytest.approx(tb, abs=1e-6), f"run {rid} timing"


def test_determinism_across_processes_and_hash_seeds(tmp_path):
    """The strongest repeatability form: two separate Python processes
    with different PYTHONHASHSEED values produce identical event tables.
    Guards against accidental dependence on set/dict iteration order or
    object identity anywhere in the stack."""
    import os
    import subprocess
    import sys
    import textwrap

    script = tmp_path / "det.py"
    script.write_text(textwrap.dedent(
        """
        import hashlib, json, os, sys, tempfile
        from repro import run_experiment, store_level3
        from repro.sd.processlib import build_two_party_description
        from repro.storage.level3 import ExperimentDatabase

        desc = build_two_party_description(
            replications=1, seed=55, env_count=2, traffic=True,
            pairs_levels=(2,), bw_levels=(50,),
        )
        result = run_experiment(desc, store_root=tempfile.mkdtemp())
        db_path = os.path.join(tempfile.mkdtemp(), "d.db")
        store_level3(result.store, db_path)
        with ExperimentDatabase(db_path) as db:
            blob = json.dumps(db.events(), sort_keys=True).encode()
        print(hashlib.sha256(blob).hexdigest())
        """
    ))

    def digest(hash_seed):
        env = dict(os.environ, PYTHONHASHSEED=str(hash_seed))
        out = subprocess.run(
            [sys.executable, str(script)], env=env, capture_output=True,
            text=True, timeout=300, check=True,
        )
        return out.stdout.strip()

    assert digest(1) == digest(424242)


def test_second_execution_without_resume_refused(tmp_path):
    desc = _desc()
    _execute(desc, tmp_path / "x")
    with pytest.raises(RecoveryError, match="already holds a journal"):
        _execute(desc, tmp_path / "x")


def test_resume_completed_experiment_refused(tmp_path):
    desc = _desc()
    _execute(desc, tmp_path / "x")
    with pytest.raises(RecoveryError, match="already completed"):
        _execute(desc, tmp_path / "x", resume=True)


def test_resume_with_changed_description_refused(tmp_path):
    desc = _desc()
    with pytest.raises(ExecutionError):
        _execute(desc, tmp_path / "x", abort_after=1)
    changed = _desc()
    changed.comment = "edited since the abort"
    with pytest.raises(RecoveryError, match="description changed"):
        _execute(changed, tmp_path / "x", resume=True)
