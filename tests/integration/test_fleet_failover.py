"""Integration: automatic coordinator failover (DESIGN.md §16).

Three drills over real localhost sockets with in-process workers:

1. **Leader death + hot standby.**  The leader is stopped abruptly
   mid-campaign with a standby watching the election ledger; the standby
   must claim the next epoch within the election TTL, workers must
   re-resolve through their seed lists, and the merged database must be
   byte-identical to the no-failure local reference.
2. **Graceful handoff.**  ``repro fabric handoff`` drains in-flight
   batches and releases leadership; the successor finishes the campaign
   with exactly zero re-leased runs and an identical digest.
3. **Worker partition.**  A worker is partitioned from the leader
   mid-batch; its batch is re-leased and re-executed, and when the
   partition heals its buffered stale acks deduplicate instead of
   double-committing.

The CI ``fleet-chaos`` job repeats drills 1 and a SIGSTOP-based
partition variant with real processes (``tools/fleet_chaos_drill.py``).
"""

import json
import socket
import threading
import time

import pytest

from repro.campaign import CampaignJournal, database_digest, run_campaign
from repro.core.errors import CampaignError
from repro.core.heartbeat import HeartbeatConfig
from repro.fabric import (
    FabricCoordinator,
    FabricWorker,
    FleetChannel,
    LeadershipLost,
    PartitionGate,
    StandbyCoordinator,
    clear_partition_gate,
    install_partition_gate,
)
from repro.fabric.election import ElectionLedger
from repro.sd.processlib import build_two_party_description


def _desc(seed=31, replications=6):
    return build_two_party_description(
        name="fleet-it",
        seed=seed,
        replications=replications,
        env_count=1,
    )


@pytest.fixture(scope="module")
def local_reference(tmp_path_factory):
    root = tmp_path_factory.mktemp("local")
    run_campaign(
        _desc(), root / "campaign", db_path=root / "ref.db", jobs=2, pool="thread",
    )
    return database_digest(root / "ref.db")


def _free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _spawn_worker(seeds, workdir, worker_id, reconnect_budget=8.0, execute=None):
    worker = FabricWorker(
        seeds,
        worker_id,
        workdir,
        capacity=2,
        poll_interval=0.1,
        reconnect_budget=reconnect_budget,
        execute=execute,
    )
    thread = threading.Thread(
        target=worker.run_forever, daemon=True, name=f"fleet-{worker_id}",
    )
    thread.start()
    return worker, thread


def _spawn_standby(campaign_dir, port, db_path, timeout=240.0, **kwargs):
    standby = StandbyCoordinator(
        _desc(),
        campaign_dir,
        standby_id="s1",
        port=port,
        election_ttl=1.0,
        poll=0.1,
        db_path=db_path,
        batch_size=2,
        **kwargs,
    )
    outcome = {}

    def watch():
        try:
            outcome["result"] = standby.run(timeout=timeout)
        except Exception as exc:  # noqa: BLE001 - surfaced via assert
            outcome["error"] = exc

    thread = threading.Thread(target=watch, daemon=True, name="standby")
    thread.start()
    return standby, thread, outcome


def _wait_for_settled(coordinator, minimum, budget=120.0):
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        with coordinator._lock:
            settled = len(coordinator.scheduler.done)
        if settled >= minimum:
            return settled
        time.sleep(0.05)
    pytest.fail(f"coordinator never settled {minimum} run(s)")


def test_standby_takes_over_after_leader_death(local_reference, tmp_path):
    campaign_dir = tmp_path / "campaign"
    leader_port, standby_port = _free_port(), _free_port()
    seeds = f"127.0.0.1:{leader_port},127.0.0.1:{standby_port}"

    leader = FabricCoordinator(
        _desc(),
        campaign_dir,
        port=leader_port,
        batch_size=2,
        lease_ttl=6.0,
        leader_id="leader-a",
        election_ttl=1.0,
    )
    leader.start()
    # Spawned only after the leader claimed epoch 1: a standby watching
    # an unclaimed ledger would bootstrap leadership itself.
    standby, standby_thread, outcome = _spawn_standby(
        campaign_dir, standby_port, tmp_path / "fleet.db",
    )
    try:
        assert leader.epoch == 1
        workers = [
            _spawn_worker(seeds, tmp_path / f"w{i}", f"w{i}") for i in range(2)
        ]
        _wait_for_settled(leader, 1)
    finally:
        # Abrupt death: the server vanishes, renewals stop, and — unlike
        # a graceful exit — the leadership lease is NOT released.
        leader.stop()
    died_at = time.monotonic()

    # Takeover within the (election) lease TTL plus the standby's poll.
    ledger = ElectionLedger(campaign_dir, ttl=1.0)
    deadline = died_at + 1.0 + 2.0
    while time.monotonic() < deadline:
        record = ledger.leader()
        if record is not None and record.epoch == 2:
            break
        time.sleep(0.05)
    else:
        pytest.fail("standby never claimed the lapsed lease within the TTL")
    assert record.leader_id == "s1"

    standby_thread.join(timeout=240.0)
    assert not standby_thread.is_alive()
    assert "error" not in outcome, outcome.get("error")
    result = outcome["result"]
    assert result is not None and result.failed_runs == {}
    for worker, thread in workers:
        thread.join(timeout=30.0)

    assert database_digest(tmp_path / "fleet.db") == local_reference
    journal = CampaignJournal(campaign_dir)
    entries = journal.entries()
    completions = [e for e in entries if e["type"] == "run_complete"]
    # Exactly-once commits across the failover, and both epochs are
    # attributable: the successor's entries carry epoch 2.
    assert sorted(e["run_id"] for e in completions) == sorted(
        set(e["run_id"] for e in completions),
    )
    assert {e["epoch"] for e in completions} <= {1, 2}
    assert max(e["epoch"] for e in completions) == 2
    assert journal.finished()
    # At least one worker walked its seed list to the new leader.
    assert sum(w.failovers for w, _ in workers) >= 1


def test_graceful_handoff_re_leases_zero_runs(local_reference, tmp_path):
    campaign_dir = tmp_path / "campaign"
    leader_port, standby_port = _free_port(), _free_port()
    seeds = f"127.0.0.1:{leader_port},127.0.0.1:{standby_port}"

    leader = FabricCoordinator(
        _desc(),
        campaign_dir,
        port=leader_port,
        batch_size=2,
        lease_ttl=30.0,
        leader_id="leader-a",
        election_ttl=1.5,
    )
    with leader:
        standby, standby_thread, outcome = _spawn_standby(
            campaign_dir, standby_port, tmp_path / "fleet.db",
        )
        workers = [
            _spawn_worker(seeds, tmp_path / f"w{i}", f"w{i}") for i in range(2)
        ]
        _wait_for_settled(leader, 1)
        with FleetChannel(leader.address) as channel:
            reply = json.loads(channel.call("handoff", 60.0))
        assert reply["released"] is True
        assert reply["epoch"] == 1
        # The deposed leader refuses further leadership-bound work.
        with pytest.raises(LeadershipLost) as lost:
            leader.finished()
        assert lost.value.reason == "handoff"

    standby_thread.join(timeout=240.0)
    assert "error" not in outcome, outcome.get("error")
    result = outcome["result"]
    assert result is not None and result.failed_runs == {}
    for worker, thread in workers:
        thread.join(timeout=30.0)

    assert database_digest(tmp_path / "fleet.db") == local_reference
    journal = CampaignJournal(campaign_dir)
    # Zero re-leased runs: the handoff drained every in-flight batch, so
    # no lease ever expired or was revoked across the transfer.
    assert [e for e in journal.entries() if e["type"] == "lease_expired"] == []
    closes = [
        json.loads(line)
        for line in (campaign_dir / "leases.jsonl").read_text().splitlines()
        if json.loads(line).get("op") == "close"
    ]
    assert {c["reason"] for c in closes} == {"complete"}
    completions = [
        e for e in journal.entries() if e["type"] == "run_complete"
    ]
    assert sorted(e["run_id"] for e in completions) == sorted(
        set(e["run_id"] for e in completions),
    )


def test_partitioned_worker_acks_deduplicate_after_heal(local_reference, tmp_path):
    campaign_dir = tmp_path / "campaign"
    heartbeat = HeartbeatConfig(
        interval=0.5, suspect_after=20, dead_after=40, quarantine_after=60,
    )
    coordinator = FabricCoordinator(
        _desc(),
        campaign_dir,
        port=0,
        batch_size=2,
        lease_ttl=2.0,
        heartbeat=heartbeat,
        election_ttl=5.0,
    )
    gate = install_partition_gate(PartitionGate())
    try:
        with coordinator:
            leader_addr = coordinator.address
            cut_after_first = []

            def cut_uplink(spec):
                from repro.core.master import execute_spec_run

                result = execute_spec_run(spec)
                if not cut_after_first:
                    # The run executed, but before its ack leaves, the
                    # worker's uplink is cut (asymmetric: only w-cut).
                    cut_after_first.append(spec["run_id"])
                    gate.partition("w-cut", leader_addr)
                return result

            cut_worker, cut_thread = _spawn_worker(
                leader_addr,
                tmp_path / "cut",
                "w-cut",
                reconnect_budget=60.0,
                execute=cut_uplink,
            )
            ok_worker, ok_thread = _spawn_worker(
                leader_addr, tmp_path / "ok", "w-ok",
            )
            result = coordinator.run_until_complete(
                db_path=tmp_path / "fleet.db", timeout=240.0,
            )
            # Campaign finished through w-ok; heal so w-cut's buffered
            # acks replay against the still-serving coordinator.
            gate.heal(src="w-cut")
            ok_thread.join(timeout=30.0)
            cut_thread.join(timeout=90.0)
            assert not cut_thread.is_alive()
    finally:
        clear_partition_gate()

    assert result.failed_runs == {}
    assert database_digest(tmp_path / "fleet.db") == local_reference
    journal = CampaignJournal(campaign_dir)
    completions = [e for e in journal.entries() if e["type"] == "run_complete"]
    # The partitioned run re-executed elsewhere and the healed worker's
    # stale ack deduplicated: still exactly one commit per run.
    assert sorted(e["run_id"] for e in completions) == sorted(
        set(e["run_id"] for e in completions),
    )
    expired = [e for e in journal.entries() if e["type"] == "lease_expired"]
    assert expired and all(e["worker_id"] == "w-cut" for e in expired)
    committed_by = {e["run_id"]: e["worker"] for e in completions}
    assert committed_by[cut_after_first[0]] == "w-ok"
