"""Integration: the paper's verbatim experiment, end to end.

XML description → validation → plan → execution on the emulated testbed →
level-2 collection → conditioning → level-3 SQLite → analysis.
"""

import pytest

from repro import run_experiment, store_level3
from repro.analysis.responsiveness import run_outcomes
from repro.analysis.timeline import build_run_timeline
from repro.core.xmlio import description_from_xml
from repro.paper import full_paper_experiment_xml
from repro.storage.level3 import ExperimentDatabase


@pytest.fixture(scope="module")
def executed(tmp_path_factory):
    """Execute the paper experiment once; share across this module."""
    desc = description_from_xml(full_paper_experiment_xml(replications=1, seed=5))
    root = tmp_path_factory.mktemp("paper-exec")
    result = run_experiment(desc, store_root=root / "l2")
    db_path = store_level3(result.store, root / "exp.db")
    return desc, result, db_path


def test_all_runs_execute(executed):
    _desc, result, _db = executed
    assert result.summary()["executed"] == 6  # 2 pairs x 3 bw x 1 replication
    assert result.timed_out_runs == []


def test_sd_discovery_succeeds_every_run(executed):
    _desc, _result, db_path = executed
    with ExperimentDatabase(db_path) as db:
        outcomes = run_outcomes(db)
        assert len(outcomes) == 6  # one SU per run
        assert all(o.complete for o in outcomes)
        assert all(0.0 < o.t_r < 30.0 for o in outcomes)


def test_event_protocol_per_run(executed):
    """Each run shows the exact Fig. 9/10 event choreography."""
    _desc, _result, db_path = executed
    with ExperimentDatabase(db_path) as db:
        for run_id in db.run_ids():
            names_su = [
                e["name"] for e in db.events(run_id=run_id, node_id="t9-108")
            ]
            for expected in (
                "run_init", "sd_init_done", "sd_start_search",
                "sd_service_add", "done", "sd_stop_search", "sd_exit_done",
                "run_exit",
            ):
                assert expected in names_su, (run_id, expected, names_su)
            names_sm = [
                e["name"] for e in db.events(run_id=run_id, node_id="t9-105")
            ]
            assert names_sm.index("sd_start_publish") < names_sm.index("sd_stop_publish")


def test_causal_order_on_common_time_base(executed):
    """Despite node clocks skewed by up to ±0.5 s, the conditioned event
    order is causal: publish before add, search before add, add before
    done."""
    _desc, _result, db_path = executed
    with ExperimentDatabase(db_path) as db:
        for run_id in db.run_ids():
            t = {
                e["name"]: e["common_time"]
                for e in db.events(run_id=run_id)
                if e["name"] in ("sd_start_publish", "sd_start_search",
                                 "sd_service_add", "done")
            }
            assert t["sd_start_publish"] < t["sd_service_add"]
            assert t["sd_start_search"] < t["sd_service_add"]
            assert t["sd_service_add"] < t["done"]


def test_raw_local_timestamps_are_actually_skewed(executed):
    """The clock problem must be real: per-node TimeDiff values differ."""
    _desc, _result, db_path = executed
    with ExperimentDatabase(db_path) as db:
        diffs = {r["NodeID"]: r["TimeDiff"] for r in db.run_infos(0)}
        node_diffs = [v for k, v in diffs.items() if k != "master"]
        assert len({round(v, 6) for v in node_diffs}) > 1
        assert any(abs(v) > 0.01 for v in node_diffs)


def test_traffic_generator_ran(executed):
    _desc, _result, db_path = executed
    with ExperimentDatabase(db_path) as db:
        started = db.events(event_type="env_traffic_started")
        stopped = db.events(event_type="env_traffic_stopped")
        assert len(started) == 6 and len(stopped) == 6
        # Load packets appear in the captures of the higher-bandwidth
        # treatments (at 10 kbit/s the first CBR packet may fall after the
        # sub-second discovery already completed the run).
        flows = set()
        for run_id in db.run_ids():
            flows |= {p.get("flow") for p in db.packets(run_id=run_id)}
        assert "generated-load" in flows and "experiment" in flows


def test_timeline_reconstructs_phases(executed):
    _desc, _result, db_path = executed
    with ExperimentDatabase(db_path) as db:
        tl = build_run_timeline(db.events(run_id=0), 0)
        assert tl.t_r is not None
        d = tl.durations()
        assert d["preparation"] > 0 and d["execution"] > 0


def test_topology_measured_before_and_after(executed):
    _desc, result, _db = executed
    before = result.store.read_topology("before")
    after = result.store.read_topology("after")
    assert before["hop_counts"] and after["hop_counts"]
    assert before["snapshot"] == after["snapshot"]


def test_journal_complete(executed):
    from repro.core.recovery import Journal

    _desc, result, _db = executed
    j = Journal(result.store)
    assert j.finished()
    assert j.completed_runs() == set(range(6))


def test_logs_collected(executed):
    _desc, result, _db = executed
    log = result.store.read_node_log("t9-105")
    assert "run_init: 0" in log
    assert "action: sd_start_publish" in log
