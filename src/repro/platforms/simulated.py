"""The simulated wireless-mesh platform (stand-in for the DES testbed).

Builds, from an experiment description, everything the execution needs:

* the simulation kernel,
* a mesh :class:`~repro.net.topology.Topology` whose node names are the
  platform node ids of the description's platform spec (Fig. 8),
* the shared :class:`~repro.net.medium.WirelessMedium`,
* one :class:`~repro.net.node.NetNode` per platform node, with a skewed
  local clock drawn from the platform seed,
* one :class:`~repro.core.nodemanager.NodeManager` per node on the
  XML-RPC control channel,
* one SD protocol agent per node (``mdns`` / ``slp`` / ``hybrid``),
  installed as the node's ``sd_*`` action implementation.

Determinism: the platform derives every random stream from the
description's seed, and :meth:`on_run_init` reseeds the shared medium and
control-channel streams per run id, so any run's behaviour is independent
of which runs executed before it (the resume guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.description import ExperimentDescription
from repro.core.errors import DescriptionError, PlatformError
from repro.core.nodemanager import NodeManager
from repro.core.params import SpecialParams
from repro.core.rpc import ControlChannel, RetryPolicy
from repro.faults.control import ControlFaultPlan
from repro.net.clock import random_clock
from repro.net.medium import CongestionModel, WirelessMedium
from repro.net.node import NetNode
from repro.net.packet import reset_uid_counter
from repro.net.topology import (
    Topology,
    full_mesh_topology,
    grid_topology,
    line_topology,
    random_geometric_topology,
)
from repro.platforms.base import Platform
from repro.sd.agent import install_sd_agent
from repro.sd.hybrid import HybridAgent
from repro.sd.mdns import MdnsAgent
from repro.sd.registry import RegistryAgent
from repro.sd.slp import SlpAgent
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry, derive_seed

__all__ = ["PlatformConfig", "SimulatedPlatform"]

_AGENT_CLASSES = {
    "mdns": MdnsAgent,
    "slp": SlpAgent,
    "hybrid": HybridAgent,
    "registry": RegistryAgent,
}


@dataclass
class PlatformConfig:
    """Tuning of the emulated testbed.

    Attributes
    ----------
    topology:
        ``"mesh"`` (random geometric), ``"grid"``, ``"line"`` or
        ``"full"`` — or a prebuilt :class:`Topology` whose node names
        match the description's platform node ids.
    mesh_radius:
        Connectivity radius for the random geometric mesh.
    protocol:
        SD agent installed on every node: ``mdns`` / ``slp`` / ``hybrid``.
    sd_config:
        Extra agent config (see the agent classes).
    congestion:
        Medium congestion model; ``None`` = defaults.
    clock_max_offset / clock_max_drift:
        Bounds of the per-node clock desynchronization.
    mac_retries:
        Unicast MAC retransmission budget of the medium.
    base_loss:
        Per-link zero-load loss probability.
    control_faults:
        Chaos plan for the control plane itself (see
        :mod:`repro.faults.control`): a list of JSON-able fault entries
        armed per run against the XML-RPC channel.
    """

    topology: Any = "mesh"
    mesh_radius: float = 0.45
    protocol: str = "mdns"
    sd_config: Dict[str, Any] = field(default_factory=dict)
    congestion: Optional[CongestionModel] = None
    clock_max_offset: float = 0.5
    clock_max_drift: float = 100e-6
    mac_retries: int = 3
    base_loss: float = 0.02
    control_faults: List[Dict[str, Any]] = field(default_factory=list)


class SimulatedPlatform(Platform):
    """The emulated testbed bound to one experiment description."""

    def __init__(
        self,
        description: ExperimentDescription,
        config: Optional[PlatformConfig] = None,
    ) -> None:
        self.description = description
        self.config = config or PlatformConfig()
        if self.config.protocol not in _AGENT_CLASSES:
            raise PlatformError(
                f"unknown SD protocol {self.config.protocol!r}; "
                f"choose from {sorted(_AGENT_CLASSES)}"
            )
        params = SpecialParams(description.special_params)

        # Fresh global packet-uid space per platform so repeated
        # executions in one Python process stay comparable byte for byte.
        reset_uid_counter(1)

        self.rngs = RngRegistry(derive_seed(description.seed, "platform"))
        self.sim = Simulator()
        self.channel = ControlChannel(
            self.sim,
            latency=params.get("rpc_latency"),
            jitter=params.get("rpc_jitter"),
            rng=self.rngs.fresh("channel", -1),
            call_timeout=params.get("rpc_timeout"),
            retry=RetryPolicy(
                max_attempts=params.get("rpc_max_attempts"),
                seed=derive_seed(description.seed, "rpc-retry", -1),
            ),
        )
        self.control_faults = ControlFaultPlan(self.config.control_faults)

        node_ids = [n.node_id for n in description.platform.nodes]
        if not node_ids:
            raise PlatformError("description has an empty platform spec")
        self.topology = self._build_topology(node_ids)
        self.medium = WirelessMedium(
            self.sim,
            self.topology,
            rng=self.rngs.fresh("medium", -1),
            congestion=self.config.congestion,
            mac_retries=self.config.mac_retries,
        )

        self.node_managers: Dict[str, NodeManager] = {}
        self.agents: Dict[str, Any] = {}
        addr_by_id = {n.node_id: n.address for n in description.platform.nodes}
        agent_cls = _AGENT_CLASSES[self.config.protocol]
        sd_config = dict(self.config.sd_config)
        sd_config.setdefault("service_type", params.get("service_type"))
        registry_addrs = self._resolve_sd_node_addrs(
            params.get("sd_registry_nodes")
        )
        if registry_addrs:
            sd_config.setdefault("registry_addrs", registry_addrs)
        broker_addrs = self._resolve_sd_node_addrs(params.get("sd_broker_nodes"))
        if broker_addrs:
            sd_config.setdefault("broker_addrs", broker_addrs)
        if params.get("sd_dissemination"):
            sd_config.setdefault("dissemination", str(params.get("sd_dissemination")))

        for node_id in node_ids:
            clock = random_clock(
                self.sim,
                self.rngs.fresh("clock", node_id),
                max_offset=self.config.clock_max_offset,
                max_drift=self.config.clock_max_drift,
            )
            net_node = NetNode(self.sim, node_id, addr_by_id[node_id], clock=clock)
            self.medium.attach(net_node)
            manager = NodeManager(
                self.sim,
                net_node,
                self.channel,
                self.rngs,
                resolve_addr=lambda nid, _a=addr_by_id: _a.get(nid, nid),
            )
            agent = agent_cls(
                self.sim, net_node, self.rngs, emit=manager.emit, config=sd_config
            )
            install_sd_agent(manager, agent)
            self.node_managers[node_id] = manager
            self.agents[node_id] = agent

    # ------------------------------------------------------------------
    def _resolve_sd_node_addrs(self, raw: Any) -> List[str]:
        """Resolve the ``sd_registry_nodes`` / ``sd_broker_nodes`` special
        params — abstract ids (preferred) or platform node ids, comma or
        whitespace separated — to network addresses in listed order."""
        if not raw:
            return []
        addrs = []
        for token in str(raw).replace(",", " ").split():
            try:
                node = self.description.platform.for_abstract(token)
            except DescriptionError:
                try:
                    node = self.description.platform.by_id(token)
                except DescriptionError:
                    raise PlatformError(
                        f"sd registry/broker node {token!r} is neither an "
                        "abstract nor a platform node id"
                    ) from None
            addrs.append(node.address)
        return addrs

    # ------------------------------------------------------------------
    def _build_topology(self, node_ids: List[str]) -> Topology:
        spec = self.config.topology
        if isinstance(spec, Topology):
            missing = [nid for nid in node_ids if nid not in spec.graph]
            if missing:
                raise PlatformError(
                    f"custom topology misses platform nodes {missing}"
                )
            return spec
        n = len(node_ids)
        if spec == "grid":
            import math

            cols = max(1, int(math.ceil(math.sqrt(n))))
            rows = int(math.ceil(n / cols))
            topo = grid_topology(rows, cols, base_loss=self.config.base_loss)
            built = topo
        elif spec == "line":
            built = line_topology(n, base_loss=self.config.base_loss)
        elif spec == "full":
            built = full_mesh_topology(n, base_loss=self.config.base_loss)
        elif spec == "mesh":
            built = random_geometric_topology(
                n,
                radius=self.config.mesh_radius,
                seed=derive_seed(self.description.seed, "topology"),
                base_loss=self.config.base_loss,
            )
        else:
            raise PlatformError(f"unknown topology spec {spec!r}")
        # Relabel generated names onto the platform node ids: sorted
        # generated names map to sorted platform ids, deterministically.
        import networkx as nx

        generated = sorted(built.graph.nodes, key=lambda s: int(s.lstrip("n")))
        extra = built.graph.number_of_nodes() - n
        if extra:
            built.graph.remove_nodes_from(generated[n:])
            generated = generated[:n]
        mapping = dict(zip(generated, sorted(node_ids)))
        graph = nx.relabel_nodes(built.graph, mapping)
        if not nx.is_connected(graph):
            raise PlatformError(
                "topology became disconnected after sizing; pick another "
                "shape or radius"
            )
        return Topology(graph)

    # ------------------------------------------------------------------
    # Per-run determinism hooks
    # ------------------------------------------------------------------
    def on_run_init(self, run_id: int) -> None:
        self.medium.rng = self.rngs.fresh("medium", run_id)
        self.medium.reset_load()
        self.channel.rng = self.rngs.fresh("channel", run_id)
        # Resilience state resets with the data-plane streams: the retry
        # jitter stream is per-run (the resume guarantee), and any chaos
        # faults of the *previous* run are lifted before this run's are
        # armed.
        self.channel.retry.reseed(
            derive_seed(self.description.seed, "rpc-retry", run_id)
        )
        self.channel.restore_all()
        self.control_faults.arm(self.sim, self.channel, run_id)

    def on_run_exit(self, run_id: int) -> None:  # pragma: no cover - hook
        pass
