"""The platform contract (Sec. IV-A).

*"To integrate a specific target platform in ExCovery, it must support
several features ... mainly an issue for testbeds, simulators generally
can be integrated with less effort."*

The three requirement groups, and how the contract encodes them:

1. **Experiment management** (IV-A1) — ``channel`` is the separate,
   reliable control network with full access to every node's
   :class:`~repro.core.nodemanager.NodeManager`.
2. **Connection control** (IV-A2) — every node's interface supports
   activation/deactivation and rule-based packet manipulation (checked by
   :meth:`Platform.capabilities`).
3. **Measurement** (IV-A3) — packet capture with local timestamps, packet
   tagging, time synchronization support (the ``ping`` RPC) and
   quantifiable sync error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.errors import PlatformError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.nodemanager import NodeManager
    from repro.core.rpc import ControlChannel
    from repro.net.topology import Topology
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry

__all__ = ["Platform", "PlatformCapabilities"]


@dataclass(frozen=True)
class PlatformCapabilities:
    """Feature self-description, checked before an experiment starts."""

    management_channel: bool
    connection_control: bool
    packet_capture: bool
    packet_tagging: bool
    time_sync: bool

    def missing(self) -> List[str]:
        return [
            name
            for name, ok in (
                ("management_channel", self.management_channel),
                ("connection_control", self.connection_control),
                ("packet_capture", self.packet_capture),
                ("packet_tagging", self.packet_tagging),
                ("time_sync", self.time_sync),
            )
            if not ok
        ]


class Platform:
    """Base class for platform adapters.

    Concrete platforms populate :attr:`sim`, :attr:`channel`,
    :attr:`rngs`, :attr:`topology` and :attr:`node_managers` during
    construction.
    """

    sim: "Simulator"
    channel: "ControlChannel"
    rngs: "RngRegistry"
    topology: "Topology"
    node_managers: Dict[str, "NodeManager"]
    #: When set, :meth:`ExperiMaster.execute` synchronizes the kernel to
    #: the wall clock at this speed factor.
    realtime_factor: Optional[float] = None

    # ------------------------------------------------------------------
    def capabilities(self) -> PlatformCapabilities:
        return PlatformCapabilities(
            management_channel=True,
            connection_control=True,
            packet_capture=True,
            packet_tagging=True,
            time_sync=True,
        )

    def check_nodes(self, node_ids: List[str]) -> None:
        """Verify the platform provides every node the description maps.

        Raises :class:`PlatformError` otherwise (a description written for
        one testbed instance may not fit another, Sec. IV-E).
        """
        missing_caps = self.capabilities().missing()
        if missing_caps:
            raise PlatformError(f"platform lacks capabilities: {missing_caps}")
        missing = [nid for nid in node_ids if nid not in self.node_managers]
        if missing:
            raise PlatformError(
                f"platform provides no nodes {missing}; available: "
                f"{sorted(self.node_managers)}"
            )

    def addr_of(self, node_id: str) -> str:
        try:
            return self.node_managers[node_id].node.address
        except KeyError:
            raise PlatformError(f"unknown platform node {node_id!r}") from None

    def topology_name(self, node_id: str) -> str:
        """Topology graph name of a platform node (identity by default)."""
        return node_id

    # ------------------------------------------------------------------
    # Per-run hooks (called by the master)
    # ------------------------------------------------------------------
    def on_run_init(self, run_id: int) -> None:
        """Reset platform-global state so the run's randomness is a pure
        function of (experiment seed, run id)."""

    def on_run_exit(self, run_id: int) -> None:
        """Per-run teardown; default nothing."""
