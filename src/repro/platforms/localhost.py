"""Wall-clock-synchronized platform.

The paper's platform taxonomy (Sec. II-C1) includes *real-time
simulators*: *"mixed forms exist, for example, where an event-driven
simulator is synchronized to a wall clock"*.  This platform is exactly
that: the same emulated testbed as :class:`SimulatedPlatform`, but
:meth:`ExperiMaster.execute` paces the kernel against real time, so an
experimenter can watch runs unfold live (or demo the framework against
dashboards expecting real-time event feeds).

``realtime_factor`` scales the pace: ``1.0`` is real time, ``10.0`` runs
ten times faster than the wall clock.
"""

from __future__ import annotations

from typing import Optional

from repro.core.description import ExperimentDescription
from repro.platforms.simulated import PlatformConfig, SimulatedPlatform

__all__ = ["LocalhostPlatform"]


class LocalhostPlatform(SimulatedPlatform):
    """The emulator paced against the wall clock."""

    def __init__(
        self,
        description: ExperimentDescription,
        config: Optional[PlatformConfig] = None,
        realtime_factor: float = 1.0,
    ) -> None:
        if realtime_factor <= 0:
            raise ValueError(f"realtime factor must be positive, got {realtime_factor}")
        if config is None:
            # Small local setups default to a single collision domain.
            config = PlatformConfig(topology="full")
        super().__init__(description, config)
        self.realtime_factor = float(realtime_factor)
