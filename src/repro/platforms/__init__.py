"""Platform adapters (Sec. IV-A).

A *platform* is the actual setting experiments run in.  ExCovery demands
three capability groups from it — experiment management, connection
control and measurement — codified in :class:`repro.platforms.base.Platform`.

:mod:`repro.platforms.simulated`
    The default: the discrete-event wireless-mesh emulator of
    :mod:`repro.net` standing in for the DES testbed.
:mod:`repro.platforms.localhost`
    The same emulator synchronized to the wall clock (a "real-time
    simulator" in the paper's platform taxonomy, Sec. II-C1), useful to
    watch experiments live.
"""

from repro.platforms.base import Platform, PlatformCapabilities
from repro.platforms.localhost import LocalhostPlatform
from repro.platforms.simulated import PlatformConfig, SimulatedPlatform

__all__ = [
    "LocalhostPlatform",
    "Platform",
    "PlatformCapabilities",
    "PlatformConfig",
    "SimulatedPlatform",
]
