"""Global run timelines (the data behind Fig. 11).

Sec. IV-B3: the sync measurements *"allow to construct a valid global
time line of events and packets, avoiding causal conflicts due to local
clocks deviating between experiment runs"*.  A :class:`RunTimeline` is
that global time line for one run: every event of every participant on
the common time base, with the run's three phases (preparation /
execution / clean-up) identified the way Fig. 11 draws them:

* **preparation** ends when the (first) ``sd_start_search`` fires — the
  moment the process under examination actually starts;
* **execution** ends at the ``done`` flag (or the last ``sd_service_add``
  when no flag exists);
* the rest is **clean-up**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["TimelineEntry", "RunTimeline", "build_run_timeline"]


@dataclass(frozen=True)
class TimelineEntry:
    """One event on the global time line."""

    common_time: float
    node: str
    name: str
    params: tuple
    phase: str  # "preparation" | "execution" | "cleanup"

    @property
    def rel_time(self) -> float:  # pragma: no cover - set by timeline
        raise AttributeError("use RunTimeline.relative_time(entry)")


@dataclass
class RunTimeline:
    """All events of one run in global order, with phase boundaries."""

    run_id: int
    entries: List[TimelineEntry] = field(default_factory=list)
    start: float = 0.0
    exec_begin: Optional[float] = None
    exec_end: Optional[float] = None
    end: float = 0.0

    def relative_time(self, entry: TimelineEntry) -> float:
        """Seconds since the run's first event."""
        return entry.common_time - self.start

    @property
    def t_r(self) -> Optional[float]:
        """The Fig. 11 response time: search start to (last) service add."""
        start = None
        last_add = None
        for e in self.entries:
            if e.name == "sd_start_search" and start is None:
                start = e.common_time
            elif e.name == "sd_service_add":
                last_add = e.common_time
        if start is None or last_add is None or last_add < start:
            return None
        return last_add - start

    def nodes(self) -> List[str]:
        return sorted({e.node for e in self.entries})

    def events_on(self, node: str) -> List[TimelineEntry]:
        return [e for e in self.entries if e.node == node]

    def phase_of(self, common_time: float) -> str:
        if self.exec_begin is not None and common_time < self.exec_begin:
            return "preparation"
        if self.exec_end is not None and common_time > self.exec_end:
            return "cleanup"
        if self.exec_begin is None:
            return "preparation"
        return "execution"

    def durations(self) -> Dict[str, float]:
        """Per-phase durations in seconds."""
        eb = self.exec_begin if self.exec_begin is not None else self.end
        ee = self.exec_end if self.exec_end is not None else self.end
        return {
            "preparation": max(0.0, eb - self.start),
            "execution": max(0.0, ee - eb),
            "cleanup": max(0.0, self.end - ee),
            "total": max(0.0, self.end - self.start),
        }


def phase_duration_summary(
    events: List[Dict[str, Any]],
    run_ids: List[int],
) -> Dict[str, Dict[str, float]]:
    """Mean/min/max of each phase's duration across *run_ids*.

    The per-run phase split is the total-time estimation input the paper
    flags (Sec. IV-C1: *"All steps will be repeated during each run, this
    has to be considered when estimating the total time an experiment
    needs to finish"*).
    """
    per_phase: Dict[str, List[float]] = {
        "preparation": [], "execution": [], "cleanup": [], "total": []
    }
    for run_id in run_ids:
        timeline = build_run_timeline(events, run_id)
        if not timeline.entries:
            continue
        for phase, duration in timeline.durations().items():
            per_phase[phase].append(duration)
    out: Dict[str, Dict[str, float]] = {}
    for phase, values in per_phase.items():
        if values:
            out[phase] = {
                "mean": sum(values) / len(values),
                "min": min(values),
                "max": max(values),
                "runs": float(len(values)),
            }
    return out


def build_run_timeline(
    events: List[Dict[str, Any]],
    run_id: int,
    exclude: tuple = (),
) -> RunTimeline:
    """Assemble the timeline of *run_id* from conditioned event records.

    *events* are records with ``common_time`` (level-3 reader output or
    conditioned level-2 data).  ``exclude`` filters noisy event types out
    of the rendering (not out of the phase computation).
    """
    run_events = sorted(
        (e for e in events if e.get("run_id") == run_id),
        key=lambda e: (e["common_time"], e.get("node", "")),
    )
    if not run_events:
        return RunTimeline(run_id=run_id)

    start = run_events[0]["common_time"]
    end = run_events[-1]["common_time"]
    exec_begin = next(
        (e["common_time"] for e in run_events if e["name"] == "sd_start_search"),
        None,
    )
    done_time = next(
        (e["common_time"] for e in run_events if e["name"] == "done"), None
    )
    if done_time is None:
        adds = [e["common_time"] for e in run_events if e["name"] == "sd_service_add"]
        done_time = max(adds) if adds else None

    timeline = RunTimeline(
        run_id=run_id,
        start=start,
        exec_begin=exec_begin,
        exec_end=done_time,
        end=end,
    )
    for e in run_events:
        if e["name"] in exclude:
            continue
        timeline.entries.append(
            TimelineEntry(
                common_time=e["common_time"],
                node=e.get("node", "?"),
                name=e["name"],
                params=tuple(e.get("params", ())),
                phase=timeline.phase_of(e["common_time"]),
            )
        )
    return timeline
