"""Replication convergence: how many runs does an estimate need?

Sec. II-A3: *"Replication increases the number of experiment runs to be
able to average out random errors in responses and to collect data about
the variation in responses over a set of runs."*  This module quantifies
that trade-off for a stored experiment: the running responsiveness (or
mean t_R) estimate as replications accumulate, and the replication count
at which the estimate stays inside a tolerance band of its final value —
useful for planning the next, bigger experiment (Sec. II-A2's "maximize
the gained information per run").
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.stats import binomial_proportion_ci
from repro.sd.metrics import RunDiscovery

__all__ = ["running_responsiveness", "replications_to_converge"]


def running_responsiveness(
    outcomes: Sequence[RunDiscovery],
    deadline: float,
) -> List[Dict[str, Any]]:
    """The responsiveness estimate after 1..n outcomes, with Wilson CIs.

    Outcomes are consumed in the given (execution) order, so the series
    is exactly what an experimenter watching the experiment would see.
    """
    series: List[Dict[str, Any]] = []
    hits = 0
    for n, outcome in enumerate(outcomes, start=1):
        if outcome.t_r is not None and outcome.t_r <= deadline:
            hits += 1
        p, lo, hi = binomial_proportion_ci(hits, n)
        series.append({"n": n, "p": p, "ci_low": lo, "ci_high": hi})
    return series


def replications_to_converge(
    outcomes: Sequence[RunDiscovery],
    deadline: float,
    tolerance: float = 0.05,
) -> Optional[int]:
    """Smallest n after which the running estimate never leaves
    ``final ± tolerance``.

    Returns ``None`` when the series never settles (tolerance too tight
    for the sample) — a signal that the experiment needs more
    replications, not fewer.
    """
    if not outcomes:
        raise ValueError("need at least one outcome")
    series = running_responsiveness(outcomes, deadline)
    final = series[-1]["p"]
    settle_at: Optional[int] = None
    for point in series:
        if abs(point["p"] - final) <= tolerance:
            if settle_at is None:
                settle_at = point["n"]
        else:
            settle_at = None
    return settle_at
