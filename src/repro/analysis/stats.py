"""Statistics helpers for experiment analysis.

Kept deliberately small: means with confidence intervals (normal
approximation, or Student-t when SciPy is available), percentiles and a
one-call summary.  Vectorized with NumPy — analysis runs over tens of
thousands of rows when replication counts approach the paper's 1000.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "mean_confidence_interval",
    "percentile",
    "summarize",
    "binomial_proportion_ci",
]

#: Two-sided z quantiles for common confidence levels.
_Z = {0.90: 1.6448536269514722, 0.95: 1.959963984540054, 0.99: 2.5758293035489004}


def _z_or_t(confidence: float, dof: int) -> float:
    """Student-t quantile when SciPy is at hand, else the z approximation."""
    try:
        from scipy import stats as _st

        return float(_st.t.ppf(0.5 + confidence / 2.0, dof))
    except Exception:  # pragma: no cover - scipy present in this env
        return _Z.get(confidence, 1.959963984540054)


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """``(mean, lower, upper)`` of the sample mean.

    Raises ``ValueError`` on an empty sample; a single observation yields
    a degenerate (zero-width) interval.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, mean, mean
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    half = _z_or_t(confidence, arr.size - 1) * sem
    return mean, mean - half, mean + half


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100]) of a sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    return float(np.percentile(arr, q))


def binomial_proportion_ci(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Wilson score interval for a proportion — the right interval for
    responsiveness estimates near 1.0, where the normal approximation
    collapses."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    z = _Z.get(confidence, 1.959963984540054)
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return p, max(0.0, center - half), min(1.0, center + half)


def summarize(values: Iterable[float]) -> Dict[str, Optional[float]]:
    """One-call sample summary used by report printers."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {
            "n": 0, "mean": None, "std": None, "min": None,
            "p50": None, "p95": None, "max": None,
        }
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }
