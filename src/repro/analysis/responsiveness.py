"""Responsiveness analysis over level-3 databases.

Sec. VI: responsiveness is *"the probability that a number of SMs is
found within a deadline, as required by the application calling SD"*.
ExCovery was built to support exactly this analysis ([25], [26]); these
functions reproduce it from a stored experiment:

* :func:`run_outcomes` extracts each run's discovery outcome (which SU
  found which SMs when),
* :func:`responsiveness_by_treatment` groups runs by their treatment and
  computes the probability per deadline — the case-study result tables.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.stats import binomial_proportion_ci
from repro.sd.metrics import RunDiscovery, extract_run_discovery, summarize_runs
from repro.storage.level3 import ExperimentDatabase

__all__ = [
    "discover_roles",
    "run_outcomes",
    "responsiveness_by_treatment",
    "treatment_key",
]


def discover_roles(db: ExperimentDatabase, run_id: int) -> Tuple[List[str], List[str]]:
    """``(su_nodes, sm_nodes)`` of one run, inferred from its events.

    SUs are nodes that emitted ``sd_start_search``; SMs are nodes that
    emitted ``sd_start_publish``.  Inference from events (not the
    description) keeps the analysis usable on any conforming experiment,
    including ones with per-run role rotation.
    """
    sus = sorted({e["node"] for e in db.events(run_id=run_id, event_type="sd_start_search")})
    sms = sorted({e["node"] for e in db.events(run_id=run_id, event_type="sd_start_publish")})
    return sus, sms


def run_outcomes(
    db: ExperimentDatabase,
    run_ids: Optional[Iterable[int]] = None,
) -> List[RunDiscovery]:
    """Every (run, SU) discovery outcome in the database."""
    outcomes: List[RunDiscovery] = []
    ids = list(run_ids) if run_ids is not None else db.run_ids()
    for run_id in ids:
        events = db.events(run_id=run_id)
        sus, sms = discover_roles(db, run_id)
        for su in sus:
            outcomes.append(extract_run_discovery(events, run_id, su, sms))
    return outcomes


def treatment_key(treatment: Dict[str, Any], ignore: Sequence[str] = ()) -> str:
    """Stable string key of a treatment (minus ignored factors).

    The replication factor is always ignored — replications of one
    treatment belong to the same group by definition.
    """
    drop = set(ignore) | {"fact_replication_id"}
    flat = {
        k: v for k, v in treatment.items()
        if k not in drop and not isinstance(v, dict)
    }
    return json.dumps(flat, sort_keys=True)


def responsiveness_by_treatment(
    db: ExperimentDatabase,
    deadlines: Sequence[float],
    confidence: float = 0.95,
) -> List[Dict[str, Any]]:
    """The case-study result table.

    One row per distinct treatment: the treatment's factor levels, run
    count, ``t_r`` summary, and for each requested deadline the
    responsiveness estimate with its Wilson confidence interval.
    """
    plan = {entry["run_id"]: entry for entry in db.plan()}
    groups: Dict[str, Dict[str, Any]] = {}
    for run_id in db.run_ids():
        entry = plan.get(run_id)
        if entry is None:
            continue
        key = treatment_key(entry["treatment"])
        group = groups.setdefault(
            key, {"treatment": entry["treatment"], "run_ids": []}
        )
        group["run_ids"].append(run_id)

    rows: List[Dict[str, Any]] = []
    for key in sorted(groups):
        group = groups[key]
        outcomes = run_outcomes(db, group["run_ids"])
        row: Dict[str, Any] = {
            "treatment": {
                k: v
                for k, v in group["treatment"].items()
                if not isinstance(v, dict) and k != "fact_replication_id"
            },
            "runs": len(group["run_ids"]),
            "summary": summarize_runs(outcomes),
        }
        for deadline in deadlines:
            hits = sum(
                1 for o in outcomes if o.t_r is not None and o.t_r <= deadline
            )
            p, lo, hi = binomial_proportion_ci(hits, len(outcomes), confidence)
            row[f"R({deadline:g}s)"] = {"p": p, "ci": (lo, hi)}
        rows.append(row)
    return rows
