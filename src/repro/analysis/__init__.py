"""Analysis of stored experiments.

*"A set of functions exist for extraction and analysis of event and packet
based metrics"* (Sec. VI).  These operate on level-3 databases (or the
repository), i.e. on conditioned, common-time-base data:

:mod:`repro.analysis.timeline`
    Global causal timelines of runs — the data behind Fig. 11.
:mod:`repro.analysis.responsiveness`
    The case-study metric: P(discovery within deadline), per treatment.
:mod:`repro.analysis.packetstats`
    Loss and delay derived from tagged packet captures (the purpose of
    the packet tagger, Sec. VI-A).
:mod:`repro.analysis.stats`
    Small statistics helpers (means, confidence intervals, percentiles).
"""

from repro.analysis.convergence import (
    replications_to_converge,
    running_responsiveness,
)
from repro.analysis.packetstats import packet_stats_for_run, tag_loss_between
from repro.analysis.responsiveness import (
    responsiveness_by_treatment,
    run_outcomes,
)
from repro.analysis.routes import (
    forwarding_matrix,
    packet_routes,
    path_statistics,
    route_of,
)
from repro.analysis.stats import mean_confidence_interval, percentile, summarize
from repro.analysis.timeline import RunTimeline, build_run_timeline

__all__ = [
    "RunTimeline",
    "build_run_timeline",
    "forwarding_matrix",
    "mean_confidence_interval",
    "packet_routes",
    "packet_stats_for_run",
    "path_statistics",
    "percentile",
    "replications_to_converge",
    "responsiveness_by_treatment",
    "route_of",
    "run_outcomes",
    "running_responsiveness",
    "summarize",
    "tag_loss_between",
]
