"""Packet-based metrics from tagged captures.

Sec. VI-A explains why the tagger exists: *"To allow analysis of
properties outside the scope of the ExCovery processes, for example packet
loss and delay, a network packet tagger is provided."*

A packet originated on node A carries A's 16-bit tag sequence; comparing
the tag sets A transmitted against the tag sets another node B received
yields end-to-end loss; comparing the common-time observation timestamps
yields one-way delay (valid because conditioning already unified the time
base).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.stats import summarize
from repro.net.tagger import TAG_MODULUS, TAG_NODE_OPTION, TAG_OPTION, unwrap_tags

__all__ = ["tagged_observations", "tag_loss_between", "packet_stats_for_run"]


def _unwrap_node(entries: List[Tuple[float, int]]) -> Dict[int, float]:
    """Time-ordered epoch unwrap of one node's raw observations.

    Sorting by time before unwrapping lets RFC-1982 serial arithmetic
    recover how often the 16-bit counter wrapped between observations; the
    resulting keys are unique across the whole run instead of colliding
    every 65536 packets.  Retransmissions (same unwrapped tag) keep their
    first observation time.
    """
    entries.sort(key=lambda e: (e[0], e[1]))
    times: Dict[int, float] = {}
    for (t, _), tag in zip(entries, unwrap_tags([raw for _, raw in entries])):
        if tag not in times or t < times[tag]:
            times[tag] = t
    return times


def _align_to_origin(
    times: Dict[int, float],
    origin_by_residue: Dict[int, List[Tuple[int, float]]],
) -> Dict[int, float]:
    """Shift an observer's unwrapped tags onto the origin's numbering.

    Each node's unwrap starts from its own first observation, so an
    observer that only tuned in after a wrap sits a multiple of the tag
    modulus below the origin.  Anchor on the earliest observation whose
    16-bit residue the origin also sent, picking the origin tag whose send
    time is nearest — one-way delay is tiny next to the time one epoch of
    65536 packets takes, so "nearest in time" identifies the epoch.
    """
    if not times or not origin_by_residue:
        return times
    for tag in sorted(times, key=lambda k: times[k]):
        candidates = origin_by_residue.get(tag % TAG_MODULUS)
        if not candidates:
            continue
        t = times[tag]
        origin_tag = min(candidates, key=lambda c: abs(c[1] - t))[0]
        offset = origin_tag - tag
        if offset:
            return {k + offset: v for k, v in times.items()}
        return times
    return times


def tagged_observations(
    packets: Iterable[Dict[str, Any]],
    origin_node: str,
) -> Dict[str, Dict[int, float]]:
    """``{observer_node: {tag: first common_time}}`` for packets that
    *origin_node*'s tagger stamped.

    TX records on the origin are the send times; RX records elsewhere are
    receive times.  Tags are unwrapped past the 16-bit modulus (per node,
    in time order) and aligned to the origin's numbering, so runs longer
    than 65536 packets per origin do not alias distinct packets onto one
    key.
    """
    raw: Dict[str, List[Tuple[float, int]]] = {}
    for rec in packets:
        options = rec.get("options") or {}
        if options.get(TAG_NODE_OPTION) != origin_node:
            continue
        tag = options.get(TAG_OPTION)
        if tag is None:
            continue
        node = rec.get("node", "?")
        direction = rec.get("direction")
        if node == origin_node and direction != "tx":
            continue
        if node != origin_node and direction != "rx":
            continue
        t = float(rec["common_time"]) if "common_time" in rec else float(rec["local_time"])
        raw.setdefault(node, []).append((t, int(tag) % TAG_MODULUS))

    out: Dict[str, Dict[int, float]] = {}
    origin_times: Dict[int, float] = {}
    if origin_node in raw:
        origin_times = _unwrap_node(raw.pop(origin_node))
        out[origin_node] = origin_times
    by_residue: Dict[int, List[Tuple[int, float]]] = {}
    for tag, t in origin_times.items():
        by_residue.setdefault(tag % TAG_MODULUS, []).append((tag, t))
    for node, entries in raw.items():
        out[node] = _align_to_origin(_unwrap_node(entries), by_residue)
    return out


def tag_loss_between(
    packets: Iterable[Dict[str, Any]],
    origin_node: str,
    observer_node: str,
) -> Dict[str, Any]:
    """End-to-end loss and delay from *origin_node* to *observer_node*.

    Returns ``sent``, ``received``, ``loss_rate`` and a one-way delay
    summary over matched tags.
    """
    obs = tagged_observations(packets, origin_node)
    sent = obs.get(origin_node, {})
    recv = obs.get(observer_node, {})
    matched = sorted(set(sent) & set(recv))
    delays = [recv[tag] - sent[tag] for tag in matched]
    loss = 1.0 - (len(matched) / len(sent)) if sent else 0.0
    return {
        "origin": origin_node,
        "observer": observer_node,
        "sent": len(sent),
        "received": len(matched),
        "loss_rate": loss,
        "delay": summarize(delays),
    }


def packet_stats_for_run(
    packets: List[Dict[str, Any]],
    nodes: Optional[List[str]] = None,
) -> List[Dict[str, Any]]:
    """All ordered origin/observer loss+delay rows for one run's packets.

    *nodes* limits the analysis; default is every node that originated
    tagged packets.
    """
    origins = sorted(
        {
            (rec.get("options") or {}).get(TAG_NODE_OPTION)
            for rec in packets
            if (rec.get("options") or {}).get(TAG_NODE_OPTION)
        }
    )
    if nodes is not None:
        origins = [o for o in origins if o in nodes]
    observers = set(nodes) if nodes is not None else {
        rec.get("node") for rec in packets
    }
    rows = []
    for origin in origins:
        obs = tagged_observations(packets, origin)
        for observer in sorted(observers - {origin, None}):
            if observer not in obs:
                continue
            rows.append(tag_loss_between(packets, origin, observer))
    return rows
