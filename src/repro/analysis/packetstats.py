"""Packet-based metrics from tagged captures.

Sec. VI-A explains why the tagger exists: *"To allow analysis of
properties outside the scope of the ExCovery processes, for example packet
loss and delay, a network packet tagger is provided."*

A packet originated on node A carries A's 16-bit tag sequence; comparing
the tag sets A transmitted against the tag sets another node B received
yields end-to-end loss; comparing the common-time observation timestamps
yields one-way delay (valid because conditioning already unified the time
base).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.analysis.stats import summarize
from repro.net.tagger import TAG_MODULUS, TAG_NODE_OPTION, TAG_OPTION

__all__ = ["tagged_observations", "tag_loss_between", "packet_stats_for_run"]


def tagged_observations(
    packets: Iterable[Dict[str, Any]],
    origin_node: str,
) -> Dict[str, Dict[int, float]]:
    """``{observer_node: {tag: first common_time}}`` for packets that
    *origin_node*'s tagger stamped.

    TX records on the origin are the send times; RX records elsewhere are
    receive times.
    """
    out: Dict[str, Dict[int, float]] = {}
    for rec in packets:
        options = rec.get("options") or {}
        if options.get(TAG_NODE_OPTION) != origin_node:
            continue
        tag = options.get(TAG_OPTION)
        if tag is None:
            continue
        node = rec.get("node", "?")
        direction = rec.get("direction")
        if node == origin_node and direction != "tx":
            continue
        if node != origin_node and direction != "rx":
            continue
        times = out.setdefault(node, {})
        t = float(rec["common_time"]) if "common_time" in rec else float(rec["local_time"])
        tag = int(tag) % TAG_MODULUS
        if tag not in times or t < times[tag]:
            times[tag] = t
    return out


def tag_loss_between(
    packets: Iterable[Dict[str, Any]],
    origin_node: str,
    observer_node: str,
) -> Dict[str, Any]:
    """End-to-end loss and delay from *origin_node* to *observer_node*.

    Returns ``sent``, ``received``, ``loss_rate`` and a one-way delay
    summary over matched tags.
    """
    obs = tagged_observations(packets, origin_node)
    sent = obs.get(origin_node, {})
    recv = obs.get(observer_node, {})
    matched = sorted(set(sent) & set(recv))
    delays = [recv[tag] - sent[tag] for tag in matched]
    loss = 1.0 - (len(matched) / len(sent)) if sent else 0.0
    return {
        "origin": origin_node,
        "observer": observer_node,
        "sent": len(sent),
        "received": len(matched),
        "loss_rate": loss,
        "delay": summarize(delays),
    }


def packet_stats_for_run(
    packets: List[Dict[str, Any]],
    nodes: Optional[List[str]] = None,
) -> List[Dict[str, Any]]:
    """All ordered origin/observer loss+delay rows for one run's packets.

    *nodes* limits the analysis; default is every node that originated
    tagged packets.
    """
    origins = sorted(
        {
            (rec.get("options") or {}).get(TAG_NODE_OPTION)
            for rec in packets
            if (rec.get("options") or {}).get(TAG_NODE_OPTION)
        }
    )
    if nodes is not None:
        origins = [o for o in origins if o in nodes]
    observers = set(nodes) if nodes is not None else {
        rec.get("node") for rec in packets
    }
    rows = []
    for origin in origins:
        obs = tagged_observations(packets, origin)
        for observer in sorted(observers - {origin, None}):
            if observer not in obs:
                continue
            rows.append(tag_loss_between(packets, origin, observer))
    return rows
