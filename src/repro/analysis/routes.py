"""Hop-by-hop packet route reconstruction.

Platform requirement IV-A3: *"a packet tracking mechanism is required.
Usually available in simulators, in testbeds this means tracking the
routes of packets hop by hop, or attaching unique identifiers to
packets."*  Our packets keep their ``uid`` across forwarding hops, so the
union of all nodes' captures reconstructs each packet's observed path:
the ordered (by common time) sequence of nodes that transmitted or
received it.

Functions operate on conditioned packet records (level-3 reader output),
which carry the common time base needed to order cross-node observations.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["packet_routes", "route_of", "path_statistics", "forwarding_matrix"]


def packet_routes(
    packets: Iterable[Dict[str, Any]],
    flow: Optional[str] = "experiment",
) -> Dict[int, List[Tuple[float, str, str]]]:
    """``{uid: [(common_time, node, direction), ...]}``, time-ordered.

    One entry per observation — a packet forwarded over k hops appears as
    an alternating rx/tx sequence across the intermediate nodes.
    """
    routes: Dict[int, List[Tuple[float, str, str]]] = {}
    for rec in packets:
        if flow is not None and rec.get("flow") != flow:
            continue
        uid = rec.get("uid")
        if uid is None:
            continue
        t = rec.get("common_time", rec.get("local_time"))
        routes.setdefault(int(uid), []).append(
            (float(t), rec.get("node", "?"), rec.get("direction", "?"))
        )
    for observations in routes.values():
        observations.sort()
    return routes


def route_of(
    packets: Iterable[Dict[str, Any]],
    uid: int,
    flow: Optional[str] = None,
) -> List[str]:
    """The node path one packet took (deduplicated, observation order)."""
    routes = packet_routes(packets, flow=flow)
    observations = routes.get(uid, [])
    path: List[str] = []
    for _t, node, _direction in observations:
        if not path or path[-1] != node:
            path.append(node)
    return path


def path_statistics(
    packets: Iterable[Dict[str, Any]],
    flow: Optional[str] = "experiment",
) -> Dict[str, Any]:
    """Aggregate route statistics over all tracked packets.

    Returns observed hop-count distribution (number of distinct nodes a
    packet touched minus one) and the count of packets seen by only their
    originator (never delivered anywhere — lost on the first hop).
    """
    routes = packet_routes(packets, flow=flow)
    hop_counts: Counter = Counter()
    stranded = 0
    for uid, observations in routes.items():
        nodes = []
        for _t, node, _d in observations:
            if node not in nodes:
                nodes.append(node)
        if len(nodes) <= 1:
            stranded += 1
        else:
            hop_counts[len(nodes) - 1] += 1
    return {
        "tracked_packets": len(routes),
        "stranded": stranded,
        "hop_count_distribution": dict(sorted(hop_counts.items())),
    }


def forwarding_matrix(
    packets: Iterable[Dict[str, Any]],
    flow: Optional[str] = "experiment",
) -> Dict[Tuple[str, str], int]:
    """``{(node_a, node_b): packets}`` for consecutive observations —
    which links actually carried the experiment's traffic."""
    matrix: Counter = Counter()
    for observations in packet_routes(packets, flow=flow).values():
        previous = None
        for _t, node, _d in observations:
            if previous is not None and previous != node:
                matrix[(previous, node)] += 1
            previous = node
    return dict(matrix)
