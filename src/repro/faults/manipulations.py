"""Environment manipulations (Sec. IV-D2), orchestrated by the master.

*"Environment manipulations are applied on a global level and involve
more than one node, possibly all specified environment nodes."*

Implemented manipulations:

``env_traffic_start`` / ``env_traffic_stop``
    The traffic generator: load between randomly chosen node pairs, each
    pair bidirectional at a given data rate.  Pair choice (``choice``:
    0 = non-acting nodes, 1 = acting nodes, 2 = all nodes) is seeded by
    ``random_seed``; per-run pair *switching* replaces
    ``random_switch_amount`` pairs using ``random_switch_seed`` — Fig. 7
    keys the switch seed by the replication factor so that replications of
    a treatment see identical load patterns.
``env_drop_all_start`` / ``env_drop_all_stop``
    *"All experiment nodes stop receiving, sending and forwarding the
    experiment process packets."*
``env_churn_start`` / ``env_churn_stop``
    Seeded node churn against the acting nodes (registry family): a
    master-side process repeatedly picks a victim and either makes it
    *leave* gracefully (``sd_exit``, downtime, re-init + re-publish) or
    *crash* (interface fault for the downtime, auto-reverted).  Victim
    choice and cadence derive from ``random_seed`` and the run id, so
    every run's churn schedule is reproducible.
``env_population_start`` / ``env_population_stop``
    Client-population scaling (registry family): an aggregate query rate
    of ``users × per_user_qps`` is spread across the environment nodes as
    query-shaped CBR flows aimed at the registry/broker service port, so
    10²–10⁵ simulated users load the directory's actual handler path.
``generic``
    Arbitrary parameters forwarded to the acting nodes.

The controller executes master-side but performs all actual work through
RPCs to the NodeManagers, exactly like the prototype's environment thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.rpc import ControlChannel
    from repro.sim.kernel import Simulator

__all__ = ["EnvContext", "EnvironmentController", "select_traffic_pairs"]


@dataclass
class EnvContext:
    """What the environment controller knows about the current run."""

    run_id: int
    replication: int
    acting_nodes: List[str]
    env_nodes: List[str]
    addr_of: Callable[[str], str]

    def candidates(self, choice: int) -> List[str]:
        """The node pool for pair selection, per the ``choice`` parameter."""
        if choice == 0:
            pool = self.env_nodes
        elif choice == 1:
            pool = self.acting_nodes
        elif choice == 2:
            pool = self.acting_nodes + self.env_nodes
        else:
            raise ValueError(f"traffic choice must be 0, 1 or 2, got {choice}")
        return sorted(pool)


def _draw_pairs(pool: List[str], count: int, rng) -> List[Tuple[str, str]]:
    max_pairs = len(pool) * (len(pool) - 1) // 2
    if count > max_pairs:
        raise ValueError(
            f"cannot pick {count} distinct pairs from {len(pool)} nodes"
        )
    chosen: List[Tuple[str, str]] = []
    seen = set()
    while len(chosen) < count:
        a, b = rng.sample(pool, 2)
        key = tuple(sorted((a, b)))
        if key in seen:
            continue
        seen.add(key)
        chosen.append(key)
    return chosen


def select_traffic_pairs(
    pool: List[str],
    count: int,
    seed: int,
    switch_amount: int,
    switch_seed: int,
) -> List[Tuple[str, str]]:
    """Deterministic pair selection with per-run switching.

    The base set depends only on ``seed``; then ``switch_amount`` pairs
    (cyclically chosen) are replaced using ``switch_seed``.  Identical
    parameters always give identical pairs — the repeatability property
    Fig. 7's comment highlights.
    """
    rngs = RngRegistry(seed)
    base = _draw_pairs(pool, count, rngs.fresh("traffic_base"))
    switch_amount = min(switch_amount, count)
    if switch_amount <= 0:
        return base
    sw_rng = RngRegistry(switch_seed).fresh("traffic_switch")
    current = list(base)
    taken = {tuple(sorted(p)) for p in current}
    for i in range(switch_amount):
        slot = i % count
        taken.discard(tuple(sorted(current[slot])))
        # Redraw until we find a pair not already active.
        while True:
            candidate = _draw_pairs(pool, 1, sw_rng)[0]
            if candidate not in taken:
                break
        current[slot] = candidate
        taken.add(candidate)
    return current


class EnvironmentController:
    """Master-side executor for environment actions."""

    def __init__(
        self,
        sim: "Simulator",
        channel: "ControlChannel",
        emit: Callable[..., None],
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.emit = emit
        self._traffic_nodes: List[str] = []
        self._drop_all_nodes: List[str] = []
        self._population_nodes: List[str] = []
        self._churn_procs: List[Any] = []
        self.last_pairs: List[Tuple[str, str]] = []
        #: Per-node errors swallowed by the last :meth:`cleanup` sweep.
        self.last_cleanup_errors: List[str] = []
        #: Master's span tracer; swallowed sweep errors are recorded there
        #: as ``error`` spans with full tracebacks (set by ExperiMaster).
        self.tracer = None

    def _record_swallowed(self, exc: Exception, node_id: str, call: str) -> None:
        if self.tracer is not None:
            self.tracer.record_error(
                "env_cleanup", exc, node=node_id, call=call, site="env_cleanup"
            )
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "repro_suppressed_errors_total",
            "Exceptions swallowed at continue-anyway boundaries",
            labels=("site",),
        ).inc(site="env_cleanup")

    # ------------------------------------------------------------------
    def execute(self, name: str, params: Dict[str, Any], ctx: EnvContext):
        """Sub-generator dispatching one environment action."""
        if name == "env_traffic_start":
            yield from self._traffic_start(params, ctx)
        elif name == "env_traffic_stop":
            yield from self._traffic_stop()
        elif name == "env_drop_all_start":
            yield from self._drop_all_start(params, ctx)
        elif name == "env_drop_all_stop":
            yield from self._drop_all_stop()
        elif name == "env_churn_start":
            yield from self._churn_start(params, ctx)
        elif name == "env_churn_stop":
            yield from self._churn_stop()
        elif name == "env_population_start":
            yield from self._population_start(params, ctx)
        elif name == "env_population_stop":
            yield from self._population_stop()
        elif name == "generic":
            yield from self._generic(params, ctx)
        else:
            raise ValueError(f"unknown environment action {name!r}")

    # ------------------------------------------------------------------
    def _traffic_start(self, params: Dict[str, Any], ctx: EnvContext):
        rate_kbps = float(params.get("bw", 10))
        count = int(params.get("random_pairs", 1))
        choice = int(params.get("choice", 0))
        seed = int(params.get("random_seed", 0))
        switch_amount = int(params.get("random_switch_amount", 0))
        switch_seed = int(params.get("random_switch_seed", ctx.replication))
        packet_size = int(params.get("packet_size", 512))

        pool = ctx.candidates(choice)
        # The paper's Fig. 5 levels (5/20 pairs) assume the ~100-node DES
        # testbed; smaller platforms clamp to what the pool can supply so
        # the published description stays executable everywhere.  The
        # clamp is recorded in the emitted event's parameters.
        max_pairs = len(pool) * (len(pool) - 1) // 2
        requested = count
        count = min(count, max_pairs)
        if count <= 0:
            raise ValueError(
                f"traffic generation needs at least 2 candidate nodes, "
                f"pool has {len(pool)}"
            )
        pairs = select_traffic_pairs(pool, count, seed, switch_amount, switch_seed)
        self.last_pairs = pairs

        started: List[str] = []
        for a, b in pairs:
            for src, dst in ((a, b), (b, a)):
                yield from self.channel.call(
                    src,
                    "traffic_start",
                    [{"peer_addr": ctx.addr_of(dst), "rate_kbps": rate_kbps,
                      "packet_size": packet_size}],
                )
                if src not in started:
                    started.append(src)
        self._traffic_nodes = started
        self.emit(
            "env_traffic_started",
            params=(
                rate_kbps,
                len(pairs),
                requested,
                ";".join(f"{a}-{b}" for a, b in pairs),
            ),
        )

    def _traffic_stop(self):
        for node_id in self._traffic_nodes:
            yield from self.channel.call(node_id, "traffic_stop")
        self._traffic_nodes = []
        self.emit("env_traffic_stopped", params=())

    def _drop_all_start(self, params: Dict[str, Any], ctx: EnvContext):
        targets = sorted(set(ctx.acting_nodes) | set(ctx.env_nodes))
        for node_id in targets:
            yield from self.channel.call(node_id, "drop_all_start")
        self._drop_all_nodes = targets
        self.emit("env_drop_all_started", params=(len(targets),))

    def _drop_all_stop(self):
        for node_id in self._drop_all_nodes:
            yield from self.channel.call(node_id, "drop_all_stop")
        self._drop_all_nodes = []
        self.emit("env_drop_all_stopped", params=())

    # ------------------------------------------------------------------
    # Node churn (registry family)
    # ------------------------------------------------------------------
    def _churn_start(self, params: Dict[str, Any], ctx: EnvContext):
        victims = params.get("nodes") or ctx.acting_nodes
        if isinstance(victims, str):
            victims = [victims]
        victims = sorted(str(v) for v in victims)
        if not victims:
            raise ValueError("env_churn_start needs a non-empty victim pool")
        mode = str(params.get("mode", "leave"))
        if mode not in ("leave", "crash"):
            raise ValueError(f"churn mode must be 'leave' or 'crash', got {mode!r}")
        interval = float(params.get("interval", 2.0))
        downtime = float(params.get("downtime", 1.0))
        seed = int(params.get("random_seed", 0))
        rejoin_params: Dict[str, Any] = {"role": str(params.get("rejoin_role", "sm"))}
        if params.get("replicas") is not None:
            rejoin_params["replicas"] = int(params["replicas"])
        republish = bool(params.get("republish", True))
        rng = RngRegistry(seed).fresh("churn", ctx.run_id)
        proc = self.sim.process(
            self._churn_loop(victims, mode, interval, downtime, rejoin_params,
                             republish, rng),
            name=f"env:churn:{ctx.run_id}",
        )
        self._churn_procs.append(proc)
        self.emit(
            "env_churn_started", params=(mode, len(victims), interval, downtime)
        )
        yield from ()

    def _churn_loop(self, victims, mode, interval, downtime, rejoin_params,
                    republish, rng):
        while True:
            # Uniform on [interval/2, 3*interval/2]: mean = interval, never
            # two churn events in the same instant.
            yield self.sim.timeout(interval * (0.5 + rng.random()))
            victim = rng.choice(victims)
            if mode == "crash":
                # A crash is invisible to the victim's own software: the
                # data plane dies for `downtime` (auto-reverted fault lease)
                # while its registrations silently stale out.
                yield from self.channel.call(
                    victim, "execute_action", "iface_fault_start",
                    {"direction": "both", "duration": downtime},
                )
                self.emit("env_churn_event", params=(victim, "crash", downtime))
            else:
                yield from self.channel.call(
                    victim, "execute_action", "sd_exit", {}
                )
                self.emit("env_churn_event", params=(victim, "leave", downtime))
                yield self.sim.timeout(downtime)
                yield from self.channel.call(
                    victim, "execute_action", "sd_init", dict(rejoin_params)
                )
                if republish:
                    yield from self.channel.call(
                        victim, "execute_action", "sd_start_publish", {}
                    )
                self.emit("env_churn_event", params=(victim, "rejoin", 0.0))

    def _churn_stop(self):
        procs, self._churn_procs = self._churn_procs, []
        for proc in procs:
            if proc.alive:
                proc.interrupt("env_churn_stop")
        if procs:
            self.emit("env_churn_stopped", params=())
        yield from ()

    # ------------------------------------------------------------------
    # Client-population scaling (registry family)
    # ------------------------------------------------------------------
    def _population_start(self, params: Dict[str, Any], ctx: EnvContext):
        users = int(params.get("users", 100))
        per_user_qps = float(params.get("per_user_qps", 0.1))
        packet_size = int(params.get("packet_size", 160))
        service_type = str(params.get("service_type", "_exp._udp"))
        dst_port = int(params.get("dst_port", 7447))
        choice = int(params.get("choice", 0))
        targets = params.get("nodes") or []
        if isinstance(targets, str):
            targets = [targets]
        targets = sorted(str(t) for t in targets)
        if not targets:
            raise ValueError(
                "env_population_start needs target 'nodes' (the registry or "
                "broker nodes absorbing the query load)"
            )
        sources = [s for s in ctx.candidates(choice) if s not in targets]
        if not sources:
            raise ValueError(
                "env_population_start has no source nodes left after "
                "excluding the targets"
            )
        total_qps = users * per_user_qps
        share_qps = total_qps / (len(sources) * len(targets))
        # One query every 1/share_qps seconds per flow; the CBR flow's
        # rate is derived so that its interval equals that spacing.
        rate_kbps = share_qps * packet_size * 8.0 / 1000.0
        payload = {"kind": "query", "type": service_type, "population": True}
        started: List[str] = []
        for src in sources:
            specs = [
                {
                    "peer_addr": ctx.addr_of(t),
                    "rate_kbps": rate_kbps,
                    "packet_size": packet_size,
                    "dst_port": dst_port,
                    "payload": dict(payload),
                }
                for t in targets
            ]
            yield from self.channel.call(src, "traffic_start", specs)
            started.append(src)
        self._population_nodes = started
        self.emit(
            "env_population_started",
            params=(users, total_qps, len(sources), len(targets)),
        )

    def _population_stop(self):
        for node_id in self._population_nodes:
            yield from self.channel.call(node_id, "traffic_stop")
        self._population_nodes = []
        self.emit("env_population_stopped", params=())

    def _generic(self, params: Dict[str, Any], ctx: EnvContext):
        wire_params = {str(k): v for k, v in params.items()}
        for node_id in ctx.acting_nodes:
            yield from self.channel.call(
                node_id, "execute_action", "generic", wire_params
            )
        self.emit("env_generic_executed", params=(len(ctx.acting_nodes),))

    # ------------------------------------------------------------------
    def cleanup(self, ctx: Optional[EnvContext] = None):
        """Run clean-up: stop anything still active.

        Idempotent by construction: the pending-node lists are detached
        *before* any RPC goes out, so a second ``cleanup()`` — e.g. a
        reconciliation sweep racing the normal run-exit clean-up — finds
        nothing to do and yields no RPCs.  Per-node failures are swallowed
        and collected into :attr:`last_cleanup_errors` instead of aborting
        the sweep: one unreachable node must not leave the others'
        manipulations running.
        """
        self.last_cleanup_errors = []
        traffic_nodes, self._traffic_nodes = self._traffic_nodes, []
        drop_all_nodes, self._drop_all_nodes = self._drop_all_nodes, []
        population_nodes, self._population_nodes = self._population_nodes, []
        churn_procs, self._churn_procs = self._churn_procs, []
        for proc in churn_procs:
            if proc.alive:
                proc.interrupt("env_cleanup")
        if churn_procs:
            self.emit("env_churn_stopped", params=())
        for node_id in population_nodes:
            try:
                yield from self.channel.call(node_id, "traffic_stop")
            except Exception as exc:  # noqa: BLE001 - sweep must continue
                self.last_cleanup_errors.append(f"{node_id}/traffic_stop: {exc}")
                self._record_swallowed(exc, node_id, "traffic_stop")
        if population_nodes:
            self.emit("env_population_stopped", params=())
        for node_id in traffic_nodes:
            try:
                yield from self.channel.call(node_id, "traffic_stop")
            except Exception as exc:  # noqa: BLE001 - sweep must continue
                self.last_cleanup_errors.append(f"{node_id}/traffic_stop: {exc}")
                self._record_swallowed(exc, node_id, "traffic_stop")
        if traffic_nodes:
            self.emit("env_traffic_stopped", params=())
        for node_id in drop_all_nodes:
            try:
                yield from self.channel.call(node_id, "drop_all_stop")
            except Exception as exc:  # noqa: BLE001 - sweep must continue
                self.last_cleanup_errors.append(f"{node_id}/drop_all_stop: {exc}")
                self._record_swallowed(exc, node_id, "drop_all_stop")
        if drop_all_nodes:
            self.emit("env_drop_all_stopped", params=())
