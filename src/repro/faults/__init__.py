"""Fault injection and environment manipulation (Sec. IV-D).

*"ExCovery has a concept for intentional manipulations done on participant
nodes and on their network environment."*

:mod:`repro.faults.model`
    The common temporal fault parameters *duration*, *rate*, *randomseed*
    and the activation-window algebra.
:mod:`repro.faults.injectors`
    The five communication fault injectors of Sec. IV-D1 — interface
    fault, message loss, message delay, path loss, path delay — realized
    as interface packet filters.
:mod:`repro.faults.controller`
    The node-side fault controller: starts/stops faults, schedules
    activation windows, emits the start/stop events.
:mod:`repro.faults.manipulations`
    The environment manipulations of Sec. IV-D2 — traffic generation with
    per-run pair switching, drop-all — orchestrated master-side.
"""

from repro.faults.controller import FaultController
from repro.faults.injectors import (
    DropExperimentFilter,
    InterfaceFaultFilter,
    MessageDelayFilter,
    MessageLossFilter,
    MessageReorderFilter,
    PathDelayFilter,
    PathLossFilter,
)
from repro.faults.manipulations import EnvironmentController
from repro.faults.model import FaultTiming, FaultWindow

__all__ = [
    "DropExperimentFilter",
    "EnvironmentController",
    "FaultController",
    "FaultTiming",
    "FaultWindow",
    "InterfaceFaultFilter",
    "MessageDelayFilter",
    "MessageLossFilter",
    "MessageReorderFilter",
    "PathDelayFilter",
    "PathLossFilter",
]
