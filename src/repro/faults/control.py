"""Deterministic fault injection for the master↔node *control plane*.

The injectors in :mod:`repro.faults.injectors` attack the emulated data
plane (the experiment's subject); this module attacks the experiment
*infrastructure* itself — the dfuntest argument that a distributed test
harness must tolerate its own misbehaving nodes.  A chaos plan is a list
of plain dict entries (JSON-able, so it survives the CLI and process
pools), each describing one control-channel fault:

``{"node": "t9-105", "action": "hang", "at": 0.5, "run_id": 1}``

Keys
----
``node`` (required)
    Platform node id the fault applies to.
``action`` (required)
    ``hang`` — the node's NodeManager stops answering (requests
    swallowed); ``refuse`` — requests fail fast with a 503 transport
    fault; ``drop_request`` / ``drop_reply`` — lose ``count`` matching
    messages; ``partition`` — a standing (possibly asymmetric) network
    cut: *every* message in the blocked ``direction`` is lost until a
    ``heal`` lifts it; ``heal`` — lift a previous partition;
    ``restore`` — lift a previous hang/refuse.
``at``
    Seconds after run preparation starts (kernel time) before the fault
    arms; default ``0``.
``run_id``
    Apply only during this run (default: every run).
``method``, ``count``
    For the drop actions: RPC method filter (default any) and how many
    messages to lose (default 1).
``direction``
    For ``partition``/``heal``: ``request`` (master→node only),
    ``reply`` (node→master only — the asymmetric halves) or ``both``
    (default).
``max_attempt``
    Campaign-only: inject only while the run's attempt number is ≤ this
    (e.g. ``1`` = first attempt fails, the retry runs fault-free).
``sessions``
    Campaign-only: inject only in these campaign session indices
    (e.g. ``[0]`` = only before the first crash/resume boundary).

Faults are armed by :meth:`repro.platforms.simulated.SimulatedPlatform.
on_run_init` (which first clears the previous run's injected state), so
a chaos plan is itself deterministic: same description, same faults,
same kernel schedule.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict, Iterable, List, Optional, TYPE_CHECKING

from repro.core.errors import PlatformError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.rpc import ControlChannel
    from repro.sim.kernel import Simulator

__all__ = ["VALID_ACTIONS", "ControlFaultPlan", "select_control_faults"]

VALID_ACTIONS = (
    "hang",
    "refuse",
    "drop_request",
    "drop_reply",
    "partition",
    "heal",
    "restore",
)
_DIRECTIONS = ("request", "reply", "both")


def _normalize(entry: Dict[str, Any]) -> Dict[str, Any]:
    if "node" not in entry:
        raise PlatformError(f"control fault entry misses 'node': {entry!r}")
    action = entry.get("action")
    if action not in VALID_ACTIONS:
        raise PlatformError(
            f"unknown control fault action {action!r}; choose from {VALID_ACTIONS}",
        )
    out = dict(entry)
    out.setdefault("at", 0.0)
    out.setdefault("run_id", None)
    out.setdefault("method", None)
    out.setdefault("count", 1)
    out.setdefault("direction", "both")
    if out["direction"] not in _DIRECTIONS:
        raise PlatformError(
            f"unknown partition direction {out['direction']!r}; "
            f"choose from {_DIRECTIONS}",
        )
    return out


def select_control_faults(
    entries: Iterable[Dict[str, Any]],
    attempt: Optional[int] = None,
    session: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Filter a chaos plan by campaign attempt and session.

    The campaign engine calls this per dispatched ticket so that a
    retried run (``attempt`` beyond an entry's ``max_attempt``) or a
    resumed campaign (``session`` not in an entry's ``sessions``)
    executes fault-free — which is what lets the chaos integration test
    demand digest equality with a fault-free reference campaign.
    """
    selected = []
    for entry in entries:
        max_attempt = entry.get("max_attempt")
        if max_attempt is not None and attempt is not None and attempt > max_attempt:
            continue
        sessions = entry.get("sessions")
        if sessions is not None and session is not None and session not in sessions:
            continue
        selected.append(entry)
    return selected


class ControlFaultPlan:
    """A validated chaos plan bound to one platform instance."""

    def __init__(self, entries: Optional[Iterable[Dict[str, Any]]] = None) -> None:
        self.entries = [_normalize(e) for e in (entries or [])]

    def __bool__(self) -> bool:
        return bool(self.entries)

    def for_run(self, run_id: int) -> List[Dict[str, Any]]:
        return [e for e in self.entries if e["run_id"] is None or e["run_id"] == run_id]

    def arm(self, sim: "Simulator", channel: "ControlChannel", run_id: int) -> int:
        """Schedule this run's faults on the channel; returns how many.

        Callers must have cleared previous injected state first
        (``channel.restore_all()``) — arming is per-run, not cumulative.
        """
        armed = 0
        for entry in self.for_run(run_id):
            action = entry["action"]
            at = float(entry["at"])
            # partition/heal accept a node *list* so one entry can cut a
            # whole subset of the fleet (the classic minority partition).
            nodes = entry["node"] if isinstance(entry["node"], list) else [entry["node"]]
            for node in nodes:
                if action in ("hang", "refuse"):
                    fn = partial(channel.set_node_down, node, action)
                elif action == "restore":
                    fn = partial(channel.restore_node, node)
                elif action == "partition":
                    fn = partial(channel.partition_node, node, entry["direction"])
                elif action == "heal":
                    fn = partial(channel.heal_partition, node, entry["direction"])
                else:  # drop_request / drop_reply
                    fn = partial(
                        channel.add_call_fault,
                        node,
                        action,
                        entry["method"],
                        int(entry["count"]),
                    )
                if at > 0:
                    sim.call_later(at, fn)
                else:
                    fn()
                armed += 1
        return armed
