"""Fault leases: crash-safe bookkeeping for injected faults.

The paper bounds every fault with the *duration* parameter (Sec. IV-D)
and promises that a crashed series can be resumed without invalidating
results (Sec. VII).  Those two promises meet badly when a run aborts in
the middle of a fault window: the in-memory
:class:`~repro.faults.controller.FaultController` dies with the run, and
whatever filter it had installed would silently survive into the next
run — the dfuntest failure mode of a harness that does not own its own
clean-up.

A **fault lease** closes that hole.  Starting a fault first appends an
``acquire`` record to a small per-node JSONL file (flushed and fsynced,
so it survives any crash that happens after the filter is live);
reverting the fault appends the matching ``release``.  A lease that has
an ``acquire`` but no ``release`` is *active*; any active lease found at
a safe point (NodeManager startup, ``run_init``) was necessarily leaked
by a crashed or watchdog-aborted run and is force-reverted by the
reconciliation sweep.

The lease's TTL (``expires_at``) is advisory metadata: it records until
when the fault was *supposed* to live (acquisition time plus the fault's
``duration`` plus the run-deadline margin), which operators can compare
against the reconciliation time.  Reconciliation does not wait for
expiry — a lease still on disk at a safe point is leaked by definition,
because every orderly path (auto-stop, ``stop_all`` at run exit,
explicit stop) releases it.

File format (``<root>/<node>.jsonl``, append-only between sweeps)::

    {"op": "acquire", "lease": {"lease_id": ..., "node": ..., ...}}
    {"op": "release", "lease_id": ..., "released_at": ...}

A reconciliation sweep compacts the file: the leaked leases are returned
to the caller and the file is atomically rewritten without them, so the
lease file stays bounded by the number of concurrently active faults.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import get_registry

__all__ = ["FaultLeaseStore", "make_lease", "iter_lease_files"]


def make_lease(
    node: str,
    run_id: Optional[int],
    kind: str,
    fault_id: int,
    acquired_at: float,
    duration: Optional[float],
    ttl_margin: float = 0.0,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build one lease record; ``expires_at`` is the advisory TTL."""
    ttl = (duration if duration is not None else 0.0) + max(ttl_margin, 0.0)
    return {
        "lease_id": f"{node}/{run_id if run_id is not None else '-'}/{fault_id}",
        "node": node,
        "run_id": run_id,
        "kind": kind,
        "fault_id": fault_id,
        "acquired_at": acquired_at,
        "expires_at": (acquired_at + ttl) if ttl > 0 else None,
        "params": {str(k): v for k, v in (params or {}).items()},
    }


class FaultLeaseStore:
    """Fsynced per-node lease files under one root directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Live lease count per node as this store sees it — mirrors into
        #: the ``repro_fault_leases_active`` gauge, so a stuck window (a
        #: lease that never releases) is visible without reading files.
        self._live: Dict[str, int] = {}

    def _path(self, node: str) -> Path:
        return self.root / f"{node}.jsonl"

    def _track(self, node: str, delta: Optional[int]) -> None:
        """Adjust the live count (``None`` resets after a reconcile)."""
        if delta is None:
            self._live[node] = 0
        else:
            self._live[node] = max(0, self._live.get(node, 0) + delta)
        get_registry().gauge(
            "repro_fault_leases_active",
            "Fault leases currently held (acquired but not released)",
            labels=("node",),
        ).set(self._live[node], node=node)

    # ------------------------------------------------------------------
    # Writing (both appends are the crash-safety points: flush + fsync)
    # ------------------------------------------------------------------
    def _append(self, node: str, record: Dict[str, Any]) -> None:
        with open(self._path(node), "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def acquire(self, lease: Dict[str, Any]) -> None:
        self._append(lease["node"], {"op": "acquire", "lease": lease})
        self._track(lease["node"], +1)

    def release(self, node: str, lease_id: str, released_at: float) -> None:
        self._append(
            node,
            {"op": "release", "lease_id": lease_id, "released_at": released_at},
        )
        self._track(node, -1)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _read(self, node: str) -> List[Dict[str, Any]]:
        path = self._path(node)
        if not path.exists():
            return []
        records = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    # A crash mid-append leaves at most one truncated
                    # trailing line; the acquire it belonged to never
                    # installed its filter (append happens first), so
                    # dropping it is safe.
                    continue
        return records

    def active(self, node: str) -> List[Dict[str, Any]]:
        """Leases with an ``acquire`` but no ``release``, in acquire order."""
        leases: Dict[str, Dict[str, Any]] = {}
        for rec in self._read(node):
            if rec.get("op") == "acquire":
                lease = rec.get("lease") or {}
                if lease.get("lease_id"):
                    leases[lease["lease_id"]] = lease
            elif rec.get("op") == "release":
                leases.pop(rec.get("lease_id"), None)
        return list(leases.values())

    def nodes(self) -> List[str]:
        return sorted(p.stem for p in self.root.glob("*.jsonl"))

    # ------------------------------------------------------------------
    # Reconciliation
    # ------------------------------------------------------------------
    def reconcile(self, node: str) -> List[Dict[str, Any]]:
        """Pop every active lease of *node* and compact its file.

        Returns the leaked leases (empty after every orderly shutdown).
        The compaction is atomic (write-to-temp + rename + dir fsync), so
        a crash during the sweep either keeps the old file — the next
        sweep reconciles again, idempotently — or the new, empty one.
        """
        leaked = self.active(node)
        path = self._path(node)
        if path.exists():
            tmp = path.with_suffix(".jsonl.tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            self._fsync_dir()
        self._track(node, None)
        return leaked

    def _fsync_dir(self) -> None:
        try:
            dir_fd = os.open(str(self.root), os.O_RDONLY)
        except OSError:  # pragma: no cover - e.g. Windows
            return
        try:
            os.fsync(dir_fd)
        except OSError:  # pragma: no cover
            pass
        finally:
            os.close(dir_fd)


def iter_lease_files(directory) -> Iterator[Tuple[Path, str]]:
    """Yield ``(lease_file, node)`` under *directory*'s lease roots.

    Understands both layouts: a serial store (``<dir>/leases/<node>.jsonl``)
    and a campaign root (``<dir>/leases/run_XXXXXX/<node>.jsonl``).  Used
    by ``repro inspect --leases``.
    """
    directory = Path(directory)
    root = directory / "leases"
    if not root.is_dir():
        return
    for path in sorted(root.rglob("*.jsonl")):
        yield path, path.stem
