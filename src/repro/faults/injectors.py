"""Communication fault injectors (Sec. IV-D1) as interface packet filters.

*"Whenever the term packet is used, it refers to packets belonging to the
experiment process"* — so every injector here matches only packets with
the experiment flow label, leaving generated background load untouched.
*"It should be noted that all injected faults add up to already existing
communication faults in the target platform"* — filters compose with the
medium's own loss and delay, they never replace them.

Each injector honours an activation :class:`~repro.faults.model.FaultWindow`:
outside its window it passes everything, so a single installed filter
implements the duration/rate semantics without install/remove churn.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.faults.model import FaultWindow
from repro.net.interface import DROP, PASS, Direction, FilterVerdict, PacketFilter
from repro.net.packet import Packet

__all__ = [
    "EXPERIMENT_FLOW",
    "FaultFilter",
    "InterfaceFaultFilter",
    "MessageLossFilter",
    "MessageDelayFilter",
    "PathLossFilter",
    "PathDelayFilter",
    "resolve_direction",
]

#: The flow label of packets belonging to the experiment process.
EXPERIMENT_FLOW = "experiment"

#: Window meaning "active from now until stopped".
ALWAYS = FaultWindow(active_from=float("-inf"), active_until=None)


def resolve_direction(text: str, rng: Optional[random.Random] = None) -> Direction:
    """Map a description direction string to a :class:`Direction`.

    ``"random"`` picks receive or transmit using *rng* (Sec. IV-D1:
    "Direction can be receive, transmit, both, or chosen randomly").
    """
    text = (text or "both").strip().lower()
    if text in ("rx", "receive"):
        return Direction.RX
    if text in ("tx", "transmit"):
        return Direction.TX
    if text == "both":
        return Direction.BOTH
    if text == "random":
        if rng is None:
            raise ValueError("direction 'random' requires an rng stream")
        return rng.choice([Direction.RX, Direction.TX])
    raise ValueError(f"unknown fault direction {text!r}")


class FaultFilter(PacketFilter):
    """Base class: window gating + experiment-flow matching."""

    def __init__(
        self,
        direction: Direction = Direction.BOTH,
        window: FaultWindow = ALWAYS,
        label: str = "",
        flow: Optional[str] = EXPERIMENT_FLOW,
    ) -> None:
        super().__init__(direction=direction, label=label)
        self.window = window
        self.flow = flow
        self.hits = 0  # packets the fault actually affected

    def applies(self, packet: Packet, now: float) -> bool:
        if not self.window.is_active(now):
            return False
        if self.flow is not None and packet.flow != self.flow:
            return False
        return True

    def decide(self, packet: Packet, direction: Direction, now: float) -> FilterVerdict:
        if not self.applies(packet, now):
            return PASS
        return self.affect(packet, direction, now)

    def affect(self, packet: Packet, direction: Direction, now: float) -> FilterVerdict:
        raise NotImplementedError


class InterfaceFaultFilter(FaultFilter):
    """**Interface fault**: *"No messages are transmitted or received on
    the specified interface in the specified direction as long as this
    fault is active."*

    Matches *all* flows — a dead radio is dead for everyone.
    """

    def __init__(self, direction: Direction, window: FaultWindow = ALWAYS) -> None:
        super().__init__(direction=direction, window=window, label="iface_fault", flow=None)

    def affect(self, packet: Packet, direction: Direction, now: float) -> FilterVerdict:
        self.hits += 1
        return DROP


class MessageLossFilter(FaultFilter):
    """**Message loss**: drop each experiment packet with probability *p*."""

    def __init__(
        self,
        probability: float,
        rng: random.Random,
        direction: Direction = Direction.BOTH,
        window: FaultWindow = ALWAYS,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {probability}")
        super().__init__(direction=direction, window=window, label="msg_loss")
        self.probability = float(probability)
        self.rng = rng

    def affect(self, packet: Packet, direction: Direction, now: float) -> FilterVerdict:
        if self.rng.random() < self.probability:
            self.hits += 1
            return DROP
        return PASS


class MessageDelayFilter(FaultFilter):
    """**Message delay**: *"Applies a given constant delay to every
    packet."*"""

    def __init__(
        self,
        delay: float,
        direction: Direction = Direction.BOTH,
        window: FaultWindow = ALWAYS,
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        super().__init__(direction=direction, window=window, label="msg_delay")
        self.delay = float(delay)

    def affect(self, packet: Packet, direction: Direction, now: float) -> FilterVerdict:
        self.hits += 1
        return FilterVerdict(extra_delay=self.delay)


class DropExperimentFilter(FaultFilter):
    """The node-local half of the **drop-all** manipulation: silently
    discard every experiment-process packet in both directions (receive,
    send *and* forward — forwarded packets cross the TX chain too)."""

    def __init__(self) -> None:
        super().__init__(direction=Direction.BOTH, label="drop_all")

    def affect(self, packet: Packet, direction: Direction, now: float) -> FilterVerdict:
        self.hits += 1
        return DROP


class MessageReorderFilter(FaultFilter):
    """**Message reordering**: randomly delay a fraction of packets.

    Sec. IV-A2 requires platforms to support "dropping of packets,
    delaying, *reordering*, and modifying their content".  Reordering is
    realized as probabilistic extra delay: each matching packet is held
    back for ``delay`` seconds with probability ``probability``, so held
    packets overtake-resistant protocols must cope with out-of-order
    arrival relative to the packets that slipped through immediately.
    """

    def __init__(
        self,
        probability: float,
        delay: float,
        rng: random.Random,
        direction: Direction = Direction.BOTH,
        window: FaultWindow = ALWAYS,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"reorder probability must be in [0, 1], got {probability}")
        if delay <= 0:
            raise ValueError(f"reorder delay must be positive, got {delay}")
        super().__init__(direction=direction, window=window, label="msg_reorder")
        self.probability = float(probability)
        self.delay = float(delay)
        self.rng = rng

    def affect(self, packet: Packet, direction: Direction, now: float) -> FilterVerdict:
        if self.rng.random() < self.probability:
            self.hits += 1
            return FilterVerdict(extra_delay=self.delay)
        return PASS


class _PathMixin:
    """Match only packets exchanged with one given peer address.

    Path faults "selectively affect only the communication between the
    target and a given second node" — matched on end-to-end addresses, so
    multi-hop forwarding cannot smuggle the packet past the rule.
    """

    peer_addr: str

    def involves_peer(self, packet: Packet) -> bool:
        return self.peer_addr in (packet.src_addr, packet.dst_addr)


class PathLossFilter(FaultFilter, _PathMixin):
    """**Path loss**: message loss limited to one peer."""

    def __init__(
        self,
        peer_addr: str,
        probability: float,
        rng: random.Random,
        direction: Direction = Direction.BOTH,
        window: FaultWindow = ALWAYS,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {probability}")
        super().__init__(direction=direction, window=window, label="path_loss")
        self.peer_addr = peer_addr
        self.probability = float(probability)
        self.rng = rng

    def affect(self, packet: Packet, direction: Direction, now: float) -> FilterVerdict:
        if not self.involves_peer(packet):
            return PASS
        if self.rng.random() < self.probability:
            self.hits += 1
            return DROP
        return PASS


class PathDelayFilter(FaultFilter, _PathMixin):
    """**Path delay**: constant delay limited to one peer."""

    def __init__(
        self,
        peer_addr: str,
        delay: float,
        direction: Direction = Direction.BOTH,
        window: FaultWindow = ALWAYS,
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        super().__init__(direction=direction, window=window, label="path_delay")
        self.peer_addr = peer_addr
        self.delay = float(delay)

    def affect(self, packet: Packet, direction: Direction, now: float) -> FilterVerdict:
        if not self.involves_peer(packet):
            return PASS
        self.hits += 1
        return FilterVerdict(extra_delay=self.delay)
