"""Temporal fault parameters and activation windows.

Sec. IV-D: *"Fault injection processes can have common parameters
describing their temporal behavior: duration, rate and randomseed.  The
duration specifies the amount of time a fault should be applied to the
target.  The rate specifies a percentage of a given duration in which a
fault is active.  The fault is active in one continuous block, its
activation time is chosen randomly using the randomseed."*

So a fault started at time ``t`` with ``duration=D`` and ``rate=r`` is
active for one continuous block of length ``r*D`` placed uniformly at
random inside ``[t, t+D]``; the placement is a pure function of
``randomseed``, so replications can share or vary it deliberately.

Faults without a duration are active from start until explicitly stopped
(Sec. IV-D2: *"Every fault injection and environment manipulation but the
traffic generator is started only once and without a given duration,
needs to be explicitly stopped."*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.sim.rng import derive_seed

import random

__all__ = ["FaultTiming", "FaultWindow"]


@dataclass(frozen=True)
class FaultTiming:
    """The common temporal parameters of a fault process."""

    duration: Optional[float] = None
    rate: float = 1.0
    randomseed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration is not None and self.duration < 0:
            raise ValueError(f"negative fault duration: {self.duration}")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"fault rate must be in (0, 1], got {self.rate}")

    @property
    def unbounded(self) -> bool:
        """True when the fault runs until explicitly stopped."""
        return self.duration is None

    def window(self, start: float) -> "FaultWindow":
        """Compute the activation window for a fault started at *start*."""
        if self.unbounded:
            return FaultWindow(active_from=start, active_until=None)
        active_len = self.rate * self.duration
        slack = self.duration - active_len
        if slack > 0:
            seed = self.randomseed if self.randomseed is not None else 0
            # One draw from a dedicated generator: the placement depends
            # only on the seed, never on shared RNG state.
            offset = random.Random(derive_seed(seed, "fault_window")).uniform(0.0, slack)
        else:
            offset = 0.0
        return FaultWindow(
            active_from=start + offset,
            active_until=start + offset + active_len,
        )

    @staticmethod
    def from_params(params: Dict[str, Any]) -> "FaultTiming":
        """Extract the common parameters from an action's parameter dict.

        Consumes (pops) the common keys so the remaining dict holds only
        fault-specific parameters.
        """
        duration = params.pop("duration", None)
        rate = params.pop("rate", 1.0)
        randomseed = params.pop("randomseed", None)
        return FaultTiming(
            duration=float(duration) if duration is not None else None,
            rate=float(rate),
            randomseed=int(randomseed) if randomseed is not None else None,
        )


@dataclass(frozen=True)
class FaultWindow:
    """A concrete activation interval ``[active_from, active_until)``.

    ``active_until`` of ``None`` means "until explicitly stopped".
    """

    active_from: float
    active_until: Optional[float]

    def is_active(self, now: float) -> bool:
        if now < self.active_from:
            return False
        return self.active_until is None or now < self.active_until

    @property
    def length(self) -> Optional[float]:
        if self.active_until is None:
            return None
        return self.active_until - self.active_from

    def as_record(self) -> Dict[str, Any]:
        return {"active_from": self.active_from, "active_until": self.active_until}
