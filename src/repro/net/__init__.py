"""Emulated network testbed.

This package replaces the paper's physical platform — the DES wireless mesh
testbed at FU Berlin — with a deterministic discrete-event network emulator
satisfying every platform requirement of Sec. IV-A:

* **Experiment management** — node control happens over a logically separate
  channel (:mod:`repro.core.rpc`), never through the emulated medium, so the
  control traffic cannot interfere with the process under experimentation.
* **Connection control** — interfaces can be taken down per direction and
  carry packet-filter chains that drop, delay or modify packets based on
  rules (:mod:`repro.net.interface`); this is what the fault injectors of
  :mod:`repro.faults` attach to.
* **Measurement** — every interface feeds a packet capture with exact local
  timestamps and unaltered content (:mod:`repro.net.capture`); a packet
  tagger writes incrementing 16-bit identifiers into packet options for
  cross-node tracking (:mod:`repro.net.tagger`, cf. Sec. VI-A); node clocks
  are explicit objects with offset and drift so time synchronization is a
  real, errorful measurement rather than an assumption
  (:mod:`repro.net.clock`).

The wireless character of the testbed is modelled by
:class:`~repro.net.medium.WirelessMedium`: a shared-capacity broadcast
medium over a mesh connectivity graph, with load-dependent loss and
queueing delay, per-hop MAC retransmissions, and flooding-based multicast
with duplicate suppression.
"""

from repro.net.clock import LocalClock
from repro.net.medium import CongestionModel, WirelessMedium
from repro.net.node import NetNode
from repro.net.packet import (
    BROADCAST_ADDR,
    MULTICAST_SD_GROUP,
    Packet,
    is_multicast,
)
from repro.net.topology import (
    Topology,
    grid_topology,
    line_topology,
    random_geometric_topology,
    star_topology,
)
from repro.net.traffic import TrafficGenerator

__all__ = [
    "BROADCAST_ADDR",
    "CongestionModel",
    "LocalClock",
    "MULTICAST_SD_GROUP",
    "NetNode",
    "Packet",
    "Topology",
    "TrafficGenerator",
    "WirelessMedium",
    "grid_topology",
    "is_multicast",
    "line_topology",
    "random_geometric_topology",
    "star_topology",
]
