"""Emulated network nodes: UDP-like sockets, forwarding, multicast flooding.

A :class:`NetNode` bundles everything a testbed node contributes to the
data plane:

* one wireless interface on the shared medium,
* a minimal datagram *stack*: ``bind(port, handler)`` / ``send_datagram``,
* **unicast forwarding** along shortest paths (the mesh routing daemon),
* **multicast flooding** with duplicate suppression and hop limits (how
  mesh networks carry mDNS-style link-local multicast beyond one hop),
* a local :class:`~repro.net.clock.LocalClock`, a
  :class:`~repro.net.capture.PacketCapture` and a
  :class:`~repro.net.tagger.PacketTagger`.

The *control plane* (NodeManager, RPC) deliberately lives elsewhere
(:mod:`repro.core.nodemanager`); the paper requires the management channel
to be physically separate from the experiment network (Sec. IV-A1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Set, TYPE_CHECKING

from repro.net.capture import PacketCapture
from repro.net.clock import LocalClock
from repro.net.interface import Interface
from repro.net.packet import (
    BROADCAST_ADDR,
    DEFAULT_TTL,
    MULTICAST_PREFIX,
    Packet,
    is_multicast,
)
from repro.net.tagger import PacketTagger

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["NetNode", "PortInUse"]

#: Handler signature: ``handler(payload, packet, node)``.
DatagramHandler = Callable[[Any, Packet, "NetNode"], None]


class PortInUse(RuntimeError):
    """Raised when binding a port that already has a handler."""


class NetNode:
    """One node of the emulated testbed.

    Parameters
    ----------
    sim:
        Simulation kernel.
    name:
        Topology node name (also the host name in the platform mapping).
    address:
        Unicast network address, e.g. ``"10.0.0.7"``.
    clock:
        The node's (possibly skewed) local clock; defaults to a perfect one.
    forwarding:
        Whether this node forwards unicast packets for others (mesh router
        role).  All DES testbed nodes do.
    flood_multicast:
        Whether this node re-floods multicast packets (with duplicate
        suppression).  Disable to confine multicast to one hop.
    seen_cache_size:
        Capacity of the duplicate-suppression LRU for flooded packets.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        address: str,
        clock: Optional[LocalClock] = None,
        forwarding: bool = True,
        flood_multicast: bool = True,
        seen_cache_size: int = 4096,
    ) -> None:
        self.sim = sim
        self.name = name
        self.address = address
        self.clock = clock if clock is not None else LocalClock(sim)
        self.forwarding = forwarding
        self.flood_multicast = flood_multicast
        self.interface = Interface(self, "wlan0")
        self.capture = PacketCapture(self)
        self.tagger = PacketTagger(name)
        self._bindings: Dict[int, DatagramHandler] = {}
        self._groups: Set[str] = set()
        self._seen: "OrderedDict[int, None]" = OrderedDict()
        self._seen_cache_size = seen_cache_size
        #: Stack-level counters for analysis.
        self.counters: Dict[str, int] = {
            "sent": 0,
            "delivered": 0,
            "forwarded": 0,
            "flooded": 0,
            "no_handler": 0,
            "ttl_expired": 0,
        }

    # ------------------------------------------------------------------
    # Socket API
    # ------------------------------------------------------------------
    def bind(self, port: int, handler: DatagramHandler) -> None:
        """Attach *handler* to *port*; raises :class:`PortInUse` if taken."""
        if port in self._bindings:
            raise PortInUse(f"{self.name}: port {port} already bound")
        self._bindings[port] = handler

    def unbind(self, port: int) -> None:
        self._bindings.pop(port, None)

    def is_bound(self, port: int) -> bool:
        return port in self._bindings

    def join_group(self, group: str) -> None:
        """Start receiving datagrams addressed to multicast *group*."""
        if not is_multicast(group):
            raise ValueError(f"{group!r} is not a multicast group address")
        self._groups.add(group)

    def leave_group(self, group: str) -> None:
        self._groups.discard(group)

    @property
    def groups(self) -> Set[str]:
        return set(self._groups)

    def send_datagram(
        self,
        payload: Any,
        dst_addr: str,
        dst_port: int,
        src_port: int = 0,
        size: int = 128,
        ttl: int = DEFAULT_TTL,
        flow: str = "experiment",
        tag: bool = True,
    ) -> Packet:
        """Originate a datagram.  Returns the packet (even if tx failed).

        Tagging happens here — only packets the node *originates* enter its
        tagger sequence, matching the testbed tagger which hooks local
        OUTPUT, not forwarding.
        """
        packet = Packet(
            src_addr=self.address,
            dst_addr=dst_addr,
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
            size=size,
            ttl=ttl,
            flow=flow,
        )
        if tag:
            self.tagger.tag(packet)
        self.counters["sent"] += 1
        if is_multicast(dst_addr):
            # The originator must not re-flood its own packet back.
            self._mark_seen(packet.uid)
        self.interface.transmit(packet)
        return packet

    # ------------------------------------------------------------------
    # Receive path (called by the interface)
    # ------------------------------------------------------------------
    def _receive(self, packet: Packet, _iface: Interface) -> None:
        # Inlined is_multicast/is_broadcast (hot path): both special
        # address forms start with "2", so unicast to a normal address
        # skips the string tests.  Check order matches the historical one.
        dst = packet.dst_addr
        if dst[0] == "2":
            if dst.startswith(MULTICAST_PREFIX):
                self._receive_multicast(packet)
                return
            if dst == BROADCAST_ADDR:
                self._deliver_local(packet)
                return
        if dst == self.address:
            self._deliver_local(packet)
        else:
            self._forward_unicast(packet)

    def _receive_multicast(self, packet: Packet) -> None:
        if packet.uid in self._seen:
            return  # duplicate from another flooding branch
        self._mark_seen(packet.uid)
        if packet.dst_addr in self._groups:
            self._deliver_local(packet)
        # ttl > 1 == "this packet is alive and its forwarded copy will be
        # too"; checking before forwarded() skips the copy when the hop
        # budget is spent.
        if self.flood_multicast and packet.ttl > 1:
            self.counters["flooded"] += 1
            self.interface.transmit(packet.forwarded())

    def _forward_unicast(self, packet: Packet) -> None:
        if not self.forwarding:
            return
        if packet.ttl <= 1:  # the forwarded packet would be expired
            self.counters["ttl_expired"] += 1
            return
        self.counters["forwarded"] += 1
        # A unicast packet has exactly one receiver per hop, so at this
        # point this node is its only owner: nothing upstream holds a
        # reference that is still read (captures snapshot fields at record
        # time) and nothing downstream has seen it yet.  Decrementing the
        # hop budget in place therefore observes the same values everywhere
        # a per-hop copy would, without allocating one.  Multicast floods
        # DO share the packet object across receivers and must keep
        # copying (see _receive_multicast).
        packet.ttl -= 1
        self.interface.transmit(packet)

    def _deliver_local(self, packet: Packet) -> None:
        handler = self._bindings.get(packet.dst_port)
        if handler is None:
            self.counters["no_handler"] += 1
            return
        self.counters["delivered"] += 1
        handler(packet.payload, packet, self)

    def _mark_seen(self, uid: int) -> None:
        # Callers only mark unseen uids, so plain insertion already lands
        # the key at the LRU tail; no move_to_end needed.
        seen = self._seen
        seen[uid] = None
        while len(seen) > self._seen_cache_size:
            seen.popitem(last=False)

    # ------------------------------------------------------------------
    # Run lifecycle helpers (used by the NodeManager)
    # ------------------------------------------------------------------
    def reset_data_plane(self) -> None:
        """Run-preparation reset: clear caches, captures and counters.

        Sec. IV-C1: *"During preparation, the whole environment of the
        experiment process must be reset to a defined initial working
        condition ... network packets generated in previous runs must be
        dropped on all participants."*
        """
        self._seen.clear()
        self.capture.clear()
        for key in self.counters:
            self.counters[key] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NetNode {self.name} addr={self.address}>"
