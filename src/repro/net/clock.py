"""Per-node local clocks with offset and drift.

The paper treats node clock deviation as a first-class measurement problem
(Sec. IV-B3): every event and packet carries a *local* timestamp, and
ExCovery measures, before each run, the difference of each participant's
clock to a reference clock so a valid global time line can be constructed
afterwards.

To reproduce that honestly, the emulated nodes must *actually have* skewed
clocks.  A :class:`LocalClock` maps the kernel's hidden "true" time ``t``
to a local reading::

    local(t) = offset + (1 + drift) * t

``offset`` is in seconds, ``drift`` is dimensionless (e.g. ``50e-6`` for a
50 ppm crystal).  The conditioning stage (:mod:`repro.storage.conditioning`)
never sees these parameters — it must recover the common time base purely
from the sync measurements, exactly as a real testbed would.
"""

from __future__ import annotations

import random

__all__ = ["LocalClock", "random_clock"]


class LocalClock:
    """A skewed local clock bound to a simulator.

    Parameters
    ----------
    sim:
        Object exposing ``.now`` (the true time source).
    offset:
        Constant displacement of the local clock in seconds.
    drift:
        Fractional frequency error.  A drift of ``1e-4`` gains 0.1 ms per
        true second.
    """

    __slots__ = ("sim", "offset", "drift")

    def __init__(self, sim, offset: float = 0.0, drift: float = 0.0) -> None:
        if drift <= -1.0:
            raise ValueError("drift must be > -1 (clock cannot run backwards)")
        self.sim = sim
        self.offset = float(offset)
        self.drift = float(drift)

    def time(self) -> float:
        """The node's current local reading."""
        return self.to_local(self.sim.now)

    def to_local(self, true_time: float) -> float:
        """Map a true instant to this clock's reading."""
        return self.offset + (1.0 + self.drift) * true_time

    def from_local(self, local_time: float) -> float:
        """Invert :meth:`to_local` (oracle use only: tests, not conditioning)."""
        return (local_time - self.offset) / (1.0 + self.drift)

    def step(self, delta: float) -> None:
        """Manually displace the clock (models an NTP step mid-experiment)."""
        self.offset += float(delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LocalClock offset={self.offset:+.6f}s drift={self.drift:+.2e}>"


def random_clock(
    sim,
    rng: random.Random,
    max_offset: float = 0.5,
    max_drift: float = 100e-6,
) -> LocalClock:
    """Draw a plausible desynchronized clock.

    Offsets up to ±``max_offset`` seconds and drift up to ±``max_drift``
    mimic testbed nodes whose NTP sync is only coarse — large enough that
    naive merging of local timestamps would create causal conflicts, which
    is precisely the condition the conditioning stage must fix.
    """
    return LocalClock(
        sim,
        offset=rng.uniform(-max_offset, max_offset),
        drift=rng.uniform(-max_drift, max_drift),
    )
