"""Mesh topologies for the emulated testbed.

The DES testbed is a multi-hop wireless mesh of ~100 indoor nodes.  We
model connectivity as an undirected graph whose edges carry link-quality
attributes:

``base_loss``
    Per-transmission loss probability of the link under zero load.
``base_delay``
    One-hop propagation + processing delay in seconds under zero load.

Builders produce common research shapes (grid, line, star, random
geometric).  The random geometric builder is the closest analogue of an
indoor mesh deployment: nodes scattered in a unit square, links where
distance < radius, quality degrading with distance.

Hop counts — the paper's "rudimentary description of the network topology
... measured as hop count between the participating nodes" (Sec. IV-B4) —
come straight from shortest path lengths of this graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

__all__ = [
    "Topology",
    "grid_topology",
    "line_topology",
    "star_topology",
    "full_mesh_topology",
    "random_geometric_topology",
    "from_edges",
]

#: Defaults representative of a healthy 802.11 mesh link.
DEFAULT_BASE_LOSS = 0.02
DEFAULT_BASE_DELAY = 0.002


class Topology:
    """A connectivity graph plus convenience queries.

    Node identifiers are the node *names* (strings); the emulator maps them
    to :class:`~repro.net.node.NetNode` objects at attach time.
    """

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("topology must contain at least one node")
        self.graph = graph
        self._paths_cache: Optional[Dict[str, Dict[str, List[str]]]] = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def node_names(self) -> List[str]:
        return sorted(self.graph.nodes)

    def neighbors(self, name: str) -> List[str]:
        return sorted(self.graph.neighbors(name))

    def edge_attrs(self, a: str, b: str) -> Dict[str, float]:
        return self.graph.edges[a, b]

    def has_edge(self, a: str, b: str) -> bool:
        return self.graph.has_edge(a, b)

    def _paths(self) -> Dict[str, Dict[str, List[str]]]:
        if self._paths_cache is None:
            self._paths_cache = {
                src: paths
                for src, paths in nx.all_pairs_shortest_path(self.graph)
            }
        return self._paths_cache

    def shortest_path(self, src: str, dst: str) -> List[str]:
        """Node sequence from *src* to *dst* inclusive.

        Raises ``KeyError`` if unreachable (partitioned mesh).
        """
        try:
            return self._paths()[src][dst]
        except KeyError:
            raise KeyError(f"no path {src} -> {dst}") from None

    def next_hop(self, src: str, dst: str) -> Optional[str]:
        """The neighbour *src* forwards to on the way to *dst*."""
        if src == dst:
            return None
        try:
            path = self.shortest_path(src, dst)
        except KeyError:
            return None
        return path[1]

    def hop_count(self, src: str, dst: str) -> Optional[int]:
        """Number of hops between two nodes, ``None`` if unreachable."""
        if src == dst:
            return 0
        try:
            return len(self.shortest_path(src, dst)) - 1
        except KeyError:
            return None

    def hop_count_matrix(self, names: Optional[Iterable[str]] = None) -> Dict[Tuple[str, str], Optional[int]]:
        """All-pairs hop counts for the given nodes (default: all).

        This is exactly the topology measurement ExCovery takes before and
        after an experiment.
        """
        names = sorted(names) if names is not None else self.node_names
        return {
            (a, b): self.hop_count(a, b)
            for a in names
            for b in names
            if a != b
        }

    def invalidate_cache(self) -> None:
        """Forget cached shortest paths after mutating the graph."""
        self._paths_cache = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Topology {self.graph.number_of_nodes()} nodes, "
            f"{self.graph.number_of_edges()} links>"
        )


def _apply_defaults(graph: nx.Graph, base_loss: float, base_delay: float) -> nx.Graph:
    for _a, _b, attrs in graph.edges(data=True):
        attrs.setdefault("base_loss", base_loss)
        attrs.setdefault("base_delay", base_delay)
    return graph


def _named(graph: nx.Graph, prefix: str) -> nx.Graph:
    """Relabel integer node ids to stable string names."""
    mapping = {n: f"{prefix}{i}" for i, n in enumerate(sorted(graph.nodes))}
    return nx.relabel_nodes(graph, mapping)


def grid_topology(
    rows: int,
    cols: int,
    base_loss: float = DEFAULT_BASE_LOSS,
    base_delay: float = DEFAULT_BASE_DELAY,
    prefix: str = "n",
) -> Topology:
    """A ``rows x cols`` lattice — the canonical office-floor mesh."""
    graph = nx.grid_2d_graph(rows, cols)
    graph = nx.relabel_nodes(
        graph, {rc: rc[0] * cols + rc[1] for rc in list(graph.nodes)}
    )
    graph = _named(graph, prefix)
    return Topology(_apply_defaults(graph, base_loss, base_delay))


def line_topology(
    n: int,
    base_loss: float = DEFAULT_BASE_LOSS,
    base_delay: float = DEFAULT_BASE_DELAY,
    prefix: str = "n",
) -> Topology:
    """A chain of *n* nodes, the worst case for multi-hop flooding."""
    graph = _named(nx.path_graph(n), prefix)
    return Topology(_apply_defaults(graph, base_loss, base_delay))


def star_topology(
    leaves: int,
    base_loss: float = DEFAULT_BASE_LOSS,
    base_delay: float = DEFAULT_BASE_DELAY,
    prefix: str = "n",
) -> Topology:
    """One hub (``<prefix>0``) with *leaves* one-hop neighbours."""
    graph = _named(nx.star_graph(leaves), prefix)
    return Topology(_apply_defaults(graph, base_loss, base_delay))


def full_mesh_topology(
    n: int,
    base_loss: float = DEFAULT_BASE_LOSS,
    base_delay: float = DEFAULT_BASE_DELAY,
    prefix: str = "n",
) -> Topology:
    """Everyone hears everyone — a single collision domain."""
    graph = _named(nx.complete_graph(n), prefix)
    return Topology(_apply_defaults(graph, base_loss, base_delay))


def random_geometric_topology(
    n: int,
    radius: float,
    seed: int,
    base_loss: float = DEFAULT_BASE_LOSS,
    base_delay: float = DEFAULT_BASE_DELAY,
    prefix: str = "n",
    ensure_connected: bool = True,
    max_attempts: int = 64,
) -> Topology:
    """Nodes scattered uniformly in the unit square; links below *radius*.

    Link quality degrades with distance: ``base_loss`` scales up to 4x at
    the connectivity edge, mimicking weak long links in an indoor mesh.

    With ``ensure_connected`` the builder redraws (deterministically, by
    incrementing the seed) until the graph is connected, so experiments
    never start on a partitioned mesh unless they ask for one.
    """
    rng_seed = seed
    for _ in range(max_attempts):
        graph = nx.random_geometric_graph(n, radius, seed=rng_seed)
        if not ensure_connected or nx.is_connected(graph):
            break
        rng_seed += 1
    else:
        raise ValueError(
            f"could not draw a connected geometric graph (n={n}, radius={radius})"
        )
    pos = nx.get_node_attributes(graph, "pos")
    for a, b, attrs in graph.edges(data=True):
        (xa, ya), (xb, yb) = pos[a], pos[b]
        dist = ((xa - xb) ** 2 + (ya - yb) ** 2) ** 0.5
        quality = min(dist / radius, 1.0)  # 0 = adjacent, 1 = fringe link
        attrs["base_loss"] = min(0.95, base_loss * (1.0 + 3.0 * quality**2))
        attrs["base_delay"] = base_delay
    graph = _named(graph, prefix)
    return Topology(graph)


def from_edges(
    edges: Iterable[Tuple[str, str]],
    base_loss: float = DEFAULT_BASE_LOSS,
    base_delay: float = DEFAULT_BASE_DELAY,
) -> Topology:
    """Build a topology from explicit named edges."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return Topology(_apply_defaults(graph, base_loss, base_delay))
