"""Mesh topologies for the emulated testbed.

The DES testbed is a multi-hop wireless mesh of ~100 indoor nodes.  We
model connectivity as an undirected graph whose edges carry link-quality
attributes:

``base_loss``
    Per-transmission loss probability of the link under zero load.
``base_delay``
    One-hop propagation + processing delay in seconds under zero load.

Builders produce common research shapes (grid, line, star, random
geometric).  The random geometric builder is the closest analogue of an
indoor mesh deployment: nodes scattered in a unit square, links where
distance < radius, quality degrading with distance.

Hop counts — the paper's "rudimentary description of the network topology
... measured as hop count between the participating nodes" (Sec. IV-B4) —
come straight from shortest path lengths of this graph.

Route tables
------------
The simulator fast path (DESIGN.md §14) never touches nx path lists on the
packet hot loop.  Node names are interned to dense int ids (graph node
insertion order) and next hops come from lazily built per-source BFS rows:
``_route_row(src_id)[dst_id]`` is the int id of the neighbour *src*
forwards to, ``-1`` if unreachable (or ``dst == src``).  The FIFO BFS
propagates the first hop over ``graph.adj`` in insertion order, which is
exactly the discovery order ``nx.all_pairs_shortest_path`` uses, so the
chosen hop is identical to the historical ``shortest_path(src, dst)[1]``
(pinned by ``tests/unit/net/test_topology.py`` and the medium-equivalence
property tests).  ``shortest_path`` itself stays nx-backed for callers
that need full paths and for the frozen reference medium.

Every cache (nx paths, id interning, route/distance rows, sorted
neighbours, edge parameters) invalidates together through
:meth:`Topology.invalidate_cache`, which also bumps :attr:`Topology.version`
so medium-local caches keyed on the topology can notice mutations.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

try:  # numpy is a declared dependency, but the route tables degrade
    import numpy as _np  # gracefully to the pure-Python BFS without it.
except ImportError:  # pragma: no cover
    _np = None

try:  # scipy is optional; its C BFS is the fastest route-row builder.
    from scipy.sparse import csr_matrix as _sp_csr_matrix
    from scipy.sparse.csgraph import breadth_first_order as _sp_bfs
except ImportError:  # pragma: no cover
    _sp_csr_matrix = None
    _sp_bfs = None

__all__ = [
    "Topology",
    "grid_topology",
    "line_topology",
    "star_topology",
    "full_mesh_topology",
    "random_geometric_topology",
    "from_edges",
]

#: Defaults representative of a healthy 802.11 mesh link.
DEFAULT_BASE_LOSS = 0.02
DEFAULT_BASE_DELAY = 0.002

#: Per-hop defaults applied when an edge lacks explicit attributes; these
#: mirror the historical ``attrs.get(...)`` fallbacks in the medium's
#: carry path and must not drift from them.
FALLBACK_BASE_LOSS = 0.0
FALLBACK_BASE_DELAY = 0.001


class Topology:
    """A connectivity graph plus convenience queries.

    Node identifiers are the node *names* (strings); the emulator maps them
    to :class:`~repro.net.node.NetNode` objects at attach time.
    """

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("topology must contain at least one node")
        self.graph = graph
        #: Bumped by :meth:`invalidate_cache`; consumers (the wireless
        #: medium) key their own derived caches on this counter.
        self.version = 0
        self._paths_cache: Optional[Dict[str, Dict[str, List[str]]]] = None
        self._ids: Optional[Dict[str, int]] = None
        self._names: Optional[List[str]] = None
        self._adj_ids: Optional[List[List[int]]] = None
        self._csr: Optional[Tuple] = None
        self._sp_graph = None
        self._bfs_scratch = None
        self._route_rows: Dict[int, List[int]] = {}
        self._dist_rows: Dict[int, List[int]] = {}
        self._sorted_neighbors: Dict[str, List[str]] = {}
        self._edge_params: Dict[Tuple[str, str], Tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def node_names(self) -> List[str]:
        return sorted(self.graph.nodes)

    def neighbors(self, name: str) -> List[str]:
        cached = self._sorted_neighbors.get(name)
        if cached is None:
            cached = sorted(self.graph.neighbors(name))
            self._sorted_neighbors[name] = cached
        return cached

    def edge_attrs(self, a: str, b: str) -> Dict[str, float]:
        return self.graph.edges[a, b]

    def edge_params(self, a: str, b: str) -> Tuple[float, float]:
        """``(base_loss, base_delay)`` of a link, with carry-path defaults.

        Cached floats so the medium hot loop skips the nx attribute-dict
        machinery per packet.
        """
        key = (a, b)
        params = self._edge_params.get(key)
        if params is None:
            attrs = self.graph.edges[a, b]
            params = (
                float(attrs.get("base_loss", FALLBACK_BASE_LOSS)),
                float(attrs.get("base_delay", FALLBACK_BASE_DELAY)),
            )
            self._edge_params[key] = params
        return params

    def has_edge(self, a: str, b: str) -> bool:
        return self.graph.has_edge(a, b)

    def _paths(self) -> Dict[str, Dict[str, List[str]]]:
        if self._paths_cache is None:
            self._paths_cache = {
                src: paths
                for src, paths in nx.all_pairs_shortest_path(self.graph)
            }
        return self._paths_cache

    def shortest_path(self, src: str, dst: str) -> List[str]:
        """Node sequence from *src* to *dst* inclusive.

        Raises ``KeyError`` if unreachable (partitioned mesh).
        """
        try:
            return self._paths()[src][dst]
        except KeyError:
            raise KeyError(f"no path {src} -> {dst}") from None

    # ------------------------------------------------------------------
    # Interned ids and route tables (the packet hot path)
    # ------------------------------------------------------------------
    def intern_ids(self) -> Dict[str, int]:
        """Name → dense int id, in graph node insertion order."""
        if self._ids is None:
            names = list(self.graph.nodes)
            self._names = names
            self._ids = {name: i for i, name in enumerate(names)}
            ids = self._ids
            adj = self.graph.adj
            self._adj_ids = [[ids[w] for w in adj[v]] for v in names]
        return self._ids

    def node_name(self, node_id: int) -> str:
        """Inverse of :meth:`intern_ids`."""
        self.intern_ids()
        return self._names[node_id]

    def _adjacency_csr(self):
        """Interned adjacency flattened to CSR arrays for the numpy BFS."""
        if self._csr is None:
            self.intern_ids()
            adj = self._adj_ids
            counts = [len(a) for a in adj]
            indptr = _np.zeros(len(adj) + 1, dtype=_np.int32)
            _np.cumsum(counts, out=indptr[1:])
            indices = _np.fromiter(
                (w for a in adj for w in a),
                dtype=_np.int32,
                count=int(indptr[-1]),
            )
            self._csr = (indptr, indices)
        return self._csr

    def _scipy_graph(self):
        """The interned adjacency as a scipy CSR matrix.

        Built straight from the CSR arrays so row order stays graph
        insertion order — scipy's BFS iterates rows as stored, which is
        what keeps its predecessor tree identical to the sequential BFS.
        """
        if self._sp_graph is None:
            indptr, indices = self._adjacency_csr()
            n = len(indptr) - 1
            data = _np.ones(len(indices), dtype=_np.float64)
            self._sp_graph = _sp_csr_matrix((data, indices, indptr), shape=(n, n))
        return self._sp_graph

    def _route_row(self, src_id: int) -> List[int]:
        """Next-hop ids from ``src_id`` to every node (-1: none).

        One FIFO BFS over the interned adjacency; first-discovery hop
        assignment replicates ``nx.all_pairs_shortest_path`` exactly (see
        module docstring).  Also materializes the distance row consumed by
        :meth:`hop_count`.  Vectorized level-synchronous numpy BFS when
        numpy is importable, pure-Python deque BFS otherwise; both produce
        identical rows (pinned by ``tests/unit/net/test_topology.py``).
        """
        row = self._route_rows.get(src_id)
        if row is None:
            if _sp_bfs is not None:
                row, dist = self._route_row_scipy(src_id)
            elif _np is not None:
                row, dist = self._route_row_numpy(src_id)
            else:
                row, dist = self._route_row_python(src_id)
            self._route_rows[src_id] = row
            self._dist_rows[src_id] = dist
        return row

    def _route_row_python(self, src_id: int) -> Tuple[List[int], List[int]]:
        """The sequential FIFO BFS — fallback and equivalence oracle."""
        self.intern_ids()
        adj = self._adj_ids
        n = len(adj)
        row = [-1] * n
        dist = [-1] * n
        dist[src_id] = 0
        queue = deque((src_id,))
        pop = queue.popleft
        push = queue.append
        while queue:
            v = pop()
            hop_v = row[v]
            dist_w = dist[v] + 1
            if v == src_id:
                for w in adj[v]:
                    if dist[w] < 0:
                        dist[w] = dist_w
                        row[w] = w
                        push(w)
            else:
                for w in adj[v]:
                    if dist[w] < 0:
                        dist[w] = dist_w
                        row[w] = hop_v
                        push(w)
        return row, dist

    def _route_row_numpy(self, src_id: int) -> Tuple[List[int], List[int]]:
        """Level-synchronous vectorized BFS, first-discovery order intact.

        Per level, candidates are the frontier's neighbours concatenated
        in frontier (= FIFO queue) order, so the *first occurrence* of an
        undiscovered node among the candidates is exactly the discovery
        the sequential BFS makes.  First occurrences are found without
        sorting: assigning candidate positions through a scratch array in
        *reversed* order leaves each node's first position behind
        (duplicate fancy-index assignments resolve last-write-wins), and
        filtering on ``pos[cand] == arange`` keeps exactly those entries —
        already in discovery order.
        """
        indptr, indices = self._adjacency_csr()
        n = len(indptr) - 1
        row = _np.full(n, -1, dtype=_np.int32)
        dist = _np.full(n, -1, dtype=_np.int32)
        dist[src_id] = 0
        # Scratch for the first-occurrence trick; never cleared, because a
        # level only ever reads positions it just wrote.
        pos = self._bfs_scratch
        if pos is None or len(pos) != n:
            pos = self._bfs_scratch = _np.empty(n, dtype=_np.int64)
        # Level 1: src's neighbours forward to themselves.
        frontier = indices[indptr[src_id]:indptr[src_id + 1]]
        frontier = frontier[dist[frontier] < 0]  # guards self-loops
        row[frontier] = frontier
        dist[frontier] = 1
        level = 1
        while frontier.size:
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            # Gather the frontier's adjacency rows into one candidate
            # array (classic CSR multi-row gather).
            ends = _np.cumsum(counts)
            gather = _np.repeat(starts - ends + counts, counts)
            gather += _np.arange(total, dtype=_np.int32)
            cand = indices[gather]
            hops = _np.repeat(row[frontier], counts)
            fresh = dist[cand] < 0
            cand = cand[fresh]
            hops = hops[fresh]
            if cand.size == 0:
                break
            order = _np.arange(cand.size, dtype=_np.int64)
            pos[cand[::-1]] = order[::-1]
            first = pos[cand] == order
            frontier = cand[first]
            level += 1
            row[frontier] = hops[first]
            dist[frontier] = level
        return row.tolist(), dist.tolist()

    def _route_row_scipy(self, src_id: int) -> Tuple[List[int], List[int]]:
        """C BFS via ``scipy.sparse.csgraph``, first-discovery order intact.

        scipy's ``breadth_first_order`` is the same FIFO BFS over the same
        CSR rows, so its predecessor tree equals the sequential BFS's
        parent assignment node for node (verified against
        ``_route_row_python`` across every topology shape in
        ``tests/unit/net/test_topology.py``).  The next-hop row follows by
        walking the BFS order once: a node inherits its parent's first
        hop, or is its own first hop when the parent is the source.
        """
        order, pred = _sp_bfs(
            self._scipy_graph(), src_id, directed=True, return_predecessors=True
        )
        n = len(self._names)
        row = [-1] * n
        dist = [-1] * n
        dist[src_id] = 0
        preds = pred.tolist()
        for v in order.tolist()[1:]:
            p = preds[v]
            dist[v] = dist[p] + 1
            row[v] = v if p == src_id else row[p]
        return row, dist

    def next_hop_id(self, src_id: int, dst_id: int) -> int:
        """Int-id flavour of :meth:`next_hop` for the medium hot loop."""
        if src_id == dst_id:
            return -1
        return self._route_row(src_id)[dst_id]

    def next_hop(self, src: str, dst: str) -> Optional[str]:
        """The neighbour *src* forwards to on the way to *dst*."""
        if src == dst:
            return None
        ids = self.intern_ids()
        src_id = ids.get(src)
        dst_id = ids.get(dst)
        if src_id is None or dst_id is None:
            return None
        hop_id = self._route_row(src_id)[dst_id]
        return None if hop_id < 0 else self._names[hop_id]

    def hop_count(self, src: str, dst: str) -> Optional[int]:
        """Number of hops between two nodes, ``None`` if unreachable."""
        if src == dst:
            return 0
        ids = self.intern_ids()
        src_id = ids.get(src)
        dst_id = ids.get(dst)
        if src_id is None or dst_id is None:
            return None
        self._route_row(src_id)
        dist = self._dist_rows[src_id][dst_id]
        return None if dist < 0 else dist

    def hop_count_matrix(self, names: Optional[Iterable[str]] = None) -> Dict[Tuple[str, str], Optional[int]]:
        """All-pairs hop counts for the given nodes (default: all).

        This is exactly the topology measurement ExCovery takes before and
        after an experiment.
        """
        names = sorted(names) if names is not None else self.node_names
        return {
            (a, b): self.hop_count(a, b)
            for a in names
            for b in names
            if a != b
        }

    def invalidate_cache(self) -> None:
        """Forget every derived structure after mutating the graph.

        Shortest paths, interned ids, route/distance rows, sorted
        neighbour lists and edge parameters are one coherent unit — they
        all derive from the graph and must never go stale independently.
        ``version`` is bumped so medium-local caches rebuild too.
        """
        self._paths_cache = None
        self._ids = None
        self._names = None
        self._adj_ids = None
        self._csr = None
        self._sp_graph = None
        self._bfs_scratch = None
        self._route_rows.clear()
        self._dist_rows.clear()
        self._sorted_neighbors.clear()
        self._edge_params.clear()
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Topology {self.graph.number_of_nodes()} nodes, "
            f"{self.graph.number_of_edges()} links>"
        )


def _apply_defaults(graph: nx.Graph, base_loss: float, base_delay: float) -> nx.Graph:
    for _a, _b, attrs in graph.edges(data=True):
        attrs.setdefault("base_loss", base_loss)
        attrs.setdefault("base_delay", base_delay)
    return graph


def _named(graph: nx.Graph, prefix: str) -> nx.Graph:
    """Relabel integer node ids to stable string names."""
    mapping = {n: f"{prefix}{i}" for i, n in enumerate(sorted(graph.nodes))}
    return nx.relabel_nodes(graph, mapping)


def grid_topology(
    rows: int,
    cols: int,
    base_loss: float = DEFAULT_BASE_LOSS,
    base_delay: float = DEFAULT_BASE_DELAY,
    prefix: str = "n",
) -> Topology:
    """A ``rows x cols`` lattice — the canonical office-floor mesh."""
    graph = nx.grid_2d_graph(rows, cols)
    graph = nx.relabel_nodes(
        graph, {rc: rc[0] * cols + rc[1] for rc in list(graph.nodes)}
    )
    graph = _named(graph, prefix)
    return Topology(_apply_defaults(graph, base_loss, base_delay))


def line_topology(
    n: int,
    base_loss: float = DEFAULT_BASE_LOSS,
    base_delay: float = DEFAULT_BASE_DELAY,
    prefix: str = "n",
) -> Topology:
    """A chain of *n* nodes, the worst case for multi-hop flooding."""
    graph = _named(nx.path_graph(n), prefix)
    return Topology(_apply_defaults(graph, base_loss, base_delay))


def star_topology(
    leaves: int,
    base_loss: float = DEFAULT_BASE_LOSS,
    base_delay: float = DEFAULT_BASE_DELAY,
    prefix: str = "n",
) -> Topology:
    """One hub (``<prefix>0``) with *leaves* one-hop neighbours."""
    graph = _named(nx.star_graph(leaves), prefix)
    return Topology(_apply_defaults(graph, base_loss, base_delay))


def full_mesh_topology(
    n: int,
    base_loss: float = DEFAULT_BASE_LOSS,
    base_delay: float = DEFAULT_BASE_DELAY,
    prefix: str = "n",
) -> Topology:
    """Everyone hears everyone — a single collision domain."""
    graph = _named(nx.complete_graph(n), prefix)
    return Topology(_apply_defaults(graph, base_loss, base_delay))


def random_geometric_topology(
    n: int,
    radius: float,
    seed: int,
    base_loss: float = DEFAULT_BASE_LOSS,
    base_delay: float = DEFAULT_BASE_DELAY,
    prefix: str = "n",
    ensure_connected: bool = True,
    max_attempts: int = 64,
) -> Topology:
    """Nodes scattered uniformly in the unit square; links below *radius*.

    Link quality degrades with distance: ``base_loss`` scales up to 4x at
    the connectivity edge, mimicking weak long links in an indoor mesh.

    With ``ensure_connected`` the builder redraws (deterministically, by
    incrementing the seed) until the graph is connected, so experiments
    never start on a partitioned mesh unless they ask for one.
    """
    rng_seed = seed
    for _ in range(max_attempts):
        graph = nx.random_geometric_graph(n, radius, seed=rng_seed)
        if not ensure_connected or nx.is_connected(graph):
            break
        rng_seed += 1
    else:
        raise ValueError(
            f"could not draw a connected geometric graph (n={n}, radius={radius})"
        )
    pos = nx.get_node_attributes(graph, "pos")
    for a, b, attrs in graph.edges(data=True):
        (xa, ya), (xb, yb) = pos[a], pos[b]
        dist = ((xa - xb) ** 2 + (ya - yb) ** 2) ** 0.5
        quality = min(dist / radius, 1.0)  # 0 = adjacent, 1 = fringe link
        attrs["base_loss"] = min(0.95, base_loss * (1.0 + 3.0 * quality**2))
        attrs["base_delay"] = base_delay
    graph = _named(graph, prefix)
    return Topology(graph)


def from_edges(
    edges: Iterable[Tuple[str, str]],
    base_loss: float = DEFAULT_BASE_LOSS,
    base_delay: float = DEFAULT_BASE_DELAY,
) -> Topology:
    """Build a topology from explicit named edges."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return Topology(_apply_defaults(graph, base_loss, base_delay))
