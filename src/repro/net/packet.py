"""Packet model for the emulated network.

A packet mirrors what the paper records about packets (Sec. IV-B2): a
unique identifier, source and destination network address, and the packet
content itself.  Timestamps are *not* stored on the packet — they are a
property of each observation of the packet (captures attach their own local
timestamps), because "single packets are not easily identified: their
location changes as they traverse the network".
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

__all__ = [
    "Packet",
    "BROADCAST_ADDR",
    "MULTICAST_SD_GROUP",
    "MULTICAST_PREFIX",
    "is_multicast",
    "is_broadcast",
    "DEFAULT_TTL",
]

#: Link-layer broadcast destination (reaches one-hop neighbours only).
BROADCAST_ADDR = "255.255.255.255"

#: Multicast group used by the service discovery protocols, analogous to
#: mDNS's 224.0.0.251.  Flooded through the mesh with duplicate suppression.
MULTICAST_SD_GROUP = "224.0.0.251"

#: Addresses with this prefix are treated as multicast groups.
MULTICAST_PREFIX = "224."

#: Default hop limit, matching a typical mesh-local TTL.
DEFAULT_TTL = 16

# Packet uids are allocated per *thread*: one experiment execution (one
# platform + kernel) is always driven by a single thread, but the campaign
# engine (repro.campaign) drives several isolated executions concurrently
# from a thread pool.  A process-global counter would interleave uids
# across concurrent runs — and platform construction resets the counter,
# which would corrupt a neighbouring run mid-flight.  Thread-local streams
# keep every execution's uid sequence a pure function of its own history.
_uid_state = threading.local()


def _next_packet_uid() -> int:
    counter = getattr(_uid_state, "counter", None)
    if counter is None:
        counter = _uid_state.counter = itertools.count(1)
    return next(counter)


def is_multicast(addr: str) -> bool:
    """True if *addr* names a multicast group."""
    return addr.startswith(MULTICAST_PREFIX)


def is_broadcast(addr: str) -> bool:
    """True if *addr* is the link-local broadcast address."""
    return addr == BROADCAST_ADDR


@dataclass
class Packet:
    """A UDP-datagram-like unit of communication.

    Attributes
    ----------
    src_addr / dst_addr:
        Network addresses (strings).  ``dst_addr`` may be a unicast node
        address, :data:`BROADCAST_ADDR` or a multicast group.
    src_port / dst_port:
        Integer ports multiplexing applications on a node.
    payload:
        Arbitrary structured content.  The storage layer serializes it; the
        fault injectors may replace it ("modifying their content",
        Sec. IV-A2).
    size:
        Size in bytes used for serialization/congestion accounting.  If the
        payload has no natural size the creator estimates one.
    ttl:
        Remaining hop budget, decremented at each forwarding step.
    options:
        Header option dictionary.  The packet tagger writes its 16-bit
        identifier under :data:`repro.net.tagger.TAG_OPTION`.
    uid:
        Globally unique creation identifier.  Never reused; copies made
        during forwarding keep the uid so a packet can be tracked hop by
        hop (Sec. IV-A3).
    flow:
        Optional label of the traffic flow the packet belongs to
        (experiment process, generated load, ...), used by selective fault
        rules and analysis.
    """

    src_addr: str
    dst_addr: str
    src_port: int
    dst_port: int
    payload: Any
    size: int = 128
    ttl: int = DEFAULT_TTL
    options: Dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=_next_packet_uid)
    flow: str = "experiment"

    def copy(self, **overrides: Any) -> "Packet":
        """A shallow copy sharing payload, with independent options dict.

        Equivalent to ``dataclasses.replace`` (unknown overrides raise,
        the uid is preserved) but built directly from ``__dict__`` — the
        forwarding hot path copies millions of packets per large run and
        ``replace`` re-runs ``__init__`` plus field introspection each
        time.
        """
        clone = object.__new__(Packet)
        clone.__dict__.update(self.__dict__)
        if overrides:
            bad = overrides.keys() - _PACKET_FIELDS
            if bad:
                raise TypeError(f"unknown packet field(s): {sorted(bad)}")
            clone.__dict__.update(overrides)
        if "options" not in overrides:
            clone.options = dict(self.options)
        return clone

    def forwarded(self) -> "Packet":
        """The copy of this packet sent onward by a forwarding hop."""
        return self.copy(ttl=self.ttl - 1)

    @property
    def expired(self) -> bool:
        """True when the hop budget is spent."""
        return self.ttl <= 0

    def endpoint_pair(self) -> Tuple[str, str]:
        """The unordered end-to-end address pair, for path-fault matching."""
        return tuple(sorted((self.src_addr, self.dst_addr)))  # type: ignore[return-value]

    def describe(self) -> Dict[str, Any]:
        """A flat, serialization-friendly summary of the packet."""
        return {
            "uid": self.uid,
            "src": self.src_addr,
            "dst": self.dst_addr,
            "sport": self.src_port,
            "dport": self.dst_port,
            "size": self.size,
            "ttl": self.ttl,
            "flow": self.flow,
            "options": dict(self.options),
            "payload": self.payload,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.uid} {self.src_addr}:{self.src_port} -> "
            f"{self.dst_addr}:{self.dst_port} {self.size}B flow={self.flow}>"
        )


#: Field names accepted as :meth:`Packet.copy` overrides.
_PACKET_FIELDS = frozenset(Packet.__dataclass_fields__)


def reset_uid_counter(start: int = 1) -> None:
    """Reset the calling thread's packet uid counter.

    Platform construction calls this so every execution starts its uid
    space at 1 — the stored uids are then identical between a serial
    series and a campaign worker re-executing the same run.
    """
    _uid_state.counter = itertools.count(start)
