"""Constant-bit-rate background traffic between node pairs.

This is the data-plane half of the paper's *traffic generator* environment
manipulation (Sec. IV-D2): *"Creates network load between a given number
of node pairs.  Each pair bidirectionally communicates at a given data
rate."*  Pair selection, the switch-amount logic and factor plumbing live
with the manipulations (:mod:`repro.faults.manipulations`); this module
only knows how to push real packets through the medium at a rate.

The packets are genuine datagrams routed hop-by-hop through the mesh, so
they consume medium capacity exactly like experiment traffic — which is
what makes the bandwidth factor of the case study actually move the
responsiveness numbers.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.net.node import NetNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

__all__ = ["TrafficFlow", "TrafficGenerator", "TRAFFIC_PORT", "TRAFFIC_FLOW_LABEL"]

#: Destination port for generated load; nodes need no binding — unclaimed
#: datagrams are dropped at the destination, having already loaded the path.
TRAFFIC_PORT = 9

#: The flow label carried by generated packets, so fault rules and analyses
#: can separate load from the experiment process.
TRAFFIC_FLOW_LABEL = "generated-load"


class TrafficFlow:
    """One unidirectional CBR stream ``src -> dst``.

    Parameters
    ----------
    rate_kbps:
        Application-level data rate in kilobits per second.
    packet_size:
        Bytes per datagram; the send interval follows from rate and size.
    jitter_frac:
        Uniform randomization of each inter-packet gap (fraction of the
        nominal interval), breaking phase lock between flows.
    dst_port:
        Destination port; default :data:`TRAFFIC_PORT` (dropped unheard).
        The population manipulation points flows at a *bound* service
        port instead, so the load exercises the receiver's handler path.
    payload_base:
        Extra payload keys merged under the per-packet ``seq``/``flow``
        bookkeeping — e.g. a query-shaped dict the receiving protocol
        actually parses and answers.
    """

    def __init__(
        self,
        sim: "Simulator",
        src: NetNode,
        dst: NetNode,
        rate_kbps: float,
        rng: random.Random,
        packet_size: int = 512,
        jitter_frac: float = 0.1,
        dst_port: int = TRAFFIC_PORT,
        payload_base: Optional[Dict[str, object]] = None,
    ) -> None:
        if rate_kbps <= 0:
            raise ValueError(f"rate must be positive, got {rate_kbps}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_kbps = float(rate_kbps)
        self.packet_size = int(packet_size)
        self.jitter_frac = float(jitter_frac)
        self.dst_port = int(dst_port)
        self.payload_base = dict(payload_base or {})
        self.rng = rng
        self.interval = (self.packet_size * 8.0) / (self.rate_kbps * 1000.0)
        self.sent_packets = 0
        self._process = None

    def start(self) -> None:
        if self._process is not None and self._process.alive:
            return
        self._process = self.sim.process(self._run(), name=f"cbr:{self.src.name}->{self.dst.name}")

    def stop(self) -> None:
        if self._process is not None and self._process.alive:
            self._process.interrupt("traffic_stop")
        self._process = None

    @property
    def running(self) -> bool:
        return self._process is not None and self._process.alive

    def _run(self):
        seq = 0
        while True:
            gap = self.interval * (
                1.0 + self.rng.uniform(-self.jitter_frac, self.jitter_frac)
            )
            yield self.sim.timeout(max(gap, 1e-6))
            payload = dict(self.payload_base)
            payload["seq"] = seq
            payload["flow"] = TRAFFIC_FLOW_LABEL
            self.src.send_datagram(
                payload=payload,
                dst_addr=self.dst.address,
                dst_port=self.dst_port,
                src_port=TRAFFIC_PORT,
                size=self.packet_size,
                flow=TRAFFIC_FLOW_LABEL,
                tag=False,
            )
            seq += 1
            self.sent_packets += 1


class TrafficGenerator:
    """Manages a set of bidirectional CBR pairs.

    One generator instance lives per experiment; the environment
    manipulation process starts and stops it and re-rolls the pairs each
    run (the ``switch amount`` parameter of Sec. IV-D2).
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._flows: List[TrafficFlow] = []
        self._pairs: List[Tuple[NetNode, NetNode]] = []

    @property
    def active_pairs(self) -> List[Tuple[str, str]]:
        return [(a.name, b.name) for a, b in self._pairs]

    @property
    def running(self) -> bool:
        return any(flow.running for flow in self._flows)

    def configure(
        self,
        pairs: List[Tuple[NetNode, NetNode]],
        rate_kbps: float,
        rng: random.Random,
        packet_size: int = 512,
    ) -> None:
        """Replace the pair set; stops any previously running flows."""
        self.stop()
        self._pairs = list(pairs)
        self._flows = []
        for a, b in self._pairs:
            # "Each pair bidirectionally communicates at a given data rate".
            self._flows.append(
                TrafficFlow(self.sim, a, b, rate_kbps, rng, packet_size=packet_size)
            )
            self._flows.append(
                TrafficFlow(self.sim, b, a, rate_kbps, rng, packet_size=packet_size)
            )

    def start(self) -> None:
        for flow in self._flows:
            flow.start()

    def stop(self) -> None:
        for flow in self._flows:
            flow.stop()

    def stats(self) -> Dict[str, int]:
        return {
            "pairs": len(self._pairs),
            "flows": len(self._flows),
            "sent_packets": sum(f.sent_packets for f in self._flows),
        }


def choose_pairs(
    candidates: List[NetNode],
    count: int,
    rng: random.Random,
) -> List[Tuple[NetNode, NetNode]]:
    """Draw *count* distinct unordered pairs from *candidates*.

    Deterministic given the rng state.  Raises ``ValueError`` when the
    candidate set cannot supply that many distinct pairs.
    """
    n = len(candidates)
    max_pairs = n * (n - 1) // 2
    if count > max_pairs:
        raise ValueError(
            f"cannot pick {count} distinct pairs from {n} nodes (max {max_pairs})"
        )
    ordered = sorted(candidates, key=lambda node: node.name)
    chosen: List[Tuple[NetNode, NetNode]] = []
    seen = set()
    while len(chosen) < count:
        a, b = rng.sample(ordered, 2)
        key = tuple(sorted((a.name, b.name)))
        if key in seen:
            continue
        seen.add(key)
        chosen.append((a, b))
    return chosen
