"""Shared wireless medium with load-dependent impairments.

This is the radio model of the emulated mesh testbed.  Design goals, in
order: (1) deterministic, (2) cheap, (3) qualitatively faithful to the
phenomena the paper's case study measures — multicast being less reliable
than unicast, loss and delay growing with offered load, and multi-hop
paths compounding per-hop loss.

Model
-----
* The medium is a single collision domain capacity-wise (one 802.11
  channel shared by the whole mesh): all transmissions contribute to one
  offered-load estimate, computed over a sliding window.
* Per-link transmission succeeds with probability ``1 - p`` where
  ``p = base_loss(link) + congestion_loss(utilization)``, clamped.
* **Unicast** frames get MAC-layer retransmissions (up to
  ``mac_retries``); each retry adds a backoff delay.  **Broadcast and
  multicast** frames are sent once, unacknowledged — exactly why multicast
  service discovery suffers first when the medium degrades.
* One-hop latency is ``base_delay(link) + queueing(utilization) + jitter``.

The medium only ever moves packets one hop.  Multi-hop unicast forwarding
and multicast flooding are the receiving *node's* job
(:meth:`repro.net.node.NetNode._receive`), mirroring the layering of a real
mesh routing daemon.

Fast path
---------
This module is the packet hot loop of 1000-node runs (DESIGN.md §14), so
the common path is allocation-free and every per-packet lookup is O(1):

* address → node and name → node resolution are dict hits, maintained in
  ``attach``/``detach``;
* next hops come from :meth:`Topology.next_hop_id` over interned int ids
  (lazy BFS route rows, no nx path lists);
* multicast floods iterate a precomputed per-sender array of
  ``(receiver, base_loss, base_delay)`` rows in sorted-neighbour order —
  rebuilt only when membership or :attr:`Topology.version` changes;
* load accounting merges same-instant transmissions into one window slot,
  so eviction work is O(1) amortized per *instant*, not per packet, and
  utilization is computed once per transmit (it cannot change between the
  per-neighbour carries of a single transmission);
* delivered packets are shared copy-on-write: receive paths snapshot or
  copy before mutating (capture records immediately, forwarding goes
  through ``Packet.forwarded``), so the per-hop ``packet.copy()`` is gone
  and deliveries are scheduled as bound method + args, no closure.

``repro.net.reference.ReferenceMedium`` preserves the historical
implementation; property tests pin both to byte-identical Table-I digests
and :class:`MediumStats` at paper scale.  The RNG draw order (per-carry
uniform jitter, then loss attempts, neighbours in sorted-name order) is
part of that contract — do not reorder draws.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.net.packet import (
    BROADCAST_ADDR as _BCAST,
    MULTICAST_PREFIX as _MC_PREFIX,
    Packet,
)
from repro.net.topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    import random

    from repro.net.node import NetNode
    from repro.sim.kernel import Simulator

__all__ = ["CongestionModel", "WirelessMedium", "MediumStats"]

logger = logging.getLogger(__name__)

#: Cache sentinel distinguishing "never resolved" from "resolved: no route".
_UNRESOLVED = object()


@dataclass
class CongestionModel:
    """Analytic mapping from offered load to extra loss and delay.

    Attributes
    ----------
    capacity_bps:
        Usable shared capacity of the channel.  The DES testbed's effective
        802.11 goodput in mesh mode is a few Mbit/s; default 2 Mbit/s.
    window:
        Sliding window (seconds) over which offered load is averaged.
    loss_coeff:
        Extra loss probability added at 100 % utilization (quadratic ramp).
    queue_delay_at_capacity:
        Queueing delay at 100 % utilization (linear ramp, capped).
    jitter:
        Uniform ±jitter/2 randomization of the one-hop delay.
    """

    capacity_bps: float = 2_000_000.0
    window: float = 1.0
    loss_coeff: float = 0.5
    queue_delay_at_capacity: float = 0.050
    jitter: float = 0.002

    def extra_loss(self, utilization: float) -> float:
        """Congestion-induced loss probability at *utilization*."""
        return self.loss_coeff * utilization * utilization

    def queue_delay(self, utilization: float) -> float:
        """Congestion-induced queueing delay at *utilization*."""
        return self.queue_delay_at_capacity * utilization


@dataclass(slots=True)
class MediumStats:
    """Aggregate medium counters for analysis and benchmarks."""

    transmissions: int = 0
    deliveries: int = 0
    losses: int = 0
    mac_retries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "transmissions": self.transmissions,
            "deliveries": self.deliveries,
            "losses": self.losses,
            "mac_retries": self.mac_retries,
        }


class WirelessMedium:
    """The shared radio channel over a mesh :class:`Topology`.

    Parameters
    ----------
    sim:
        The simulation kernel.
    topology:
        Connectivity graph; node names must match attached node names.
    rng:
        A dedicated :class:`random.Random` stream (derive it from the
        experiment seed, e.g. ``rngs.stream("medium")``).
    congestion:
        Load model; ``None`` selects the defaults.
    mac_retries:
        Unicast MAC retransmission budget (802.11 default-ish: 3).
    retry_backoff:
        Extra delay per failed unicast attempt, seconds.
    """

    def __init__(
        self,
        sim: "Simulator",
        topology: Topology,
        rng: "random.Random",
        congestion: Optional[CongestionModel] = None,
        mac_retries: int = 3,
        retry_backoff: float = 0.004,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.rng = rng
        self.congestion = congestion or CongestionModel()
        self.mac_retries = int(mac_retries)
        self.retry_backoff = float(retry_backoff)
        self._nodes: Dict[str, "NetNode"] = {}
        self._by_address: Dict[str, "NetNode"] = {}
        # Sliding load window of [time, bytes] slots; same-instant
        # transmissions merge into the tail slot (exact: eviction compares
        # the shared timestamp, so merging cannot change utilization).
        self._load_window: Deque[List] = deque()
        self._load_bytes = 0
        self.stats = MediumStats()
        # Congestion parameters memoized per congestion-object identity:
        # five dataclass attribute loads collapse into one tuple unpack on
        # the hot path.  Swapping in a new CongestionModel instance takes
        # effect immediately; the instances themselves are never mutated.
        self._cong_key: Optional[CongestionModel] = None
        self._cong_params: Tuple = ()
        # Caches derived from (topology.version, membership); -1 forces a
        # rebuild on the next transmit.
        self._cache_version = -1
        self._name_ids: Dict[str, int] = {}
        self._nodes_by_id: List[Optional["NetNode"]] = []
        self._flood_rows: Dict[str, List[Tuple]] = {}
        self._dst_rows: Dict[str, Dict[str, Optional[Tuple]]] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def attach(self, node: "NetNode") -> None:
        """Register *node* on the medium; its name must exist in the topology."""
        if node.name not in self.topology.graph:
            raise KeyError(f"node {node.name!r} is not part of the topology")
        if node.name in self._nodes:
            raise ValueError(f"node {node.name!r} already attached")
        if node.address in self._by_address:
            raise ValueError(
                f"address {node.address!r} already attached "
                f"(node {self._by_address[node.address].name!r})"
            )
        self._nodes[node.name] = node
        self._by_address[node.address] = node
        node.interface.medium = self
        self._cache_version = -1

    def detach(self, node: "NetNode") -> bool:
        """Unregister *node*; returns whether it was actually attached.

        Detaching a node that was never attached is almost always a
        topology/name typo in the caller, so the miss is surfaced instead
        of silently swallowed.
        """
        was_attached = self._nodes.pop(node.name, None) is not None
        if was_attached:
            self._by_address.pop(node.address, None)
        else:
            logger.warning("detach of unattached node %r ignored", node.name)
        node.interface.medium = None
        self._cache_version = -1
        return was_attached

    def node(self, name: str) -> "NetNode":
        return self._nodes[name]

    def address_of(self, name: str) -> str:
        return self._nodes[name].address

    def node_by_address(self, address: str) -> Optional["NetNode"]:
        return self._by_address.get(address)

    @property
    def attached_names(self):
        return sorted(self._nodes)

    # ------------------------------------------------------------------
    # Load accounting
    # ------------------------------------------------------------------
    def _account(self, size: int) -> None:
        now = self.sim.now
        window = self._load_window
        if window and window[-1][0] == now:
            window[-1][1] += size
        else:
            window.append([now, size])
        self._load_bytes += size
        horizon = now - self.congestion.window
        while window and window[0][0] < horizon:
            self._load_bytes -= window.popleft()[1]

    def _evict(self, now: float) -> None:
        horizon = now - self.congestion.window
        window = self._load_window
        while window and window[0][0] < horizon:
            self._load_bytes -= window.popleft()[1]

    def utilization(self) -> float:
        """Current offered load as a fraction of capacity, clamped to [0, 1.5]."""
        self._evict(self.sim.now)
        offered_bps = (self._load_bytes * 8.0) / self.congestion.window
        return min(offered_bps / self.congestion.capacity_bps, 1.5)

    def reset_load(self) -> None:
        """Zero the offered-load window (fresh run on a reused medium)."""
        self._load_window.clear()
        self._load_bytes = 0

    # ------------------------------------------------------------------
    # Derived caches
    # ------------------------------------------------------------------
    def _rebuild_caches(self) -> None:
        topology = self.topology
        ids = topology.intern_ids()
        self._name_ids = ids
        by_id: List[Optional["NetNode"]] = [None] * len(ids)
        for name, node in self._nodes.items():
            node_id = ids.get(name)
            if node_id is not None:
                by_id[node_id] = node
        self._nodes_by_id = by_id
        self._flood_rows = {}
        self._dst_rows = {}
        self._cache_version = topology.version

    def _flood_row(self, sender_name: str) -> List[Tuple]:
        """Per-sender flood sweep: ``(deliver, base_loss, base_delay)`` per
        attached neighbour, in sorted-neighbour order.  The *bound*
        ``Interface.deliver`` is cached so a carry is pure arithmetic plus
        one scheduled call."""
        row = self._flood_rows.get(sender_name)
        if row is None:
            edge_params = self.topology.edge_params
            nodes = self._nodes
            row = []
            for neighbor in self.topology.neighbors(sender_name):
                target = nodes.get(neighbor)
                if target is None:
                    continue
                base_loss, base_delay = edge_params(sender_name, neighbor)
                row.append((target.interface.deliver, base_loss, base_delay))
            self._flood_rows[sender_name] = row
        return row

    def _resolve_hop(self, sender_name: str, dst_addr: str) -> Optional[Tuple]:
        """Resolve the unicast hop record for ``sender → dst_addr``:
        ``(deliver, base_loss, base_delay)`` of the next-hop receiver, or
        ``None`` when the address is unknown or unroutable.  Results are
        memoized per sender in ``_dst_rows``; any membership or topology
        change clears them via ``_rebuild_caches``."""
        dst_node = self._by_address.get(dst_addr)
        if dst_node is None:
            return None
        name_ids = self._name_ids
        hop_id = self.topology.next_hop_id(
            name_ids[sender_name], name_ids[dst_node.name]
        )
        if hop_id < 0:
            return None
        receiver = self._nodes_by_id[hop_id]
        if receiver is None:
            return None
        base_loss, base_delay = self.topology.edge_params(sender_name, receiver.name)
        return (receiver.interface.deliver, base_loss, base_delay)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, sender: "NetNode", packet: Packet, extra_delay: float = 0.0) -> None:
        """Move *packet* one hop from *sender*.

        Broadcast / multicast destinations reach every attached topology
        neighbour (independent loss draws, no MAC retries).  Unicast is
        carried to the next hop on the shortest path to ``dst_addr``; if
        the destination is unknown or unreachable the frame is dropped,
        which is what a mesh routing daemon with no route does.
        """
        stats = self.stats
        stats.transmissions += 1
        congestion = self.congestion
        if congestion is not self._cong_key:
            self._cong_key = congestion
            self._cong_params = (
                congestion.window,
                congestion.capacity_bps,
                congestion.loss_coeff,
                congestion.queue_delay_at_capacity,
                congestion.jitter,
            )
        c_window, c_capacity, c_loss_coeff, c_qdac, jitter = self._cong_params
        # Inlined _account: same-instant slot merge + window eviction.
        now = self.sim._now
        window = self._load_window
        size = packet.size
        if window and window[-1][0] == now:
            window[-1][1] += size
        else:
            window.append([now, size])
        load = self._load_bytes + size
        horizon = now - c_window
        while window and window[0][0] < horizon:
            load -= window.popleft()[1]
        self._load_bytes = load
        if self._cache_version != self.topology.version:
            self._rebuild_caches()

        # Utilization is identical for every carry of one transmission
        # (time and the load window only change between events), so it is
        # computed once.  The congestion curves are inlined verbatim from
        # CongestionModel.extra_loss / queue_delay — operation order and
        # association preserved exactly, so every float (and hence every
        # RNG comparison) matches the reference bit for bit.
        offered_bps = (load * 8.0) / c_window
        utilization = min(offered_bps / c_capacity, 1.5)
        congestion_loss = c_loss_coeff * utilization * utilization
        queue_delay = c_qdac * utilization
        # rand() * jitter is bit-identical to rng.uniform(0.0, jitter)
        # (uniform computes a + (b - a) * random()) and consumes exactly
        # one draw — the RNG stream stays equal to the reference medium's.
        rand = self.rng.random
        call_later = self.sim.call_later
        dst_addr = packet.dst_addr

        # Inlined is_broadcast/is_multicast: both special addresses start
        # with "2", so ordinary unicast skips the string tests entirely.
        if dst_addr[0] == "2" and (
            dst_addr.startswith(_MC_PREFIX) or dst_addr == _BCAST
        ):
            # Batched flood: one precomputed sweep over the attached
            # neighbours, one RNG jitter + loss draw per receiver, the
            # shared packet scheduled copy-on-write per delivery.
            for deliver, base_loss, base_delay in self._flood_row(sender.name):
                delay = extra_delay + base_delay + queue_delay + rand() * jitter
                p_loss = base_loss + congestion_loss
                if p_loss > 0.99:
                    p_loss = 0.99
                if rand() >= p_loss:
                    stats.deliveries += 1
                    call_later(delay, deliver, packet)
                else:
                    stats.losses += 1
            return

        # Per-sender destination rows collapse address lookup, id
        # interning and next-hop resolution into a single dict hit on the
        # steady path; a cached None is a resolved "no route" (also the
        # daemon's answer every time until the topology changes).
        sender_name = sender.name
        row = self._dst_rows.get(sender_name)
        if row is None:
            row = self._dst_rows[sender_name] = {}
        hop = row.get(dst_addr, _UNRESOLVED)
        if hop is _UNRESOLVED:
            hop = row[dst_addr] = self._resolve_hop(sender_name, dst_addr)
        if hop is None:
            stats.losses += 1
            return
        deliver, base_loss, base_delay = hop
        delay = extra_delay + base_delay + queue_delay + rand() * jitter
        p_loss = base_loss + congestion_loss
        if p_loss > 0.99:
            p_loss = 0.99
        # Unrolled attempt 0 — the common case needs no range object and
        # no retry bookkeeping.
        if rand() >= p_loss:
            stats.deliveries += 1
            call_later(delay, deliver, packet)
            return
        for attempt in range(1, 1 + self.mac_retries):
            if rand() >= p_loss:
                stats.mac_retries += attempt
                stats.deliveries += 1
                call_later(delay + attempt * self.retry_backoff, deliver, packet)
                return
        stats.losses += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WirelessMedium nodes={len(self._nodes)} "
            f"util={self.utilization():.2f}>"
        )
