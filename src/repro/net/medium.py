"""Shared wireless medium with load-dependent impairments.

This is the radio model of the emulated mesh testbed.  Design goals, in
order: (1) deterministic, (2) cheap, (3) qualitatively faithful to the
phenomena the paper's case study measures — multicast being less reliable
than unicast, loss and delay growing with offered load, and multi-hop
paths compounding per-hop loss.

Model
-----
* The medium is a single collision domain capacity-wise (one 802.11
  channel shared by the whole mesh): all transmissions contribute to one
  offered-load estimate, computed over a sliding window.
* Per-link transmission succeeds with probability ``1 - p`` where
  ``p = base_loss(link) + congestion_loss(utilization)``, clamped.
* **Unicast** frames get MAC-layer retransmissions (up to
  ``mac_retries``); each retry adds a backoff delay.  **Broadcast and
  multicast** frames are sent once, unacknowledged — exactly why multicast
  service discovery suffers first when the medium degrades.
* One-hop latency is ``base_delay(link) + queueing(utilization) + jitter``.

The medium only ever moves packets one hop.  Multi-hop unicast forwarding
and multicast flooding are the receiving *node's* job
(:meth:`repro.net.node.NetNode._receive`), mirroring the layering of a real
mesh routing daemon.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple, TYPE_CHECKING

from repro.net.packet import Packet, is_broadcast, is_multicast
from repro.net.topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    import random

    from repro.net.node import NetNode
    from repro.sim.kernel import Simulator

__all__ = ["CongestionModel", "WirelessMedium", "MediumStats"]


@dataclass
class CongestionModel:
    """Analytic mapping from offered load to extra loss and delay.

    Attributes
    ----------
    capacity_bps:
        Usable shared capacity of the channel.  The DES testbed's effective
        802.11 goodput in mesh mode is a few Mbit/s; default 2 Mbit/s.
    window:
        Sliding window (seconds) over which offered load is averaged.
    loss_coeff:
        Extra loss probability added at 100 % utilization (quadratic ramp).
    queue_delay_at_capacity:
        Queueing delay at 100 % utilization (linear ramp, capped).
    jitter:
        Uniform ±jitter/2 randomization of the one-hop delay.
    """

    capacity_bps: float = 2_000_000.0
    window: float = 1.0
    loss_coeff: float = 0.5
    queue_delay_at_capacity: float = 0.050
    jitter: float = 0.002

    def extra_loss(self, utilization: float) -> float:
        """Congestion-induced loss probability at *utilization*."""
        return self.loss_coeff * utilization * utilization

    def queue_delay(self, utilization: float) -> float:
        """Congestion-induced queueing delay at *utilization*."""
        return self.queue_delay_at_capacity * utilization


@dataclass
class MediumStats:
    """Aggregate medium counters for analysis and benchmarks."""

    transmissions: int = 0
    deliveries: int = 0
    losses: int = 0
    mac_retries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "transmissions": self.transmissions,
            "deliveries": self.deliveries,
            "losses": self.losses,
            "mac_retries": self.mac_retries,
        }


class WirelessMedium:
    """The shared radio channel over a mesh :class:`Topology`.

    Parameters
    ----------
    sim:
        The simulation kernel.
    topology:
        Connectivity graph; node names must match attached node names.
    rng:
        A dedicated :class:`random.Random` stream (derive it from the
        experiment seed, e.g. ``rngs.stream("medium")``).
    congestion:
        Load model; ``None`` selects the defaults.
    mac_retries:
        Unicast MAC retransmission budget (802.11 default-ish: 3).
    retry_backoff:
        Extra delay per failed unicast attempt, seconds.
    """

    def __init__(
        self,
        sim: "Simulator",
        topology: Topology,
        rng: "random.Random",
        congestion: Optional[CongestionModel] = None,
        mac_retries: int = 3,
        retry_backoff: float = 0.004,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.rng = rng
        self.congestion = congestion or CongestionModel()
        self.mac_retries = int(mac_retries)
        self.retry_backoff = float(retry_backoff)
        self._nodes: Dict[str, "NetNode"] = {}
        self._load_window: Deque[Tuple[float, int]] = deque()
        self._load_bytes = 0
        self.stats = MediumStats()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def attach(self, node: "NetNode") -> None:
        """Register *node* on the medium; its name must exist in the topology."""
        if node.name not in self.topology.graph:
            raise KeyError(f"node {node.name!r} is not part of the topology")
        if node.name in self._nodes:
            raise ValueError(f"node {node.name!r} already attached")
        self._nodes[node.name] = node
        node.interface.medium = self

    def detach(self, node: "NetNode") -> None:
        self._nodes.pop(node.name, None)
        node.interface.medium = None

    def node(self, name: str) -> "NetNode":
        return self._nodes[name]

    def address_of(self, name: str) -> str:
        return self._nodes[name].address

    def node_by_address(self, address: str) -> Optional["NetNode"]:
        for node in self._nodes.values():
            if node.address == address:
                return node
        return None

    @property
    def attached_names(self):
        return sorted(self._nodes)

    # ------------------------------------------------------------------
    # Load accounting
    # ------------------------------------------------------------------
    def _account(self, size: int) -> None:
        now = self.sim.now
        self._load_window.append((now, size))
        self._load_bytes += size
        self._evict(now)

    def _evict(self, now: float) -> None:
        horizon = now - self.congestion.window
        window = self._load_window
        while window and window[0][0] < horizon:
            _, size = window.popleft()
            self._load_bytes -= size

    def utilization(self) -> float:
        """Current offered load as a fraction of capacity, clamped to [0, 1.5]."""
        self._evict(self.sim.now)
        offered_bps = (self._load_bytes * 8.0) / self.congestion.window
        return min(offered_bps / self.congestion.capacity_bps, 1.5)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, sender: "NetNode", packet: Packet, extra_delay: float = 0.0) -> None:
        """Move *packet* one hop from *sender*.

        Broadcast / multicast destinations reach every attached topology
        neighbour (independent loss draws, no MAC retries).  Unicast is
        carried to the next hop on the shortest path to ``dst_addr``; if
        the destination is unknown or unreachable the frame is dropped,
        which is what a mesh routing daemon with no route does.
        """
        self.stats.transmissions += 1
        self._account(packet.size)
        if is_broadcast(packet.dst_addr) or is_multicast(packet.dst_addr):
            for neighbor in self.topology.neighbors(sender.name):
                target = self._nodes.get(neighbor)
                if target is None:
                    continue
                self._carry(sender, target, packet, unicast=False, extra_delay=extra_delay)
            return

        dst_node = self.node_by_address(packet.dst_addr)
        if dst_node is None:
            self.stats.losses += 1
            return
        next_hop_name = self.topology.next_hop(sender.name, dst_node.name)
        if next_hop_name is None or next_hop_name not in self._nodes:
            self.stats.losses += 1
            return
        self._carry(
            sender, self._nodes[next_hop_name], packet, unicast=True, extra_delay=extra_delay
        )

    def _carry(
        self,
        sender: "NetNode",
        receiver: "NetNode",
        packet: Packet,
        unicast: bool,
        extra_delay: float,
    ) -> None:
        attrs = self.topology.edge_attrs(sender.name, receiver.name)
        utilization = self.utilization()
        p_loss = min(
            0.99,
            float(attrs.get("base_loss", 0.0)) + self.congestion.extra_loss(utilization),
        )
        attempts = 1 + (self.mac_retries if unicast else 0)
        delay = (
            extra_delay
            + float(attrs.get("base_delay", 0.001))
            + self.congestion.queue_delay(utilization)
            + self.rng.uniform(0.0, self.congestion.jitter)
        )
        delivered = False
        for attempt in range(attempts):
            if self.rng.random() >= p_loss:
                delivered = True
                if attempt:
                    self.stats.mac_retries += attempt
                    delay += attempt * self.retry_backoff
                break
        if not delivered:
            self.stats.losses += 1
            return
        self.stats.deliveries += 1
        # Each hop copies the packet so in-flight mutation on one node
        # cannot corrupt another's view; the uid survives for tracking.
        arriving = packet.copy()
        self.sim.call_later(delay, lambda: receiver.interface.deliver(arriving))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WirelessMedium nodes={len(self._nodes)} "
            f"util={self.utilization():.2f}>"
        )
