"""Network interfaces with per-direction state and packet-filter chains.

Platform requirement IV-A2 ("Connection Control"): *"Network interfaces
need to support activation and deactivation.  Furthermore, it needs to be
possible to manipulate packets sent over these interfaces based on defined
rules.  This covers dropping of packets, delaying, reordering, and
modifying their content."*

An :class:`Interface` therefore carries an ordered chain of
:class:`PacketFilter` rules consulted on every packet, separately for the
transmit and receive direction.  The fault injectors of
:mod:`repro.faults.injectors` are implemented as such filters.

Semantics: filters run *before* capture — a packet dropped by a rule
emulates loss in the network, so the node never observes it.  A packet
delayed by a rule is observed at its delayed arrival time.  An interface
that is administratively down in a direction neither filters nor captures;
it is silent.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.medium import WirelessMedium
    from repro.net.node import NetNode

__all__ = [
    "Direction",
    "FilterVerdict",
    "PacketFilter",
    "Interface",
    "PASS",
    "DROP",
]


class Direction(enum.Enum):
    """Which side of the interface a packet crosses."""

    RX = "rx"
    TX = "tx"
    BOTH = "both"

    def covers(self, other: "Direction") -> bool:
        """Whether a rule configured for *self* applies to traffic going
        in direction *other*."""
        return self is Direction.BOTH or self is other


@dataclass(frozen=True)
class FilterVerdict:
    """Outcome of consulting a single filter rule.

    ``dropped`` wins over everything; otherwise ``extra_delay`` seconds are
    added to the packet's traversal and ``replacement`` (if not ``None``)
    substitutes the packet — the "modifying their content" case.
    """

    dropped: bool = False
    extra_delay: float = 0.0
    replacement: Optional[Packet] = None


#: Shared verdict constants for the common cases.
PASS = FilterVerdict()
DROP = FilterVerdict(dropped=True)


class PacketFilter:
    """Base class for interface packet rules.

    Subclasses override :meth:`decide`.  Each filter instance gets a unique
    ``rule_id`` so installers (the fault controller) can remove exactly the
    rules they added.
    """

    _ids = itertools.count(1)

    def __init__(self, direction: Direction = Direction.BOTH, label: str = "") -> None:
        self.direction = direction
        self.label = label or type(self).__name__
        self.rule_id = next(PacketFilter._ids)

    def decide(self, packet: Packet, direction: Direction, now: float) -> FilterVerdict:
        """Judge *packet* crossing in *direction* at true time *now*."""
        raise NotImplementedError

    def matches_direction(self, direction: Direction) -> bool:
        return self.direction.covers(direction)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.label} rule={self.rule_id} dir={self.direction.value}>"


@dataclass
class ChainResult:
    """Aggregated verdict of a whole filter chain."""

    dropped: bool
    delay: float
    packet: Packet


class Interface:
    """One attachment point of a node to the shared medium.

    Parameters
    ----------
    node:
        Owning :class:`~repro.net.node.NetNode`.
    name:
        Interface name, e.g. ``"wlan0"`` (the DES testbed convention).
    """

    def __init__(self, node: "NetNode", name: str = "wlan0") -> None:
        self.node = node
        self.name = name
        self.medium: Optional["WirelessMedium"] = None
        self._rx_up = True
        self._tx_up = True
        self._filters: List[PacketFilter] = []
        #: Simple octet/packet counters, split by direction.
        self.counters: Dict[str, int] = {
            "tx_packets": 0,
            "tx_bytes": 0,
            "rx_packets": 0,
            "rx_bytes": 0,
            "tx_dropped": 0,
            "rx_dropped": 0,
        }

    # ------------------------------------------------------------------
    # Administrative state
    # ------------------------------------------------------------------
    def set_up(self, direction: Direction = Direction.BOTH, up: bool = True) -> None:
        """Activate or deactivate the interface, per direction."""
        if direction.covers(Direction.RX):
            self._rx_up = up
        if direction.covers(Direction.TX):
            self._tx_up = up

    def is_up(self, direction: Direction) -> bool:
        if direction is Direction.RX:
            return self._rx_up
        if direction is Direction.TX:
            return self._tx_up
        return self._rx_up and self._tx_up

    # ------------------------------------------------------------------
    # Filter chain
    # ------------------------------------------------------------------
    def add_filter(self, rule: PacketFilter) -> int:
        """Append *rule* to the chain; returns its ``rule_id``."""
        self._filters.append(rule)
        return rule.rule_id

    def remove_filter(self, rule_id: int) -> bool:
        """Remove the rule with *rule_id*; returns whether it was present."""
        for i, rule in enumerate(self._filters):
            if rule.rule_id == rule_id:
                del self._filters[i]
                return True
        return False

    def clear_filters(self) -> int:
        """Drop every rule (run clean-up / 'reset environment'); returns count."""
        n = len(self._filters)
        self._filters.clear()
        return n

    @property
    def filters(self) -> List[PacketFilter]:
        return list(self._filters)

    def _run_chain(self, packet: Packet, direction: Direction) -> ChainResult:
        now = self.node.sim.now
        delay = 0.0
        current = packet
        for rule in self._filters:
            if not rule.matches_direction(direction):
                continue
            verdict = rule.decide(current, direction, now)
            if verdict.dropped:
                return ChainResult(dropped=True, delay=delay, packet=current)
            delay += verdict.extra_delay
            if verdict.replacement is not None:
                current = verdict.replacement
        return ChainResult(dropped=False, delay=delay, packet=current)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def transmit(self, packet: Packet) -> bool:
        """Send *packet* out through this interface.

        Returns ``False`` if the interface was down or a rule dropped the
        packet (callers treat both as silent loss, like a real socket over
        a dead NIC).
        """
        if self.medium is None:
            raise RuntimeError(f"interface {self.name} of {self.node.name} not attached")
        if not self._tx_up:
            self.counters["tx_dropped"] += 1
            return False
        delay = 0.0
        if self._filters:  # fast path: most interfaces carry no rules
            result = self._run_chain(packet, Direction.TX)
            if result.dropped:
                self.counters["tx_dropped"] += 1
                return False
            packet = result.packet
            delay = result.delay
        counters = self.counters
        counters["tx_packets"] += 1
        counters["tx_bytes"] += packet.size
        node = self.node
        capture = node.capture
        if capture.enabled:
            capture.record(packet, Direction.TX)
        self.medium.transmit(node, packet, extra_delay=delay)
        return True

    def deliver(self, packet: Packet) -> None:
        """Called by the medium when a packet arrives at this interface."""
        if not self._rx_up:
            self.counters["rx_dropped"] += 1
            return
        if self._filters:
            result = self._run_chain(packet, Direction.RX)
            if result.dropped:
                self.counters["rx_dropped"] += 1
                return
            if result.delay > 0:
                self.node.sim.call_later(result.delay, self._accept, result.packet)
                return
            self._accept(result.packet)
            return
        # Inlined _accept for the no-filter common case (one call fewer
        # per delivery on the packet hot loop).
        counters = self.counters
        counters["rx_packets"] += 1
        counters["rx_bytes"] += packet.size
        node = self.node
        capture = node.capture
        if capture.enabled:
            capture.record(packet, Direction.RX)
        node._receive(packet, self)

    def _accept(self, packet: Packet) -> None:
        if not self._rx_up:  # may have gone down during a filter delay
            self.counters["rx_dropped"] += 1
            return
        counters = self.counters
        counters["rx_packets"] += 1
        counters["rx_bytes"] += packet.size
        node = self.node
        capture = node.capture
        if capture.enabled:
            capture.record(packet, Direction.RX)
        node._receive(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"rx={'up' if self._rx_up else 'down'},tx={'up' if self._tx_up else 'down'}"
        return f"<Interface {self.node.name}:{self.name} {state} rules={len(self._filters)}>"
