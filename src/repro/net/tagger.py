"""The network packet tagger.

Sec. VI-A: *"To allow analysis of properties outside the scope of the
ExCovery processes, for example packet loss and delay, a network packet
tagger is provided.  It remains running in the background on each node.
The tagger adds an option to the header of each selected IP packet and
writes a 16 bit identifier to it, incrementing the identifier with each
packet."*

Tags make packets trackable across hops and captures even when payloads
repeat (retransmissions), enabling the loss/delay analyses in
:mod:`repro.analysis.packetstats`.  The identifier space is 16 bits, so it
wraps at 65536 — the analysis handles wrap-around by sequence unwrapping.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet

__all__ = ["PacketTagger", "TAG_OPTION", "TAG_NODE_OPTION", "TAG_MODULUS"]

#: Option key carrying the 16-bit identifier.
TAG_OPTION = "tag16"
#: Option key carrying the tagging node's name (identifies the sequence).
TAG_NODE_OPTION = "tag_node"
#: Identifier space size.
TAG_MODULUS = 1 << 16


class PacketTagger:
    """Per-node, always-on packet tagging.

    Parameters
    ----------
    node_name:
        Name written into :data:`TAG_NODE_OPTION` so analyses can group
        tags by originating sequence.
    selector:
        Predicate choosing which packets get tagged ("each *selected* IP
        packet").  Default: tag everything the node originates.
    start:
        Initial counter value (mainly for tests exercising wrap-around).
    """

    def __init__(
        self,
        node_name: str,
        selector: Optional[Callable[[Packet], bool]] = None,
        start: int = 0,
    ) -> None:
        self.node_name = node_name
        self.selector = selector
        self.enabled = True
        self._counter = start % TAG_MODULUS
        self.tagged_count = 0

    @property
    def next_tag(self) -> int:
        """The identifier the next tagged packet will receive."""
        return self._counter

    def tag(self, packet: Packet) -> bool:
        """Tag *packet* if enabled and selected; returns whether it was."""
        if not self.enabled:
            return False
        if self.selector is not None and not self.selector(packet):
            return False
        packet.options[TAG_OPTION] = self._counter
        packet.options[TAG_NODE_OPTION] = self.node_name
        self._counter = (self._counter + 1) % TAG_MODULUS
        self.tagged_count += 1
        return True

    def reset(self, start: int = 0) -> None:
        """Restart the sequence (new experiment)."""
        self._counter = start % TAG_MODULUS
        self.tagged_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<PacketTagger {self.node_name} {state} next={self._counter}>"


def unwrap_tags(tags) -> list:
    """Unwrap a 16-bit tag sequence into monotonically increasing values.

    ``[65534, 65535, 0, 1]`` becomes ``[65534, 65535, 65536, 65537]``.
    Assumes successive observations never skip more than half the tag
    space, the standard serial-number-arithmetic assumption (RFC 1982).
    """
    out = []
    unwrapped = None
    prev_raw = None
    for raw in tags:
        if not 0 <= raw < TAG_MODULUS:
            raise ValueError(f"tag out of range: {raw}")
        if unwrapped is None:
            unwrapped = raw
        else:
            delta = (raw - prev_raw) % TAG_MODULUS
            if delta > TAG_MODULUS // 2:
                delta -= TAG_MODULUS  # an out-of-order older tag
            unwrapped += delta
        out.append(unwrapped)
        prev_raw = raw
    return out
