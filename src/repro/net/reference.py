"""Frozen pre-optimization data plane (equivalence + benchmark oracle).

:class:`ReferenceMedium` is :class:`~repro.net.medium.WirelessMedium`
exactly as it shipped before the fast-path rewrite: an O(n) address scan,
per-entry deque eviction, a fresh ``utilization()`` per carry, nx
shortest-path ``next_hop`` lookups, a ``dataclasses.replace`` packet copy
per delivery and a closure per scheduled delivery.  Property tests drive it against the
production medium with identical seeds and assert byte-identical L3
Table-I digests and :class:`~repro.net.medium.MediumStats` counters
(``tests/property/test_sim_fastpath_equivalence.py``).

:class:`ReferenceInterface` and :class:`ReferenceNetNode` freeze the rest
of the pre-optimization data plane: the always-run filter chain, the
closure per delayed accept, and the copy-then-check TTL handling with a
``dataclasses.replace`` copy per forwarded hop.  The scale benchmark
(``benchmarks/bench_scale.py``) builds its reference flavour from these
so the measured speedup is against the code as it shipped, not against a
reference medium grafted onto the already-optimized node stack.

Do not optimize this module — it is the oracle the fast path is measured
against.  It shares :class:`CongestionModel` and :class:`MediumStats`
with the production medium so counters compare directly, and it draws
from ``rng`` in exactly the historical order (per-neighbour uniform
jitter then loss attempts, neighbours in sorted-name order).
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Deque, Dict, Optional, Tuple, TYPE_CHECKING

from repro.net.interface import Direction, Interface
from repro.net.medium import CongestionModel, MediumStats
from repro.net.node import NetNode
from repro.net.packet import Packet, is_broadcast, is_multicast
from repro.net.topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    import random

    from repro.sim.kernel import Simulator

__all__ = ["ReferenceMedium", "ReferenceInterface", "ReferenceNetNode"]


class ReferenceMedium:
    """The shared radio channel, pre-optimization flavour."""

    def __init__(
        self,
        sim: "Simulator",
        topology: Topology,
        rng: "random.Random",
        congestion: Optional[CongestionModel] = None,
        mac_retries: int = 3,
        retry_backoff: float = 0.004,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.rng = rng
        self.congestion = congestion or CongestionModel()
        self.mac_retries = int(mac_retries)
        self.retry_backoff = float(retry_backoff)
        self._nodes: Dict[str, "NetNode"] = {}
        self._load_window: Deque[Tuple[float, int]] = deque()
        self._load_bytes = 0
        self.stats = MediumStats()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def attach(self, node: "NetNode") -> None:
        if node.name not in self.topology.graph:
            raise KeyError(f"node {node.name!r} is not part of the topology")
        if node.name in self._nodes:
            raise ValueError(f"node {node.name!r} already attached")
        self._nodes[node.name] = node
        node.interface.medium = self

    def detach(self, node: "NetNode") -> bool:
        was_attached = self._nodes.pop(node.name, None) is not None
        node.interface.medium = None
        return was_attached

    def node(self, name: str) -> "NetNode":
        return self._nodes[name]

    def address_of(self, name: str) -> str:
        return self._nodes[name].address

    def node_by_address(self, address: str) -> Optional["NetNode"]:
        for node in self._nodes.values():
            if node.address == address:
                return node
        return None

    @property
    def attached_names(self):
        return sorted(self._nodes)

    # ------------------------------------------------------------------
    # Load accounting
    # ------------------------------------------------------------------
    def _account(self, size: int) -> None:
        now = self.sim.now
        self._load_window.append((now, size))
        self._load_bytes += size
        self._evict(now)

    def _evict(self, now: float) -> None:
        horizon = now - self.congestion.window
        window = self._load_window
        while window and window[0][0] < horizon:
            _, size = window.popleft()
            self._load_bytes -= size

    def utilization(self) -> float:
        self._evict(self.sim.now)
        offered_bps = (self._load_bytes * 8.0) / self.congestion.window
        return min(offered_bps / self.congestion.capacity_bps, 1.5)

    def reset_load(self) -> None:
        self._load_window.clear()
        self._load_bytes = 0

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, sender: "NetNode", packet: Packet, extra_delay: float = 0.0) -> None:
        self.stats.transmissions += 1
        self._account(packet.size)
        if is_broadcast(packet.dst_addr) or is_multicast(packet.dst_addr):
            for neighbor in self.topology.neighbors(sender.name):
                target = self._nodes.get(neighbor)
                if target is None:
                    continue
                self._carry(sender, target, packet, unicast=False, extra_delay=extra_delay)
            return

        dst_node = self.node_by_address(packet.dst_addr)
        if dst_node is None:
            self.stats.losses += 1
            return
        next_hop_name = self._nx_next_hop(sender.name, dst_node.name)
        if next_hop_name is None or next_hop_name not in self._nodes:
            self.stats.losses += 1
            return
        self._carry(
            sender, self._nodes[next_hop_name], packet, unicast=True, extra_delay=extra_delay
        )

    def _nx_next_hop(self, src: str, dst: str) -> Optional[str]:
        # The historical next-hop: second node of the nx shortest path.
        # Independent of the production route tables on purpose, so the
        # equivalence tests also pin the BFS route precompute against nx.
        if src == dst:
            return None
        try:
            return self.topology.shortest_path(src, dst)[1]
        except KeyError:
            return None

    def _carry(
        self,
        sender: "NetNode",
        receiver: "NetNode",
        packet: Packet,
        unicast: bool,
        extra_delay: float,
    ) -> None:
        attrs = self.topology.edge_attrs(sender.name, receiver.name)
        utilization = self.utilization()
        p_loss = min(
            0.99,
            float(attrs.get("base_loss", 0.0)) + self.congestion.extra_loss(utilization),
        )
        attempts = 1 + (self.mac_retries if unicast else 0)
        delay = (
            extra_delay
            + float(attrs.get("base_delay", 0.001))
            + self.congestion.queue_delay(utilization)
            + self.rng.uniform(0.0, self.congestion.jitter)
        )
        delivered = False
        for attempt in range(attempts):
            if self.rng.random() >= p_loss:
                delivered = True
                if attempt:
                    self.stats.mac_retries += attempt
                    delay += attempt * self.retry_backoff
                break
        if not delivered:
            self.stats.losses += 1
            return
        self.stats.deliveries += 1
        # Each hop copies the packet so in-flight mutation on one node
        # cannot corrupt another's view; the uid survives for tracking.
        # Inlined historical ``Packet.copy``: ``dataclasses.replace`` plus
        # an independent options dict.  ``Packet.copy`` itself was
        # rewritten for the fast path, so calling it here would let the
        # optimization leak into the oracle's cost model.
        arriving = replace(packet)
        arriving.options = dict(packet.options)
        self.sim.call_later(delay, lambda: receiver.interface.deliver(arriving))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReferenceMedium nodes={len(self._nodes)} "
            f"util={self.utilization():.2f}>"
        )


def _replace_copy(packet: Packet, **overrides) -> Packet:
    """The historical ``Packet.copy``: ``dataclasses.replace`` plus an
    independent options dict.  ``Packet.copy`` itself was rewritten for
    the fast path, so the oracle re-implements the original here."""
    clone = replace(packet, **overrides)
    if "options" not in overrides:
        clone.options = dict(packet.options)
    return clone


class ReferenceInterface(Interface):
    """Pre-optimization interface data path.

    Differences from the production :class:`Interface` that matter to the
    cost model: the filter chain runs on every packet even when empty, a
    delayed accept schedules a closure, and counters/capture lookups are
    not hoisted.
    """

    def transmit(self, packet: Packet) -> bool:
        if self.medium is None:
            raise RuntimeError(f"interface {self.name} of {self.node.name} not attached")
        if not self._tx_up:
            self.counters["tx_dropped"] += 1
            return False
        result = self._run_chain(packet, Direction.TX)
        if result.dropped:
            self.counters["tx_dropped"] += 1
            return False
        self.counters["tx_packets"] += 1
        self.counters["tx_bytes"] += result.packet.size
        self.node.capture.record(result.packet, Direction.TX)
        self.medium.transmit(self.node, result.packet, extra_delay=result.delay)
        return True

    def deliver(self, packet: Packet) -> None:
        if not self._rx_up:
            self.counters["rx_dropped"] += 1
            return
        result = self._run_chain(packet, Direction.RX)
        if result.dropped:
            self.counters["rx_dropped"] += 1
            return
        if result.delay > 0:
            self.node.sim.call_later(result.delay, lambda: self._accept(result.packet))
        else:
            self._accept(result.packet)

    def _accept(self, packet: Packet) -> None:
        if not self._rx_up:  # may have gone down during a filter delay
            self.counters["rx_dropped"] += 1
            return
        self.counters["rx_packets"] += 1
        self.counters["rx_bytes"] += packet.size
        self.node.capture.record(packet, Direction.RX)
        self.node._receive(packet, self)


class ReferenceNetNode(NetNode):
    """Pre-optimization node receive path.

    Keeps the ``is_multicast``/``is_broadcast`` helper calls, the
    copy-then-check TTL handling (a forwarded copy is made before the
    hop budget is inspected) and the ``move_to_end`` dedup insert, all
    exactly as they shipped.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.interface = ReferenceInterface(self, "wlan0")

    def _receive(self, packet: Packet, _iface: Interface) -> None:
        if is_multicast(packet.dst_addr):
            self._receive_multicast(packet)
        elif is_broadcast(packet.dst_addr):
            self._deliver_local(packet)
        elif packet.dst_addr == self.address:
            self._deliver_local(packet)
        else:
            self._forward_unicast(packet)

    def _receive_multicast(self, packet: Packet) -> None:
        if packet.uid in self._seen:
            return  # duplicate from another flooding branch
        self._mark_seen(packet.uid)
        if packet.dst_addr in self._groups:
            self._deliver_local(packet)
        if self.flood_multicast and packet.ttl > 0:
            onward = _replace_copy(packet, ttl=packet.ttl - 1)
            if onward.ttl > 0:
                self.counters["flooded"] += 1
                self.interface.transmit(onward)

    def _forward_unicast(self, packet: Packet) -> None:
        if not self.forwarding:
            return
        onward = _replace_copy(packet, ttl=packet.ttl - 1)
        if onward.ttl <= 0:
            self.counters["ttl_expired"] += 1
            return
        self.counters["forwarded"] += 1
        self.interface.transmit(onward)

    def _mark_seen(self, uid: int) -> None:
        seen = self._seen
        seen[uid] = None
        seen.move_to_end(uid)
        while len(seen) > self._seen_cache_size:
            seen.popitem(last=False)
