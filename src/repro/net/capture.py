"""Per-node packet capture.

Platform requirement IV-A3: *"There must be methods to capture packets
with their exact local timestamps and their complete and unaltered
content."*  Each node runs one capture which records every packet its
interface actually sends or receives (see :mod:`repro.net.interface` for
the filter-vs-capture ordering contract).

Records are plain dictionaries so the level-2 storage can persist them
without knowing about emulator classes — the same records a pcap parser
would produce on the real testbed.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.net.interface import Direction
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NetNode

__all__ = ["PacketCapture", "CapturedPacket"]

#: Type alias for a single capture record.
CapturedPacket = Dict[str, Any]


class PacketCapture:
    """Records packets crossing a node's interface with local timestamps.

    Parameters
    ----------
    node:
        The owning node (provides the local clock).
    max_records:
        Optional ring-buffer bound.  ``None`` (default) keeps everything —
        ExCovery's philosophy is "collecting as much data as possible"
        (Sec. IV-B).
    """

    def __init__(self, node: "NetNode", max_records: Optional[int] = None) -> None:
        self.node = node
        self.max_records = max_records
        self.enabled = True
        self._records: List[CapturedPacket] = []
        self._seq = itertools.count()
        self.dropped_records = 0

    def record(self, packet: Packet, direction: Direction) -> None:
        """Store one observation of *packet* at the node's local time."""
        if not self.enabled:
            return
        if self.max_records is not None and len(self._records) >= self.max_records:
            self.dropped_records += 1
            return
        node = self.node
        # One dict literal instead of build-then-update; the key order
        # must stay exactly header-then-describe() for L2 JSON stability.
        # The packet is snapshotted *now* (options copied) because the
        # medium shares one packet object across all receivers of a
        # transmission (copy-on-write fast path).
        self._records.append(
            {
                "seq": next(self._seq),
                "local_time": node.clock.time(),
                "direction": direction.value,
                "node": node.name,
                "uid": packet.uid,
                "src": packet.src_addr,
                "dst": packet.dst_addr,
                "sport": packet.src_port,
                "dport": packet.dst_port,
                "size": packet.size,
                "ttl": packet.ttl,
                "flow": packet.flow,
                "options": dict(packet.options),
                "payload": packet.payload,
            }
        )

    @property
    def records(self) -> List[CapturedPacket]:
        """The capture buffer (live list; copy before mutating)."""
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def drain(self) -> List[CapturedPacket]:
        """Return all records and clear the buffer (end-of-run collection)."""
        records, self._records = self._records, []
        return records

    def clear(self) -> None:
        """Discard the buffer (run preparation: reset the environment)."""
        self._records.clear()

    def filter(
        self,
        direction: Optional[Direction] = None,
        flow: Optional[str] = None,
        dst_port: Optional[int] = None,
    ) -> List[CapturedPacket]:
        """Convenience query over the buffer."""
        out = []
        for rec in self._records:
            if direction is not None and rec["direction"] != direction.value:
                continue
            if flow is not None and rec["flow"] != flow:
                continue
            if dst_port is not None and rec["dport"] != dst_port:
                continue
            out.append(rec)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PacketCapture {self.node.name} records={len(self._records)}>"
