"""Automatic checking of experiment descriptions.

Sec. I promises that the formal description *"allows for automatic
checking, execution and additional features"*.  This module is the
checking part: it walks a parsed :class:`ExperimentDescription` and
reports every semantic violation at once (errors) plus softer findings
(warnings) that don't block execution.

Checked invariants
------------------
* actor ids unique; abstract node ids unique and non-empty,
* at most one ``actor_node_map`` factor; each of its levels maps every
  declared actor to declared abstract nodes, with disjoint assignments,
* every abstract node used by actors is mapped by the platform spec,
* every ``factorref`` resolves to a declared factor (including the
  replication factor id),
* every domain action name is known to the action registry, and executes
  in a legal scope (environment actions cannot appear in node processes
  and vice versa),
* node selectors reference declared actors / abstract nodes,
* ``wait_for_event`` timeouts and ``wait_for_time`` delays are not
  negative (when literal),
* manipulation processes target declared actors / abstract nodes.

Warnings
--------
* events waited for that no known action emits and no ``event_flag``
  raises (could be protocol-internal — flagged, not fatal),
* unknown special parameters,
* actors with empty action sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.core.actions import ActionKind, ActionRegistry, default_registry
from repro.core.description import ExperimentDescription
from repro.core.errors import ValidationError
from repro.core.factors import Usage
from repro.core.params import SpecialParams
from repro.core.processes import (
    ActionSequence,
    DomainAction,
    EventFlag,
    FactorRef,
    NodeSelector,
    WaitForEvent,
    WaitForTime,
)

__all__ = ["ValidationReport", "validate_description"]

#: Events the framework itself generates, always legal to wait for.
FRAMEWORK_EVENTS = {
    "experiment_init", "experiment_exit", "run_init", "run_exit",
    "address_changed", "drop_all_started", "drop_all_stopped",
    "generic_executed",
}


@dataclass
class ValidationReport:
    """Outcome of validating one description."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            raise ValidationError(self.errors)


def validate_description(
    desc: ExperimentDescription,
    registry: Optional[ActionRegistry] = None,
) -> ValidationReport:
    """Validate *desc* against *registry* (default: built-in actions)."""
    registry = registry or default_registry()
    report = ValidationReport()
    err = report.errors.append
    warn = report.warnings.append

    # --- identity checks ----------------------------------------------
    actor_ids = [a.actor_id for a in desc.actors]
    if len(actor_ids) != len(set(actor_ids)):
        err(f"duplicate actor ids: {sorted(actor_ids)}")
    if len(desc.abstract_nodes) != len(set(desc.abstract_nodes)):
        err(f"duplicate abstract nodes: {sorted(desc.abstract_nodes)}")
    known_actors = set(actor_ids)
    known_abstract = set(desc.abstract_nodes)

    # --- factor checks -------------------------------------------------
    try:
        map_factor = desc.factors.actor_map_factor()
    except Exception as exc:  # DescriptionError from >1 map factors
        err(str(exc))
        map_factor = None

    if map_factor is not None:
        if map_factor.usage is Usage.RANDOM:
            warn(
                f"actor_node_map factor {map_factor.id!r} is randomized; "
                "treatments then differ in role placement (intentional?)"
            )
        for i, level in enumerate(map_factor.levels):
            mapping = level.value
            assigned: Set[str] = set()
            for actor_id, instances in mapping.items():
                if known_actors and actor_id not in known_actors:
                    err(
                        f"factor {map_factor.id!r} level {i}: unknown actor "
                        f"{actor_id!r}"
                    )
                for inst_id, node in instances.items():
                    if known_abstract and node not in known_abstract:
                        err(
                            f"factor {map_factor.id!r} level {i}: actor "
                            f"{actor_id!r}[{inst_id}] maps to undeclared "
                            f"abstract node {node!r}"
                        )
                    if node in assigned:
                        err(
                            f"factor {map_factor.id!r} level {i}: abstract node "
                            f"{node!r} assigned to multiple instances"
                        )
                    assigned.add(node)
            if known_actors:
                for actor_id in sorted(known_actors - set(mapping)):
                    err(
                        f"factor {map_factor.id!r} level {i}: actor "
                        f"{actor_id!r} has no node assignment"
                    )
    elif desc.actors:
        err("actors are declared but no actor_node_map factor assigns nodes")

    # --- platform mapping ----------------------------------------------
    mapped_abstract = {
        n.abstract_id for n in desc.platform.nodes if n.abstract_id is not None
    }
    for abstract in sorted(known_abstract - mapped_abstract):
        if len(desc.platform):
            err(f"abstract node {abstract!r} not mapped by the platform spec")

    # --- event emission inventory ---------------------------------------
    emitted: Set[str] = set(FRAMEWORK_EVENTS) | set(registry.known_events())
    for actor in desc.actors:
        emitted.update(a.value for a in actor.actions if isinstance(a, EventFlag))
    for manip in desc.manipulations:
        emitted.update(a.value for a in manip.actions if isinstance(a, EventFlag))
    for env in desc.environment_processes:
        emitted.update(a.value for a in env.actions if isinstance(a, EventFlag))

    # --- per-sequence checks ---------------------------------------------
    def check_selector(sel: NodeSelector, where: str) -> None:
        if sel.actor is not None:
            if known_actors and sel.actor not in known_actors:
                err(f"{where}: selector references unknown actor {sel.actor!r}")
        elif sel.node_id is not None:
            if known_abstract and sel.node_id not in known_abstract:
                err(f"{where}: selector references unknown abstract node {sel.node_id!r}")

    def check_sequence(actions: ActionSequence, where: str, scope: ActionKind) -> None:
        for idx, action in enumerate(actions):
            at = f"{where}[{idx}]"
            if isinstance(action, WaitForTime):
                if isinstance(action.seconds, FactorRef):
                    if action.seconds.factor_id not in desc.factors:
                        err(f"{at}: factorref to unknown factor {action.seconds.factor_id!r}")
                elif isinstance(action.seconds, (int, float)) and action.seconds < 0:
                    err(f"{at}: negative wait_for_time delay")
            elif isinstance(action, WaitForEvent):
                if action.from_nodes is not None:
                    check_selector(action.from_nodes, at)
                if action.param_nodes is not None:
                    check_selector(action.param_nodes, at)
                if isinstance(action.timeout, FactorRef):
                    if action.timeout.factor_id not in desc.factors:
                        err(f"{at}: factorref to unknown factor {action.timeout.factor_id!r}")
                elif isinstance(action.timeout, (int, float)) and action.timeout < 0:
                    err(f"{at}: negative wait_for_event timeout")
                if action.event not in emitted:
                    warn(
                        f"{at}: waits for event {action.event!r} that no "
                        "declared action or flag emits (protocol-internal?)"
                    )
            elif isinstance(action, DomainAction):
                if action.name not in registry:
                    err(f"{at}: unknown action {action.name!r}")
                else:
                    spec = registry.lookup(action.name)
                    if spec.kind is not scope and action.name != "generic":
                        err(
                            f"{at}: {spec.kind.value} action {action.name!r} "
                            f"used in a {scope.value} process"
                        )
                for pname, value in action.params.items():
                    if isinstance(value, FactorRef) and value.factor_id not in desc.factors:
                        err(
                            f"{at}: parameter {pname!r} references unknown "
                            f"factor {value.factor_id!r}"
                        )
                    if isinstance(value, NodeSelector):
                        check_selector(value, at)

    for actor in desc.actors:
        if not actor.actions:
            warn(f"actor {actor.actor_id!r} has an empty action sequence")
        check_sequence(actor.actions, f"actor {actor.actor_id}", ActionKind.NODE)
    for i, manip in enumerate(desc.manipulations):
        where = f"manipulation #{i}"
        if manip.actor_id is not None and known_actors and manip.actor_id not in known_actors:
            err(f"{where}: targets unknown actor {manip.actor_id!r}")
        if manip.node_id is not None and known_abstract and manip.node_id not in known_abstract:
            err(f"{where}: targets unknown abstract node {manip.node_id!r}")
        check_sequence(manip.actions, where, ActionKind.NODE)
    for i, env in enumerate(desc.environment_processes):
        check_sequence(env.actions, f"env process #{i}", ActionKind.ENVIRONMENT)

    # --- special parameters ----------------------------------------------
    for key in SpecialParams(desc.special_params).unknown_keys():
        warn(f"unknown special parameter {key!r} (passed through untyped)")

    return report
