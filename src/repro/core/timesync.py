"""Per-run clock-offset measurement (Sec. IV-B3).

*"As ExCovery is focused on distributed systems, it defines mandatory
measurements to be done before each run to estimate the time difference of
each participant to a reference clock.  This allows to construct a valid
global time line of events and packets."*

The estimator is the classic Cristian/NTP exchange over the control
channel: the master records its reference time ``t0``, asks the node for
its local reading ``L``, and records ``t1`` on return.  Assuming the
request and response took equally long,

    offset = L - (t0 + t1) / 2

with worst-case error ``(t1 - t0) / 2`` (the full asymmetry budget).
Several probes are taken; the minimum-RTT probe gives the tightest bound.
Results are stored per (run, node) and become the ``TimeDiff`` attribute
of the ``RunInfos`` table (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.rpc import ControlChannel
    from repro.sim.kernel import Simulator

__all__ = ["SyncMeasurement", "measure_node_offset", "measure_offsets"]


@dataclass(frozen=True)
class SyncMeasurement:
    """Offset estimate for one node in one run.

    Attributes
    ----------
    node_id:
        The measured node.
    offset:
        Estimated ``local_clock - reference_clock`` in seconds.  The
        conditioning stage computes ``common = local - offset``.
    rtt:
        Round-trip time of the winning (minimum-RTT) probe.
    error_bound:
        Worst-case estimation error, ``rtt / 2``.
    probes:
        Number of probes taken.
    """

    node_id: str
    offset: float
    rtt: float
    error_bound: float
    probes: int

    def as_record(self) -> Dict[str, float]:
        return {
            "node_id": self.node_id,
            "offset": self.offset,
            "rtt": self.rtt,
            "error_bound": self.error_bound,
            "probes": self.probes,
        }


def measure_node_offset(
    sim: "Simulator",
    channel: "ControlChannel",
    node_id: str,
    probes: int = 5,
):
    """Sub-generator estimating one node's clock offset.

    The master's reference clock is the kernel clock itself (the master is
    the reference, as in the paper where sync measurements are "stored on
    the experiment master").
    """
    if probes < 1:
        raise ValueError("at least one probe required")
    best: SyncMeasurement = None  # type: ignore[assignment]
    for _ in range(probes):
        t0 = sim.now
        local = yield from channel.call(node_id, "ping")
        t1 = sim.now
        rtt = t1 - t0
        estimate = SyncMeasurement(
            node_id=node_id,
            offset=local - (t0 + t1) / 2.0,
            rtt=rtt,
            error_bound=rtt / 2.0,
            probes=probes,
        )
        if best is None or estimate.rtt < best.rtt:
            best = estimate
    return best


def measure_offsets(
    sim: "Simulator",
    channel: "ControlChannel",
    node_ids: List[str],
    probes: int = 5,
):
    """Sub-generator measuring every node sequentially.

    Sequential (not parallel) probing keeps the control channel quiet
    during each exchange, minimizing queueing-induced RTT inflation — the
    same reason real testbeds serialize their sync bursts.
    """
    results: Dict[str, SyncMeasurement] = {}
    for node_id in node_ids:
        results[node_id] = yield from measure_node_offset(sim, channel, node_id, probes)
    return results
