"""The ExperiMaster: the controlling entity of an experiment.

Sec. VI-A: *"The controlling ExperiMaster maintains a list of objects
corresponding to the active nodes in the experiment, on which actions will
be executed. ... Which action is executed at which time is specified in
process descriptions loaded from the experiment description file."*

The master drives the full workflow of Fig. 3:

1. validate the description and generate the treatment plan,
2. (on resume) read the journal and skip completed runs,
3. ``experiment_init`` everywhere, topology snapshot *before*,
4. per run: **preparation** (reset, settle, clock sync), **execution**
   (spawn actor / manipulation / environment processes, wait for the
   actor processes, backstopped by ``max_run_duration``), **clean-up**
   (drain manipulations, stop leftovers, ``run_exit``, collect into
   level-2 storage, journal the run),
5. topology snapshot *after*, plugin + node collection,
   ``experiment_exit``, journal completion.

Everything the master does is a simulation process; :meth:`execute` spins
the kernel until the experiment completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.core.actions import ActionRegistry, default_registry
from repro.core.description import EE_VERSION, ExperimentDescription
from repro.core.errors import ExecutionError, RecoveryError, RunAbortedError
from repro.core.events import EventBus, ExEvent
from repro.core.heartbeat import HeartbeatConfig, HeartbeatMonitor
from repro.core.params import SpecialParams
from repro.core.plan import Run, TreatmentPlan, generate_plan
from repro.core.recovery import Journal
from repro.core.runner import ProcessInterpreter, ProcessScope, RunBinding
from repro.core.timesync import measure_offsets
from repro.core.topomeasure import measure_hop_counts, snapshot_topology
from repro.core.validation import validate_description
from repro.core.plugins import PluginManager
from repro.faults.manipulations import EnvContext, EnvironmentController
from repro.obs.trace import Tracer
from repro.obs.metrics import get_registry
from repro.storage.level2 import Level2Store

__all__ = ["ExperiMaster", "ExperimentResult", "MASTER_NODE_ID", "execute_spec_run"]

#: Node identifier under which master-side events and data are stored.
MASTER_NODE_ID = "master"


@dataclass
class ExperimentResult:
    """What :meth:`ExperiMaster.execute` returns."""

    description: ExperimentDescription
    store: Level2Store
    plan: TreatmentPlan
    executed_runs: List[int] = field(default_factory=list)
    skipped_runs: List[int] = field(default_factory=list)
    timed_out_runs: List[int] = field(default_factory=list)
    #: Reference (kernel) duration of the whole execution, seconds.
    duration: float = 0.0

    @property
    def total_runs(self) -> int:
        return len(self.plan)

    def summary(self) -> Dict[str, Any]:
        return {
            "experiment": self.description.name,
            "total_runs": self.total_runs,
            "executed": len(self.executed_runs),
            "skipped": len(self.skipped_runs),
            "timed_out": len(self.timed_out_runs),
            "duration": self.duration,
        }


class ExperiMaster:
    """Executes one experiment description on a platform.

    Parameters
    ----------
    platform:
        A platform object satisfying :class:`repro.platforms.base.Platform`.
    description:
        The abstract experiment description to execute.
    store:
        Level-2 store receiving all raw data.
    resume:
        Resume an aborted execution found in the store's journal.
    plugins:
        A :class:`~repro.core.plugins.PluginManager` (optional).
    registry:
        Action registry; defaults to the built-ins plus plugin actions.
    abort_after_runs:
        Test/demo hook: raise (simulating a master crash) after this many
        runs completed in this execution.
    custom_treatments:
        Optional explicit treatment sequence replacing the default OFAT
        expansion — the paper's "custom factor level variation plan"
        (Sec. IV-C1).  Build one with :mod:`repro.core.designs`.
    only_runs:
        Optional set of run ids; when given, only those runs of the plan
        are executed (the rest are neither run nor journaled).  This is
        how the campaign engine (:mod:`repro.campaign`) executes a single
        run inside its own isolated platform while keeping the exact same
        experiment lifecycle as a serial execution.
    lease_root:
        Directory for the nodes' on-disk fault-lease files (DESIGN.md
        §11); defaults to ``<store>/leases``.  The campaign engine points
        this *outside* a run's staging store, which is deleted wholesale
        on retry — the lease must survive exactly the crashes that delete
        the staging data.
    tracer:
        Harness span tracer (:class:`repro.obs.trace.Tracer`); a private
        one is built when omitted (honouring ``REPRO_TRACE``).  The
        master hands the instance to the control channel, the fault
        controllers and the environment controller, and drains each
        run's spans into the level-2 store during collection.  Tracing
        is wall-clocked and RNG-free, so it never perturbs results
        (DESIGN.md §12).
    """

    def __init__(
        self,
        platform,
        description: ExperimentDescription,
        store: Level2Store,
        resume: bool = False,
        plugins: Optional[PluginManager] = None,
        registry: Optional[ActionRegistry] = None,
        abort_after_runs: Optional[int] = None,
        custom_treatments: Optional[List[Dict[str, Any]]] = None,
        only_runs: Optional[Set[int]] = None,
        lease_root=None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.platform = platform
        self.description = description
        self.store = store
        self.resume = resume
        self.plugins = plugins or PluginManager()
        self.registry = registry or default_registry()
        self.plugins.extend_registry(self.registry)
        self.abort_after_runs = abort_after_runs
        self.custom_treatments = custom_treatments
        self.only_runs = set(only_runs) if only_runs is not None else None
        self.lease_root = lease_root
        #: Shared fault-lease store; built in :meth:`_attach_lease_stores`.
        self.lease_store = None

        self.sim = platform.sim
        self.channel = platform.channel
        self.params = SpecialParams(description.special_params)
        self.bus = EventBus(self.sim)
        #: Harness observability: one tracer per master, shared with every
        #: component the master drives (never across masters — campaign
        #: workers each build their own, so spans cannot interleave).
        self.tracer = tracer if tracer is not None else Tracer()
        self.env_controller = EnvironmentController(
            self.sim, self.channel, emit=self._emit_env_event
        )
        self.env_controller.tracer = self.tracer
        self.channel.tracer = self.tracer
        self.channel.set_master_handler(self._on_node_upcall)

        self._run_events: Dict[int, List[Dict[str, Any]]] = {}
        self._exp_events: List[Dict[str, Any]] = []
        self._current_binding: Optional[RunBinding] = None
        self._current_run_id: Optional[int] = None
        self._current_phase: Optional[str] = None
        #: Liveness monitor (DESIGN.md §10); armed in :meth:`_main` when
        #: the description sets ``heartbeat_interval`` > 0.
        self.monitor: Optional[HeartbeatMonitor] = None

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _on_node_upcall(self, record: Dict[str, Any]) -> None:
        """A node forwarded an event over the control channel."""
        self.bus.register(ExEvent.from_record(record))

    def emit_master(self, name: str, params=(), run_id: Optional[int] = None) -> ExEvent:
        """Generate a master-side event (reference clock timestamps)."""
        event = ExEvent(
            name=name,
            node=MASTER_NODE_ID,
            local_time=self.sim.now,
            params=tuple(params),
            run_id=run_id,
        )
        record = event.as_record()
        if run_id is None:
            self._exp_events.append(record)
        else:
            self._run_events.setdefault(run_id, []).append(record)
        self.bus.register(event)
        return event

    def _emit_env_event(self, name: str, params=()) -> None:
        self.emit_master(name, params=params, run_id=self._current_run_id)

    def env_context(self, binding: RunBinding) -> EnvContext:
        acting = binding.acting_platform_nodes()
        all_nodes = [n.node_id for n in self.description.platform.nodes]
        env_nodes = [n for n in all_nodes if n not in acting]
        return EnvContext(
            run_id=binding.run.run_id,
            replication=binding.run.replication,
            acting_nodes=acting,
            env_nodes=env_nodes,
            addr_of=self.platform.addr_of,
        )

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def execute(self) -> ExperimentResult:
        """Run the experiment to completion; returns the result object.

        Any unhandled failure propagates after the kernel stops — the
        journal then allows a subsequent ``resume=True`` execution.
        """
        started_at = self.sim.now
        done = self.sim.event(name="experiment-done")
        result = ExperimentResult(
            description=self.description,
            store=self.store,
            plan=generate_plan(
                self.description.factors,
                self.description.seed,
                custom_treatments=self.custom_treatments,
            ),
        )
        self.sim.process(self._main(result, done), name="experimaster")
        try:
            self.sim.run(
                until_event=done,
                realtime_factor=getattr(self.platform, "realtime_factor", None),
            )
        except Exception as exc:
            # The master runs as a simulation process; unwrap its own
            # failures from the kernel's crash report so callers see the
            # framework error (ExecutionError, RecoveryError, ...), with
            # the journal already reflecting every completed run.
            from repro.core.errors import ExCoveryError
            from repro.sim.kernel import SimulationError

            err = exc
            if isinstance(exc, SimulationError) and isinstance(
                exc.__cause__, ExCoveryError
            ):
                err = exc.__cause__
            self._journal_run_abort(err)
            if err is not exc:
                raise err from exc
            raise
        result.duration = self.sim.now - started_at
        return result

    def _journal_run_abort(self, err: BaseException) -> None:
        """Record which run and phase a mid-run failure killed.

        The ``run_aborted`` journal entry does not mark the run complete —
        a ``resume=True`` execution re-runs it — but it preserves the
        failure reason for post-mortems and the campaign engine's L3
        ``RunInfos.AbortReason`` column.
        """
        run_id = self._current_run_id
        if run_id is None:
            return
        try:
            Journal(self.store).record_run_aborted(
                run_id, self._current_phase or "", f"{type(err).__name__}: {err}"
            )
        except Exception as journal_exc:  # noqa: BLE001 - never mask the real failure
            self.tracer.record_error(
                "journal_write", journal_exc, site="run_aborted", run_id=run_id
            )
            get_registry().counter(
                "repro_suppressed_errors_total",
                "Exceptions swallowed at continue-anyway boundaries",
                labels=("site",),
            ).inc(site="journal_run_aborted")

    # ------------------------------------------------------------------
    # Main experiment process
    # ------------------------------------------------------------------
    def _main(self, result: ExperimentResult, done):
        desc = self.description
        report = validate_description(desc, self.registry)
        report.raise_if_failed()

        plan = result.plan
        journal = Journal(self.store)
        completed: Set[int] = set()
        if self.resume:
            completed = journal.prepare_resume(desc, len(plan))
            # The description fingerprint does not cover a programmatic
            # custom treatment plan; compare against the stored plan so a
            # resume cannot silently mix two different run sequences.
            stored_plan = self.store.read_plan()
            if stored_plan != _json_roundtrip(plan.describe()):
                raise RecoveryError(
                    "treatment plan changed since the aborted execution "
                    "(custom_treatments differ?)"
                )
        else:
            if journal.started():
                raise RecoveryError(
                    "store already holds a journal; pass resume=True or use "
                    "a fresh store directory"
                )
            from repro.core.xmlio import description_to_xml

            self.store.write_description(description_to_xml(desc))
            self.store.write_plan(plan.describe())
            self.store.write_eefile(
                "VERSION", f"{EE_VERSION}\nfingerprint={desc.fingerprint()}\n"
            )
            journal.record_start(desc.fingerprint(), desc.seed, len(plan))
        result.skipped_runs = sorted(completed)

        node_ids = [n.node_id for n in desc.platform.nodes]
        self.platform.check_nodes(node_ids)
        self._install_plugin_handlers(node_ids)
        self._attach_lease_stores(node_ids)

        # --- experiment initialization --------------------------------
        init_span = self.tracer.start_span("experiment_init", nodes=len(node_ids))
        self.emit_master("experiment_init", params=(desc.name,))
        for node_id in node_ids:
            yield from self.channel.call(node_id, "experiment_init", desc.name)
        self.store.write_topology("before", self._topology_measurement(node_ids))
        self.plugins.experiment_init(self)
        self._start_heartbeat(node_ids)
        init_span.end()

        # --- the run series --------------------------------------------
        executed_this_session = 0
        for run in plan:
            if run.run_id in completed:
                continue
            if self.only_runs is not None and run.run_id not in self.only_runs:
                continue
            timed_out = yield from self._execute_run(run)
            journal.record_run_complete(run.run_id)
            result.executed_runs.append(run.run_id)
            if timed_out:
                result.timed_out_runs.append(run.run_id)
            executed_this_session += 1
            if (
                self.abort_after_runs is not None
                and executed_this_session >= self.abort_after_runs
                and result.executed_runs[-1] != plan[-1].run_id
            ):
                raise ExecutionError(
                    f"aborting after {executed_this_session} runs (abort_after_runs)"
                )
            spacing = self.params.get("run_spacing")
            if spacing > 0:
                yield self.sim.timeout(spacing)

        # --- experiment teardown ---------------------------------------
        exit_span = self.tracer.start_span("experiment_collect", nodes=len(node_ids))
        if self.monitor is not None:
            self.monitor.stop()
        self.store.write_topology("after", self._topology_measurement(node_ids))
        for name, content in self.plugins.experiment_exit(self).items():
            self.store.write_experiment_measurement(name, content)
        for node_id in node_ids:
            yield from self.channel.call(node_id, "experiment_exit")
            data = yield from self.channel.call(node_id, "collect_experiment")
            self.store.write_node_log(node_id, data.get("log", ""))
            self.store.write_node_experiment_events(node_id, data.get("events", []))
        self.emit_master("experiment_exit", params=(desc.name,))
        self.store.write_node_experiment_events(MASTER_NODE_ID, self._exp_events)
        exit_span.end()
        self.store.append_experiment_traces(self.tracer.drain(None))
        journal.record_experiment_complete()
        done.trigger(True)

    def _start_heartbeat(self, node_ids: List[str]) -> None:
        """Arm the liveness monitor when the description opts in.

        Off by default (``heartbeat_interval=0``): probes travel the real
        control channel and therefore consume its jitter RNG draws, so
        they must be part of the description to keep runs reproducible.
        """
        interval = self.params.get("heartbeat_interval")
        if interval <= 0:
            return
        config = HeartbeatConfig(
            interval=interval,
            timeout=self.params.get("heartbeat_timeout"),
            suspect_after=self.params.get("heartbeat_suspect_after"),
            dead_after=self.params.get("heartbeat_dead_after"),
        )
        self.monitor = HeartbeatMonitor(
            self.sim, self.channel, node_ids, config,
            on_transition=self._on_liveness_transition,
        )
        self.monitor.start()

    def _on_liveness_transition(self, node_id: str, old: str, new: str) -> None:
        self.emit_master(
            f"node_{new}", params=(node_id, old), run_id=self._current_run_id
        )

    def heartbeat_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-node liveness statistics (empty when heartbeats are off)."""
        return self.monitor.summary() if self.monitor is not None else {}

    def _install_plugin_handlers(self, node_ids: List[str]) -> None:
        """Install action plugins' node-side handlers on every participating
        NodeManager (the node half of the Sec. IV-D2 plugin concept).

        A plugin handler has the signature ``handler(node_manager, params)``
        so one plugin instance can serve every node; it is adapted to the
        NodeManager's ``handler(params)`` convention per node.
        """
        for plugin in self.plugins.action:
            for name, handler in plugin.node_handlers().items():
                for node_id in node_ids:
                    manager = self.platform.node_managers.get(node_id)
                    if manager is None:
                        continue
                    manager.register_action_handler(
                        name,
                        (lambda params, _h=handler, _nm=manager: _h(_nm, params)),
                    )

    def _attach_lease_stores(self, node_ids: List[str]) -> None:
        """Wire every NodeManager to the shared on-disk fault-lease store.

        Runs before ``experiment_init``: the attach performs each node's
        *startup* reconciliation sweep, so leases leaked by a crashed
        earlier execution are force-reverted before any run of this one
        starts.  The TTL margin folded into every lease is the worst-case
        run length (``max_run_duration``, or the execution watchdog
        deadline when that is longer).
        """
        from pathlib import Path

        from repro.faults.leases import FaultLeaseStore

        root = Path(self.lease_root) if self.lease_root else self.store.root / "leases"
        self.lease_store = FaultLeaseStore(root)
        margin = max(
            self.params.get("max_run_duration"),
            self.params.get("exec_deadline") or 0.0,
        )
        reconciled: List[Dict[str, Any]] = []
        for node_id in node_ids:
            manager = self.platform.node_managers.get(node_id)
            if manager is None:
                continue
            manager.set_tracer(self.tracer)
            reconciled.extend(
                manager.attach_lease_store(self.lease_store, ttl_margin=margin)
            )
        self._record_reconciled_leases(reconciled)

    def _record_reconciled_leases(self, records: List[Dict[str, Any]]) -> None:
        """Persist reconciled-leak records: L2 master log + journal.

        ``master/fault_leases.jsonl`` is what the level-3 writer turns
        into ``FaultLeases`` rows (an extension table outside Table I, so
        resume digests over the paper's schema stay byte-identical).
        """
        if not records:
            return
        self.store.append_reconciled_leases(records)
        try:
            Journal(self.store).record_fault_leases_reconciled(records)
        except Exception as exc:  # noqa: BLE001 - diagnostics only
            self.tracer.record_error(
                "journal_write", exc, site="fault_leases_reconciled"
            )
            get_registry().counter(
                "repro_suppressed_errors_total",
                "Exceptions swallowed at continue-anyway boundaries",
                labels=("site",),
            ).inc(site="journal_leases_reconciled")

    def _topology_measurement(self, node_ids: List[str]) -> Dict[str, Any]:
        topology = self.platform.topology
        names = [self.platform.topology_name(nid) for nid in node_ids]
        return {
            "hop_counts": measure_hop_counts(topology, names),
            "snapshot": snapshot_topology(topology),
        }

    # ------------------------------------------------------------------
    # One run
    # ------------------------------------------------------------------
    def _execute_run(self, run: Run):
        binding = self._make_binding(run)
        timed_out = yield from self.execute_single_run(binding)
        return timed_out

    def execute_single_run(self, binding: RunBinding):
        """The full single-run lifecycle (preparation → execution →
        clean-up) as one reentrant generator.

        Both execution paths share this code: the serial series in
        :meth:`_main` and the campaign engine's one-run-per-master workers
        (:mod:`repro.campaign.engine`).  The generator must be spun inside
        this master's simulation kernel (``experiment_init`` already
        done); it returns whether the run hit the ``max_run_duration``
        backstop.

        Each phase can carry a watchdog deadline (``prep_deadline`` /
        ``exec_deadline`` / ``cleanup_deadline`` special parameters); an
        overrun aborts the run into the journal as ``run_aborted`` so a
        ``resume=True`` execution replays it (DESIGN.md §10).
        """
        run = binding.run
        node_ids = [n.node_id for n in self.description.platform.nodes]
        self._current_run_id = run.run_id
        self.tracer.current_run = run.run_id
        run_span = self.tracer.start_span(
            "run", run_id=run.run_id, replication=run.replication
        )
        start_time = self.sim.now
        self.emit_master("run_init", params=(run.run_id,), run_id=run.run_id)

        yield from self._guard_phase(
            run.run_id, "preparation",
            self._preparation_phase(binding, node_ids, start_time),
            self.params.get("prep_deadline"),
        )
        timed_out, other_procs = yield from self._guard_phase(
            run.run_id, "execution",
            self._execution_phase(binding),
            self.params.get("exec_deadline"),
        )
        yield from self._guard_phase(
            run.run_id, "cleanup",
            self._cleanup_phase(binding, node_ids, other_procs),
            self.params.get("cleanup_deadline"),
        )
        self._current_phase = None
        self._current_binding = None
        self._current_run_id = None
        run_span.end(timed_out=timed_out)
        self.tracer.current_run = None
        # Persist the run's spans through the same buffered writer path as
        # events/packets; the collection writer has already closed, so the
        # cleanup phase's own duration is included.
        records = self.tracer.drain(run.run_id)
        if records:
            with self.store.run_writer(run.run_id) as writer:
                writer.add_traces(MASTER_NODE_ID, records)
        return timed_out

    def _guard_phase(self, run_id: int, phase: str, gen, deadline: float):
        """Drive one phase sub-generator, optionally under a watchdog.

        With no deadline the generator is inlined (``yield from``) —
        byte-identical scheduling to the pre-watchdog master.  With a
        deadline the phase runs as a child process raced against a
        timeout; an overrun interrupts the phase cleanly and raises
        :class:`RunAbortedError` (journaled by :meth:`execute`).
        """
        self._current_phase = phase
        span = self.tracer.start_span(phase, run_id=run_id)
        if deadline is None or deadline <= 0:
            try:
                result = yield from gen
            except BaseException as exc:
                span.end(status="error", error=f"{type(exc).__name__}: {exc}")
                raise
            span.end()
            return result
        proc = self.sim.process(gen, name=f"phase:{phase}:run{run_id}")
        expiry = self.sim.timeout(deadline, name=f"phase-deadline:{phase}")
        try:
            fired, _value = yield self.sim.any_of(proc, expiry)
        except BaseException as exc:
            span.end(status="error", error=f"{type(exc).__name__}: {exc}")
            raise
        if fired is expiry and not proc.triggered:
            self.emit_master(
                "run_phase_deadline", params=(run_id, phase, deadline), run_id=run_id
            )
            if proc.alive:
                proc.interrupt("phase_deadline")
            span.end(status="error", error="phase_deadline", deadline=deadline)
            raise RunAbortedError(
                f"run {run_id} {phase} phase exceeded its {deadline}s deadline",
                run_id=run_id,
                phase=phase,
            )
        span.end()
        return proc.value

    # ---- preparation phase -------------------------------------------
    def _preparation_phase(self, binding: RunBinding, node_ids: List[str],
                           start_time: float):
        run = binding.run
        # Platform-level per-run reset first (reseeds shared-medium and
        # control-channel RNG streams so every run's randomness is a pure
        # function of (experiment seed, run id) — resume-safe).
        self.platform.on_run_init(run.run_id)
        reconciled: List[Dict[str, Any]] = []
        for node_id in node_ids:
            ack = yield from self.channel.call(node_id, "run_init", run.run_id)
            if isinstance(ack, dict):
                reconciled.extend(ack.get("reconciled") or [])
        self._record_reconciled_leases(reconciled)
        settle = self.params.get("run_settle_time")
        if settle > 0:
            yield self.sim.timeout(settle)
        sync = yield from measure_offsets(
            self.sim, self.channel, node_ids, probes=self.params.get("sync_probes")
        )
        self.store.write_timesync(
            run.run_id, {nid: m.as_record() for nid, m in sync.items()}
        )
        self.store.write_run_info(
            run.run_id,
            {
                "run_id": run.run_id,
                "start_time": start_time,
                "treatment": {k: _json_safe(v) for k, v in run.treatment.items()},
                "seed": run.seed,
            },
        )
        self._current_binding = binding
        self.plugins.run_init(self, run)

    # ---- execution phase ---------------------------------------------
    def _execution_phase(self, binding: RunBinding):
        desc = self.description
        run = binding.run
        actor_procs = []
        other_procs = []
        for actor in desc.actors:
            for inst_id, node_id in sorted(binding.actor_instances(actor.actor_id).items()):
                scope = ProcessScope(
                    kind="node",
                    label=f"{actor.actor_id}[{inst_id}]",
                    node_id=node_id,
                )
                interp = ProcessInterpreter(self, binding, scope, actor.actions)
                actor_procs.append(
                    self.sim.process(interp.run(), name=f"proc:{scope.label}")
                )
        for i, manip in enumerate(desc.manipulations):
            targets: List[str] = []
            if manip.actor_id is not None:
                targets = sorted(binding.actor_instances(manip.actor_id).values())
            elif manip.node_id is not None:
                targets = [binding.platform_node(manip.node_id)]
            for node_id in targets:
                scope = ProcessScope(
                    kind="node", label=f"manip{i}@{node_id}", node_id=node_id
                )
                interp = ProcessInterpreter(self, binding, scope, manip.actions)
                other_procs.append(
                    self.sim.process(interp.run(), name=f"proc:{scope.label}")
                )
        for i, env in enumerate(desc.environment_processes):
            scope = ProcessScope(kind="env", label=f"env{i}:{env.name}")
            interp = ProcessInterpreter(self, binding, scope, env.actions)
            other_procs.append(
                self.sim.process(interp.run(), name=f"proc:{scope.label}")
            )

        timed_out = False
        max_duration = self.params.get("max_run_duration")
        if actor_procs:
            all_done = self.sim.all_of(*actor_procs)
            backstop = self.sim.timeout(max_duration, name="run-backstop")
            fired, _value = yield self.sim.any_of(all_done, backstop)
            if fired is backstop and not all_done.triggered:
                timed_out = True
                self.emit_master("run_timeout", params=(run.run_id,), run_id=run.run_id)
                for proc in actor_procs:
                    if proc.alive:
                        proc.interrupt("run_timeout")
        return timed_out, other_procs

    # ---- clean-up phase ----------------------------------------------
    def _cleanup_phase(self, binding: RunBinding, node_ids: List[str],
                       other_procs):
        run = binding.run
        # Give manipulation/environment processes a grace period to wind
        # down on their own (they typically wait for the 'done' flag).
        alive = [p for p in other_procs if p.alive]
        if alive:
            grace = self.sim.timeout(5.0, name="cleanup-grace")
            yield self.sim.any_of(self.sim.all_of(*alive), grace)
            for proc in alive:
                if proc.alive:
                    proc.interrupt("run_cleanup")
        yield from self.env_controller.cleanup()

        collect_packets = self.params.get("collect_packets")
        for node_id in node_ids:
            yield from self.channel.call(node_id, "run_exit", run.run_id)
        # One buffered writer covers the whole collection: file handles
        # stay open across nodes and batches are flushed together instead
        # of paying an open/append/close per (node, stream) call.
        with self.store.run_writer(run.run_id) as writer:
            for node_id in node_ids:
                data = yield from self.channel.call(node_id, "collect_run", run.run_id)
                writer.add_events(node_id, data.get("events", []))
                writer.add_packets(
                    node_id, data.get("packets", []) if collect_packets else []
                )
            self.emit_master("run_exit", params=(run.run_id,), run_id=run.run_id)
            # pop, not get: a long serial series must not accumulate every
            # run's event records in memory after they are on disk.
            writer.add_events(MASTER_NODE_ID, self._run_events.pop(run.run_id, []))
            writer.add_packets(MASTER_NODE_ID, [])
        for plugin_name, content in self.plugins.run_exit(self, run).items():
            self.store.write_extra_measurement(
                MASTER_NODE_ID, run.run_id, plugin_name, content
            )
        self.platform.on_run_exit(run.run_id)

    # ------------------------------------------------------------------
    def _make_binding(self, run: Run) -> RunBinding:
        desc = self.description
        map_factor = desc.factors.actor_map_factor()
        if map_factor is not None:
            actor_map = run.treatment[map_factor.id]
        else:
            actor_map = {}
        abstract_to_platform = {
            n.abstract_id: n.node_id
            for n in desc.platform.nodes
            if n.abstract_id is not None
        }
        return RunBinding(
            run=run,
            actor_map=actor_map,
            abstract_to_platform=abstract_to_platform,
        )


def _json_roundtrip(value: Any) -> Any:
    """Normalize through JSON so comparisons match what level 2 stored
    (tuples become lists, keys become strings)."""
    import json

    return json.loads(json.dumps(value, sort_keys=True))


def _json_safe(value: Any) -> Any:
    """Treatment values must survive JSON (actor maps are nested dicts)."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


# ----------------------------------------------------------------------
# Spec execution: the one-run worker entry point
# ----------------------------------------------------------------------
def execute_spec_run(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one campaign run from a plain picklable *spec*.

    The single worker-side entry point shared by the local campaign
    engine's pool workers and the fabric's fleet workers: everything the
    run needs arrives as JSON-able values (plus an optional platform
    config), everything it produces lands on disk under
    ``spec["campaign_dir"]``, and the returned dict only carries pointers
    and statistics back to the caller.

    Spec keys: ``campaign_dir``, ``description_xml``,
    ``custom_treatments``, ``config``, ``realtime_factor``, ``run_id``,
    ``store`` / ``shard`` / ``lease_root`` (paths relative to the
    campaign dir) and optional ``control_faults`` (already filtered to
    this attempt and session).

    Determinism contract: the run's staged data is a pure function of
    (description, run id) — which host executes the spec, how often, and
    in what order is invisible in the output.
    """
    import os
    import shutil
    import time as _time
    from pathlib import Path

    from repro.campaign.merge import ShardWriter
    from repro.core.errors import CampaignError
    from repro.core.xmlio import description_from_xml
    from repro.obs.analyze import phase_durations
    from repro.obs.metrics import diff_snapshots
    from repro.platforms.localhost import LocalhostPlatform
    from repro.platforms.simulated import SimulatedPlatform

    started = _time.monotonic()
    # With a process pool this worker owns a private registry; the parent
    # folds the per-ticket delta back in (keyed on pid).  With a thread
    # pool the registry *is* the parent's and no fold-in happens, so
    # nothing is counted twice either way.
    registry = get_registry()
    metrics_before = registry.snapshot()
    root = Path(spec["campaign_dir"])
    run_id = spec["run_id"]

    desc = description_from_xml(spec["description_xml"])
    config = spec["config"]
    control_faults = spec.get("control_faults") or []
    if control_faults:
        # The dispatcher already filtered the chaos plan down to this
        # attempt and session; bind what remains to this worker's private
        # platform config.
        from dataclasses import replace

        from repro.platforms.simulated import PlatformConfig

        config = (
            replace(config, control_faults=control_faults)
            if config is not None
            else PlatformConfig(control_faults=control_faults)
        )
    if spec["realtime_factor"] is not None:
        platform = LocalhostPlatform(
            desc, config, realtime_factor=spec["realtime_factor"]
        )
    else:
        platform = SimulatedPlatform(desc, config)

    store_dir = root / spec["store"]
    if store_dir.exists():
        # Leftovers of a crashed or retried attempt: runs start clean.
        shutil.rmtree(store_dir)
    store = Level2Store(store_dir)
    master = ExperiMaster(
        platform,
        desc,
        store,
        only_runs={run_id},
        custom_treatments=spec["custom_treatments"],
        # Fault leases must survive the staging rmtree above — a retried
        # attempt's reconciliation sweep is what reverts the faults the
        # crashed attempt leaked, so the lease root lives at campaign
        # level, keyed by run id.
        lease_root=root / spec["lease_root"],
    )
    result = master.execute()
    if run_id not in result.executed_runs:
        raise CampaignError(f"plan has no run {run_id}; nothing executed")

    with ShardWriter(root / spec["shard"]) as shard:
        shard.stage_run(store, run_id)

    channel = getattr(platform, "channel", None)
    return {
        "run_id": run_id,
        "store": spec["store"],
        "shard": spec["shard"],
        "timed_out": run_id in result.timed_out_runs,
        "duration": _time.monotonic() - started,
        "pid": os.getpid(),
        "rpc_retries": getattr(channel, "retried_calls", 0),
        "rpc_timeouts": getattr(channel, "timed_out_calls", 0),
        # Per-phase wall-clock seconds from the master's trace spans
        # (empty when tracing is off) and the metrics this ticket added.
        "phases": phase_durations(store.read_run_traces(MASTER_NODE_ID, run_id)),
        "metrics": diff_snapshots(registry.snapshot(), metrics_before),
    }
