"""Measurement and action plugins.

Sec. IV-B: *"ExCovery has a plugin concept to extend these data with
custom measurements on demand."*  Sec. IV-D2 adds that experimenters
should extend the framework "by defining a plugin with new functions and
their implementation".

Two plugin kinds exist:

:class:`MeasurementPlugin`
    Hooks into the run/experiment lifecycle and returns named measurement
    payloads.  Per-run payloads land in the ``ExtraRunMeasurements`` table,
    per-experiment payloads in ``ExperimentMeasurements`` (Table I).
    *"Plugins have a separate storage location"* — the master keeps plugin
    data in its own level-2 area keyed by plugin name.

:class:`ActionPlugin`
    Registers new domain actions (an :class:`~repro.core.actions.ActionSpec`
    plus node-side handlers), extending the description vocabulary.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.actions import ActionRegistry, ActionSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.master import ExperiMaster
    from repro.core.plan import Run

__all__ = ["MeasurementPlugin", "ActionPlugin", "PluginManager", "MediumStatsPlugin"]


class MeasurementPlugin:
    """Base class for custom measurements.

    Subclasses override any subset of the hooks.  Hooks run synchronously
    on the master between lifecycle phases; returned mappings are stored
    verbatim ({measurement name: JSON-serializable content}).
    """

    #: Unique plugin name; also the storage key.
    name = "measurement"

    def on_experiment_init(self, master: "ExperiMaster") -> None:
        """Called once before the first run."""

    def on_run_init(self, master: "ExperiMaster", run: "Run") -> None:
        """Called during each run's preparation phase."""

    def on_run_exit(self, master: "ExperiMaster", run: "Run") -> Dict[str, Any]:
        """Called during clean-up; returns per-run measurements."""
        return {}

    def on_experiment_exit(self, master: "ExperiMaster") -> Dict[str, Any]:
        """Called once after the last run; returns experiment measurements."""
        return {}


class ActionPlugin:
    """A bundle of new actions: registry specs + node-side handlers."""

    name = "action"

    def action_specs(self) -> List[ActionSpec]:
        """Specs to add to the action registry."""
        return []

    def node_handlers(self) -> Dict[str, Callable[..., Any]]:
        """``{action_name: handler(node_manager, params) -> value}``
        installed on every NodeManager."""
        return {}


class PluginManager:
    """Holds the plugins of one experiment and fans hooks out to them."""

    def __init__(
        self,
        measurement: Optional[List[MeasurementPlugin]] = None,
        action: Optional[List[ActionPlugin]] = None,
    ) -> None:
        self.measurement = list(measurement or [])
        self.action = list(action or [])
        names = [p.name for p in self.measurement] + [p.name for p in self.action]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate plugin names: {sorted(names)}")

    def extend_registry(self, registry: ActionRegistry) -> None:
        for plugin in self.action:
            for spec in plugin.action_specs():
                registry.register(spec, replace=True)

    def experiment_init(self, master: "ExperiMaster") -> None:
        for plugin in self.measurement:
            plugin.on_experiment_init(master)

    def run_init(self, master: "ExperiMaster", run: "Run") -> None:
        for plugin in self.measurement:
            plugin.on_run_init(master, run)

    def run_exit(self, master: "ExperiMaster", run: "Run") -> Dict[str, Dict[str, Any]]:
        out: Dict[str, Dict[str, Any]] = {}
        for plugin in self.measurement:
            data = plugin.on_run_exit(master, run)
            if data:
                out[plugin.name] = data
        return out

    def experiment_exit(self, master: "ExperiMaster") -> Dict[str, Dict[str, Any]]:
        out: Dict[str, Dict[str, Any]] = {}
        for plugin in self.measurement:
            data = plugin.on_experiment_exit(master)
            if data:
                out[plugin.name] = data
        return out


class MediumStatsPlugin(MeasurementPlugin):
    """Example plugin: record per-run wireless medium statistics.

    Demonstrates the plugin API; the case-study analyses use it to relate
    responsiveness to the medium's transmission/loss counters.
    """

    name = "medium_stats"

    def __init__(self, medium) -> None:
        self.medium = medium
        self._baseline: Tuple[int, int, int, int] = (0, 0, 0, 0)

    def _snapshot(self) -> Tuple[int, int, int, int]:
        s = self.medium.stats
        return (s.transmissions, s.deliveries, s.losses, s.mac_retries)

    def on_run_init(self, master: "ExperiMaster", run: "Run") -> None:
        self._baseline = self._snapshot()

    def on_run_exit(self, master: "ExperiMaster", run: "Run") -> Dict[str, Any]:
        now = self._snapshot()
        base = self._baseline
        return {
            "medium": {
                "transmissions": now[0] - base[0],
                "deliveries": now[1] - base[1],
                "losses": now[2] - base[2],
                "mac_retries": now[3] - base[3],
                "utilization": self.medium.utilization(),
            }
        }
