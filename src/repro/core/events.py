"""The ExCovery event model and the master's event bus.

Events (Sec. IV-B1) are state changes on nodes: *"They contain a local
time stamp and may have additional parameters."*  Nodes record events
locally (level-2 storage) and forward a copy to the experiment master over
the control channel, where the :class:`EventBus` assigns a global receipt
sequence and wakes any process blocked in ``wait_for_event``.

Dependency matching implements the full semantics of the description
language (Sec. IV-C2):

* an event is selected **by name**,
* optionally **by location** — "either a single abstract node or a subset
  of nodes specified by an actor role", where ``instance="all"`` demands
  the event *from every node* of the set,
* optionally **by parameters**, where again a node-set parameter
  dependency with ``instance="all"`` demands events whose parameters cover
  *every* identity in the set (Fig. 10: the SU is done when
  ``sd_service_add`` has been seen for *all* SMs),
* optionally **after a marker** (``wait_marker``), i.e. only events
  registered after a remembered bus position count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import SimEvent
    from repro.sim.kernel import Simulator

__all__ = ["ExEvent", "EventPattern", "EventBus", "Watcher"]


@dataclass(frozen=True)
class ExEvent:
    """One recorded state change.

    Attributes
    ----------
    name:
        Event type, e.g. ``"sd_service_add"`` or ``"run_init"``.
    node:
        Host name of the node the event occurred on.
    local_time:
        Timestamp from the *node's own clock* — conditioning later maps it
        onto the common time base.
    params:
        Ordered tuple of additional parameters (often a single identity,
        e.g. the discovered service's provider).
    run_id:
        Run the event belongs to; ``None`` for experiment-scope events.
    seq:
        Master receipt sequence, assigned by the bus (−1 before receipt).
    """

    name: str
    node: str
    local_time: float
    params: Tuple[Any, ...] = ()
    run_id: Optional[int] = None
    seq: int = -1

    def with_seq(self, seq: int) -> "ExEvent":
        return ExEvent(self.name, self.node, self.local_time, self.params, self.run_id, seq)

    def as_record(self) -> Dict[str, Any]:
        """Flat dict for level-2/level-3 storage."""
        return {
            "name": self.name,
            "node": self.node,
            "local_time": self.local_time,
            "params": list(self.params),
            "run_id": self.run_id,
            "seq": self.seq,
        }

    @staticmethod
    def from_record(rec: Dict[str, Any]) -> "ExEvent":
        return ExEvent(
            name=rec["name"],
            node=rec["node"],
            local_time=rec["local_time"],
            params=tuple(rec.get("params", ())),
            run_id=rec.get("run_id"),
            seq=rec.get("seq", -1),
        )


@dataclass(frozen=True)
class EventPattern:
    """A resolved ``wait_for_event`` dependency.

    ``nodes`` / ``params`` of ``None`` mean "any" (the paper's default for
    omitted dependencies).  ``require_all_*`` encodes ``instance="all"``.
    """

    name: str
    nodes: Optional[FrozenSet[str]] = None
    require_all_nodes: bool = False
    params: Optional[FrozenSet[Any]] = None
    require_all_params: bool = False
    after_seq: int = -1
    run_id: Optional[int] = None

    def _node_ok(self, event: ExEvent) -> bool:
        return self.nodes is None or event.node in self.nodes

    def _param_matches(self, event: ExEvent) -> Optional[Any]:
        """Return the matched param value, or ``None`` if no match."""
        if self.params is None:
            return "*"
        for p in event.params:
            if p in self.params:
                return p
        return None

    def matches(self, event: ExEvent) -> bool:
        """Whether a single event satisfies the per-event part of the
        pattern (name, node set, param set, marker, run scope)."""
        if event.name != self.name:
            return False
        if event.seq <= self.after_seq:
            return False
        if self.run_id is not None and event.run_id is not None and event.run_id != self.run_id:
            return False
        if not self._node_ok(event):
            return False
        return self._param_matches(event) is not None


class Watcher:
    """Progress tracker for one blocked ``wait_for_event``.

    Tracks which ``(node, param)`` obligations have been met so far, so
    ``instance="all"`` waits complete exactly when the last missing
    combination arrives.
    """

    def __init__(self, pattern: EventPattern, signal: "SimEvent") -> None:
        self.pattern = pattern
        self.signal = signal
        self._seen: Set[Tuple[Any, Any]] = set()
        self.satisfied_by: List[ExEvent] = []

    # ------------------------------------------------------------------
    def offer(self, event: ExEvent) -> bool:
        """Feed one event; returns True when the wait has just completed."""
        if self.signal.triggered:
            return False
        pat = self.pattern
        if not pat.matches(event):
            return False
        matched_param = pat._param_matches(event)
        node_key = event.node if pat.require_all_nodes else "*"
        param_key = matched_param if pat.require_all_params else "*"
        self._seen.add((node_key, param_key))
        self.satisfied_by.append(event)
        if self._complete():
            self.signal.trigger(self.satisfied_by[-1])
            return True
        return False

    def _complete(self) -> bool:
        pat = self.pattern
        need_nodes: Set[Any] = set(pat.nodes) if (pat.require_all_nodes and pat.nodes) else {"*"}
        need_params: Set[Any] = set(pat.params) if (pat.require_all_params and pat.params) else {"*"}
        for n in need_nodes:
            for p in need_params:
                if (n, p) not in self._seen:
                    return False
        return True


class EventBus:
    """The master's central event registry.

    Every event any node generates flows through here.  The bus keeps the
    full ordered log (the conditioning stage later persists the per-node
    copies; the bus log drives flow control and analyses) and notifies
    blocked watchers synchronously at registration.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._log: List[ExEvent] = []
        self._watchers: List[Watcher] = []
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, event: ExEvent) -> ExEvent:
        """Assign a receipt sequence, log, and wake matching watchers."""
        stamped = event.with_seq(next(self._seq))
        self._log.append(stamped)
        done: List[Watcher] = []
        for watcher in self._watchers:
            if watcher.offer(stamped):
                done.append(watcher)
        for watcher in done:
            self._watchers.remove(watcher)
        return stamped

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------
    def marker(self) -> int:
        """Current bus position for ``wait_marker`` (Sec. IV-C2)."""
        return self._log[-1].seq if self._log else -1

    def watch(self, pattern: EventPattern) -> "SimEvent":
        """Return a sim event that fires when *pattern* is satisfied.

        Events already in the log (after the pattern's marker) count, so a
        waiter can never miss an event that raced ahead of it.
        """
        signal = self.sim.event(name=f"wait:{pattern.name}")
        watcher = Watcher(pattern, signal)
        for event in self._log:
            if watcher.offer(event):
                return signal
        self._watchers.append(watcher)
        return signal

    def cancel(self, signal: "SimEvent") -> None:
        """Forget the watcher bound to *signal* (timeout path)."""
        self._watchers = [w for w in self._watchers if w.signal is not signal]

    # ------------------------------------------------------------------
    # Introspection / analysis
    # ------------------------------------------------------------------
    @property
    def log(self) -> List[ExEvent]:
        return self._log

    def events_named(self, name: str, run_id: Optional[int] = None) -> List[ExEvent]:
        return [
            e
            for e in self._log
            if e.name == name and (run_id is None or e.run_id == run_id)
        ]

    def clear(self) -> None:
        """Reset the bus between experiments (not between runs — the full
        log is an experiment-level artefact)."""
        self._log.clear()
        self._watchers.clear()
        self._seq = itertools.count()

    def pending_watchers(self) -> int:
        return len(self._watchers)
