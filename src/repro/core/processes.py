"""Process descriptions: action sequences with flow control.

Sec. IV-C2: *"Every process is described as a sequence of actions.
Processes run concurrently on the nodes so to specify this sequence, one
needs to consider timing and desired or necessary dependencies."*

The description-level AST defined here is **abstract**: values may be
literals or :class:`FactorRef` references resolved per run against the
treatment; locations may be :class:`NodeSelector` expressions resolved
against the actor-to-node mapping of the current run.

Flow-control nodes (the four functions of Sec. IV-C2):

``WaitForTime``   — fixed delay in seconds.
``WaitForEvent``  — block until an event matching the dependency is
                    registered on the master; optional timeout.
``WaitMarker``    — remember the current bus position; the *next*
                    ``WaitForEvent`` only considers later events.
``EventFlag``     — emit a local event (lets actions depend directly on
                    each other).

Everything else is a :class:`DomainAction` — an opaque named action with
parameters, dispatched through the action registry
(:mod:`repro.core.actions`) to the owning node, the environment, or a
manipulation target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.errors import DescriptionError

__all__ = [
    "FactorRef",
    "NodeSelector",
    "Value",
    "ActionNode",
    "WaitForTime",
    "WaitForEvent",
    "WaitMarker",
    "EventFlag",
    "DomainAction",
    "ActionSequence",
    "resolve_value",
]


@dataclass(frozen=True)
class FactorRef:
    """A reference to a factor, resolved per run from the treatment.

    Appears in the XML as ``<factorref id="fact_bw"/>`` (Figs. 5, 7).
    """

    factor_id: str


@dataclass(frozen=True)
class NodeSelector:
    """A location expression: a single abstract node or an actor subset.

    ``<node actor="actor0" instance="all"/>`` selects every instance of
    ``actor0``; ``instance="2"`` one specific instance;
    ``<node id="A"/>`` one specific abstract node.
    """

    actor: Optional[str] = None
    instance: str = "all"
    node_id: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.actor is None) == (self.node_id is None):
            raise DescriptionError(
                "node selector needs exactly one of actor=... or node_id=..."
            )

    @property
    def wants_all_instances(self) -> bool:
        return self.actor is not None and self.instance == "all"


#: Things allowed as action parameter values in the description.
Value = Union[str, int, float, bool, None, FactorRef, NodeSelector]


def resolve_value(value: Value, treatment: Dict[str, Any]) -> Any:
    """Resolve *value* against a run's treatment.

    ``FactorRef`` values become the factor's current level;
    ``NodeSelector`` values pass through (the action dispatcher resolves
    them, since it knows the actor mapping); literals pass through.
    """
    if isinstance(value, FactorRef):
        try:
            return treatment[value.factor_id]
        except KeyError:
            raise DescriptionError(
                f"factorref to unknown factor {value.factor_id!r}"
            ) from None
    return value


class ActionNode:
    """Base class of all description-level actions."""

    #: Tag used in the XML representation; subclasses override.
    xml_tag = ""


@dataclass
class WaitForTime(ActionNode):
    """``wait_for_time`` — wait a fixed delay in seconds."""

    xml_tag = "wait_for_time"
    seconds: Value = 0.0

    def __post_init__(self) -> None:
        if isinstance(self.seconds, (int, float)) and self.seconds < 0:
            raise DescriptionError(f"wait_for_time: negative delay {self.seconds}")


@dataclass
class WaitForEvent(ActionNode):
    """``wait_for_event`` — block until a matching event is registered.

    Attributes
    ----------
    event:
        Event name (``event_dependency``).
    from_nodes:
        Optional location dependency (``from_dependency``).
    param_nodes:
        Optional parameter dependency given as a node selector — the
        matching events' parameters must cover the selected nodes'
        identities (``param_dependency``), as in Fig. 10.
    param_values:
        Optional parameter dependency given as literal values.
    timeout:
        Optional timeout in seconds (literal or factor reference).  On
        expiry the wait completes unsuccessfully; execution continues
        (Fig. 10 relies on this to implement the 30 s deadline).
    """

    xml_tag = "wait_for_event"
    event: str = ""
    from_nodes: Optional[NodeSelector] = None
    param_nodes: Optional[NodeSelector] = None
    param_values: Optional[Tuple[Any, ...]] = None
    timeout: Optional[Value] = None

    def __post_init__(self) -> None:
        if not self.event:
            raise DescriptionError("wait_for_event: missing event_dependency")
        if self.param_nodes is not None and self.param_values is not None:
            raise DescriptionError(
                "wait_for_event: param dependency is either nodes or values, not both"
            )


@dataclass
class WaitMarker(ActionNode):
    """``wait_marker`` — only events after this point satisfy the next wait."""

    xml_tag = "wait_marker"


@dataclass
class EventFlag(ActionNode):
    """``event_flag`` — emit a local event named *value*."""

    xml_tag = "event_flag"
    value: str = ""
    params: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if not self.value:
            raise DescriptionError("event_flag: missing value")


@dataclass
class DomainAction(ActionNode):
    """Any non-flow-control action: process, fault or environment action.

    The ``name`` selects the implementation through the action registry;
    ``params`` map parameter names to literals, factor references or node
    selectors.
    """

    name: str = ""
    params: Dict[str, Value] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise DescriptionError("domain action: missing name")

    @property
    def xml_tag_name(self) -> str:
        return self.name


#: A process body.
ActionSequence = List[ActionNode]
