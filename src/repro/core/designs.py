"""Classic experiment designs as custom treatment plans (Sec. II-A2/3).

The paper grounds ExCovery in design-of-experiments practice: treatment
design, error control design (replication, blocking, randomization) and
sampling design, citing Dean/Voss and Montgomery.  The default plan is
OFAT; this module generates the *custom factor level variation plans*
(Sec. IV-C1) for the standard error-control designs, to be passed as
``generate_plan(..., custom_treatments=...)``:

:func:`completely_randomized_design`
    All treatment applications in fully random order — "an experiment
    design is called completely randomized when all treatment factors can
    be randomized" (Sec. II-A3).  Note this randomizes the *temporal
    order* of runs, so it returns per-run treatments with replication
    handled internally (use ``replication_count=1`` in the factor list).
:func:`randomized_complete_block_design`
    One block per level of a blocking factor; within each block, every
    combination of the remaining factors appears once, in seeded random
    order — "partitioning observations into groups ... collected under
    similar experimental conditions".
:func:`latin_square_design`
    Two blocking factors with k levels each and one treatment factor with
    k levels: each treatment level appears exactly once per row and per
    column.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List

from repro.core.errors import PlanError
from repro.core.factors import FactorList
from repro.sim.rng import RngRegistry

__all__ = [
    "completely_randomized_design",
    "randomized_complete_block_design",
    "latin_square_design",
]


def _grid(factor_list: FactorList) -> List[Dict[str, Any]]:
    factors = list(factor_list)
    combos = itertools.product(*(f.level_values for f in factors))
    return [
        {f.id: value for f, value in zip(factors, combo)} for combo in combos
    ]


def completely_randomized_design(
    factor_list: FactorList,
    seed: int,
    replications: int = 1,
) -> List[Dict[str, Any]]:
    """Every treatment x replication, in one fully randomized order.

    The returned list is a custom plan: pass it to ``generate_plan`` with
    the factor list's own replication count set to 1, since the
    randomization here already covers replication placement (otherwise
    replications would again be contiguous, defeating the design).
    """
    if replications < 1:
        raise PlanError(f"replications must be >= 1, got {replications}")
    treatments = _grid(factor_list) * replications
    rng = RngRegistry(seed).fresh("design", "crd")
    rng.shuffle(treatments)
    return treatments


def randomized_complete_block_design(
    factor_list: FactorList,
    blocking_factor_id: str,
    seed: int,
) -> List[Dict[str, Any]]:
    """Blocks by the given factor; within-block order randomized.

    The blocking factor's levels are visited in declared order (blocks
    are usually physical: a day, a node set, a channel); all combinations
    of the *other* factors run once per block, shuffled per block.
    """
    blocking = factor_list.get(blocking_factor_id)
    others = [f for f in factor_list if f.id != blocking_factor_id]
    if not others:
        raise PlanError("a blocked design needs at least one treatment factor")
    rngs = RngRegistry(seed)
    plan: List[Dict[str, Any]] = []
    for block_idx, block_level in enumerate(blocking.level_values):
        combos = [
            {f.id: value for f, value in zip(others, combo)}
            for combo in itertools.product(*(f.level_values for f in others))
        ]
        rngs.fresh("design", "rcbd", block_idx).shuffle(combos)
        for combo in combos:
            treatment = dict(combo)
            treatment[blocking_factor_id] = block_level
            plan.append(treatment)
    return plan


def latin_square_design(
    factor_list: FactorList,
    row_factor_id: str,
    col_factor_id: str,
    treatment_factor_id: str,
    seed: int,
) -> List[Dict[str, Any]]:
    """A k x k Latin square over two blocking factors.

    All three factors must have the same number of levels k.  The square
    is drawn from the cyclic square by independently permuting rows,
    columns and symbols (the standard randomization), seeded.
    """
    row = factor_list.get(row_factor_id)
    col = factor_list.get(col_factor_id)
    trt = factor_list.get(treatment_factor_id)
    k = len(row.levels)
    if not (len(col.levels) == len(trt.levels) == k):
        raise PlanError(
            "latin square needs equal level counts: "
            f"{row_factor_id}={len(row.levels)}, {col_factor_id}={len(col.levels)}, "
            f"{treatment_factor_id}={len(trt.levels)}"
        )
    rngs = RngRegistry(seed)
    row_perm = list(range(k))
    col_perm = list(range(k))
    sym_perm = list(range(k))
    rngs.fresh("design", "ls", "rows").shuffle(row_perm)
    rngs.fresh("design", "ls", "cols").shuffle(col_perm)
    rngs.fresh("design", "ls", "syms").shuffle(sym_perm)

    plan: List[Dict[str, Any]] = []
    other = [
        f for f in factor_list
        if f.id not in (row_factor_id, col_factor_id, treatment_factor_id)
    ]
    for f in other:
        if len(f.levels) != 1:
            raise PlanError(
                f"latin square: extra factor {f.id!r} must be held constant "
                "(single level)"
            )
    constants = {f.id: f.level_values[0] for f in other}
    for i in range(k):
        for j in range(k):
            symbol = sym_perm[(row_perm[i] + col_perm[j]) % k]
            treatment = dict(constants)
            treatment[row_factor_id] = row.level_values[i]
            treatment[col_factor_id] = col.level_values[j]
            treatment[treatment_factor_id] = trt.level_values[symbol]
            plan.append(treatment)
    return plan
