"""Topology measurement (Sec. IV-B4).

*"To improve repeatability, a rudimentary description of the network
topology is measured as hop count between the participating nodes.  This
measurement is done before and after executing an experiment."*

The paper's prototype traceroutes between nodes; here the platform exposes
its connectivity and we compute hop counts from it.  The *advanced
topology recording* the paper anticipates for future versions is also
implemented: a full adjacency snapshot with link-quality attributes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["measure_hop_counts", "snapshot_topology", "compare_snapshots"]


def measure_hop_counts(topology, node_names: List[str]) -> Dict[str, Optional[int]]:
    """Hop counts between all ordered pairs of *node_names*.

    Keys are ``"src->dst"`` strings (storage friendly); unreachable pairs
    map to ``None``.
    """
    matrix = topology.hop_count_matrix(node_names)
    return {f"{a}->{b}": hops for (a, b), hops in sorted(matrix.items())}


def snapshot_topology(topology) -> Dict[str, Any]:
    """Full adjacency snapshot (the paper's anticipated advanced recording).

    Returns nodes, edges and per-edge quality attributes in a
    serialization-friendly structure.
    """
    edges = []
    for a, b, attrs in sorted(topology.graph.edges(data=True)):
        edges.append(
            {
                "a": a,
                "b": b,
                "base_loss": float(attrs.get("base_loss", 0.0)),
                "base_delay": float(attrs.get("base_delay", 0.0)),
            }
        )
    return {"nodes": list(topology.node_names), "edges": edges}


def compare_snapshots(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """Diff two snapshots — did the mesh change under the experiment?

    A non-empty diff flags the run series for careful interpretation
    (uncontrollable nuisance factor recorded, per Sec. II-A1).
    """
    b_edges = {(e["a"], e["b"]) for e in before["edges"]}
    a_edges = {(e["a"], e["b"]) for e in after["edges"]}
    return {
        "nodes_added": sorted(set(after["nodes"]) - set(before["nodes"])),
        "nodes_removed": sorted(set(before["nodes"]) - set(after["nodes"])),
        "links_added": sorted(a_edges - b_edges),
        "links_removed": sorted(b_edges - a_edges),
        "stable": b_edges == a_edges and set(before["nodes"]) == set(after["nodes"]),
    }
