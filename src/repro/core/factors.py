"""Factors, levels and replication — the treatment side of the description.

Terminology follows Sec. II-A and the description elements of Sec. IV-C:

* A **factor** has an ``id``, a value ``type`` and a ``usage`` and holds a
  **set of levels** to be applied during the experiment.
* Usages seen in the paper's listings (Fig. 5):

  - ``blocking`` — a controllable nuisance factor fixed per block; varied
    slowest of all (outermost position in the OFAT nesting).
  - ``constant`` — a held-constant *series*: each level is held constant
    over a contiguous stretch of runs (OFAT order).
  - ``random`` — a design factor whose level order is randomized (from the
    experiment seed) on every cycle through its levels.
  - ``replication`` — the integer replication count (it is declared as a
    ``<replicationfactor>``, not an ordinary factor).

* The special type ``actor_node_map`` assigns abstract nodes to actor
  roles — its levels are mappings ``actor id -> instance id -> abstract
  node`` (Fig. 5's ``fact_nodes``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.core.errors import DescriptionError

__all__ = [
    "Usage",
    "ActorNodeMap",
    "Level",
    "Factor",
    "ReplicationFactor",
    "FactorList",
    "coerce_value",
]


class Usage(enum.Enum):
    """How a factor's levels are applied over the run sequence."""

    BLOCKING = "blocking"
    CONSTANT = "constant"
    RANDOM = "random"
    REPLICATION = "replication"

    @classmethod
    def parse(cls, text: str) -> "Usage":
        try:
            return cls(text.strip().lower())
        except ValueError:
            valid = ", ".join(u.value for u in cls)
            raise DescriptionError(f"unknown factor usage {text!r} (expected one of {valid})")


#: An actor-to-node assignment: ``{actor_id: {instance_id: abstract_node}}``.
ActorNodeMap = Dict[str, Dict[str, str]]

_SCALAR_TYPES = {"int", "float", "str", "bool"}
_ALL_TYPES = _SCALAR_TYPES | {"actor_node_map"}


def coerce_value(type_name: str, raw: Any) -> Any:
    """Coerce a raw (often textual) level value to the factor's type."""
    if type_name == "actor_node_map":
        if not isinstance(raw, dict):
            raise DescriptionError(f"actor_node_map level must be a mapping, got {raw!r}")
        return {
            str(actor): {str(inst): str(node) for inst, node in instances.items()}
            for actor, instances in raw.items()
        }
    if isinstance(raw, str):
        raw = raw.strip().strip('"')
    try:
        if type_name == "int":
            return int(raw)
        if type_name == "float":
            return float(raw)
        if type_name == "bool":
            if isinstance(raw, bool):
                return raw
            return str(raw).strip().lower() in {"1", "true", "yes"}
        if type_name == "str":
            return str(raw)
    except (TypeError, ValueError) as exc:
        raise DescriptionError(f"cannot coerce {raw!r} to {type_name}: {exc}") from exc
    raise DescriptionError(f"unknown factor type {type_name!r}")


@dataclass(frozen=True)
class Level:
    """One concrete value a factor can take."""

    value: Any

    def __repr__(self) -> str:  # pragma: no cover
        return f"Level({self.value!r})"


@dataclass
class Factor:
    """A treatment factor with its set of levels.

    Order of ``levels`` is meaningful: for OFAT-style usages it is the
    application order; for ``random`` it is the canonical order that the
    seeded shuffle permutes.
    """

    id: str
    type: str
    usage: Usage
    levels: List[Level] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        if self.type not in _ALL_TYPES:
            raise DescriptionError(
                f"factor {self.id!r}: unknown type {self.type!r} "
                f"(expected one of {sorted(_ALL_TYPES)})"
            )
        if not self.id:
            raise DescriptionError("factor id must be non-empty")

    @property
    def level_values(self) -> List[Any]:
        return [lv.value for lv in self.levels]

    def coerced(self) -> "Factor":
        """Return a copy with every level value coerced to ``self.type``."""
        return Factor(
            id=self.id,
            type=self.type,
            usage=self.usage,
            levels=[Level(coerce_value(self.type, lv.value)) for lv in self.levels],
            description=self.description,
        )

    def is_constant(self) -> bool:
        """Single-level factors are constant regardless of declared usage."""
        return len(self.levels) == 1


@dataclass
class ReplicationFactor:
    """The replication count (Sec. IV-C: *Replication factor*)."""

    id: str = "fact_replication_id"
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise DescriptionError(f"replication count must be >= 1, got {self.count}")


class FactorList:
    """The ordered list of all factors (Sec. IV-C: *List of factors*).

    *"In an OFAT design the first factor varies least often during
    execution while the last factor changes every run."*
    """

    def __init__(
        self,
        factors: Optional[List[Factor]] = None,
        replication: Optional[ReplicationFactor] = None,
    ) -> None:
        self._factors: List[Factor] = []
        self._by_id: Dict[str, Factor] = {}
        self.replication = replication or ReplicationFactor()
        for factor in factors or []:
            self.add(factor)

    def add(self, factor: Factor) -> None:
        if factor.id in self._by_id or factor.id == self.replication.id:
            raise DescriptionError(f"duplicate factor id {factor.id!r}")
        if not factor.levels:
            raise DescriptionError(f"factor {factor.id!r} has an empty level set")
        self._factors.append(factor)
        self._by_id[factor.id] = factor

    def __iter__(self) -> Iterator[Factor]:
        return iter(self._factors)

    def __len__(self) -> int:
        return len(self._factors)

    def __contains__(self, factor_id: str) -> bool:
        return factor_id in self._by_id or factor_id == self.replication.id

    def get(self, factor_id: str) -> Factor:
        try:
            return self._by_id[factor_id]
        except KeyError:
            raise DescriptionError(f"unknown factor {factor_id!r}") from None

    @property
    def factors(self) -> List[Factor]:
        return list(self._factors)

    def actor_map_factor(self) -> Optional[Factor]:
        """The (at most one) factor of type ``actor_node_map``."""
        maps = [f for f in self._factors if f.type == "actor_node_map"]
        if len(maps) > 1:
            raise DescriptionError("at most one actor_node_map factor is allowed")
        return maps[0] if maps else None

    def treatment_count(self) -> int:
        """Number of distinct treatments (product of level counts)."""
        count = 1
        for factor in self._factors:
            count *= len(factor.levels)
        return count

    def total_runs(self) -> int:
        return self.treatment_count() * self.replication.count

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FactorList {len(self._factors)} factors, "
            f"{self.treatment_count()} treatments x {self.replication.count} replications>"
        )
