"""Special parameters (Sec. IV-E).

*"An experimenter can define a list of special parameters in the
description file that can be used within the experimentation environment
to expose specific parameters used in the implementation to the
description file."*

This module defines the parameters the reproduction's implementation
understands, their types and defaults, and a typed accessor.  Unknown
special parameters are allowed (platform-specific extensions may consume
them) — validation only warns about them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = ["SPECIAL_PARAM_DEFS", "SpecialParams", "ParamDef"]


@dataclass(frozen=True)
class ParamDef:
    """Definition of one special parameter."""

    key: str
    type: type
    default: Any
    doc: str


SPECIAL_PARAM_DEFS: Dict[str, ParamDef] = {
    p.key: p
    for p in [
        ParamDef(
            "max_run_duration", float, 120.0,
            "Backstop timeout in seconds after which the master aborts a "
            "run's processes and proceeds to clean-up.",
        ),
        ParamDef(
            "run_settle_time", float, 0.25,
            "Preparation settle delay per run, letting in-flight packets "
            "of the previous run drain ('network packets generated in "
            "previous runs must be dropped on all participants').",
        ),
        ParamDef(
            "sync_probes", int, 5,
            "Clock-offset probes per node per run (Sec. IV-B3); the "
            "minimum-RTT probe wins.",
        ),
        ParamDef(
            "rpc_latency", float, 0.0005,
            "One-way control channel latency in seconds.",
        ),
        ParamDef(
            "rpc_jitter", float, 0.0002,
            "Uniform extra control-channel latency in seconds.",
        ),
        ParamDef(
            "rpc_timeout", float, 30.0,
            "Per-call control-channel deadline in seconds; 0 disables "
            "deadlines (and retries) entirely.",
        ),
        ParamDef(
            "rpc_max_attempts", int, 3,
            "Attempt budget per idempotent RPC (1 = no retries); timed "
            "out attempts back off exponentially with seeded jitter.",
        ),
        ParamDef(
            "heartbeat_interval", float, 0.0,
            "Seconds between node liveness probe rounds; 0 disables the "
            "heartbeat monitor (the default: probes consume control-"
            "channel jitter draws, so they are opt-in per description).",
        ),
        ParamDef(
            "heartbeat_timeout", float, 0.25,
            "Deadline of one heartbeat probe, seconds (never retried).",
        ),
        ParamDef(
            "heartbeat_suspect_after", int, 2,
            "Consecutive missed probes before a node is marked suspect.",
        ),
        ParamDef(
            "heartbeat_dead_after", int, 4,
            "Consecutive missed probes before a suspect node is declared "
            "dead.",
        ),
        ParamDef(
            "prep_deadline", float, 0.0,
            "Watchdog wall-clock (kernel time) budget for a run's "
            "preparation phase, seconds; 0 disables.",
        ),
        ParamDef(
            "exec_deadline", float, 0.0,
            "Watchdog budget for a run's execution phase, seconds; 0 "
            "disables (max_run_duration still backstops actors).",
        ),
        ParamDef(
            "cleanup_deadline", float, 0.0,
            "Watchdog budget for a run's clean-up phase, seconds; 0 "
            "disables.",
        ),
        ParamDef(
            "service_type", str, "_exp._udp",
            "Service type used by the SD case-study actions when an "
            "action does not name one explicitly.",
        ),
        ParamDef(
            "run_spacing", float, 0.5,
            "Idle time between consecutive runs, seconds.",
        ),
        ParamDef(
            "sd_registry_nodes", str, "",
            "Registry family: whitespace/comma separated abstract or "
            "platform node ids hosting registry replicas, in replica "
            "order (the 'replicas' sd_init parameter activates a "
            "prefix of this list).",
        ),
        ParamDef(
            "sd_broker_nodes", str, "",
            "Registry family: node ids (abstract or platform) hosting "
            "broker relays for the 'broker' dissemination mode.",
        ),
        ParamDef(
            "sd_dissemination", str, "",
            "Registry family: how clients learn records — 'direct' "
            "(poll the registry) or 'broker' (subscribe at a relay).  "
            "Empty keeps the agent default.",
        ),
        ParamDef(
            "collect_packets", bool, True,
            "Whether packet captures are collected into storage (large).",
        ),
        ParamDef(
            "max_parallel", int, 0,
            "Upper bound on concurrently executing runs when the campaign "
            "engine drives the experiment (0 = no description-imposed "
            "bound; the effective worker count is min(--jobs, this)).  "
            "Descriptions whose platform cannot host isolated concurrent "
            "instances declare 1 here.",
        ),
    ]
}


class SpecialParams:
    """Typed accessor over a description's ``special_params`` mapping."""

    def __init__(self, raw: Optional[Dict[str, Any]] = None) -> None:
        self._raw = dict(raw or {})

    def get(self, key: str) -> Any:
        """Value of *key*, coerced to its declared type, or its default.

        Unknown keys return the raw value (``None`` if absent).
        """
        definition = SPECIAL_PARAM_DEFS.get(key)
        if definition is None:
            return self._raw.get(key)
        if key not in self._raw:
            return definition.default
        value = self._raw[key]
        if definition.type is bool and isinstance(value, str):
            return value.strip().lower() in {"1", "true", "yes"}
        try:
            return definition.type(value)
        except (TypeError, ValueError):
            return definition.default

    def unknown_keys(self):
        """Keys present in the description but not defined here."""
        return sorted(k for k in self._raw if k not in SPECIAL_PARAM_DEFS)

    def as_dict(self) -> Dict[str, Any]:
        out = {key: self.get(key) for key in SPECIAL_PARAM_DEFS}
        for key in self.unknown_keys():
            out[key] = self._raw[key]
        return out
