"""Node liveness: the master's heartbeat protocol (DESIGN.md §10).

The paper's master "maintains a list of objects corresponding to the
active nodes in the experiment" (Sec. VI-A) but its prototype trusted the
testbed's management network; a wedged NodeManager silently stalled the
series.  Here the master probes every NodeManager with a periodic
``heartbeat`` RPC and classifies nodes through a small state machine:

``alive → suspect → dead → quarantined``

* ``suspect`` after ``suspect_after`` *consecutive* missed probes,
* ``dead`` after ``dead_after`` consecutive misses,
* one successful probe resurrects a suspect/dead node to ``alive``,
* a node that died ``quarantine_after`` times is ``quarantined`` —
  terminal; the monitor stops probing it and the campaign engine stops
  scheduling work near it.

:class:`NodeHealth` is the pure state machine (unit-testable without a
kernel); :class:`HeartbeatMonitor` is the simulation process driving it
over the control channel.  Probes run with a short deadline and *no*
retries — a liveness check that retried would hide exactly the misses it
exists to observe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from repro.core.errors import RpcError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.rpc import ControlChannel
    from repro.sim.kernel import Simulator

__all__ = ["HeartbeatConfig", "NodeHealth", "HeartbeatMonitor", "LivenessTracker",
           "ALIVE", "SUSPECT", "DEAD", "QUARANTINED"]

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"
QUARANTINED = "quarantined"


@dataclass(frozen=True)
class HeartbeatConfig:
    """Thresholds of the liveness protocol."""

    #: Seconds between probe rounds.
    interval: float = 1.0
    #: Per-probe deadline, seconds.
    timeout: float = 0.25
    #: Consecutive misses before a node becomes suspect.
    suspect_after: int = 2
    #: Consecutive misses before a suspect node is declared dead.
    dead_after: int = 4
    #: Deaths before a node is permanently quarantined.
    quarantine_after: int = 2


class NodeHealth:
    """Liveness state of one node (pure, kernel-free)."""

    def __init__(self, node_id: str, config: Optional[HeartbeatConfig] = None) -> None:
        self.node_id = node_id
        self.config = config or HeartbeatConfig()
        self.state = ALIVE
        self.probes = 0
        self.misses = 0
        self.consecutive_misses = 0
        self.deaths = 0
        #: Every ``(old_state, new_state)`` transition, in order.
        self.transitions: List[Tuple[str, str]] = []

    def _move(self, new_state: str) -> Tuple[str, str]:
        old, self.state = self.state, new_state
        self.transitions.append((old, new_state))
        return (old, new_state)

    def record_success(self) -> Optional[Tuple[str, str]]:
        """A probe was answered; returns the transition if one occurred."""
        self.probes += 1
        self.consecutive_misses = 0
        if self.state in (SUSPECT, DEAD):
            return self._move(ALIVE)
        return None

    def record_miss(self) -> Optional[Tuple[str, str]]:
        """A probe went unanswered; returns the transition, if any."""
        if self.state == QUARANTINED:
            return None
        self.probes += 1
        self.misses += 1
        self.consecutive_misses += 1
        cfg = self.config
        if self.state == ALIVE and self.consecutive_misses >= cfg.suspect_after:
            return self._move(SUSPECT)
        if self.state == SUSPECT and self.consecutive_misses >= cfg.dead_after:
            self.deaths += 1
            if self.deaths >= cfg.quarantine_after:
                self._move(DEAD)
                return self._move(QUARANTINED)
            return self._move(DEAD)
        return None

    def quarantine(self) -> Optional[Tuple[str, str]]:
        """Force the terminal state (external policy decision)."""
        if self.state == QUARANTINED:
            return None
        return self._move(QUARANTINED)

    def as_record(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "probes": self.probes,
            "misses": self.misses,
            "deaths": self.deaths,
        }


class LivenessTracker:
    """Passive, wall-clock liveness over :class:`NodeHealth` machines.

    The in-simulation :class:`HeartbeatMonitor` *probes* nodes; the fabric
    coordinator cannot (workers sit behind NAT-ish client sockets), so it
    observes instead: every worker heartbeat is a :meth:`beat`, and a
    periodic :meth:`sweep` converts silent intervals into the same
    consecutive-miss bookkeeping the probing monitor would have recorded.
    One state machine, two drivers — the ``alive → suspect → dead →
    quarantined`` thresholds of :class:`HeartbeatConfig` mean the same
    thing on a simulated testbed and on a real worker fleet.

    Not thread-safe by itself; the coordinator serializes access under its
    dispatch lock.
    """

    def __init__(
        self,
        config: Optional[HeartbeatConfig] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.config = config or HeartbeatConfig()
        self.clock = clock
        self.health: Dict[str, NodeHealth] = {}
        #: Per node: the wall-clock instant up to which silence has
        #: already been charged as misses (advanced by beat and sweep).
        self._accounted: Dict[str, float] = {}

    def watch(self, node_id: str) -> NodeHealth:
        """Start (or continue) tracking *node_id*; idempotent."""
        health = self.health.get(node_id)
        if health is None:
            health = self.health[node_id] = NodeHealth(node_id, self.config)
            self._accounted[node_id] = self.clock()
        return health

    def forget(self, node_id: str) -> None:
        self.health.pop(node_id, None)
        self._accounted.pop(node_id, None)

    def beat(self, node_id: str) -> Optional[Tuple[str, str]]:
        """One heartbeat arrived; returns the state transition, if any."""
        health = self.watch(node_id)
        self._accounted[node_id] = self.clock()
        return health.record_success()

    def sweep(self, now: Optional[float] = None) -> List[Tuple[str, str, str]]:
        """Charge elapsed silence as missed probes; return transitions.

        Each full ``interval`` of silence beyond the last accounted
        instant counts as one consecutive miss, exactly as if a probe had
        gone unanswered.  Returns ``[(node_id, old_state, new_state)]``
        for every transition this sweep caused.
        """
        now = self.clock() if now is None else now
        transitions: List[Tuple[str, str, str]] = []
        for node_id in sorted(self.health):
            health = self.health[node_id]
            if health.state == QUARANTINED:
                continue
            missed = int((now - self._accounted[node_id]) / self.config.interval)
            for _ in range(missed):
                moved = health.record_miss()
                if moved is not None:
                    transitions.append((node_id, moved[0], moved[1]))
            if missed > 0:
                self._accounted[node_id] += missed * self.config.interval
        return transitions

    def quarantine(self, node_id: str) -> Optional[Tuple[str, str]]:
        """Force-quarantine (policy decision outside the miss counting)."""
        return self.watch(node_id).quarantine()

    def states(self) -> Dict[str, str]:
        return {node_id: h.state for node_id, h in self.health.items()}


class HeartbeatMonitor:
    """Periodic liveness probing of every node, as a kernel process.

    Parameters
    ----------
    sim, channel:
        The kernel and the control channel to probe over.
    node_ids:
        Nodes to watch.
    config:
        Thresholds (:class:`HeartbeatConfig`).
    on_transition:
        Optional ``(node_id, old_state, new_state)`` callback — the
        master emits ``node_suspect`` / ``node_dead`` / ``node_alive``
        events from it.
    """

    def __init__(
        self,
        sim: "Simulator",
        channel: "ControlChannel",
        node_ids: Iterable[str],
        config: Optional[HeartbeatConfig] = None,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.config = config or HeartbeatConfig()
        self.on_transition = on_transition
        self.health: Dict[str, NodeHealth] = {
            node_id: NodeHealth(node_id, self.config) for node_id in node_ids
        }
        self._seq = 0
        self._proc = None
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._proc is None or not self._proc.alive:
            self._stopped = False
            self._proc = self.sim.process(self._run(), name="heartbeat-monitor")

    def stop(self) -> None:
        self._stopped = True
        if self._proc is not None and self._proc.alive:
            self._proc.interrupt("monitor-stop")
        self._proc = None

    @property
    def running(self) -> bool:
        return self._proc is not None and self._proc.alive

    # ------------------------------------------------------------------
    def _run(self):
        while not self._stopped:
            for node_id in sorted(self.health):
                if self._stopped:
                    return
                health = self.health[node_id]
                if health.state == QUARANTINED:
                    continue
                self._seq += 1
                seq = self._seq
                try:
                    reply = yield from self.channel.call(
                        node_id, "heartbeat", seq, timeout=self.config.timeout, retry=False
                    )
                except RpcError:
                    self._note(health, health.record_miss())
                else:
                    ok = isinstance(reply, dict) and reply.get("seq") == seq
                    if ok:
                        self._note(health, health.record_success())
                    else:
                        self._note(health, health.record_miss())
            yield self.sim.timeout(self.config.interval)

    def _note(self, health: NodeHealth, transition) -> None:
        if transition is not None and self.on_transition is not None:
            self.on_transition(health.node_id, transition[0], transition[1])

    # ------------------------------------------------------------------
    def states(self) -> Dict[str, str]:
        return {node_id: h.state for node_id, h in self.health.items()}

    def summary(self) -> Dict[str, Dict[str, Any]]:
        return {node_id: h.as_record() for node_id, h in sorted(self.health.items())}
