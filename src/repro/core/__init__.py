"""The ExCovery experimentation environment — the paper's contribution.

Layout mirrors Sec. IV of the paper:

=====================  =====================================================
Module                 Paper section
=====================  =====================================================
``description``        IV-C  abstract experiment description
``factors``            IV-C  factors, levels, replication
``plan``               IV-C1 treatment plan generation (OFAT / randomized)
``processes``          IV-C2 process descriptions & flow control
``actions``            IV-C2/V action registry (node / environment / flow)
``xmlio``              IV-C  XML notation of the description
``validation``         IV    automatic checking of descriptions
``events``             IV-B1 event model, event bus, dependency matching
``rpc``                VI-A  XML-RPC control channel, per-node locking
``nodemanager``        VI-A  the controlled entity on each node
``master``             VI-A  ExperiMaster, the controlling entity
``runner``             IV-C1 run lifecycle: preparation/execution/clean-up
``recovery``           VII   resuming aborted experiment series
``timesync``           IV-B3 per-run clock offset measurement
``topomeasure``        IV-B4 hop-count topology snapshots
``plugins``            IV-B  custom measurement plugins
``params``             IV-E  special parameters exposed to the EE
=====================  =====================================================
"""

from repro.core.designs import (
    completely_randomized_design,
    latin_square_design,
    randomized_complete_block_design,
)
from repro.core.description import (
    ActorDescription,
    EnvironmentProcess,
    ExperimentDescription,
    ManipulationProcess,
    PlatformNode,
    PlatformSpec,
)
from repro.core.events import EventBus, EventPattern, ExEvent
from repro.core.factors import ActorNodeMap, Factor, FactorList, Level, Usage
from repro.core.master import ExperiMaster, ExperimentResult
from repro.core.plan import Run, TreatmentPlan, generate_plan
from repro.core.processes import (
    DomainAction,
    EventFlag,
    FactorRef,
    NodeSelector,
    WaitForEvent,
    WaitForTime,
    WaitMarker,
)
from repro.core.xmlio import description_from_xml, description_to_xml

__all__ = [
    "ActorDescription",
    "ActorNodeMap",
    "DomainAction",
    "EnvironmentProcess",
    "EventBus",
    "EventFlag",
    "EventPattern",
    "ExEvent",
    "ExperiMaster",
    "ExperimentDescription",
    "ExperimentResult",
    "Factor",
    "FactorList",
    "FactorRef",
    "Level",
    "ManipulationProcess",
    "NodeSelector",
    "PlatformNode",
    "PlatformSpec",
    "Run",
    "TreatmentPlan",
    "Usage",
    "WaitForEvent",
    "WaitForTime",
    "WaitMarker",
    "completely_randomized_design",
    "description_from_xml",
    "description_to_xml",
    "generate_plan",
    "latin_square_design",
    "randomized_complete_block_design",
]
