"""The XML-RPC control channel between master and nodes.

Sec. VI-A: *"Master and nodes are connected in a centralized client-server
architecture with a dedicated communication channel.  They communicate
synchronously using extensible markup language remote procedure calls
(XML-RPC).  ...  A node object presents the functions of one node to the
master program via XML-RPC and uses locking to allow only one access at a
time."*

Fidelity choices:

* Calls really are marshalled through the stdlib XML-RPC wire codec
  (``xmlrpc.client.dumps``/``loads``) — arguments must survive the actual
  wire format, so accidentally passing an unserializable object fails here
  exactly as it would against a real node.
* The channel is *separate and reliable* (platform requirement IV-A1): it
  does not touch the emulated medium, never loses messages, and only adds
  a small symmetric latency (plus optional jitter, which is what makes the
  time-sync error bound non-zero and honest).
* Per-node FIFO locking: concurrent master threads calling the same node
  queue up; calls to different nodes proceed in parallel.

Two interaction styles exist, both used by the paper's prototype:

* :meth:`ControlChannel.call` — synchronous RPC; a master process writes
  ``result = yield from channel.call(node, method, *args)``.
* :meth:`ControlChannel.cast_to_master` — one-way upcall used by the
  node-side event generators to forward events to the master's bus.
"""

from __future__ import annotations

import xmlrpc.client
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple, TYPE_CHECKING

from repro.core.errors import RpcError, RpcFault

if TYPE_CHECKING:  # pragma: no cover
    import random

    from repro.sim.kernel import Simulator

__all__ = ["RpcServer", "ControlChannel"]


class RpcServer:
    """Node-side method table, speaking the XML-RPC wire format."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._methods: Dict[str, Callable[..., Any]] = {}
        self.handled_calls = 0

    def register_function(self, fn: Callable[..., Any], name: Optional[str] = None) -> None:
        self._methods[name or fn.__name__] = fn

    def register_instance(self, obj: Any, prefix: str = "") -> None:
        """Expose every public method of *obj* (paper's node object style)."""
        for attr in dir(obj):
            if attr.startswith("_"):
                continue
            fn = getattr(obj, attr)
            if callable(fn):
                self._methods[prefix + attr] = fn

    def methods(self):
        return sorted(self._methods)

    def handle_request(self, request_xml: str) -> str:
        """Decode, dispatch and encode one request.  Remote exceptions
        become XML-RPC faults, like a real server."""
        self.handled_calls += 1
        try:
            args, method_name = xmlrpc.client.loads(request_xml)
        except Exception as exc:  # noqa: BLE001
            return xmlrpc.client.dumps(
                xmlrpc.client.Fault(400, f"malformed request: {exc}"),
                methodresponse=True,
            )
        method = self._methods.get(method_name or "")
        if method is None:
            return xmlrpc.client.dumps(
                xmlrpc.client.Fault(404, f"no such method {method_name!r} on {self.name}"),
                methodresponse=True,
            )
        try:
            result = method(*args)
        except Exception as exc:  # noqa: BLE001 - must cross the wire as fault
            return xmlrpc.client.dumps(
                xmlrpc.client.Fault(500, f"{type(exc).__name__}: {exc}"),
                methodresponse=True,
            )
        if result is None:
            result = 0  # XML-RPC has no nil without extensions; 0 = "ok"
        return xmlrpc.client.dumps((result,), methodresponse=True, allow_none=True)


class ControlChannel:
    """The dedicated management network connecting master and nodes.

    Parameters
    ----------
    sim:
        Simulation kernel (provides time and scheduling).
    latency:
        One-way message latency in seconds (wired management network).
    jitter:
        Uniform extra latency in ``[0, jitter]`` per message; requires
        *rng*.  Jitter makes round trips asymmetric, which in turn gives
        clock-offset estimation a real, quantifiable error.
    rng:
        Dedicated random stream for jitter draws.
    """

    def __init__(
        self,
        sim: "Simulator",
        latency: float = 0.0005,
        jitter: float = 0.0,
        rng: Optional["random.Random"] = None,
    ) -> None:
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng stream")
        self.sim = sim
        self.latency = float(latency)
        self.jitter = float(jitter)
        self.rng = rng
        self._servers: Dict[str, RpcServer] = {}
        self._busy: Dict[str, bool] = {}
        self._queues: Dict[str, Deque[Tuple[str, Any]]] = {}
        self._master_handler: Optional[Callable[[Any], None]] = None
        #: Total completed synchronous calls (overhead benchmarks).
        self.completed_calls = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_node(self, node_id: str, server: RpcServer) -> None:
        if node_id in self._servers:
            raise RpcError(f"node {node_id!r} already on the control channel")
        self._servers[node_id] = server
        self._busy[node_id] = False
        self._queues[node_id] = deque()

    def remove_node(self, node_id: str) -> None:
        self._servers.pop(node_id, None)
        self._busy.pop(node_id, None)
        self._queues.pop(node_id, None)

    def set_master_handler(self, handler: Callable[[Any], None]) -> None:
        """Register the master-side sink for one-way node upcalls."""
        self._master_handler = handler

    def node_ids(self):
        return sorted(self._servers)

    # ------------------------------------------------------------------
    # Latency model
    # ------------------------------------------------------------------
    def _one_way(self) -> float:
        delay = self.latency
        if self.jitter > 0:
            delay += self.rng.uniform(0.0, self.jitter)
        return delay

    # ------------------------------------------------------------------
    # Synchronous call (generator style)
    # ------------------------------------------------------------------
    def call(self, node_id: str, method: str, *args: Any):
        """Sub-generator performing one synchronous RPC.

        Usage from a master process::

            result = yield from channel.call("t9-105", "ping", t0)

        Raises :class:`RpcFault` when the remote method raised, and
        :class:`RpcError` for transport problems (unknown node).
        """
        if node_id not in self._servers:
            raise RpcError(f"no node {node_id!r} on the control channel")
        request_xml = xmlrpc.client.dumps(tuple(args), method, allow_none=True)
        done = self.sim.event(name=f"rpc:{node_id}.{method}")
        # Request propagation to the node...
        self.sim.call_later(self._one_way(), lambda: self._enqueue(node_id, request_xml, done))
        response_xml = yield done
        try:
            (result,), _ = xmlrpc.client.loads(response_xml)
        except xmlrpc.client.Fault as fault:
            raise RpcFault(fault.faultCode, fault.faultString) from None
        self.completed_calls += 1
        return result

    def _enqueue(self, node_id: str, request_xml: str, done) -> None:
        queue = self._queues.get(node_id)
        if queue is None:  # node vanished in flight
            done.trigger(
                xmlrpc.client.dumps(
                    xmlrpc.client.Fault(503, f"node {node_id} gone"), methodresponse=True
                )
            )
            return
        queue.append((request_xml, done))
        self._drain(node_id)

    def _drain(self, node_id: str) -> None:
        """Serve queued requests one at a time (the per-node lock)."""
        if self._busy.get(node_id, True):
            return
        queue = self._queues[node_id]
        if not queue:
            return
        self._busy[node_id] = True
        request_xml, done = queue.popleft()
        response_xml = self._servers[node_id].handle_request(request_xml)

        def respond() -> None:
            done.trigger(response_xml)

        def unlock() -> None:
            self._busy[node_id] = False
            self._drain(node_id)

        # Response travels back; the node lock is released immediately
        # after local handling, so the next queued call proceeds while the
        # previous response is still in flight.
        self.sim.call_later(self._one_way(), respond)
        self.sim.call_later(0.0, unlock)

    # ------------------------------------------------------------------
    # One-way upcall (node -> master)
    # ------------------------------------------------------------------
    def cast_to_master(self, payload: Any) -> None:
        """Deliver *payload* to the master handler after one-way latency.

        Used by node event generators; payloads still cross the XML-RPC
        codec so only wire-format-safe data travels.
        """
        if self._master_handler is None:
            raise RpcError("no master handler registered on the control channel")
        wire = xmlrpc.client.dumps((payload,), "master_notify", allow_none=True)
        handler = self._master_handler

        def deliver() -> None:
            (decoded,), _ = xmlrpc.client.loads(wire)
            handler(decoded)

        self.sim.call_later(self._one_way(), deliver)
